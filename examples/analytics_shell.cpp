// Interactive analytics shell: the closest thing to the paper's web
// frontend in a terminal. Loads a rich demo day, then reads one JSON query
// per line from stdin and prints the server's JSON response — so every op
// in the protocol can be explored by hand or scripted.
//
//   ./build/examples/analytics_shell              # interactive
//   echo '{"op":"eventtypes"}' | ./build/examples/analytics_shell
//
// Type `help` for sample queries, `quit` to exit.
#include <cstdio>
#include <iostream>
#include <string>

#include "model/ingest.hpp"
#include "server/server.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;

namespace {

constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC

void print_help() {
  std::printf(
      "demo data: 2017-03-14 00:00-06:00 UTC (epoch %lld..%lld)\n"
      "  - MCE hotspot in cabinet c3-11 during hour 2\n"
      "  - Lustre storm naming OST0042 at hour 4\n"
      "  - job mix with failure correlation\n"
      "sample queries (one JSON object per line):\n"
      R"(  {"op":"eventtypes"})" "\n"
      R"(  {"op":"synopsis","window":{"begin":1489449600,"end":1489471200}})" "\n"
      R"(  {"op":"heatmap","context":{"window":{"begin":1489453200,"end":1489456800},"types":["MCE"]}})" "\n"
      R"(  {"op":"word_count","top_k":5,"context":{"window":{"begin":1489464000,"end":1489467600},"types":["LustreError"]}})" "\n"
      R"(  {"op":"render_heatmap","context":{"window":{"begin":1489453200,"end":1489456800},"types":["MCE"]}})" "\n"
      R"(  {"op":"apps_running","t":1489460000})" "\n"
      R"(  {"op":"predict_failures","precursors":["MemEcc"],"targets":["KernelPanic"],"context":{"window":{"begin":1489449600,"end":1489471200}}})" "\n"
      R"(  {"op":"cql","query":"SELECT node, message FROM event_by_time WHERE hour = 413737 AND type = 'MCE' LIMIT 5"})" "\n"
      R"(  {"op":"association_rules","context":{"window":{"begin":1489449600,"end":1489471200}}})" "\n",
      static_cast<long long>(kT0), static_cast<long long>(kT0 + 6 * 3600));
}

}  // namespace

int main() {
  std::fprintf(stderr, "loading demo day...\n");
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  HPCLA_CHECK(model::load_eventtypes(cluster).is_ok());

  titanlog::ScenarioConfig cfg;
  cfg.seed = 314;
  cfg.window = TimeRange{kT0, kT0 + 6 * 3600};
  cfg.background_scale = 0.5;
  titanlog::HotspotSpec hs;
  hs.type = titanlog::EventType::kMachineCheck;
  hs.location = topo::parse_cname("c3-11").value();
  hs.window = TimeRange{kT0 + 3600, kT0 + 2 * 3600};
  hs.rate_per_node_hour = 10.0;
  cfg.hotspots.push_back(hs);
  titanlog::LustreStormSpec storm;
  storm.start = kT0 + 4 * 3600;
  storm.duration_seconds = 240;
  storm.ost_index = 0x42;
  storm.messages_per_second = 60.0;
  cfg.storms.push_back(storm);
  cfg.jobs = titanlog::JobMixSpec{.users = 12, .apps = 6, .jobs_per_hour = 50,
                                  .max_size_log2 = 7};
  auto logs = titanlog::Generator(cfg).generate();
  model::BatchIngestor ingestor(cluster, engine);
  auto report = ingestor.ingest_records(logs.events, logs.jobs);
  std::fprintf(stderr, "loaded %llu events, %zu jobs. Type 'help'.\n",
               static_cast<unsigned long long>(report.event_rows),
               logs.jobs.size());

  server::AnalyticsServer server(cluster, engine);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    if (line == "help") {
      print_help();
      continue;
    }
    auto reply = server.handle_text(line);
    // Render embedded ASCII maps readably: pretty-print the envelope.
    auto parsed = Json::parse(reply);
    if (parsed.is_ok() && parsed.value()["result"].is_object() &&
        parsed.value()["result"]["map"].is_string()) {
      std::printf("%s\n", parsed.value()["result"]["map"].as_string().c_str());
    } else {
      std::printf("%s\n", reply.c_str());
    }
    std::fflush(stdout);
  }
  auto m = server.metrics();
  std::fprintf(stderr, "session: %llu simple, %llu complex, %llu errors\n",
               static_cast<unsigned long long>(m.simple_queries),
               static_cast<unsigned long long>(m.complex_queries),
               static_cast<unsigned long long>(m.errors));
  return 0;
}
