// Quickstart: stand up the full stack in-process — cassalite cluster,
// data model, synthetic Titan logs, batch ETL, and a few queries through
// the analytics server — in under a hundred lines.
//
//   ./build/examples/quickstart
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "buslite/broker.hpp"
#include "model/ingest.hpp"
#include "model/selftel/selftel.hpp"
#include "model/tables.hpp"
#include "server/server.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;

int main() {
  // 1. A 4-node cassalite cluster with RF=2 and a co-located 4-worker
  //    sparklite engine (the paper's Cassandra+Spark deployment shape).
  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});

  // 2. The 9-table data model + reference data.
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  HPCLA_CHECK(model::load_eventtypes(cluster).is_ok());

  // 3. One hour of synthetic Titan logs (background noise + a job mix).
  titanlog::ScenarioConfig cfg;
  cfg.seed = 2017;
  cfg.window = TimeRange{1489449600, 1489449600 + 3600};  // 2017-03-14 00:00
  cfg.jobs = titanlog::JobMixSpec{.jobs_per_hour = 60, .max_size_log2 = 6};
  auto logs = titanlog::Generator(cfg).generate();
  auto lines = titanlog::render_all(logs);
  std::printf("generated %zu raw log lines (%zu events, %zu jobs)\n",
              lines.size(), logs.events.size(), logs.jobs.size());
  std::printf("sample line: %s\n", lines.front().text.c_str());

  // 4. Batch ETL: regex parse + upload, parallelized across the engine.
  model::BatchIngestor ingestor(cluster, engine);
  auto report = ingestor.ingest_lines(lines);
  std::printf("ingested: %llu event rows, %llu app rows, %llu malformed\n",
              static_cast<unsigned long long>(report.event_rows),
              static_cast<unsigned long long>(report.app_rows),
              static_cast<unsigned long long>(report.parse.malformed));

  // 5. Query through the analytics server like the web frontend would.
  server::AnalyticsServer server(cluster, engine);
  const char* queries[] = {
      R"({"op":"synopsis","window":{"begin":1489449600,"end":1489453200}})",
      R"({"op":"distribution","group_by":"type",
          "context":{"window":{"begin":1489449600,"end":1489453200}}})",
      R"({"op":"events","limit":3,
          "context":{"window":{"begin":1489449600,"end":1489453200},
                     "types":["MemEcc"]}})",
  };
  for (const char* q : queries) {
    std::printf("\n>>> %s\n", q);
    std::printf("%s\n", server.handle_text(q).c_str());
  }

  auto metrics = server.metrics();
  std::printf("\nserver handled %llu simple + %llu complex queries\n",
              static_cast<unsigned long long>(metrics.simple_queries),
              static_cast<unsigned long long>(metrics.complex_queries));

  // 6. Close the loop: export the system's own metrics and traces into
  //    sys_* tables and ask the server about its own behaviour.
  buslite::Broker telemetry_bus;
  model::selftel::SelfTelemetryLoop loop(cluster, telemetry_bus);
  server.set_self_telemetry(&loop);
  auto pumped = loop.pump();
  std::printf("\nself-telemetry: published %zu events, landed %llu rows\n",
              pumped.published,
              static_cast<unsigned long long>(pumped.drained.rows_written));
  const std::int64_t now_s = std::chrono::duration_cast<std::chrono::seconds>(
                                 std::chrono::system_clock::now()
                                     .time_since_epoch())
                                 .count();
  const std::int64_t now = hour_bucket(now_s);
  char selfquery[160];
  std::snprintf(selfquery, sizeof(selfquery),
                R"({"op":"selfquery","what":"ops","begin":%lld,"end":%lld})",
                static_cast<long long>((now - 1) * kSecondsPerHour),
                static_cast<long long>((now + 1) * kSecondsPerHour));
  std::printf(">>> %s\n%s\n", selfquery, server.handle_text(selfquery).c_str());
  std::printf(">>> {\"op\":\"alerts\"}\n%s\n",
              server.handle_text(R"({"op":"alerts"})").c_str());
  return 0;
}
