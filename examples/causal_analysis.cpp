// Causal analysis between event streams — the paper's Fig 7 (top):
// "the transfer entropy plot of two events measured within a selected time
// window ... can provide a causal relationship between the two."
//
// We inject a genuine coupling — Gemini network errors trigger Lustre
// errors ~30 s later on the same node — and show that transfer entropy is
// strongly directional (TE(net->lustre) >> TE(lustre->net)), that the TE
// lag profile peaks at the injected delay, and that a control pair of
// independent streams shows no such structure.
//
//   ./build/examples/causal_analysis
#include <algorithm>
#include <cstdio>

#include "analytics/timeseries.hpp"
#include "analytics/transfer_entropy.hpp"
#include "model/ingest.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;
using titanlog::EventType;

int main() {
  constexpr UnixSeconds kT0 = 1489449600;
  constexpr std::int64_t kBin = 15;  // seconds per bin
  constexpr std::int64_t kLag = 30;  // injected causal delay (2 bins)

  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  titanlog::ScenarioConfig cfg;
  cfg.seed = 12;
  cfg.window = TimeRange{kT0, kT0 + 6 * 3600};
  cfg.background_scale = 0.0;  // isolate the coupling
  // Network errors across one row of cabinets.
  titanlog::HotspotSpec net;
  net.type = EventType::kNetworkError;
  net.location = topo::Coord{3, 0, -1, -1, -1};
  net.window = cfg.window;
  net.rate_per_node_hour = 2.0;
  net.node_skew = 0.0;
  cfg.hotspots.push_back(net);
  // Independent control stream: DVS chatter elsewhere.
  titanlog::HotspotSpec dvs;
  dvs.type = EventType::kDvsError;
  dvs.location = topo::Coord{20, 5, -1, -1, -1};
  dvs.window = cfg.window;
  dvs.rate_per_node_hour = 2.0;
  dvs.node_skew = 0.0;
  cfg.hotspots.push_back(dvs);
  // The coupling under study.
  titanlog::CausalPairSpec pair;
  pair.cause = EventType::kNetworkError;
  pair.effect = EventType::kLustreError;
  pair.lag_seconds = kLag;
  pair.probability = 0.85;
  pair.lag_jitter_seconds = 3;
  cfg.causal_pairs.push_back(pair);
  auto logs = titanlog::Generator(cfg).generate();

  model::BatchIngestor ingestor(cluster, engine);
  (void)ingestor.ingest_records(logs.events, logs.jobs);

  analytics::Context ctx;
  ctx.window = cfg.window;
  auto net_series = analytics::event_series(engine, cluster, ctx,
                                            EventType::kNetworkError, kBin);
  auto lustre_series = analytics::event_series(engine, cluster, ctx,
                                               EventType::kLustreError, kBin);
  auto dvs_series = analytics::event_series(engine, cluster, ctx,
                                            EventType::kDvsError, kBin);

  // Lag profiles in both directions: a history-1 TE estimator only sees
  // one step ahead, so the coupling appears at shift = lag_bins - 1 of the
  // forward profile, and nowhere in the reverse profile.
  auto fwd = analytics::transfer_entropy_profile(net_series, lustre_series, 8);
  auto rev = analytics::transfer_entropy_profile(lustre_series, net_series, 8);
  auto ctl = analytics::transfer_entropy_profile(dvs_series, lustre_series, 8);
  std::printf("TE lag profiles (bits), %llds bins, injected lag = %llds = "
              "%lld bins:\n",
              static_cast<long long>(kBin), static_cast<long long>(kLag),
              static_cast<long long>(kLag / kBin));
  std::printf("  %-7s %-22s %-22s %s\n", "shift", "TE(net->lustre)",
              "TE(lustre->net)", "TE(dvs->lustre, control)");
  for (std::size_t s = 0; s < fwd.size(); ++s) {
    std::printf("  %-7zu %.4f %-15s %.4f %-15s %.4f\n", s, fwd[s],
                std::string(static_cast<std::size_t>(fwd[s] * 100), '#')
                    .c_str(),
                rev[s],
                std::string(static_cast<std::size_t>(rev[s] * 100), '#')
                    .c_str(),
                ctl[s]);
  }
  const double fwd_peak = *std::max_element(fwd.begin(), fwd.end());
  const double rev_peak = *std::max_element(rev.begin(), rev.end());
  const auto fwd_peak_shift = static_cast<std::size_t>(
      std::max_element(fwd.begin(), fwd.end()) - fwd.begin());

  // Cross-correlation agrees on the lag.
  auto corr = analytics::cross_correlation(net_series, lustre_series, 8);
  std::printf("\ncross-correlation peak lag: %lld bins\n",
              static_cast<long long>(analytics::peak_lag(corr, 8)));

  std::printf("\n=> net drives lustre: TE peak %.4f bits at shift %zu "
              "(lag %lld s); reverse direction peaks at only %.4f bits.\n",
              fwd_peak, fwd_peak_shift,
              static_cast<long long>((fwd_peak_shift + 1) *
                                     static_cast<std::size_t>(kBin)),
              rev_peak);
  return 0;
}
