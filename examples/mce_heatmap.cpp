// Spatial anomaly detection with heat maps — the paper's Fig 5 walkthrough.
//
// "Fig 5 (Bottom) shows that Machine Check Exception (MCE) errors occurred
//  abnormally high in some compute nodes over a selected time period."
//
// We inject an MCE hotspot into one cabinet, then use the heat map and the
// distribution views to find it, drill into the cabinet, and list the
// anomalous nodes. Also writes the node-level heat map as a PPM image.
//
//   ./build/examples/mce_heatmap [out.ppm]
#include <cstdio>

#include "analytics/distribution.hpp"
#include "analytics/heatmap.hpp"
#include "model/ingest.hpp"
#include "server/render.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;

int main(int argc, char** argv) {
  constexpr UnixSeconds kT0 = 1489449600;
  const std::string ppm_path = argc > 1 ? argv[1] : "mce_heatmap.ppm";

  cassalite::ClusterOptions copts;
  copts.node_count = 8;
  copts.replication_factor = 3;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 8});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  // Background MCE noise everywhere + a failing blade in cabinet c5-12
  // whose DIMMs spray machine checks for two hours.
  titanlog::ScenarioConfig cfg;
  cfg.seed = 5;
  cfg.window = TimeRange{kT0, kT0 + 6 * 3600};
  titanlog::HotspotSpec hs;
  hs.type = titanlog::EventType::kMachineCheck;
  hs.location = topo::parse_cname("c5-12c1").value();  // one cage
  hs.window = TimeRange{kT0 + 2 * 3600, kT0 + 4 * 3600};
  hs.rate_per_node_hour = 25.0;
  hs.node_skew = 1.4;  // a few nodes inside are much worse
  cfg.hotspots.push_back(hs);
  auto logs = titanlog::Generator(cfg).generate();

  model::BatchIngestor ingestor(cluster, engine);
  (void)ingestor.ingest_records(logs.events, logs.jobs);

  analytics::Context ctx;
  ctx.window = cfg.window;
  ctx.types = {titanlog::EventType::kMachineCheck};

  auto hm = analytics::build_heatmap(engine, cluster, ctx);
  std::printf("MCE heat map over the physical system map:\n%s\n",
              server::render_cabinet_heatmap(hm).c_str());

  auto by_cabinet =
      analytics::distribution(engine, cluster, ctx, analytics::GroupBy::kCabinet);
  std::printf("top cabinets by MCE count:\n");
  for (std::size_t i = 0; i < by_cabinet.size() && i < 5; ++i) {
    std::printf("  %-8s %lld\n", by_cabinet[i].label.c_str(),
                static_cast<long long>(by_cabinet[i].count));
  }

  const int hot_cabinet = topo::cabinet_of(hm.peak_node);
  std::printf("\ndrill-down into the hottest cabinet:\n%s\n",
              server::render_cabinet_detail(hm, hot_cabinet).c_str());

  auto anomalous = hm.anomalous_nodes(3.0);
  std::printf("nodes above mean + 3 sigma:\n");
  for (std::size_t i = 0; i < anomalous.size() && i < 8; ++i) {
    std::printf("  %-14s %lld\n", topo::cname_of(anomalous[i].first).c_str(),
                static_cast<long long>(anomalous[i].second));
  }

  auto status = server::write_heatmap_ppm(hm, ppm_path);
  std::printf("\nnode-level heat map image: %s (%s)\n", ppm_path.c_str(),
              status.to_string().c_str());
  return 0;
}
