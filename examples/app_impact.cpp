// Application placement and failure impact — the paper's Fig 6 walkthrough.
//
// "End users can also visually inspect trends among the system events and
//  contention on shared resources that occur during the run of their
//  applications" — here: render who is running where, then quantify how
// fatal node events correlate with job failures.
//
//   ./build/examples/app_impact
#include <cstdio>

#include "analytics/distribution.hpp"
#include "analytics/queries.hpp"
#include "analytics/reliability.hpp"
#include "model/ingest.hpp"
#include "server/render.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;

int main() {
  constexpr UnixSeconds kT0 = 1489449600;

  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  // A day with a realistic job mix; node faults occasionally kill jobs.
  titanlog::ScenarioConfig cfg;
  cfg.seed = 6;
  cfg.window = TimeRange{kT0, kT0 + 24 * 3600};
  cfg.jobs = titanlog::JobMixSpec{.users = 30, .apps = 10,
                                  .jobs_per_hour = 80, .max_size_log2 = 10};
  auto logs = titanlog::Generator(cfg).generate();

  model::BatchIngestor ingestor(cluster, engine);
  (void)ingestor.ingest_records(logs.events, logs.jobs);

  // Fig 6 bottom: application placement snapshot at noon.
  const UnixSeconds noon = kT0 + 12 * 3600;
  auto running = analytics::apps_running_at(engine, cluster, noon);
  std::printf("applications running at %s:\n%s\n",
              format_timestamp(noon).c_str(),
              server::render_placement_map(running).c_str());

  analytics::Context ctx;
  ctx.window = cfg.window;

  // Which applications absorbed the most events?
  auto by_app = analytics::distribution(engine, cluster, ctx,
                                        analytics::GroupBy::kApplication);
  std::printf("event occurrences attributed to applications:\n");
  for (std::size_t i = 0; i < by_app.size() && i < 8; ++i) {
    std::printf("  %-10s %lld\n", by_app[i].label.c_str(),
                static_cast<long long>(by_app[i].count));
  }

  // Failure impact: jobs vs fatal events on their nodes.
  auto impact = analytics::app_impact(engine, cluster, ctx);
  std::printf("\njob failure impact over the day:\n");
  std::printf("  jobs run              %lld\n",
              static_cast<long long>(impact.jobs));
  std::printf("  jobs failed           %lld (%.1f%%)\n",
              static_cast<long long>(impact.failed_jobs),
              impact.failure_rate() * 100.0);
  std::printf("  failed w/ fatal event %lld\n",
              static_cast<long long>(impact.failed_with_event));
  std::printf("  survived such events  %lld\n",
              static_cast<long long>(impact.ok_with_event));

  auto rel = analytics::reliability_report(engine, cluster, ctx);
  std::printf("\nsystem reliability over the day:\n");
  std::printf("  fatal events          %lld\n",
              static_cast<long long>(rel.fatal_events));
  std::printf("  MTBF                  %.1f minutes\n",
              rel.mtbf_seconds / 60.0);
  std::printf("  events per node-hour  %.4f\n", rel.events_per_node_hour);
  std::printf("  nodes reporting       %lld\n",
              static_cast<long long>(rel.affected_nodes));
  return 0;
}
