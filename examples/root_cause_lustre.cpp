// Root-causing a Lustre storm with text analytics — the paper's Fig 7
// (bottom) walkthrough.
//
// A system-wide Lustre event floods the logs with tens of thousands of
// messages for a few minutes. The temporal map shows *when*; word counts
// over the raw messages show *what*: a single object storage target id
// dominates, pointing at the faulty component.
//
//   ./build/examples/root_cause_lustre
#include <cstdio>

#include "analytics/text.hpp"
#include "analytics/timeseries.hpp"
#include "model/ingest.hpp"
#include "server/render.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;

int main() {
  constexpr UnixSeconds kT0 = 1489449600;  // 2017-03-14 00:00:00 UTC

  cassalite::ClusterOptions copts;
  copts.node_count = 8;
  copts.replication_factor = 3;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 8});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  // Scenario: a quiet day, except OST0042 goes dark at 02:10 for five
  // minutes, afflicting 80% of compute nodes (paper: "tens of thousands of
  // Lustre error messages ... a system wide event that lasted several
  // minutes afflicting most of compute nodes").
  titanlog::ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.window = TimeRange{kT0, kT0 + 4 * 3600};
  titanlog::LustreStormSpec storm;
  storm.start = kT0 + 2 * 3600 + 600;
  storm.duration_seconds = 300;
  storm.ost_index = 0x42;
  storm.messages_per_second = 150.0;
  storm.affected_node_fraction = 0.8;
  cfg.storms.push_back(storm);
  auto logs = titanlog::Generator(cfg).generate();
  std::printf("day contains %zu events (storm + background)\n\n",
              logs.events.size());

  model::BatchIngestor ingestor(cluster, engine);
  (void)ingestor.ingest_records(logs.events, logs.jobs);

  // Step 1 — the temporal map makes the storm window obvious.
  analytics::Context ctx;
  ctx.window = cfg.window;
  ctx.types = {titanlog::EventType::kLustreError};
  auto series = analytics::event_series(engine, cluster, ctx,
                                        titanlog::EventType::kLustreError,
                                        /*bin_seconds=*/120);
  std::printf("%s\n", server::render_temporal_map(series, kT0, 120).c_str());

  // Step 2 — zoom the context to the spike and count words in the raw
  // messages (the Spark word-count job of Fig 7).
  analytics::Context spike = ctx;
  spike.window = TimeRange{storm.start - 60,
                           storm.start + storm.duration_seconds + 60};
  auto words = analytics::word_count(engine, cluster, spike, 8);
  std::printf("top terms in the spike window (word bubbles):\n%s\n",
              server::render_word_bubbles(words).c_str());

  // Step 3 — TF-IDF against the whole day confirms the term is specific
  // to the storm bucket, not generic chatter.
  auto signature = analytics::storm_signature(engine, cluster, ctx,
                                              /*bucket_seconds=*/300, 5);
  std::printf("storm signature (TF-IDF of the hottest 5-minute bucket):\n");
  for (const auto& t : signature) {
    std::printf("  %-16s %.4f\n", t.term.c_str(), t.score);
  }
  if (!words.empty()) {
    std::printf("\n=> root cause: component '%s' (%lld mentions)\n",
                words.front().term.c_str(),
                static_cast<long long>(words.front().count));
  }
  return 0;
}
