// Real-time streaming ingestion and online monitoring — the paper's §III-D
// pipeline: event producers publish parsed occurrences to a Kafka-like bus;
// a Spark-Streaming-like subscriber coalesces 1-second windows into the
// data model; an online monitor watches the per-window rates and raises an
// alert when a system-wide burst begins (the "real time failure detection"
// use case).
//
//   ./build/examples/streaming_monitor
#include <cstdio>

#include "model/streaming_ingest.hpp"
#include "model/tables.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;

int main() {
  constexpr UnixSeconds kT0 = 1489449600;

  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  buslite::Broker broker;
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  HPCLA_CHECK(broker.create_topic("titan-events", {.partitions = 8}).is_ok());

  // Scenario: 30 minutes of telemetry; a Lustre burst begins at minute 20.
  titanlog::ScenarioConfig cfg;
  cfg.seed = 9;
  cfg.window = TimeRange{kT0, kT0 + 1800};
  cfg.background_scale = 2.0;
  titanlog::LustreStormSpec storm;
  storm.start = kT0 + 1200;
  storm.duration_seconds = 240;
  storm.ost_index = 0x0B;
  storm.messages_per_second = 120.0;
  cfg.storms.push_back(storm);
  auto logs = titanlog::Generator(cfg).generate();

  model::EventPublisher publisher(broker, "titan-events");
  model::StreamingIngestor ingestor(cluster, engine, broker, "titan-events");

  // Replay the day in 60-second slices, as if producers were live. After
  // each slice the subscriber drains the bus and the monitor inspects the
  // per-minute rate.
  std::size_t cursor = 0;
  double baseline_rate = 0.0;
  int minutes_seen = 0;
  bool alerted = false;
  for (UnixSeconds t = kT0; t < cfg.window.end; t += 60) {
    std::size_t published = 0;
    while (cursor < logs.events.size() && logs.events[cursor].ts < t + 60) {
      HPCLA_CHECK(publisher.publish(logs.events[cursor]).is_ok());
      ++cursor;
      ++published;
    }
    auto report = ingestor.process_available();
    const double rate = static_cast<double>(published) / 60.0;

    // Online anomaly check: rate >> running baseline => alert.
    if (minutes_seen >= 5 && !alerted && rate > 10.0 * baseline_rate &&
        published > 100) {
      std::printf("%s *** ALERT: event rate %.1f/s (baseline %.2f/s) — "
                  "possible system-wide incident ***\n",
                  format_timestamp(t).c_str(), rate, baseline_rate);
      alerted = true;
    } else {
      baseline_rate = minutes_seen == 0
                          ? rate
                          : 0.8 * baseline_rate + 0.2 * rate;
    }
    ++minutes_seen;
    if (published > 0) {
      std::printf("%s published=%5zu batches=%3llu stored=%5llu "
                  "coalesce=%.2fx\n",
                  format_timestamp(t).c_str(), published,
                  static_cast<unsigned long long>(report.batches),
                  static_cast<unsigned long long>(report.events_written),
                  report.coalesce_ratio());
    }
  }

  const auto& totals = ingestor.totals();
  std::printf("\nstream totals: %llu messages -> %llu stored rows "
              "(coalesce ratio %.2fx), %llu decode failures\n",
              static_cast<unsigned long long>(totals.messages_in),
              static_cast<unsigned long long>(totals.events_written),
              totals.coalesce_ratio(),
              static_cast<unsigned long long>(totals.decode_failures));
  std::printf("alert raised: %s\n", alerted ? "yes" : "no");
  return 0;
}
