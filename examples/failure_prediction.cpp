// Failure prediction and composite-event mining — the paper's §V roadmap
// ("new and composite event types ... event mining techniques"; "models
// for failure prediction" from §IV) implemented on the same data model.
//
// A population of sick nodes emits escalating correctable-memory errors
// before panicking. We (1) mine composite escalation sequences, and
// (2) evaluate a precursor-threshold failure predictor, sweeping the
// alarm threshold to show the precision/recall trade-off.
//
//   ./build/examples/failure_prediction
#include <cstdio>

#include "analytics/composite.hpp"
#include "analytics/dtree.hpp"
#include "analytics/prediction.hpp"
#include "model/ingest.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;
using titanlog::EventType;

int main() {
  constexpr UnixSeconds kT0 = 1489449600;

  cassalite::ClusterOptions copts;
  copts.node_count = 4;
  copts.replication_factor = 2;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());

  // A day of telemetry: one cabinet's DIMMs are failing — ECC bursts that
  // sometimes escalate to machine checks and panics — over normal noise.
  titanlog::ScenarioConfig cfg;
  cfg.seed = 21;
  cfg.window = TimeRange{kT0, kT0 + 24 * 3600};
  cfg.background_scale = 0.5;
  titanlog::HotspotSpec sick;
  sick.type = EventType::kMemoryEcc;
  sick.location = topo::parse_cname("c6-9").value();
  sick.window = cfg.window;
  sick.rate_per_node_hour = 8.0;
  sick.node_skew = 1.5;
  cfg.hotspots.push_back(sick);
  titanlog::CausalPairSpec ecc_mce;
  ecc_mce.cause = EventType::kMemoryEcc;
  ecc_mce.effect = EventType::kMachineCheck;
  ecc_mce.lag_seconds = 120;
  ecc_mce.probability = 0.1;
  cfg.causal_pairs.push_back(ecc_mce);
  titanlog::CausalPairSpec mce_panic;
  mce_panic.cause = EventType::kMachineCheck;
  mce_panic.effect = EventType::kKernelPanic;
  mce_panic.lag_seconds = 300;
  mce_panic.probability = 0.3;
  cfg.causal_pairs.push_back(mce_panic);
  cfg.jobs = titanlog::JobMixSpec{.users = 20, .apps = 8, .jobs_per_hour = 60,
                                  .max_size_log2 = 9,
                                  .base_failure_prob = 0.02};
  auto logs = titanlog::Generator(cfg).generate();

  model::BatchIngestor ingestor(cluster, engine);
  (void)ingestor.ingest_records(logs.events, logs.jobs);

  analytics::Context ctx;
  ctx.window = cfg.window;

  // Part 1 — composite event mining.
  auto matches = analytics::detect_composites(
      engine, cluster, ctx, analytics::default_composite_rules());
  std::map<std::string, int> by_rule;
  for (const auto& m : matches) by_rule[m.rule]++;
  std::printf("composite events mined over the day:\n");
  for (const auto& [rule, count] : by_rule) {
    std::printf("  %-24s %d occurrences\n", rule.c_str(), count);
  }
  int shown = 0;
  for (const auto& m : matches) {
    if (m.rule != "ecc_mce_panic") continue;
    std::printf("  e.g. %s completed at %s on %s (%zu steps)\n",
                m.rule.c_str(), format_timestamp(m.end_ts).c_str(),
                topo::cname_of(m.last_node).c_str(), m.step_events.size());
    if (++shown >= 3) break;
  }

  // Part 2 — precursor-threshold failure prediction, threshold sweep.
  std::printf("\nfailure prediction (precursors: MemEcc+MCE -> KernelPanic),"
              " 1 h window, 1 h lead:\n");
  std::printf("  %-10s %-8s %-8s %-10s %-8s %s\n", "threshold", "alarms",
              "prec", "recall", "lead(s)", "failures");
  for (std::int64_t threshold : {1, 2, 3, 5, 8}) {
    analytics::PredictorConfig pcfg;
    pcfg.precursors = {EventType::kMemoryEcc, EventType::kMachineCheck};
    pcfg.targets = {EventType::kKernelPanic};
    pcfg.threshold = threshold;
    pcfg.window_seconds = 3600;
    pcfg.lead_seconds = 3600;
    auto report = analytics::evaluate_predictor(engine, cluster, ctx, pcfg);
    std::printf("  %-10lld %-8zu %-8.3f %-10.3f %-8.0f %lld\n",
                static_cast<long long>(threshold), report.alarms.size(),
                report.precision(), report.recall(),
                report.mean_lead_seconds(),
                static_cast<long long>(report.failures));
  }
  std::printf("\n(lower thresholds catch more failures at the cost of more "
              "false alarms)\n");

  // Part 3 — a decision tree learns which job runs fail (§II-A's "decision
  // trees" over the data model; features: allocation size, duration, and
  // the events that hit the job's nodes).
  auto samples = analytics::job_failure_samples(engine, cluster, ctx);
  std::vector<analytics::Sample> train;
  std::vector<analytics::Sample> test;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    (i % 4 == 0 ? test : train).push_back(samples[i]);
  }
  if (!train.empty() && !test.empty()) {
    analytics::DTreeConfig tcfg;
    tcfg.max_depth = 3;
    tcfg.min_samples_leaf = 10;
    auto tree = analytics::DecisionTree::train(
        train, analytics::job_failure_feature_names(), tcfg);
    auto eval = tree.evaluate(test);
    std::printf("\njob-failure decision tree (trained on %zu runs, tested on "
                "%zu):\n%s",
                train.size(), test.size(), tree.render().c_str());
    std::printf("test accuracy %.3f, precision %.3f, recall %.3f\n",
                eval.accuracy(), eval.precision(), eval.recall());
  }
  return 0;
}
