// Operating the backend: what the paper's "scalable and highly available"
// claims mean hands-on. This walkthrough drives the cassalite cluster the
// way an operator would during an incident: watching placement, killing
// nodes, observing consistency-level behaviour, hinted handoff, read
// repair, and commit-log crash recovery.
//
//   ./build/examples/cluster_admin
#include <cstdio>

#include "model/ingest.hpp"
#include "model/tables.hpp"
#include "titanlog/generator.hpp"

using namespace hpcla;
using cassalite::Consistency;

int main() {
  constexpr UnixSeconds kT0 = 1489449600;

  cassalite::ClusterOptions copts;
  copts.node_count = 6;
  copts.replication_factor = 3;
  cassalite::Cluster cluster(copts);
  sparklite::Engine engine(sparklite::EngineOptions{.workers = 4});
  HPCLA_CHECK(model::create_data_model(cluster).is_ok());
  std::printf("cluster: %zu nodes, RF=%zu, %zu vnodes/node\n",
              cluster.node_count(), cluster.replication_factor(),
              cluster.ring().vnodes_per_node());

  // Where does an hour of MCEs live?
  const std::string pk =
      model::event_time_key(hour_bucket(kT0), titanlog::EventType::kMachineCheck);
  auto reps = cluster.replicas_of(pk);
  std::printf("partition '%s' -> replicas [%zu, %zu, %zu]\n\n", pk.c_str(),
              reps[0], reps[1], reps[2]);

  // Load an hour of data.
  titanlog::ScenarioConfig cfg;
  cfg.seed = 1;
  cfg.window = TimeRange{kT0, kT0 + 3600};
  auto logs = titanlog::Generator(cfg).generate();
  model::BatchIngestor ingestor(cluster, engine);
  (void)ingestor.ingest_records(logs.events, logs.jobs);
  std::printf("loaded %zu events across %zu nodes\n\n", logs.events.size(),
              cluster.node_count());

  // Incident: the primary replica of our partition dies.
  std::printf("*** killing node %zu (primary of '%s') ***\n", reps[0],
              pk.c_str());
  cluster.kill_node(reps[0]);
  std::printf("live nodes: %zu/%zu\n", cluster.live_node_count(),
              cluster.node_count());

  // Writes at each consistency level during the outage.
  titanlog::EventRecord e;
  e.ts = kT0 + 10;
  e.seq = 1000000;
  e.type = titanlog::EventType::kMachineCheck;
  e.node = 42;
  e.message = "MCE during outage";
  for (auto consistency :
       {Consistency::kOne, Consistency::kQuorum, Consistency::kAll}) {
    auto status = cluster.insert(std::string(model::kEventByTime), pk,
                                 model::event_time_row(e), consistency);
    std::printf("  write at %-6s -> %s\n",
                std::string(cassalite::consistency_name(consistency)).c_str(),
                status.to_string().c_str());
    e.seq++;
  }
  std::printf("  pending hints for the dead node: %zu\n\n",
              cluster.pending_hints());

  // Recovery: the node returns; hints converge it.
  const std::size_t replayed = cluster.revive_node(reps[0]);
  std::printf("*** node %zu revived: %zu hinted mutations replayed ***\n",
              reps[0], replayed);
  cassalite::ReadQuery q;
  q.table = std::string(model::kEventByTime);
  q.partition_key = pk;
  auto direct = cluster.engine(reps[0]).read(q);
  std::printf("revived node now serves %zu rows of '%s' directly\n\n",
              direct.rows.size(), pk.c_str());

  // Crash-recovery drill: a node loses its memtables and replays its log.
  const std::size_t recovered = cluster.crash_node(reps[1]);
  std::printf("crash drill on node %zu: %zu mutations replayed from the "
              "commit log\n\n",
              reps[1], recovered);

  // Paging through a big partition like the server does.
  std::printf("paging through '%s' 500 rows at a time:\n", pk.c_str());
  std::optional<cassalite::ClusteringKey> token;
  int page_no = 0;
  while (true) {
    auto page = cluster.select_page(q, 500, token);
    HPCLA_CHECK(page.is_ok());
    std::printf("  page %d: %zu rows%s\n", page_no++, page->rows.size(),
                page->next ? "" : " (last)");
    if (!page->next) break;
    token = page->next;
  }

  // The coordinator's view of the day.
  auto m = cluster.metrics();
  std::printf("\ncoordinator metrics: writes_ok=%llu writes_unavailable=%llu "
              "reads_ok=%llu hints=%llu/%llu read_repairs=%llu\n",
              static_cast<unsigned long long>(m.writes_ok),
              static_cast<unsigned long long>(m.writes_unavailable),
              static_cast<unsigned long long>(m.reads_ok),
              static_cast<unsigned long long>(m.hints_replayed),
              static_cast<unsigned long long>(m.hints_stored),
              static_cast<unsigned long long>(m.read_repairs));
  const auto sm = cluster.engine(reps[2]).metrics();
  std::printf("node %zu storage: writes=%llu flushes=%llu compactions=%llu "
              "bloom_rejections=%llu\n",
              reps[2], static_cast<unsigned long long>(sm.writes),
              static_cast<unsigned long long>(sm.memtable_flushes),
              static_cast<unsigned long long>(sm.compactions),
              static_cast<unsigned long long>(sm.bloom_rejections));
  return 0;
}
