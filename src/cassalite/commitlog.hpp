// Per-node commit log: every mutation is appended before it touches the
// memtable, so a node that "crashes" (loses its memtable in fault-injection
// tests) can replay back to its pre-crash state. Segments are recycled once
// the memtables they cover have been flushed to SSTables.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cassalite/schema.hpp"

namespace hpcla::cassalite {

/// Append-only mutation journal. Not internally synchronized — the owning
/// StorageEngine serializes access.
class CommitLog {
 public:
  /// Appends a mutation; returns its log sequence number (LSN).
  std::uint64_t append(WriteCommand cmd);

  /// All entries with LSN > `after_lsn`, oldest first (crash replay).
  [[nodiscard]] std::vector<WriteCommand> replay(std::uint64_t after_lsn) const;

  /// Discards entries with LSN <= `up_to_lsn` (their data reached SSTables).
  void truncate(std::uint64_t up_to_lsn);

  [[nodiscard]] std::uint64_t last_lsn() const noexcept { return next_lsn_ - 1; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t lsn;
    WriteCommand cmd;
  };
  std::deque<Entry> entries_;
  std::uint64_t next_lsn_ = 1;
};

}  // namespace hpcla::cassalite
