#include "cassalite/bloom.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"

namespace hpcla::cassalite {

BloomFilter::BloomFilter(std::size_t expected_items, int bits_per_item) {
  expected_items = std::max<std::size_t>(expected_items, 1);
  bits_per_item = std::max(bits_per_item, 1);
  const std::size_t bits = expected_items * static_cast<std::size_t>(bits_per_item);
  words_.assign((bits + 63) / 64, 0);
  // Optimal k = bits_per_item * ln 2.
  hashes_ = std::max(1, static_cast<int>(std::round(bits_per_item * 0.6931)));
}

void BloomFilter::insert(std::string_view key) noexcept {
  const std::uint64_t h1 = murmur3_64(key, 0x6ea2d67c);
  const std::uint64_t h2 = murmur3_64(key, 0x19c5a4e1) | 1;
  const std::size_t bits = words_.size() * 64;
  for (int i = 0; i < hashes_; ++i) {
    const std::size_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bits;
    words_[bit / 64] |= 1ull << (bit % 64);
  }
}

bool BloomFilter::may_contain(std::string_view key) const noexcept {
  const std::uint64_t h1 = murmur3_64(key, 0x6ea2d67c);
  const std::uint64_t h2 = murmur3_64(key, 0x19c5a4e1) | 1;
  const std::size_t bits = words_.size() * 64;
  for (int i = 0; i < hashes_; ++i) {
    const std::size_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) % bits;
    if (!(words_[bit / 64] & (1ull << (bit % 64)))) return false;
  }
  return true;
}

}  // namespace hpcla::cassalite
