// Bloom filter over partition keys, attached to each SSTable so reads skip
// runs that cannot contain the requested partition (as Cassandra does).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace hpcla::cassalite {

/// Classic k-hash Bloom filter with double hashing (Kirsch–Mitzenmacher).
class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` at roughly `bits_per_item` bits
  /// each (10 bits/item ≈ 1% false-positive rate).
  explicit BloomFilter(std::size_t expected_items, int bits_per_item = 10);

  void insert(std::string_view key) noexcept;

  /// False means definitely absent; true means probably present.
  [[nodiscard]] bool may_contain(std::string_view key) const noexcept;

  [[nodiscard]] std::size_t bit_count() const noexcept {
    return words_.size() * 64;
  }
  [[nodiscard]] int hash_count() const noexcept { return hashes_; }

 private:
  std::vector<std::uint64_t> words_;
  int hashes_;
};

}  // namespace hpcla::cassalite
