#include "cassalite/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/thread_pool.hpp"

namespace hpcla::cassalite {

std::string_view consistency_name(Consistency c) noexcept {
  switch (c) {
    case Consistency::kOne: return "ONE";
    case Consistency::kQuorum: return "QUORUM";
    case Consistency::kAll: return "ALL";
  }
  return "?";
}

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      ring_(options.node_count, options.vnodes, options.ring_seed) {
  HPCLA_CHECK_MSG(options.node_count >= 1, "cluster needs at least one node");
  options_.replication_factor =
      std::min(std::max<std::size_t>(options_.replication_factor, 1),
               options_.node_count);
  if (options_.racks > 0) {
    rack_of_.resize(options_.node_count);
    for (std::size_t i = 0; i < options_.node_count; ++i) {
      rack_of_[i] = static_cast<int>(i % options_.racks);
    }
  }
  nodes_.reserve(options_.node_count);
  for (std::size_t i = 0; i < options_.node_count; ++i) {
    nodes_.push_back(std::make_unique<StorageEngine>(options_.storage));
  }
  alive_ = std::make_unique<std::atomic<bool>[]>(options_.node_count);
  for (std::size_t i = 0; i < options_.node_count; ++i) {
    alive_[i].store(true, std::memory_order_relaxed);
  }
}

Status Cluster::create_table(TableSchema schema) {
  std::lock_guard lock(ddl_mu_);
  for (const auto& s : schemas_) {
    if (s.name == schema.name) {
      return already_exists("table '" + schema.name + "' already exists");
    }
  }
  schemas_.push_back(std::move(schema));
  return Status::ok();
}

Result<TableSchema> Cluster::schema(const std::string& table) const {
  std::lock_guard lock(ddl_mu_);
  for (const auto& s : schemas_) {
    if (s.name == table) return s;
  }
  return not_found("no such table '" + table + "'");
}

std::vector<TableSchema> Cluster::schemas() const {
  std::lock_guard lock(ddl_mu_);
  return schemas_;
}

Status Cluster::insert(const std::string& table,
                       const std::string& partition_key, Row row,
                       Consistency consistency) {
  row.write_ts = write_clock_.fetch_add(1, std::memory_order_relaxed);
  const auto replicas = replicas_of(partition_key);
  const std::size_t needed = required_acks(consistency, replicas.size());

  WriteCommand cmd{table, partition_key, std::move(row)};
  std::size_t acks = 0;
  std::vector<NodeIndex> down;
  for (NodeIndex r : replicas) {
    if (alive_[r].load(std::memory_order_acquire)) {
      nodes_[r]->apply(cmd);
      ++acks;
    } else {
      down.push_back(r);
    }
  }
  if (acks < needed) {
    writes_unavailable_.fetch_add(1, std::memory_order_relaxed);
    return unavailable("write to '" + partition_key + "' got " +
                       std::to_string(acks) + "/" + std::to_string(needed) +
                       " acks at " + std::string(consistency_name(consistency)));
  }
  // Success: queue hints so down replicas converge when they return.
  if (!down.empty()) {
    std::lock_guard lock(hints_mu_);
    for (NodeIndex r : down) {
      hints_.push_back(Hint{r, cmd});
      hints_stored_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  writes_ok_.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

Result<ReadResult> Cluster::select(const ReadQuery& query,
                                   Consistency consistency) const {
  const auto replicas = replicas_of(query.partition_key);
  const std::size_t needed = required_acks(consistency, replicas.size());

  // Read the *full* slice (no limit/reverse) from each replica so
  // reconciliation sees comparable row sets; limit is applied afterwards.
  ReadQuery full = query;
  full.limit = 0;
  full.reverse = false;

  std::vector<NodeIndex> contacted;
  std::vector<ReadResult> results;
  for (NodeIndex r : replicas) {
    if (!alive_[r].load(std::memory_order_acquire)) continue;
    results.push_back(nodes_[r]->read(full));
    contacted.push_back(r);
    if (contacted.size() >= needed) break;
  }
  if (contacted.size() < needed) {
    reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
    return unavailable("read of '" + query.partition_key + "' reached " +
                       std::to_string(contacted.size()) + "/" +
                       std::to_string(needed) + " replicas at " +
                       std::string(consistency_name(consistency)));
  }

  // Reconcile: per clustering key, the newest write wins.
  ReadResult merged;
  if (results.size() == 1) {
    merged = std::move(results.front());
  } else {
    std::vector<Row> all;
    for (auto& r : results) {
      all.insert(all.end(), std::make_move_iterator(r.rows.begin()),
                 std::make_move_iterator(r.rows.end()));
    }
    std::stable_sort(all.begin(), all.end(), [](const Row& a, const Row& b) {
      const auto c = a.key.compare(b.key);
      if (c != std::strong_ordering::equal) {
        return c == std::strong_ordering::less;
      }
      return a.write_ts < b.write_ts;
    });
    for (auto& row : all) {
      if (!merged.rows.empty() && merged.rows.back().key == row.key) {
        merged.rows.back() = std::move(row);
      } else {
        merged.rows.push_back(std::move(row));
      }
    }
    // Read repair: any contacted replica whose view differed from the
    // merged result gets the merged rows re-applied.
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (results[i].rows.size() != merged.rows.size()) {
        for (const auto& row : merged.rows) {
          nodes_[contacted[i]]->apply(
              WriteCommand{query.table, query.partition_key, row});
        }
        read_repairs_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (query.reverse) std::reverse(merged.rows.begin(), merged.rows.end());
  if (query.limit != 0 && merged.rows.size() > query.limit) {
    merged.rows.resize(query.limit);
    merged.truncated = true;
  }
  reads_ok_.fetch_add(1, std::memory_order_relaxed);
  return merged;
}

Result<Cluster::Page> Cluster::select_page(
    const ReadQuery& query, std::size_t page_size,
    const std::optional<ClusteringKey>& resume_after,
    Consistency consistency) const {
  HPCLA_CHECK_MSG(page_size >= 1, "page_size must be >= 1");
  ReadQuery paged = query;
  paged.reverse = false;
  // Fetch one extra row to learn whether another page exists.
  paged.limit = page_size + 1;
  if (resume_after) {
    // Exclusive lower bound: appending a null part yields the smallest key
    // strictly greater than resume_after (prefixes sort first).
    ClusteringKey after = *resume_after;
    after.parts.emplace_back();
    if (!paged.slice.lower ||
        paged.slice.lower->compare(after) == std::strong_ordering::less) {
      paged.slice.lower = std::move(after);
    }
  }
  auto result = select(paged, consistency);
  if (!result.is_ok()) return result.status();
  Page page;
  page.rows = std::move(result->rows);
  if (page.rows.size() > page_size) {
    page.rows.resize(page_size);
    page.next = page.rows.back().key;
  }
  return page;
}

std::vector<Result<ReadResult>> Cluster::parallel_read(
    ThreadPool& pool, const std::string& table,
    const std::vector<std::string>& partition_keys,
    const ClusteringSlice& slice, Consistency consistency) const {
  std::vector<Result<ReadResult>> results(partition_keys.size(),
                                          Result<ReadResult>(ReadResult{}));
  if (partition_keys.empty()) return results;

  if (consistency == Consistency::kOne) {
    // Group keys by the replica a ONE read would contact (first live), so
    // each node's whole batch is served against a single snapshot.
    std::map<NodeIndex, std::vector<std::size_t>> by_node;
    for (std::size_t i = 0; i < partition_keys.size(); ++i) {
      bool placed = false;
      for (NodeIndex r : replicas_of(partition_keys[i])) {
        if (alive_[r].load(std::memory_order_acquire)) {
          by_node[r].push_back(i);
          placed = true;
          break;
        }
      }
      if (!placed) {
        reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
        results[i] = unavailable("read of '" + partition_keys[i] +
                                 "' reached 0/1 replicas at ONE");
      }
    }
    std::vector<std::pair<NodeIndex, std::vector<std::size_t>>> groups(
        by_node.begin(), by_node.end());
    pool.parallel_for(groups.size(), [&](std::size_t g) {
      const auto& [node, indices] = groups[g];
      std::vector<std::string> batch;
      batch.reserve(indices.size());
      for (std::size_t i : indices) batch.push_back(partition_keys[i]);
      std::size_t cursor = 0;
      nodes_[node]->scan_partitions(
          table, batch, slice,
          [&](const std::string&, std::vector<Row> rows) {
            ReadResult r;
            r.rows = std::move(rows);
            results[indices[cursor++]] = std::move(r);
            reads_ok_.fetch_add(1, std::memory_order_relaxed);
          });
    });
    return results;
  }

  // QUORUM/ALL need cross-replica reconciliation: fan out per-key
  // coordinator selects, chunked to amortize pool dispatch.
  pool.parallel_for(
      partition_keys.size(),
      [&](std::size_t i) {
        ReadQuery q;
        q.table = table;
        q.partition_key = partition_keys[i];
        q.slice = slice;
        results[i] = select(q, consistency);
      },
      /*grain=*/8);
  return results;
}

void Cluster::kill_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  alive_[node].store(false, std::memory_order_release);
}

std::size_t Cluster::revive_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  alive_[node].store(true, std::memory_order_release);
  // Replay and drop this node's hints.
  std::vector<Hint> to_replay;
  {
    std::lock_guard lock(hints_mu_);
    auto keep = hints_.begin();
    for (auto& h : hints_) {
      if (h.target == node) {
        to_replay.push_back(std::move(h));
      } else {
        *keep++ = std::move(h);
      }
    }
    hints_.erase(keep, hints_.end());
  }
  for (const auto& h : to_replay) {
    nodes_[node]->apply(h.cmd);
    hints_replayed_.fetch_add(1, std::memory_order_relaxed);
  }
  return to_replay.size();
}

void Cluster::kill_rack(int rack) {
  HPCLA_CHECK_MSG(!rack_of_.empty(), "cluster has no rack configuration");
  for (NodeIndex n = 0; n < nodes_.size(); ++n) {
    if (rack_of_[n] == rack) kill_node(n);
  }
}

std::size_t Cluster::crash_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  return nodes_[node]->crash_and_recover();
}

bool Cluster::is_alive(NodeIndex node) const {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  return alive_[node].load(std::memory_order_acquire);
}

std::size_t Cluster::live_node_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    n += alive_[i].load(std::memory_order_acquire) ? 1 : 0;
  }
  return n;
}

std::size_t Cluster::pending_hints() const {
  std::lock_guard lock(hints_mu_);
  return hints_.size();
}

const StorageEngine& Cluster::engine(NodeIndex node) const {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  return *nodes_[node];
}

std::vector<std::string> Cluster::primary_partition_keys(
    NodeIndex node, const std::string& table) const {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  std::vector<std::string> out;
  for (auto& key : nodes_[node]->partition_keys(table)) {
    if (ring_.primary(key) == node) out.push_back(std::move(key));
  }
  return out;
}

std::vector<std::string> Cluster::all_partition_keys(
    const std::string& table) const {
  std::vector<std::string> all;
  for (const auto& node : nodes_) {
    auto keys = node->partition_keys(table);
    all.insert(all.end(), std::make_move_iterator(keys.begin()),
               std::make_move_iterator(keys.end()));
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

ClusterMetrics Cluster::metrics() const {
  ClusterMetrics m;
  m.writes_ok = writes_ok_.load(std::memory_order_relaxed);
  m.writes_unavailable = writes_unavailable_.load(std::memory_order_relaxed);
  m.reads_ok = reads_ok_.load(std::memory_order_relaxed);
  m.reads_unavailable = reads_unavailable_.load(std::memory_order_relaxed);
  m.hints_stored = hints_stored_.load(std::memory_order_relaxed);
  m.hints_replayed = hints_replayed_.load(std::memory_order_relaxed);
  m.read_repairs = read_repairs_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace hpcla::cassalite
