#include "cassalite/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/faultsim.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"

namespace hpcla::cassalite {
namespace {

constexpr std::uint64_t kBackoffChannel = fnv1a_64("cassalite.backoff");

/// LWW merge of full-slice row sets from several replicas: per clustering
/// key the newest write wins. Consumes `results`.
ReadResult merge_lww(std::vector<ReadResult>& results) {
  ReadResult merged;
  std::vector<Row> all;
  for (auto& r : results) {
    all.insert(all.end(), std::make_move_iterator(r.rows.begin()),
               std::make_move_iterator(r.rows.end()));
  }
  std::stable_sort(all.begin(), all.end(), [](const Row& a, const Row& b) {
    const auto c = a.key.compare(b.key);
    if (c != std::strong_ordering::equal) {
      return c == std::strong_ordering::less;
    }
    return a.write_ts < b.write_ts;
  });
  for (auto& row : all) {
    if (!merged.rows.empty() && merged.rows.back().key == row.key) {
      merged.rows.back() = std::move(row);
    } else {
      merged.rows.push_back(std::move(row));
    }
  }
  return merged;
}

}  // namespace

std::string_view consistency_name(Consistency c) noexcept {
  switch (c) {
    case Consistency::kOne: return "ONE";
    case Consistency::kQuorum: return "QUORUM";
    case Consistency::kAll: return "ALL";
  }
  return "?";
}

Cluster::Cluster(ClusterOptions options)
    : options_(options),
      ring_(options.node_count, options.vnodes, options.ring_seed) {
  HPCLA_CHECK_MSG(options.node_count >= 1, "cluster needs at least one node");
  options_.replication_factor =
      std::min(std::max<std::size_t>(options_.replication_factor, 1),
               options_.node_count);
  if (options_.racks > 0) {
    rack_of_.resize(options_.node_count);
    for (std::size_t i = 0; i < options_.node_count; ++i) {
      rack_of_[i] = static_cast<int>(i % options_.racks);
    }
  }
  nodes_.reserve(options_.node_count);
  for (std::size_t i = 0; i < options_.node_count; ++i) {
    nodes_.push_back(std::make_unique<StorageEngine>(options_.storage));
  }
  alive_ = std::make_unique<std::atomic<bool>[]>(options_.node_count);
  for (std::size_t i = 0; i < options_.node_count; ++i) {
    alive_[i].store(true, std::memory_order_relaxed);
  }
  hint_shards_ = std::make_unique<HintShard[]>(options_.node_count);
  telemetry_ = telemetry::registry().register_collector(
      [this](telemetry::MetricSink& sink) {
        const ClusterMetrics m = metrics();
        sink.counter("cassalite.write.ok", m.writes_ok);
        sink.counter("cassalite.write.unavailable", m.writes_unavailable);
        sink.counter("cassalite.write.retries", m.write_retries);
        sink.counter("cassalite.read.ok", m.reads_ok);
        sink.counter("cassalite.read.unavailable", m.reads_unavailable);
        sink.counter("cassalite.read.retries", m.read_retries);
        sink.counter("cassalite.read.repairs", m.read_repairs);
        sink.counter("cassalite.read.speculative", m.speculative_reads);
        sink.counter("cassalite.read.digest_mismatches", m.digest_mismatches);
        sink.counter("cassalite.replica.timeouts", m.replica_timeouts);
        sink.counter("cassalite.hints.stored", m.hints_stored);
        sink.counter("cassalite.hints.replayed", m.hints_replayed);
        sink.counter("cassalite.hints.expired", m.hints_expired);
        sink.counter("cassalite.hints.overflowed", m.hints_overflowed);
        StorageMetrics s;
        for (const auto& node : nodes_) {
          const StorageMetrics n = node->metrics();
          s.writes += n.writes;
          s.reads += n.reads;
          s.memtable_flushes += n.memtable_flushes;
          s.compactions += n.compactions;
          s.sstables_read += n.sstables_read;
          s.bloom_rejections += n.bloom_rejections;
          s.snapshot_reads += n.snapshot_reads;
          s.compaction_stall_us += n.compaction_stall_us;
        }
        sink.counter("cassalite.storage.writes", s.writes);
        sink.counter("cassalite.storage.reads", s.reads);
        sink.counter("cassalite.storage.memtable_flushes", s.memtable_flushes);
        sink.counter("cassalite.storage.compactions", s.compactions);
        sink.counter("cassalite.storage.sstables_read", s.sstables_read);
        sink.counter("cassalite.storage.bloom_rejections", s.bloom_rejections);
        sink.counter("cassalite.storage.snapshot_reads", s.snapshot_reads);
        sink.counter("cassalite.storage.compaction_stall_us",
                     s.compaction_stall_us);
      });
}

Status Cluster::create_table(TableSchema schema) {
  std::lock_guard lock(ddl_mu_);
  for (const auto& s : schemas_) {
    if (s.name == schema.name) {
      return already_exists("table '" + schema.name + "' already exists");
    }
  }
  schemas_.push_back(std::move(schema));
  return Status::ok();
}

Result<TableSchema> Cluster::schema(const std::string& table) const {
  std::lock_guard lock(ddl_mu_);
  for (const auto& s : schemas_) {
    if (s.name == table) return s;
  }
  return not_found("no such table '" + table + "'");
}

std::vector<TableSchema> Cluster::schemas() const {
  std::lock_guard lock(ddl_mu_);
  return schemas_;
}

// ------------------------------------------------------------ fault wiring

void Cluster::set_fault_injector(FaultInjector* injector) {
  HPCLA_CHECK_MSG(injector == nullptr ||
                      injector->node_count() >= nodes_.size(),
                  "fault injector covers fewer nodes than the cluster");
  injector_ = injector;
  if (clock_ == nullptr && injector != nullptr) clock_ = injector->clock();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->set_fault_injector(injector, i);
  }
}

void Cluster::set_clock(SimClock* clock) { clock_ = clock; }

void Cluster::set_suspicion_source(std::function<bool(NodeIndex)> suspected) {
  suspected_ = std::move(suspected);
}

bool Cluster::replica_up(NodeIndex node) const {
  if (!alive_[node].load(std::memory_order_acquire)) return false;
  return injector_ == nullptr || !injector_->is_down(node);
}

std::int64_t Cluster::now_ms() const noexcept {
  return clock_ != nullptr ? clock_->now_ms() : 0;
}

std::vector<NodeIndex> Cluster::order_replicas(
    const std::vector<NodeIndex>& replicas) const {
  std::vector<NodeIndex> order;
  order.reserve(replicas.size());
  for (NodeIndex r : replicas) {
    if (replica_up(r)) order.push_back(r);
  }
  if (suspected_) {
    // Suspected-but-up nodes go last: they are likelier to be slow or about
    // to fail, so healthy replicas absorb the load first.
    std::stable_partition(order.begin(), order.end(),
                          [&](NodeIndex r) { return !suspected_(r); });
  }
  return order;
}

std::vector<NodeIndex> Cluster::read_order_of(
    const std::string& partition_key) const {
  return order_replicas(replicas_of(partition_key));
}

std::int64_t Cluster::backoff_ms(std::uint64_t salt, std::int64_t prev) const {
  // Decorrelated jitter (Exponential-Backoff-And-Jitter style): uniform in
  // [base, prev*3], capped. The "random" draw is a hash of the op identity,
  // so schedules replay deterministically.
  const std::int64_t base = std::max<std::int64_t>(options_.retry_backoff_base_ms, 1);
  const std::int64_t cap = std::max(options_.retry_backoff_max_ms, base);
  const std::int64_t hi = std::max(base, prev * 3);
  const std::uint64_t h = hash_combine(hash_combine(kBackoffChannel, salt),
                                       static_cast<std::uint64_t>(prev));
  const auto span = static_cast<std::uint64_t>(hi - base + 1);
  return std::min(cap, base + static_cast<std::int64_t>(h % span));
}

// ------------------------------------------------------------------- write

Status Cluster::insert(const std::string& table,
                       const std::string& partition_key, Row row,
                       Consistency consistency) {
  telemetry::Span span("cassalite.write");
  span.tag("table", table);
  span.tag("consistency", consistency_name(consistency));
  row.write_ts = write_clock_.fetch_add(1, std::memory_order_relaxed);
  const auto replicas = replicas_of(partition_key);
  const std::size_t needed = required_acks(consistency, replicas.size());

  WriteCommand cmd{table, partition_key, std::move(row)};
  const std::uint64_t op_salt =
      hash_combine(fnv1a_64(partition_key),
                   static_cast<std::uint64_t>(cmd.row.write_ts));
  std::size_t acks = 0;
  for (NodeIndex r : replicas) {
    if (!replica_up(r)) {
      // Down replica: hint immediately so it converges on return.
      store_hint(r, cmd);
      continue;
    }
    // Bounded retry against a transiently failing replica; every attempt
    // and backoff consumes virtual latency against the write deadline.
    std::int64_t elapsed = 0;
    std::int64_t prev_backoff = options_.retry_backoff_base_ms;
    bool applied = false;
    for (std::size_t attempt = 0; attempt <= options_.max_replica_retries;
         ++attempt) {
      if (injector_ != nullptr) elapsed += injector_->replica_latency_ms(r);
      if (nodes_[r]->try_apply(cmd)) {
        applied = true;
        break;
      }
      if (attempt == options_.max_replica_retries) break;
      const std::int64_t b =
          backoff_ms(hash_combine(op_salt, hash_combine(r, attempt)),
                     prev_backoff);
      prev_backoff = b;
      elapsed += b;
      write_retries_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!applied) {
      // Retries exhausted: hint so the write still converges — even when
      // the overall write comes back UNAVAILABLE, replicas that *did*
      // accept it hold real data, so the miss must be repaired eventually.
      store_hint(r, cmd);
      continue;
    }
    if (elapsed > options_.write_timeout_ms) {
      // Applied, but the ack is too late to count toward the consistency
      // level. No hint needed: the data is on the replica.
      replica_timeouts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ++acks;
  }
  if (acks < needed) {
    writes_unavailable_.fetch_add(1, std::memory_order_relaxed);
    return unavailable("write to '" + partition_key + "' got " +
                       std::to_string(acks) + "/" + std::to_string(needed) +
                       " acks at " + std::string(consistency_name(consistency)));
  }
  writes_ok_.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

// -------------------------------------------------------------------- read

Cluster::ReplicaTry Cluster::run_read_try(NodeIndex replica,
                                          std::int64_t start,
                                          std::uint64_t salt) const {
  ReplicaTry t;
  t.replica = replica;
  t.start = start;
  std::int64_t elapsed = 0;
  std::int64_t prev_backoff = options_.retry_backoff_base_ms;
  bool ok = false;
  for (std::size_t attempt = 0; attempt <= options_.max_replica_retries;
       ++attempt) {
    if (injector_ != nullptr) elapsed += injector_->replica_latency_ms(replica);
    if (injector_ != nullptr && injector_->fail_read(replica)) {
      if (attempt == options_.max_replica_retries) break;
      const std::int64_t b =
          backoff_ms(hash_combine(salt, attempt), prev_backoff);
      prev_backoff = b;
      elapsed += b;
      read_retries_.fetch_add(1, std::memory_order_relaxed);
      ++t.retries;
      continue;
    }
    ok = true;
    break;
  }
  if (ok && elapsed <= options_.read_timeout_ms) {
    t.usable = true;
    t.end = start + elapsed;
  } else {
    t.usable = false;
    t.timed_out = ok;  // responded, but past the soft deadline
    if (t.timed_out) {
      replica_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    // The coordinator learns of the failure at the response (error) or at
    // deadline expiry (timeout), whichever is sooner.
    t.end = start + std::min(elapsed, options_.read_timeout_ms);
  }
  return t;
}

Result<ReadTrace> Cluster::select_traced(const ReadQuery& query,
                                         Consistency consistency) const {
  telemetry::Span span("cassalite.read");
  span.tag("table", query.table);
  span.tag("consistency", consistency_name(consistency));
  const auto replicas = replicas_of(query.partition_key);
  const std::size_t needed = required_acks(consistency, replicas.size());
  const auto candidates = order_replicas(replicas);

  if (candidates.size() < needed) {
    reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
    return unavailable("read of '" + query.partition_key + "' reached " +
                       std::to_string(candidates.size()) + "/" +
                       std::to_string(needed) + " replicas at " +
                       std::string(consistency_name(consistency)));
  }

  // --- virtual-time coordination: launch tries, replace failures, and
  // speculate past slow replicas, all against the deterministic injector.
  const std::uint64_t op_salt = fnv1a_64(query.partition_key);
  std::vector<ReplicaTry> tries;
  std::size_t next = 0;
  for (; next < needed; ++next) {
    tries.push_back(run_read_try(candidates[next], 0,
                                 hash_combine(op_salt, candidates[next])));
  }
  bool speculated = false;
  std::size_t replacements = 0;
  while (next < candidates.size()) {
    std::vector<std::int64_t> usable_ends;
    std::vector<std::int64_t> failure_ends;
    for (const auto& t : tries) {
      (t.usable ? usable_ends : failure_ends).push_back(t.end);
    }
    std::sort(usable_ends.begin(), usable_ends.end());
    std::sort(failure_ends.begin(), failure_ends.end());
    if (usable_ends.size() < needed) {
      // A failed try frees its slot: retry on the next-best replica at the
      // moment the coordinator learned of the failure.
      if (replacements >= failure_ends.size()) break;  // unreachable guard
      const std::int64_t at = failure_ends[replacements++];
      tries.push_back(run_read_try(candidates[next], at,
                                   hash_combine(op_salt, candidates[next])));
      ++next;
      continue;
    }
    if (options_.speculative_retry && !speculated &&
        usable_ends[needed - 1] > options_.speculative_delay_ms) {
      // The level won't be met by the speculation deadline: hedge with one
      // extra replica instead of waiting out the slow one.
      speculated = true;
      speculative_reads_.fetch_add(1, std::memory_order_relaxed);
      tries.push_back(run_read_try(candidates[next],
                                   options_.speculative_delay_ms,
                                   hash_combine(op_salt, candidates[next])));
      tries.back().hedged = true;
      ++next;
      continue;
    }
    break;
  }

  std::vector<const ReplicaTry*> usable;
  bool any_timeout = false;
  for (const auto& t : tries) {
    if (t.usable) usable.push_back(&t);
    any_timeout = any_timeout || t.timed_out;
  }
  if (span.active()) {
    // Per-replica child spans in virtual time, anchored at the read span's
    // start — the chaos harness asserts these land in the slow-op log.
    for (const auto& t : tries) {
      std::vector<std::pair<std::string, std::string>> tags;
      tags.emplace_back("replica", std::to_string(t.replica));
      tags.emplace_back("usable", t.usable ? "true" : "false");
      if (t.timed_out) tags.emplace_back("timed_out", "true");
      if (t.hedged) tags.emplace_back("hedged", "true");
      if (t.retries > 0) {
        tags.emplace_back("retries", std::to_string(t.retries));
      }
      telemetry::emit_span(span.context(), "cassalite.replica",
                           span.start_us() + t.start * 1000,
                           (t.end - t.start) * 1000, std::move(tags));
    }
  }
  if (usable.size() < needed) {
    reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
    const std::string detail =
        "read of '" + query.partition_key + "' completed " +
        std::to_string(usable.size()) + "/" + std::to_string(needed) +
        " replicas at " + std::string(consistency_name(consistency));
    if (any_timeout) return timeout(detail + " before the deadline");
    return unavailable(detail);
  }
  // The read completes when the needed-th fastest usable response arrives.
  std::sort(usable.begin(), usable.end(),
            [](const ReplicaTry* a, const ReplicaTry* b) {
              return a->end < b->end;
            });
  usable.resize(needed);

  // Read the *full* slice (no limit/reverse) from each contributing replica
  // so reconciliation sees comparable row sets; limit applies afterwards.
  ReadQuery full = query;
  full.limit = 0;
  full.reverse = false;
  std::vector<ReadResult> results;
  std::vector<NodeIndex> contacted;
  results.reserve(usable.size());
  for (const ReplicaTry* t : usable) {
    results.push_back(nodes_[t->replica]->read(full));
    contacted.push_back(t->replica);
  }

  ReadTrace trace;
  trace.latency_ms = usable.back()->end;
  trace.replicas_contacted = tries.size();
  trace.speculated = speculated;

  ReadResult merged;
  if (results.size() == 1) {
    merged = std::move(results.front());
  } else {
    // Digest exchange: the fastest replica ships data, the rest ship
    // digests. Identical digests prove identical full row sets, so the
    // merge and repair passes are skipped entirely.
    std::vector<std::uint64_t> digests(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      digests[i] = rows_digest(results[i].rows);
    }
    const bool all_match = std::all_of(
        digests.begin(), digests.end(),
        [&](std::uint64_t d) { return d == digests.front(); });
    if (!all_match) {
      digest_mismatches_.fetch_add(1, std::memory_order_relaxed);
      trace.digest_matched = false;
    }
    if (all_match && options_.digest_reads) {
      merged = std::move(results.front());
    } else {
      merged = merge_lww(results);
      // Read repair: replicas whose digest differs from the merged state
      // get the merged rows re-applied (anti-entropy; bypasses injection).
      const std::uint64_t want = rows_digest(merged.rows);
      for (std::size_t i = 0; i < contacted.size(); ++i) {
        if (digests[i] == want) continue;
        for (const auto& row : merged.rows) {
          nodes_[contacted[i]]->apply(
              WriteCommand{query.table, query.partition_key, row});
        }
        read_repairs_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!all_match && injector_ != nullptr) {
        // Mismatch costs one extra exchange to pull full data.
        trace.latency_ms += injector_->options().base_latency_ms;
      }
    }
  }

  if (query.reverse) std::reverse(merged.rows.begin(), merged.rows.end());
  if (query.limit != 0 && merged.rows.size() > query.limit) {
    merged.rows.resize(query.limit);
    merged.truncated = true;
  }
  reads_ok_.fetch_add(1, std::memory_order_relaxed);
  if (span.active()) {
    span.tag("replicas", static_cast<std::uint64_t>(tries.size()));
    if (speculated) span.tag("hedged", true);
    if (!trace.digest_matched) span.tag("digest_mismatch", true);
    // Virtual latency is the deterministic duration under fault injection;
    // without an injector the wall clock stands.
    if (injector_ != nullptr) span.set_duration_us(trace.latency_ms * 1000);
  }
  trace.result = std::move(merged);
  return trace;
}

Result<ReadResult> Cluster::select(const ReadQuery& query,
                                   Consistency consistency) const {
  auto traced = select_traced(query, consistency);
  if (!traced.is_ok()) return traced.status();
  return std::move(traced->result);
}

Result<Cluster::Page> Cluster::select_page(
    const ReadQuery& query, std::size_t page_size,
    const std::optional<ClusteringKey>& resume_after,
    Consistency consistency) const {
  HPCLA_CHECK_MSG(page_size >= 1, "page_size must be >= 1");
  ReadQuery paged = query;
  paged.reverse = false;
  // Fetch one extra row to learn whether another page exists.
  paged.limit = page_size + 1;
  if (resume_after) {
    // Exclusive lower bound: appending a null part yields the smallest key
    // strictly greater than resume_after (prefixes sort first).
    ClusteringKey after = *resume_after;
    after.parts.emplace_back();
    if (!paged.slice.lower ||
        paged.slice.lower->compare(after) == std::strong_ordering::less) {
      paged.slice.lower = std::move(after);
    }
  }
  auto result = select(paged, consistency);
  if (!result.is_ok()) return result.status();
  Page page;
  page.rows = std::move(result->rows);
  if (page.rows.size() > page_size) {
    page.rows.resize(page_size);
    page.next = page.rows.back().key;
  }
  return page;
}

std::vector<Result<ReadResult>> Cluster::parallel_read(
    ThreadPool& pool, const std::string& table,
    const std::vector<std::string>& partition_keys,
    const ClusteringSlice& slice, Consistency consistency) const {
  std::vector<Result<ReadResult>> results(partition_keys.size(),
                                          Result<ReadResult>(ReadResult{}));
  if (partition_keys.empty()) return results;
  telemetry::Span span("cassalite.parallel_read");
  span.tag("table", table);
  span.tag("keys", static_cast<std::uint64_t>(partition_keys.size()));
  span.tag("consistency", consistency_name(consistency));
  // Pool tasks run on other threads; hand them this span's context.
  const telemetry::TraceContext tctx = telemetry::current();

  if (consistency == Consistency::kOne) {
    // Group keys by the replica a ONE read would contact first (up +
    // unsuspected preferred), so each node's whole batch is served against
    // a single snapshot.
    std::map<NodeIndex, std::vector<std::size_t>> by_node;
    for (std::size_t i = 0; i < partition_keys.size(); ++i) {
      const auto order = read_order_of(partition_keys[i]);
      if (order.empty()) {
        reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
        results[i] = unavailable("read of '" + partition_keys[i] +
                                 "' reached 0/1 replicas at ONE");
      } else {
        by_node[order.front()].push_back(i);
      }
    }
    std::vector<std::pair<NodeIndex, std::vector<std::size_t>>> groups(
        by_node.begin(), by_node.end());
    pool.parallel_for(groups.size(), [&](std::size_t g) {
      const telemetry::ScopedContext tguard(tctx);
      const auto& [node, indices] = groups[g];
      telemetry::Span scan_span("cassalite.scan");
      scan_span.tag("node", static_cast<std::uint64_t>(node));
      scan_span.tag("keys", static_cast<std::uint64_t>(indices.size()));
      // One fault decision per node batch: on transient error or timeout,
      // each key falls back to the resilient per-key path (retry on the
      // remaining replicas).
      if (injector_ != nullptr) {
        bool failed = injector_->fail_read(node);
        if (!failed &&
            injector_->replica_latency_ms(node) > options_.read_timeout_ms) {
          replica_timeouts_.fetch_add(1, std::memory_order_relaxed);
          failed = true;
        }
        if (failed) {
          for (std::size_t i : indices) {
            ReadQuery q;
            q.table = table;
            q.partition_key = partition_keys[i];
            q.slice = slice;
            results[i] = select(q, Consistency::kOne);
          }
          return;
        }
      }
      std::vector<std::string> batch;
      batch.reserve(indices.size());
      for (std::size_t i : indices) batch.push_back(partition_keys[i]);
      std::size_t cursor = 0;
      nodes_[node]->scan_partitions(
          table, batch, slice,
          [&](const std::string&, std::vector<Row> rows) {
            ReadResult r;
            r.rows = std::move(rows);
            results[indices[cursor++]] = std::move(r);
            reads_ok_.fetch_add(1, std::memory_order_relaxed);
          });
    });
    return results;
  }

  // QUORUM/ALL batched digest scan: every key plans its first `needed`
  // preferred replicas; each node then serves *all* of its planned keys
  // against one snapshot. Keys whose digests agree across the quorum
  // complete right there; mismatches and per-node faults fall back to the
  // per-key resilient select (merge + repair + retry + speculation).
  if (!options_.digest_reads) {
    pool.parallel_for(
        partition_keys.size(),
        [&](std::size_t i) {
          const telemetry::ScopedContext tguard(tctx);
          ReadQuery q;
          q.table = table;
          q.partition_key = partition_keys[i];
          q.slice = slice;
          results[i] = select(q, consistency);
        },
        /*grain=*/8);
    return results;
  }

  std::vector<std::vector<NodeIndex>> plan(partition_keys.size());
  std::map<NodeIndex, std::vector<std::size_t>> by_node;
  for (std::size_t i = 0; i < partition_keys.size(); ++i) {
    const auto replicas = replicas_of(partition_keys[i]);
    const std::size_t needed = required_acks(consistency, replicas.size());
    auto order = order_replicas(replicas);
    if (order.size() < needed) {
      reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
      results[i] = unavailable(
          "read of '" + partition_keys[i] + "' reached " +
          std::to_string(order.size()) + "/" + std::to_string(needed) +
          " replicas at " + std::string(consistency_name(consistency)));
      continue;
    }
    order.resize(needed);
    for (NodeIndex r : order) by_node[r].push_back(i);
    plan[i] = std::move(order);
  }

  std::vector<std::pair<NodeIndex, std::vector<std::size_t>>> groups(
      by_node.begin(), by_node.end());
  std::map<NodeIndex, std::size_t> group_of;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of[groups[g].first] = g;
  }
  std::vector<std::vector<std::vector<Row>>> node_rows(groups.size());
  std::vector<char> node_failed(groups.size(), 0);
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    const telemetry::ScopedContext tguard(tctx);
    const auto& [node, indices] = groups[g];
    telemetry::Span scan_span("cassalite.scan");
    scan_span.tag("node", static_cast<std::uint64_t>(node));
    scan_span.tag("keys", static_cast<std::uint64_t>(indices.size()));
    if (injector_ != nullptr) {
      bool failed = injector_->fail_read(node);
      if (!failed &&
          injector_->replica_latency_ms(node) > options_.read_timeout_ms) {
        replica_timeouts_.fetch_add(1, std::memory_order_relaxed);
        failed = true;
      }
      if (failed) {
        node_failed[g] = 1;
        return;
      }
    }
    std::vector<std::string> batch;
    batch.reserve(indices.size());
    for (std::size_t i : indices) batch.push_back(partition_keys[i]);
    node_rows[g].resize(indices.size());
    std::size_t cursor = 0;
    nodes_[node]->scan_partitions(table, batch, slice,
                                  [&](const std::string&, std::vector<Row> rows) {
                                    node_rows[g][cursor++] = std::move(rows);
                                  });
  });

  // Assemble per key; collect fallbacks for a second resilient pass.
  std::vector<std::size_t> fallback;
  for (std::size_t i = 0; i < partition_keys.size(); ++i) {
    if (plan[i].empty()) continue;  // already resolved (unavailable)
    bool degraded = false;
    std::vector<std::vector<Row>*> cells;
    for (NodeIndex r : plan[i]) {
      const std::size_t g = group_of.at(r);
      if (node_failed[g] != 0) {
        degraded = true;
        break;
      }
      const auto& indices = groups[g].second;
      const auto it =
          std::lower_bound(indices.begin(), indices.end(), i);
      cells.push_back(
          &node_rows[g][static_cast<std::size_t>(it - indices.begin())]);
    }
    if (!degraded) {
      const std::uint64_t want = rows_digest(*cells.front());
      for (std::size_t c = 1; c < cells.size() && !degraded; ++c) {
        if (rows_digest(*cells[c]) != want) {
          digest_mismatches_.fetch_add(1, std::memory_order_relaxed);
          degraded = true;
        }
      }
    }
    if (degraded) {
      fallback.push_back(i);
      continue;
    }
    ReadResult r;
    r.rows = std::move(*cells.front());
    results[i] = std::move(r);
    reads_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!fallback.empty()) {
    pool.parallel_for(
        fallback.size(),
        [&](std::size_t f) {
          const telemetry::ScopedContext tguard(tctx);
          ReadQuery q;
          q.table = table;
          q.partition_key = partition_keys[fallback[f]];
          q.slice = slice;
          results[fallback[f]] = select(q, consistency);
        },
        /*grain=*/8);
  }
  return results;
}

// ------------------------------------------------------------------- hints

void Cluster::store_hint(NodeIndex node, const WriteCommand& cmd) {
  const std::int64_t now = now_ms();
  HintShard& shard = hint_shards_[node];
  std::lock_guard lock(shard.mu);
  // Expire from the front first (FIFO order = oldest first), then make
  // room: the freshest hint always wins over the stalest.
  while (!shard.q.empty() && options_.hint_ttl_ms > 0 &&
         shard.q.front().stored_at_ms + options_.hint_ttl_ms <= now) {
    shard.q.pop_front();
    hints_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.max_hints_per_node > 0 &&
      shard.q.size() >= options_.max_hints_per_node) {
    shard.q.pop_front();
    hints_overflowed_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.q.push_back(Hint{cmd, now});
  hints_stored_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Cluster::replay_hints(NodeIndex node) {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  std::deque<Hint> pending;
  {
    std::lock_guard lock(hint_shards_[node].mu);
    pending.swap(hint_shards_[node].q);
  }
  const std::int64_t now = now_ms();
  std::size_t replayed = 0;
  for (const auto& h : pending) {
    if (options_.hint_ttl_ms > 0 &&
        h.stored_at_ms + options_.hint_ttl_ms <= now) {
      hints_expired_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Replay applies directly (anti-entropy): injected transient faults
    // model the request path, not local recovery writes.
    nodes_[node]->apply(h.cmd);
    hints_replayed_.fetch_add(1, std::memory_order_relaxed);
    ++replayed;
  }
  return replayed;
}

std::size_t Cluster::replay_all_hints() {
  std::size_t total = 0;
  for (NodeIndex n = 0; n < nodes_.size(); ++n) {
    if (replica_up(n)) total += replay_hints(n);
  }
  return total;
}

// ---------------------------------------------------------------- topology

void Cluster::kill_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  alive_[node].store(false, std::memory_order_release);
}

std::size_t Cluster::revive_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  alive_[node].store(true, std::memory_order_release);
  return replay_hints(node);
}

void Cluster::kill_rack(int rack) {
  HPCLA_CHECK_MSG(!rack_of_.empty(), "cluster has no rack configuration");
  for (NodeIndex n = 0; n < nodes_.size(); ++n) {
    if (rack_of_[n] == rack) kill_node(n);
  }
}

std::size_t Cluster::crash_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  return nodes_[node]->crash_and_recover();
}

bool Cluster::is_alive(NodeIndex node) const {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  return alive_[node].load(std::memory_order_acquire);
}

std::size_t Cluster::live_node_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    n += alive_[i].load(std::memory_order_acquire) ? 1 : 0;
  }
  return n;
}

std::size_t Cluster::pending_hints() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::lock_guard lock(hint_shards_[i].mu);
    n += hint_shards_[i].q.size();
  }
  return n;
}

const StorageEngine& Cluster::engine(NodeIndex node) const {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  return *nodes_[node];
}

std::vector<std::string> Cluster::primary_partition_keys(
    NodeIndex node, const std::string& table) const {
  HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
  std::vector<std::string> out;
  for (auto& key : nodes_[node]->partition_keys(table)) {
    if (ring_.primary(key) == node) out.push_back(std::move(key));
  }
  return out;
}

std::vector<std::string> Cluster::all_partition_keys(
    const std::string& table) const {
  std::vector<std::string> all;
  for (const auto& node : nodes_) {
    auto keys = node->partition_keys(table);
    all.insert(all.end(), std::make_move_iterator(keys.begin()),
               std::make_move_iterator(keys.end()));
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

ClusterMetrics Cluster::metrics() const {
  ClusterMetrics m;
  m.writes_ok = writes_ok_.load(std::memory_order_relaxed);
  m.writes_unavailable = writes_unavailable_.load(std::memory_order_relaxed);
  m.reads_ok = reads_ok_.load(std::memory_order_relaxed);
  m.reads_unavailable = reads_unavailable_.load(std::memory_order_relaxed);
  m.hints_stored = hints_stored_.load(std::memory_order_relaxed);
  m.hints_replayed = hints_replayed_.load(std::memory_order_relaxed);
  m.read_repairs = read_repairs_.load(std::memory_order_relaxed);
  m.read_retries = read_retries_.load(std::memory_order_relaxed);
  m.write_retries = write_retries_.load(std::memory_order_relaxed);
  m.speculative_reads = speculative_reads_.load(std::memory_order_relaxed);
  m.replica_timeouts = replica_timeouts_.load(std::memory_order_relaxed);
  m.digest_mismatches = digest_mismatches_.load(std::memory_order_relaxed);
  m.hints_expired = hints_expired_.load(std::memory_order_relaxed);
  m.hints_overflowed = hints_overflowed_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace hpcla::cassalite
