#include "cassalite/cluster.hpp"

#include <algorithm>
#include <set>
#include <thread>
#include <utility>

#include "cassalite/merkle.hpp"
#include "common/faultsim.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"

namespace hpcla::cassalite {
namespace {

constexpr std::uint64_t kBackoffChannel = fnv1a_64("cassalite.backoff");

/// LWW merge of full-slice row sets from several replicas: per clustering
/// key the newest write wins. Consumes `results`.
ReadResult merge_lww(std::vector<ReadResult>& results) {
  ReadResult merged;
  std::vector<Row> all;
  for (auto& r : results) {
    all.insert(all.end(), std::make_move_iterator(r.rows.begin()),
               std::make_move_iterator(r.rows.end()));
  }
  std::stable_sort(all.begin(), all.end(), [](const Row& a, const Row& b) {
    const auto c = a.key.compare(b.key);
    if (c != std::strong_ordering::equal) {
      return c == std::strong_ordering::less;
    }
    return a.write_ts < b.write_ts;
  });
  for (auto& row : all) {
    if (!merged.rows.empty() && merged.rows.back().key == row.key) {
      merged.rows.back() = std::move(row);
    } else {
      merged.rows.push_back(std::move(row));
    }
  }
  return merged;
}

}  // namespace

std::string_view consistency_name(Consistency c) noexcept {
  switch (c) {
    case Consistency::kOne: return "ONE";
    case Consistency::kQuorum: return "QUORUM";
    case Consistency::kAll: return "ALL";
  }
  return "?";
}

Cluster::Cluster(ClusterOptions options) : options_(options) {
  HPCLA_CHECK_MSG(options.node_count >= 1, "cluster needs at least one node");
  options_.replication_factor =
      std::min(std::max<std::size_t>(options_.replication_factor, 1),
               options_.node_count);
  capacity_ = options_.max_node_count != 0 ? options_.max_node_count
                                           : options_.node_count + 16;
  HPCLA_CHECK_MSG(capacity_ >= options_.node_count,
                  "max_node_count below initial node_count");
  rack_aware_ = options_.racks > 0;
  rack_of_.resize(capacity_, 0);
  if (rack_aware_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      rack_of_[i] = static_cast<int>(i % options_.racks);
    }
  }
  nodes_ = std::make_unique<std::unique_ptr<StorageEngine>[]>(capacity_);
  alive_ = std::make_unique<std::atomic<bool>[]>(capacity_);
  streams_served_ = std::make_unique<std::atomic<std::uint64_t>[]>(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    alive_[i].store(true, std::memory_order_relaxed);
    streams_served_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < options_.node_count; ++i) {
    nodes_[i] = std::make_unique<StorageEngine>(options_.storage);
  }
  node_slots_.store(options_.node_count, std::memory_order_release);
  hint_shards_ = std::make_unique<HintShard[]>(capacity_);

  auto v0 = std::make_shared<TopologyVersion>();
  v0->epoch = 1;
  v0->committed = std::make_shared<const TokenRing>(
      options_.node_count, options_.vnodes, options_.ring_seed);
  topo_history_.push_back(v0);
  topo_.store(v0.get(), std::memory_order_release);

  telemetry_ = telemetry::registry().register_collector(
      [this](telemetry::MetricSink& sink) {
        const ClusterMetrics m = metrics();
        sink.counter("cassalite.write.ok", m.writes_ok);
        sink.counter("cassalite.write.unavailable", m.writes_unavailable);
        sink.counter("cassalite.write.retries", m.write_retries);
        sink.counter("cassalite.write.pending_range", m.pending_range_writes);
        sink.counter("cassalite.read.ok", m.reads_ok);
        sink.counter("cassalite.read.unavailable", m.reads_unavailable);
        sink.counter("cassalite.read.retries", m.read_retries);
        sink.counter("cassalite.read.repairs", m.read_repairs);
        sink.counter("cassalite.read.speculative", m.speculative_reads);
        sink.counter("cassalite.read.digest_mismatches", m.digest_mismatches);
        sink.counter("cassalite.replica.timeouts", m.replica_timeouts);
        sink.counter("cassalite.hints.stored", m.hints_stored);
        sink.counter("cassalite.hints.replayed", m.hints_replayed);
        sink.counter("cassalite.hints.expired", m.hints_expired);
        sink.counter("cassalite.hints.overflowed", m.hints_overflowed);
        sink.counter("cassalite.topology.changes", m.topology_changes);
        sink.counter("cassalite.topology.epoch", ring_epoch());
        sink.counter("cassalite.stream.rows_sent", m.stream_rows_sent);
        sink.counter("cassalite.repair.scheduled", m.repairs_scheduled);
        sink.counter("cassalite.repair.ranges_streamed", m.ranges_streamed);
        sink.counter("cassalite.repair.rows_sent", m.repair_rows_sent);
        StorageMetrics s;
        const std::size_t slots = node_count();
        for (std::size_t i = 0; i < slots; ++i) {
          const StorageMetrics n = nodes_[i]->metrics();
          s.writes += n.writes;
          s.reads += n.reads;
          s.memtable_flushes += n.memtable_flushes;
          s.compactions += n.compactions;
          s.sstables_read += n.sstables_read;
          s.bloom_rejections += n.bloom_rejections;
          s.snapshot_reads += n.snapshot_reads;
          s.compaction_stall_us += n.compaction_stall_us;
        }
        sink.counter("cassalite.storage.writes", s.writes);
        sink.counter("cassalite.storage.reads", s.reads);
        sink.counter("cassalite.storage.memtable_flushes", s.memtable_flushes);
        sink.counter("cassalite.storage.compactions", s.compactions);
        sink.counter("cassalite.storage.sstables_read", s.sstables_read);
        sink.counter("cassalite.storage.bloom_rejections", s.bloom_rejections);
        sink.counter("cassalite.storage.snapshot_reads", s.snapshot_reads);
        sink.counter("cassalite.storage.compaction_stall_us",
                     s.compaction_stall_us);
      });
}

Status Cluster::create_table(TableSchema schema) {
  std::lock_guard lock(ddl_mu_);
  for (const auto& s : schemas_) {
    if (s.name == schema.name) {
      return already_exists("table '" + schema.name + "' already exists");
    }
  }
  schemas_.push_back(std::move(schema));
  return Status::ok();
}

Result<TableSchema> Cluster::schema(const std::string& table) const {
  std::lock_guard lock(ddl_mu_);
  for (const auto& s : schemas_) {
    if (s.name == table) return s;
  }
  return not_found("no such table '" + table + "'");
}

std::vector<TableSchema> Cluster::schemas() const {
  std::lock_guard lock(ddl_mu_);
  return schemas_;
}

// ------------------------------------------------------------ fault wiring

void Cluster::set_fault_injector(FaultInjector* injector) {
  injector_ = injector;
  if (clock_ == nullptr && injector != nullptr) clock_ = injector->clock();
  const std::size_t slots = node_count();
  for (std::size_t i = 0; i < slots; ++i) {
    nodes_[i]->set_fault_injector(injector, i);
  }
}

void Cluster::set_clock(SimClock* clock) { clock_ = clock; }

void Cluster::set_suspicion_source(std::function<bool(NodeIndex)> suspected) {
  suspected_ = std::move(suspected);
}

void Cluster::set_suspicion_refresher(std::function<void()> refresher) {
  suspicion_refresher_ = std::move(refresher);
}

void Cluster::set_topology_hook(std::function<void(TopologyStage)> hook) {
  topology_hook_ = std::move(hook);
}

bool Cluster::replica_up(NodeIndex node) const {
  if (!alive_[node].load(std::memory_order_acquire)) return false;
  return injector_ == nullptr || !injector_->is_down(node);
}

bool Cluster::reachable(NodeIndex node) const {
  if (injector_ == nullptr) return true;
  const std::size_t coord = options_.coordinator_node;
  // A usable replica needs the round trip: request out AND response back.
  if (injector_->link_down(coord, node)) return false;
  if (injector_->link_down(node, coord)) return false;
  return true;
}

std::int64_t Cluster::now_ms() const noexcept {
  return clock_ != nullptr ? clock_->now_ms() : 0;
}

std::vector<NodeIndex> Cluster::order_replicas(
    const std::vector<NodeIndex>& replicas) const {
  std::vector<NodeIndex> order;
  order.reserve(replicas.size());
  for (NodeIndex r : replicas) {
    if (replica_up(r) && reachable(r)) order.push_back(r);
  }
  if (suspected_) {
    // Suspected-but-up nodes go last: they are likelier to be slow or about
    // to fail, so healthy replicas absorb the load first.
    std::stable_partition(order.begin(), order.end(),
                          [&](NodeIndex r) { return !suspected_(r); });
  }
  return order;
}

std::vector<NodeIndex> Cluster::read_order_of(
    const std::string& partition_key) const {
  return order_replicas(replicas_of(partition_key));
}

std::int64_t Cluster::backoff_ms(std::uint64_t salt, std::int64_t prev) const {
  // Decorrelated jitter (Exponential-Backoff-And-Jitter style): uniform in
  // [base, prev*3], capped. The "random" draw is a hash of the op identity,
  // so schedules replay deterministically.
  const std::int64_t base = std::max<std::int64_t>(options_.retry_backoff_base_ms, 1);
  const std::int64_t cap = std::max(options_.retry_backoff_max_ms, base);
  const std::int64_t hi = std::max(base, prev * 3);
  const std::uint64_t h = hash_combine(hash_combine(kBackoffChannel, salt),
                                       static_cast<std::uint64_t>(prev));
  const auto span = static_cast<std::uint64_t>(hi - base + 1);
  return std::min(cap, base + static_cast<std::int64_t>(h % span));
}

// -------------------------------------------------------- topology versions

const TokenRing& Cluster::ring() const noexcept { return *topo()->committed; }

std::uint64_t Cluster::ring_epoch() const noexcept { return topo()->epoch; }

bool Cluster::movement_in_progress() const noexcept {
  return topo()->pending != nullptr;
}

const Cluster::TopologyVersion* Cluster::enter_write() const {
  const TopologyVersion* v = topo_.load(std::memory_order_acquire);
  for (;;) {
    v->inflight.fetch_add(1, std::memory_order_seq_cst);
    // Re-check after announcing ourselves: if a new version was published
    // in between, the drain may already have sampled our version's count
    // as zero — retry on the fresh version instead of routing stale.
    const TopologyVersion* cur = topo_.load(std::memory_order_seq_cst);
    if (cur == v) return v;
    v->inflight.fetch_sub(1, std::memory_order_relaxed);
    v = cur;
  }
}

void Cluster::leave_write(const TopologyVersion* v) const {
  v->inflight.fetch_sub(1, std::memory_order_release);
}

void Cluster::publish_and_drain(std::shared_ptr<TopologyVersion> next) {
  const TopologyVersion* prev = topo_.load(std::memory_order_relaxed);
  topo_history_.push_back(next);  // pins the version for the cluster's life
  topo_.store(next.get(), std::memory_order_seq_cst);
  if (prev == nullptr) return;
  // RCU grace period: wait until every writer that routed against the
  // superseded version has finished, so the streaming scan below (or the
  // committed ring above) observes all of their effects.
  while (prev->inflight.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
}

std::uint64_t Cluster::streams_served(NodeIndex node) const {
  HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
  return streams_served_[node].load(std::memory_order_relaxed);
}

Status Cluster::stream_moved_ranges(const std::vector<MovedRange>& moved) {
  if (moved.empty()) return Status::ok();
  // Satellite fix: refresh the failure detector *now*, then never stream
  // from a node it suspects — a stale verdict must not pick a source that
  // is already failing, and a fresh one must veto it outright.
  if (suspicion_refresher_) suspicion_refresher_();
  const std::vector<std::string> tables = all_table_names();
  for (const MovedRange& m : moved) {
    if (m.gained.empty()) continue;
    const std::size_t quorum = m.old_owners.size() / 2 + 1;
    std::vector<NodeIndex> sources;
    for (NodeIndex s : m.old_owners) {
      if (!replica_up(s) || !reachable(s)) continue;
      if (suspected_ && suspected_(s)) continue;
      sources.push_back(s);
    }
    if (sources.size() < quorum) {
      return unavailable(
          "range streaming reached " + std::to_string(sources.size()) + "/" +
          std::to_string(quorum) + " healthy sources; movement aborted");
    }
    // Quorum-merge streaming: any old-owner quorum intersects the ack set
    // of every write acked before the movement, so the gained replicas
    // receive every acked write even if one source is stale.
    sources.resize(quorum);
    ranges_streamed_.fetch_add(1, std::memory_order_relaxed);
    for (NodeIndex s : sources) {
      streams_served_[s].fetch_add(1, std::memory_order_relaxed);
    }
    for (const std::string& table : tables) {
      // Union of in-range partition keys across the sources (sorted for
      // deterministic replay).
      std::map<std::string, char> keys;
      for (NodeIndex s : sources) {
        for (auto& key : nodes_[s]->partition_keys(table)) {
          if (m.range.contains(token_for_key(key))) {
            keys.emplace(std::move(key), 0);
          }
        }
      }
      for (const auto& [key, unused] : keys) {
        std::vector<ReadResult> results(sources.size());
        for (std::size_t i = 0; i < sources.size(); ++i) {
          results[i].rows = read_partition(sources[i], table, key);
        }
        const ReadResult merged = merge_lww(results);
        for (NodeIndex g : m.gained) {
          for (const Row& row : merged.rows) {
            nodes_[g]->apply(WriteCommand{table, key, row});
            stream_rows_sent_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
  }
  return Status::ok();
}

Status Cluster::apply_topology_change_locked(
    std::shared_ptr<const TokenRing> next_ring) {
  telemetry::Span span("cassalite.topology");
  const TopologyVersion* cur = topo();
  std::shared_ptr<const TokenRing> old_ring = topo_history_.back()->committed;
  std::vector<MovedRange> moved =
      ring_diff(*old_ring, *next_ring, options_.replication_factor,
                rack_aware_ ? rack_of_ : std::vector<int>{});
  span.tag("moved_ranges", static_cast<std::uint64_t>(moved.size()));

  // Stage 1 — pending publish: writers start dual-routing to old+new
  // owners; the drain guarantees no writer is still routing old-only when
  // the streaming scan starts.
  auto pending = std::make_shared<TopologyVersion>();
  pending->epoch = cur->epoch + 1;
  pending->committed = old_ring;
  pending->pending = next_ring;
  pending->moved = std::move(moved);
  publish_and_drain(pending);
  if (topology_hook_) topology_hook_(TopologyStage::kPendingPublished);

  // Stage 2 — stream moved ranges to their gained owners.
  Status streamed = stream_moved_ranges(pending->moved);
  if (topology_hook_) topology_hook_(TopologyStage::kStreamed);

  // Stage 3 — commit the new ring, or abort back to the old one. Either
  // way the pending version drains so no dual-router straddles the switch.
  auto final_version = std::make_shared<TopologyVersion>();
  final_version->epoch = pending->epoch + 1;
  final_version->committed = streamed.is_ok() ? next_ring : old_ring;
  publish_and_drain(final_version);
  if (streamed.is_ok()) {
    topology_changes_.fetch_add(1, std::memory_order_relaxed);
    if (topology_hook_) topology_hook_(TopologyStage::kCommitted);
    span.tag("committed", true);
  }
  return streamed;
}

Result<NodeIndex> Cluster::add_node(std::size_t vnodes, int rack,
                                    std::uint64_t token_seed) {
  std::lock_guard lock(topo_mu_);
  const std::size_t idx = node_slots_.load(std::memory_order_relaxed);
  if (idx >= capacity_) {
    return resource_exhausted("cluster is at max_node_count (" +
                              std::to_string(capacity_) + ")");
  }
  // Build the slot before any ring referencing it can publish.
  nodes_[idx] = std::make_unique<StorageEngine>(options_.storage);
  if (injector_ != nullptr) nodes_[idx]->set_fault_injector(injector_, idx);
  alive_[idx].store(true, std::memory_order_release);
  if (rack_aware_ && rack >= 0) rack_of_[idx] = rack;
  node_slots_.store(idx + 1, std::memory_order_release);

  auto next = std::make_shared<const TokenRing>(topo()->committed->with_node(
      idx, vnodes != 0 ? vnodes : options_.vnodes, token_seed));
  Status s = apply_topology_change_locked(next);
  if (!s.is_ok()) return s;  // slot stays allocated but is not a member
  return idx;
}

Status Cluster::remove_node(NodeIndex node) {
  std::lock_guard lock(topo_mu_);
  const std::shared_ptr<const TokenRing> cur = topo_history_.back()->committed;
  if (!cur->is_member(node)) {
    return failed_precondition("node " + std::to_string(node) +
                               " is not a ring member");
  }
  if (cur->node_count() - 1 < options_.replication_factor) {
    return failed_precondition(
        "removing node " + std::to_string(node) +
        " would leave fewer members than the replication factor");
  }
  auto next = std::make_shared<const TokenRing>(cur->without_node(node));
  return apply_topology_change_locked(next);
}

Status Cluster::rebalance(std::uint64_t token_seed) {
  std::lock_guard lock(topo_mu_);
  auto next = std::make_shared<const TokenRing>(
      topo_history_.back()->committed->reshuffled(token_seed));
  return apply_topology_change_locked(next);
}

// ------------------------------------------------------------------- write

Status Cluster::insert(const std::string& table,
                       const std::string& partition_key, Row row,
                       Consistency consistency) {
  telemetry::Span span("cassalite.write");
  span.tag("table", table);
  span.tag("consistency", consistency_name(consistency));
  row.write_ts = write_clock_.fetch_add(1, std::memory_order_relaxed);

  const TopologyVersion* tv = enter_write();
  const auto natural = replicas_in(*tv->committed, partition_key);
  std::size_t needed = required_acks(consistency, natural.size());
  std::vector<NodeIndex> targets = natural;
  if (tv->pending != nullptr) {
    // Pending-range write: also route to the new ring's extra owners, and
    // require *all* of them to ack. Guarantees every write acked during
    // the movement already sits on enough of the post-commit replica set
    // that any post-commit quorum intersects it.
    bool extra = false;
    for (NodeIndex r : replicas_in(*tv->pending, partition_key)) {
      if (std::find(targets.begin(), targets.end(), r) == targets.end()) {
        targets.push_back(r);
        ++needed;
        extra = true;
      }
    }
    if (extra) pending_range_writes_.fetch_add(1, std::memory_order_relaxed);
  }

  WriteCommand cmd{table, partition_key, std::move(row)};
  const std::uint64_t op_salt =
      hash_combine(fnv1a_64(partition_key),
                   static_cast<std::uint64_t>(cmd.row.write_ts));
  const std::size_t coord = options_.coordinator_node;
  std::size_t acks = 0;
  for (NodeIndex r : targets) {
    if (!replica_up(r)) {
      // Down replica: hint immediately so it converges on return.
      store_hint(r, cmd);
      continue;
    }
    if (injector_ != nullptr && injector_->link_down(coord, r)) {
      // Outbound partition: the mutation never reaches the replica.
      store_hint(r, cmd);
      continue;
    }
    // Bounded retry against a transiently failing replica; every attempt
    // and backoff consumes virtual latency against the write deadline.
    std::int64_t elapsed = 0;
    std::int64_t prev_backoff = options_.retry_backoff_base_ms;
    bool applied = false;
    for (std::size_t attempt = 0; attempt <= options_.max_replica_retries;
         ++attempt) {
      if (injector_ != nullptr) elapsed += injector_->replica_latency_ms(r);
      if (nodes_[r]->try_apply(cmd)) {
        applied = true;
        break;
      }
      if (attempt == options_.max_replica_retries) break;
      const std::int64_t b =
          backoff_ms(hash_combine(op_salt, hash_combine(r, attempt)),
                     prev_backoff);
      prev_backoff = b;
      elapsed += b;
      write_retries_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!applied) {
      // Retries exhausted: hint so the write still converges — even when
      // the overall write comes back UNAVAILABLE, replicas that *did*
      // accept it hold real data, so the miss must be repaired eventually.
      store_hint(r, cmd);
      continue;
    }
    if (injector_ != nullptr && injector_->link_down(r, coord)) {
      // Asymmetric partition on the return path: the replica applied the
      // mutation but the ack is lost — no consistency-level credit. Hint
      // anyway; the LWW re-apply on replay is harmless.
      store_hint(r, cmd);
      continue;
    }
    if (elapsed > options_.write_timeout_ms) {
      // Applied, but the ack is too late to count toward the consistency
      // level. No hint needed: the data is on the replica.
      replica_timeouts_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ++acks;
  }
  leave_write(tv);
  if (acks < needed) {
    writes_unavailable_.fetch_add(1, std::memory_order_relaxed);
    return unavailable("write to '" + partition_key + "' got " +
                       std::to_string(acks) + "/" + std::to_string(needed) +
                       " acks at " + std::string(consistency_name(consistency)));
  }
  writes_ok_.fetch_add(1, std::memory_order_relaxed);
  return Status::ok();
}

// -------------------------------------------------------------------- read

Cluster::ReplicaTry Cluster::run_read_try(NodeIndex replica,
                                          std::int64_t start,
                                          std::uint64_t salt) const {
  ReplicaTry t;
  t.replica = replica;
  t.start = start;
  std::int64_t elapsed = 0;
  std::int64_t prev_backoff = options_.retry_backoff_base_ms;
  bool ok = false;
  for (std::size_t attempt = 0; attempt <= options_.max_replica_retries;
       ++attempt) {
    if (injector_ != nullptr) elapsed += injector_->replica_latency_ms(replica);
    if (injector_ != nullptr && injector_->fail_read(replica)) {
      if (attempt == options_.max_replica_retries) break;
      const std::int64_t b =
          backoff_ms(hash_combine(salt, attempt), prev_backoff);
      prev_backoff = b;
      elapsed += b;
      read_retries_.fetch_add(1, std::memory_order_relaxed);
      ++t.retries;
      continue;
    }
    ok = true;
    break;
  }
  if (ok && elapsed <= options_.read_timeout_ms) {
    t.usable = true;
    t.end = start + elapsed;
  } else {
    t.usable = false;
    t.timed_out = ok;  // responded, but past the soft deadline
    if (t.timed_out) {
      replica_timeouts_.fetch_add(1, std::memory_order_relaxed);
    }
    // The coordinator learns of the failure at the response (error) or at
    // deadline expiry (timeout), whichever is sooner.
    t.end = start + std::min(elapsed, options_.read_timeout_ms);
  }
  return t;
}

std::vector<Row> Cluster::read_partition(NodeIndex node,
                                         const std::string& table,
                                         const std::string& key) const {
  ReadQuery q;
  q.table = table;
  q.partition_key = key;
  return nodes_[node]->read(q).rows;
}

Result<ReadTrace> Cluster::select_traced(const ReadQuery& query,
                                         Consistency consistency) const {
  telemetry::Span span("cassalite.read");
  span.tag("table", query.table);
  span.tag("consistency", consistency_name(consistency));
  const auto replicas = replicas_of(query.partition_key);
  const std::size_t needed = required_acks(consistency, replicas.size());
  const auto candidates = order_replicas(replicas);

  if (candidates.size() < needed) {
    reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
    return unavailable("read of '" + query.partition_key + "' reached " +
                       std::to_string(candidates.size()) + "/" +
                       std::to_string(needed) + " replicas at " +
                       std::string(consistency_name(consistency)));
  }

  // --- virtual-time coordination: launch tries, replace failures, and
  // speculate past slow replicas, all against the deterministic injector.
  const std::uint64_t op_salt = fnv1a_64(query.partition_key);
  std::vector<ReplicaTry> tries;
  std::size_t next = 0;
  for (; next < needed; ++next) {
    tries.push_back(run_read_try(candidates[next], 0,
                                 hash_combine(op_salt, candidates[next])));
  }
  bool speculated = false;
  std::size_t replacements = 0;
  while (next < candidates.size()) {
    std::vector<std::int64_t> usable_ends;
    std::vector<std::int64_t> failure_ends;
    for (const auto& t : tries) {
      (t.usable ? usable_ends : failure_ends).push_back(t.end);
    }
    std::sort(usable_ends.begin(), usable_ends.end());
    std::sort(failure_ends.begin(), failure_ends.end());
    if (usable_ends.size() < needed) {
      // A failed try frees its slot: retry on the next-best replica at the
      // moment the coordinator learned of the failure.
      if (replacements >= failure_ends.size()) break;  // unreachable guard
      const std::int64_t at = failure_ends[replacements++];
      tries.push_back(run_read_try(candidates[next], at,
                                   hash_combine(op_salt, candidates[next])));
      ++next;
      continue;
    }
    if (options_.speculative_retry && !speculated &&
        usable_ends[needed - 1] > options_.speculative_delay_ms) {
      // The level won't be met by the speculation deadline: hedge with one
      // extra replica instead of waiting out the slow one.
      speculated = true;
      speculative_reads_.fetch_add(1, std::memory_order_relaxed);
      tries.push_back(run_read_try(candidates[next],
                                   options_.speculative_delay_ms,
                                   hash_combine(op_salt, candidates[next])));
      tries.back().hedged = true;
      ++next;
      continue;
    }
    break;
  }

  std::vector<const ReplicaTry*> usable;
  bool any_timeout = false;
  for (const auto& t : tries) {
    if (t.usable) usable.push_back(&t);
    any_timeout = any_timeout || t.timed_out;
  }
  if (span.active()) {
    // Per-replica child spans in virtual time, anchored at the read span's
    // start — the chaos harness asserts these land in the slow-op log.
    for (const auto& t : tries) {
      std::vector<std::pair<std::string, std::string>> tags;
      tags.emplace_back("replica", std::to_string(t.replica));
      tags.emplace_back("usable", t.usable ? "true" : "false");
      if (t.timed_out) tags.emplace_back("timed_out", "true");
      if (t.hedged) tags.emplace_back("hedged", "true");
      if (t.retries > 0) {
        tags.emplace_back("retries", std::to_string(t.retries));
      }
      telemetry::emit_span(span.context(), "cassalite.replica",
                           span.start_us() + t.start * 1000,
                           (t.end - t.start) * 1000, std::move(tags));
    }
  }
  if (usable.size() < needed) {
    reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
    const std::string detail =
        "read of '" + query.partition_key + "' completed " +
        std::to_string(usable.size()) + "/" + std::to_string(needed) +
        " replicas at " + std::string(consistency_name(consistency));
    if (any_timeout) return timeout(detail + " before the deadline");
    return unavailable(detail);
  }
  // The read completes when the needed-th fastest usable response arrives.
  std::sort(usable.begin(), usable.end(),
            [](const ReplicaTry* a, const ReplicaTry* b) {
              return a->end < b->end;
            });
  usable.resize(needed);

  // Read the *full* slice (no limit/reverse) from each contributing replica
  // so reconciliation sees comparable row sets; limit applies afterwards.
  ReadQuery full = query;
  full.limit = 0;
  full.reverse = false;
  std::vector<ReadResult> results;
  std::vector<NodeIndex> contacted;
  results.reserve(usable.size());
  for (const ReplicaTry* t : usable) {
    results.push_back(nodes_[t->replica]->read(full));
    contacted.push_back(t->replica);
  }

  ReadTrace trace;
  trace.latency_ms = usable.back()->end;
  trace.replicas_contacted = tries.size();
  trace.speculated = speculated;

  ReadResult merged;
  if (results.size() == 1) {
    merged = std::move(results.front());
  } else {
    // Digest exchange: the fastest replica ships data, the rest ship
    // digests. Identical digests prove identical full row sets, so the
    // merge and repair passes are skipped entirely.
    std::vector<std::uint64_t> digests(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      digests[i] = rows_digest(results[i].rows);
    }
    const bool all_match = std::all_of(
        digests.begin(), digests.end(),
        [&](std::uint64_t d) { return d == digests.front(); });
    if (!all_match) {
      digest_mismatches_.fetch_add(1, std::memory_order_relaxed);
      trace.digest_matched = false;
    }
    if (all_match && options_.digest_reads) {
      merged = std::move(results.front());
    } else {
      merged = merge_lww(results);
      // Read repair: replicas whose digest differs from the merged state
      // get the merged rows re-applied (anti-entropy; bypasses injection).
      const std::uint64_t want = rows_digest(merged.rows);
      for (std::size_t i = 0; i < contacted.size(); ++i) {
        if (digests[i] == want) continue;
        for (const auto& row : merged.rows) {
          nodes_[contacted[i]]->apply(
              WriteCommand{query.table, query.partition_key, row});
        }
        read_repairs_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!all_match && injector_ != nullptr) {
        // Mismatch costs one extra exchange to pull full data.
        trace.latency_ms += injector_->options().base_latency_ms;
      }
    }
  }

  if (query.reverse) std::reverse(merged.rows.begin(), merged.rows.end());
  if (query.limit != 0 && merged.rows.size() > query.limit) {
    merged.rows.resize(query.limit);
    merged.truncated = true;
  }
  reads_ok_.fetch_add(1, std::memory_order_relaxed);
  if (span.active()) {
    span.tag("replicas", static_cast<std::uint64_t>(tries.size()));
    if (speculated) span.tag("hedged", true);
    if (!trace.digest_matched) span.tag("digest_mismatch", true);
    // Virtual latency is the deterministic duration under fault injection;
    // without an injector the wall clock stands.
    if (injector_ != nullptr) span.set_duration_us(trace.latency_ms * 1000);
  }
  trace.result = std::move(merged);
  return trace;
}

Result<ReadResult> Cluster::select(const ReadQuery& query,
                                   Consistency consistency) const {
  auto traced = select_traced(query, consistency);
  if (!traced.is_ok()) return traced.status();
  return std::move(traced->result);
}

Result<Cluster::Page> Cluster::select_page(
    const ReadQuery& query, std::size_t page_size,
    const std::optional<ClusteringKey>& resume_after,
    Consistency consistency) const {
  HPCLA_CHECK_MSG(page_size >= 1, "page_size must be >= 1");
  ReadQuery paged = query;
  paged.reverse = false;
  // Fetch one extra row to learn whether another page exists.
  paged.limit = page_size + 1;
  if (resume_after) {
    // Exclusive lower bound: appending a null part yields the smallest key
    // strictly greater than resume_after (prefixes sort first).
    ClusteringKey after = *resume_after;
    after.parts.emplace_back();
    if (!paged.slice.lower ||
        paged.slice.lower->compare(after) == std::strong_ordering::less) {
      paged.slice.lower = std::move(after);
    }
  }
  auto result = select(paged, consistency);
  if (!result.is_ok()) return result.status();
  Page page;
  page.rows = std::move(result->rows);
  if (page.rows.size() > page_size) {
    page.rows.resize(page_size);
    page.next = page.rows.back().key;
  }
  return page;
}

std::vector<Result<ReadResult>> Cluster::parallel_read(
    ThreadPool& pool, const std::string& table,
    const std::vector<std::string>& partition_keys,
    const ClusteringSlice& slice, Consistency consistency) const {
  std::vector<Result<ReadResult>> results(partition_keys.size(),
                                          Result<ReadResult>(ReadResult{}));
  if (partition_keys.empty()) return results;
  telemetry::Span span("cassalite.parallel_read");
  span.tag("table", table);
  span.tag("keys", static_cast<std::uint64_t>(partition_keys.size()));
  span.tag("consistency", consistency_name(consistency));
  // Pool tasks run on other threads; hand them this span's context.
  const telemetry::TraceContext tctx = telemetry::current();

  if (consistency == Consistency::kOne) {
    // Group keys by the replica a ONE read would contact first (up +
    // unsuspected preferred), so each node's whole batch is served against
    // a single snapshot.
    std::map<NodeIndex, std::vector<std::size_t>> by_node;
    for (std::size_t i = 0; i < partition_keys.size(); ++i) {
      const auto order = read_order_of(partition_keys[i]);
      if (order.empty()) {
        reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
        results[i] = unavailable("read of '" + partition_keys[i] +
                                 "' reached 0/1 replicas at ONE");
      } else {
        by_node[order.front()].push_back(i);
      }
    }
    std::vector<std::pair<NodeIndex, std::vector<std::size_t>>> groups(
        by_node.begin(), by_node.end());
    pool.parallel_for(groups.size(), [&](std::size_t g) {
      const telemetry::ScopedContext tguard(tctx);
      const auto& [node, indices] = groups[g];
      telemetry::Span scan_span("cassalite.scan");
      scan_span.tag("node", static_cast<std::uint64_t>(node));
      scan_span.tag("keys", static_cast<std::uint64_t>(indices.size()));
      // One fault decision per node batch: on transient error or timeout,
      // each key falls back to the resilient per-key path (retry on the
      // remaining replicas).
      if (injector_ != nullptr) {
        bool failed = injector_->fail_read(node);
        if (!failed &&
            injector_->replica_latency_ms(node) > options_.read_timeout_ms) {
          replica_timeouts_.fetch_add(1, std::memory_order_relaxed);
          failed = true;
        }
        if (failed) {
          for (std::size_t i : indices) {
            ReadQuery q;
            q.table = table;
            q.partition_key = partition_keys[i];
            q.slice = slice;
            results[i] = select(q, Consistency::kOne);
          }
          return;
        }
      }
      std::vector<std::string> batch;
      batch.reserve(indices.size());
      for (std::size_t i : indices) batch.push_back(partition_keys[i]);
      std::size_t cursor = 0;
      nodes_[node]->scan_partitions(
          table, batch, slice,
          [&](const std::string&, std::vector<Row> rows) {
            ReadResult r;
            r.rows = std::move(rows);
            results[indices[cursor++]] = std::move(r);
            reads_ok_.fetch_add(1, std::memory_order_relaxed);
          });
    });
    return results;
  }

  // QUORUM/ALL batched digest scan: every key plans its first `needed`
  // preferred replicas; each node then serves *all* of its planned keys
  // against one snapshot. Keys whose digests agree across the quorum
  // complete right there; mismatches and per-node faults fall back to the
  // per-key resilient select (merge + repair + retry + speculation).
  if (!options_.digest_reads) {
    pool.parallel_for(
        partition_keys.size(),
        [&](std::size_t i) {
          const telemetry::ScopedContext tguard(tctx);
          ReadQuery q;
          q.table = table;
          q.partition_key = partition_keys[i];
          q.slice = slice;
          results[i] = select(q, consistency);
        },
        /*grain=*/8);
    return results;
  }

  std::vector<std::vector<NodeIndex>> plan(partition_keys.size());
  std::map<NodeIndex, std::vector<std::size_t>> by_node;
  for (std::size_t i = 0; i < partition_keys.size(); ++i) {
    const auto replicas = replicas_of(partition_keys[i]);
    const std::size_t needed = required_acks(consistency, replicas.size());
    auto order = order_replicas(replicas);
    if (order.size() < needed) {
      reads_unavailable_.fetch_add(1, std::memory_order_relaxed);
      results[i] = unavailable(
          "read of '" + partition_keys[i] + "' reached " +
          std::to_string(order.size()) + "/" + std::to_string(needed) +
          " replicas at " + std::string(consistency_name(consistency)));
      continue;
    }
    order.resize(needed);
    for (NodeIndex r : order) by_node[r].push_back(i);
    plan[i] = std::move(order);
  }

  std::vector<std::pair<NodeIndex, std::vector<std::size_t>>> groups(
      by_node.begin(), by_node.end());
  std::map<NodeIndex, std::size_t> group_of;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    group_of[groups[g].first] = g;
  }
  std::vector<std::vector<std::vector<Row>>> node_rows(groups.size());
  std::vector<char> node_failed(groups.size(), 0);
  pool.parallel_for(groups.size(), [&](std::size_t g) {
    const telemetry::ScopedContext tguard(tctx);
    const auto& [node, indices] = groups[g];
    telemetry::Span scan_span("cassalite.scan");
    scan_span.tag("node", static_cast<std::uint64_t>(node));
    scan_span.tag("keys", static_cast<std::uint64_t>(indices.size()));
    if (injector_ != nullptr) {
      bool failed = injector_->fail_read(node);
      if (!failed &&
          injector_->replica_latency_ms(node) > options_.read_timeout_ms) {
        replica_timeouts_.fetch_add(1, std::memory_order_relaxed);
        failed = true;
      }
      if (failed) {
        node_failed[g] = 1;
        return;
      }
    }
    std::vector<std::string> batch;
    batch.reserve(indices.size());
    for (std::size_t i : indices) batch.push_back(partition_keys[i]);
    node_rows[g].resize(indices.size());
    std::size_t cursor = 0;
    nodes_[node]->scan_partitions(table, batch, slice,
                                  [&](const std::string&, std::vector<Row> rows) {
                                    node_rows[g][cursor++] = std::move(rows);
                                  });
  });

  // Assemble per key; collect fallbacks for a second resilient pass.
  std::vector<std::size_t> fallback;
  for (std::size_t i = 0; i < partition_keys.size(); ++i) {
    if (plan[i].empty()) continue;  // already resolved (unavailable)
    bool degraded = false;
    std::vector<std::vector<Row>*> cells;
    for (NodeIndex r : plan[i]) {
      const std::size_t g = group_of.at(r);
      if (node_failed[g] != 0) {
        degraded = true;
        break;
      }
      const auto& indices = groups[g].second;
      const auto it =
          std::lower_bound(indices.begin(), indices.end(), i);
      cells.push_back(
          &node_rows[g][static_cast<std::size_t>(it - indices.begin())]);
    }
    if (!degraded) {
      const std::uint64_t want = rows_digest(*cells.front());
      for (std::size_t c = 1; c < cells.size() && !degraded; ++c) {
        if (rows_digest(*cells[c]) != want) {
          digest_mismatches_.fetch_add(1, std::memory_order_relaxed);
          degraded = true;
        }
      }
    }
    if (degraded) {
      fallback.push_back(i);
      continue;
    }
    ReadResult r;
    r.rows = std::move(*cells.front());
    results[i] = std::move(r);
    reads_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!fallback.empty()) {
    pool.parallel_for(
        fallback.size(),
        [&](std::size_t f) {
          const telemetry::ScopedContext tguard(tctx);
          ReadQuery q;
          q.table = table;
          q.partition_key = partition_keys[fallback[f]];
          q.slice = slice;
          results[fallback[f]] = select(q, consistency);
        },
        /*grain=*/8);
  }
  return results;
}

// ----------------------------------------------------------- anti-entropy

std::vector<std::string> Cluster::all_table_names() const {
  // Union of registered schemas and every engine's actual tables — implicit
  // tables (written without create_table) still stream and repair.
  std::set<std::string> names;
  for (const TableSchema& s : schemas()) names.insert(s.name);
  const std::size_t slots = node_count();
  for (std::size_t i = 0; i < slots; ++i) {
    for (auto& t : nodes_[i]->table_names()) names.insert(std::move(t));
  }
  return {names.begin(), names.end()};
}

Result<RepairReport> Cluster::repair(const std::string& table) {
  const auto known = all_table_names();
  if (std::find(known.begin(), known.end(), table) == known.end()) {
    return not_found("no such table '" + table + "'");
  }
  telemetry::Span span("cassalite.repair");
  span.tag("table", table);
  repairs_scheduled_.fetch_add(1, std::memory_order_relaxed);
  RepairReport rep;
  rep.tables = 1;
  const TopologyVersion* tv = topo();
  const TokenRing& r = *tv->committed;

  // Per-node (token, key) index for this table; partition digests are
  // recomputed per range below (reads are snapshot-consistent per call).
  const std::size_t slots = node_count();
  std::vector<std::vector<std::pair<Token, std::string>>> parts(slots);
  for (NodeIndex n : r.members()) {
    if (!replica_up(n)) continue;
    for (auto& key : nodes_[n]->partition_keys(table)) {
      parts[n].emplace_back(token_for_key(key), std::move(key));
    }
    std::sort(parts[n].begin(), parts[n].end());
  }

  // Ownership intervals at ring token boundaries, merged while the owner
  // set is unchanged (fewer, wider Merkle trees).
  auto owners_at = [&](Token t) {
    return rack_aware_ ? r.replicas_for_token_rack_aware(
                             t, options_.replication_factor, rack_of_)
                       : r.replicas_for_token(t, options_.replication_factor);
  };
  struct Interval {
    TokenRange range;
    std::vector<NodeIndex> owners;
  };
  std::vector<Interval> intervals;
  const std::vector<Token> bounds = r.boundary_tokens();
  const std::size_t k = bounds.size();
  if (k == 1) {
    intervals.push_back(
        {TokenRange{bounds[0], bounds[0], true}, owners_at(bounds[0])});
  } else {
    for (std::size_t i = 0; i < k; ++i) {
      const bool wrap = i == 0;
      const Token lo = wrap ? bounds[k - 1] : bounds[i - 1];
      const Token hi = bounds[i];
      auto owners = owners_at(hi);
      if (!wrap && !intervals.empty() && !intervals.back().range.wraps &&
          intervals.back().range.hi == lo &&
          intervals.back().owners == owners) {
        intervals.back().range.hi = hi;
      } else {
        intervals.push_back({TokenRange{lo, hi, wrap}, std::move(owners)});
      }
    }
  }

  for (const Interval& iv : intervals) {
    std::vector<NodeIndex> live;
    for (NodeIndex o : iv.owners) {
      if (replica_up(o)) live.push_back(o);
    }
    if (live.size() < 2) continue;  // nothing to compare against
    ++rep.ranges_checked;

    // One Merkle tree per live replica over this range.
    std::vector<MerkleTree> trees;
    trees.reserve(live.size());
    for (NodeIndex o : live) {
      MerkleTree tree(iv.range, options_.repair_merkle_depth);
      for (const auto& [tok, key] : parts[o]) {
        if (!iv.range.contains(tok)) continue;
        tree.add(tok, hash_combine(fnv1a_64(key),
                                   rows_digest(read_partition(o, table, key))));
      }
      trees.push_back(std::move(tree));
    }
    std::vector<char> divergent(trees.front().leaf_count(), 0);
    bool any = false;
    for (std::size_t i = 1; i < trees.size(); ++i) {
      for (std::size_t leaf : MerkleTree::diff(trees.front(), trees[i])) {
        divergent[leaf] = 1;
        any = true;
      }
    }
    if (!any) continue;

    for (std::size_t leaf = 0; leaf < divergent.size(); ++leaf) {
      if (divergent[leaf] == 0) continue;
      ++rep.ranges_diverged;
      ranges_streamed_.fetch_add(1, std::memory_order_relaxed);
      // Union of partitions hashing into this leaf across the replicas
      // (sorted: deterministic reconciliation order).
      std::map<std::string, char> keys;
      for (NodeIndex o : live) {
        for (const auto& [tok, key] : parts[o]) {
          if (iv.range.contains(tok) &&
              trees.front().leaf_index(tok) == leaf) {
            keys.emplace(key, 0);
          }
        }
      }
      for (const auto& [key, unused] : keys) {
        // LWW-merge the partition across replicas, then apply only the
        // rows a replica is missing or holds stale.
        std::vector<std::vector<Row>> replica_rows(live.size());
        std::vector<ReadResult> results(live.size());
        for (std::size_t i = 0; i < live.size(); ++i) {
          replica_rows[i] = read_partition(live[i], table, key);
          results[i].rows = replica_rows[i];
        }
        const ReadResult merged = merge_lww(results);
        for (std::size_t i = 0; i < live.size(); ++i) {
          bool repaired = false;
          for (const Row& row : merged.rows) {
            const auto it = std::find_if(
                replica_rows[i].begin(), replica_rows[i].end(),
                [&](const Row& have) { return have.key == row.key; });
            if (it != replica_rows[i].end() && *it == row) continue;
            nodes_[live[i]]->apply(WriteCommand{table, key, row});
            repair_rows_sent_.fetch_add(1, std::memory_order_relaxed);
            ++rep.rows_streamed;
            repaired = true;
          }
          if (repaired) ++rep.replicas_repaired;
        }
      }
    }
  }
  span.tag("ranges_checked", static_cast<std::uint64_t>(rep.ranges_checked));
  span.tag("ranges_diverged", static_cast<std::uint64_t>(rep.ranges_diverged));
  span.tag("rows_streamed", static_cast<std::uint64_t>(rep.rows_streamed));
  return rep;
}

Result<RepairReport> Cluster::repair_all() {
  RepairReport total;
  for (const std::string& name : all_table_names()) {
    auto rep = repair(name);
    if (!rep.is_ok()) return rep.status();
    total.tables += rep->tables;
    total.ranges_checked += rep->ranges_checked;
    total.ranges_diverged += rep->ranges_diverged;
    total.rows_streamed += rep->rows_streamed;
    total.replicas_repaired += rep->replicas_repaired;
  }
  return total;
}

// ------------------------------------------------------------------- hints

void Cluster::store_hint(NodeIndex node, const WriteCommand& cmd) {
  const std::int64_t now = now_ms();
  HintShard& shard = hint_shards_[node];
  std::lock_guard lock(shard.mu);
  // Expire from the front first (FIFO order = oldest first), then make
  // room: the freshest hint always wins over the stalest.
  while (!shard.q.empty() && options_.hint_ttl_ms > 0 &&
         shard.q.front().stored_at_ms + options_.hint_ttl_ms <= now) {
    shard.q.pop_front();
    hints_expired_.fetch_add(1, std::memory_order_relaxed);
  }
  if (options_.max_hints_per_node > 0 &&
      shard.q.size() >= options_.max_hints_per_node) {
    shard.q.pop_front();
    hints_overflowed_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.q.push_back(Hint{cmd, now});
  hints_stored_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Cluster::replay_hints(NodeIndex node) {
  HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
  std::deque<Hint> pending;
  {
    std::lock_guard lock(hint_shards_[node].mu);
    pending.swap(hint_shards_[node].q);
  }
  const std::int64_t now = now_ms();
  std::size_t replayed = 0;
  for (const auto& h : pending) {
    if (options_.hint_ttl_ms > 0 &&
        h.stored_at_ms + options_.hint_ttl_ms <= now) {
      hints_expired_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Replay applies directly (anti-entropy): injected transient faults
    // model the request path, not local recovery writes.
    nodes_[node]->apply(h.cmd);
    hints_replayed_.fetch_add(1, std::memory_order_relaxed);
    ++replayed;
  }
  return replayed;
}

std::size_t Cluster::replay_all_hints() {
  std::size_t total = 0;
  const std::size_t slots = node_count();
  for (NodeIndex n = 0; n < slots; ++n) {
    if (replica_up(n) && reachable(n)) total += replay_hints(n);
  }
  return total;
}

// ---------------------------------------------------------------- liveness

void Cluster::kill_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
  alive_[node].store(false, std::memory_order_release);
}

std::size_t Cluster::revive_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
  alive_[node].store(true, std::memory_order_release);
  return replay_hints(node);
}

void Cluster::kill_rack(int rack) {
  HPCLA_CHECK_MSG(rack_aware_, "cluster has no rack configuration");
  const std::size_t slots = node_count();
  for (NodeIndex n = 0; n < slots; ++n) {
    if (rack_of_[n] == rack) kill_node(n);
  }
}

std::size_t Cluster::crash_node(NodeIndex node) {
  HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
  return nodes_[node]->crash_and_recover();
}

bool Cluster::is_alive(NodeIndex node) const {
  HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
  return alive_[node].load(std::memory_order_acquire);
}

std::size_t Cluster::live_node_count() const {
  std::size_t n = 0;
  const std::size_t slots = node_count();
  for (std::size_t i = 0; i < slots; ++i) {
    n += alive_[i].load(std::memory_order_acquire) ? 1 : 0;
  }
  return n;
}

std::size_t Cluster::pending_hints() const {
  std::size_t n = 0;
  const std::size_t slots = node_count();
  for (std::size_t i = 0; i < slots; ++i) {
    std::lock_guard lock(hint_shards_[i].mu);
    n += hint_shards_[i].q.size();
  }
  return n;
}

const StorageEngine& Cluster::engine(NodeIndex node) const {
  HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
  return *nodes_[node];
}

std::vector<std::string> Cluster::primary_partition_keys(
    NodeIndex node, const std::string& table) const {
  HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
  const TokenRing& r = ring();
  std::vector<std::string> out;
  for (auto& key : nodes_[node]->partition_keys(table)) {
    if (r.primary(key) == node) out.push_back(std::move(key));
  }
  return out;
}

std::vector<std::string> Cluster::all_partition_keys(
    const std::string& table) const {
  std::vector<std::string> all;
  const std::size_t slots = node_count();
  for (std::size_t i = 0; i < slots; ++i) {
    auto keys = nodes_[i]->partition_keys(table);
    all.insert(all.end(), std::make_move_iterator(keys.begin()),
               std::make_move_iterator(keys.end()));
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

ClusterMetrics Cluster::metrics() const {
  ClusterMetrics m;
  m.writes_ok = writes_ok_.load(std::memory_order_relaxed);
  m.writes_unavailable = writes_unavailable_.load(std::memory_order_relaxed);
  m.reads_ok = reads_ok_.load(std::memory_order_relaxed);
  m.reads_unavailable = reads_unavailable_.load(std::memory_order_relaxed);
  m.hints_stored = hints_stored_.load(std::memory_order_relaxed);
  m.hints_replayed = hints_replayed_.load(std::memory_order_relaxed);
  m.read_repairs = read_repairs_.load(std::memory_order_relaxed);
  m.read_retries = read_retries_.load(std::memory_order_relaxed);
  m.write_retries = write_retries_.load(std::memory_order_relaxed);
  m.speculative_reads = speculative_reads_.load(std::memory_order_relaxed);
  m.replica_timeouts = replica_timeouts_.load(std::memory_order_relaxed);
  m.digest_mismatches = digest_mismatches_.load(std::memory_order_relaxed);
  m.hints_expired = hints_expired_.load(std::memory_order_relaxed);
  m.hints_overflowed = hints_overflowed_.load(std::memory_order_relaxed);
  m.topology_changes = topology_changes_.load(std::memory_order_relaxed);
  m.pending_range_writes =
      pending_range_writes_.load(std::memory_order_relaxed);
  m.stream_rows_sent = stream_rows_sent_.load(std::memory_order_relaxed);
  m.repairs_scheduled = repairs_scheduled_.load(std::memory_order_relaxed);
  m.ranges_streamed = ranges_streamed_.load(std::memory_order_relaxed);
  m.repair_rows_sent = repair_rows_sent_.load(std::memory_order_relaxed);
  return m;
}

}  // namespace hpcla::cassalite
