// Immutable sorted run produced by flushing a memtable: sorted partitions,
// each with clustering-sorted rows, fronted by a Bloom filter on partition
// keys. Mirrors Cassandra's on-disk SSTable at the data-structure level.
//
// Partitions are stored one of three ways:
//   * plain Row vectors (the original path),
//   * resident ColumnarExtent column streams decoded lazily per slice
//     (DESIGN.md §13.2), or
//   * file-backed extents (DESIGN.md §14): the SSTable holds only the
//     lightweight handles — partition keys, Bloom filter, per-group
//     first/last keys and block offsets — while the compressed blocks
//     live in an on-disk extent file fetched by mmap/pread on demand.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cassalite/bloom.hpp"
#include "cassalite/extent.hpp"
#include "cassalite/extent_file.hpp"
#include "cassalite/schema.hpp"
#include "cassalite/value.hpp"

namespace hpcla::cassalite {

/// Immutable after construction (persist_to/attach_file run before the
/// table is published); safe to share across threads.
class SSTable {
 public:
  struct Partition {
    std::string key;
    std::vector<Row> rows;  ///< ascending clustering order
  };

  /// Builds from a sorted partition map (as produced by Memtable::drain or
  /// compaction). Generation numbers increase monotonically per table.
  /// With `extent_opts`, partitions are columnar-encoded and the row
  /// vectors are dropped; reads decode lazily per slice.
  SSTable(std::uint64_t generation, std::vector<Partition> sorted_partitions,
          const ExtentOptions* extent_opts = nullptr);

  /// Rebuilds the SSTable skeleton from a sealed extent file's footer —
  /// the cold-start path: no block is read until a slice needs it.
  [[nodiscard]] static std::shared_ptr<SSTable> from_extent_file(
      std::shared_ptr<ExtentFile> file, const ExtentOptions& opts);

  /// Streams every partition's compressed blocks into `writer` (dropping
  /// the resident copies) and appends the index entries to `footer`.
  /// Caller seals the writer, opens the result, and attach_file()s it
  /// before publishing the table. Columnar tables only.
  void persist_to(ExtentFileWriter& writer, ExtentFileFooter& footer);
  void attach_file(const std::shared_ptr<ExtentFile>& file);

  /// The backing extent file; null for in-memory tables.
  [[nodiscard]] const std::shared_ptr<ExtentFile>& extent_file()
      const noexcept {
    return file_;
  }

  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  [[nodiscard]] std::size_t partition_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }
  [[nodiscard]] bool columnar() const noexcept { return columnar_; }

  /// Compression accounting (columnar tables only; zero otherwise).
  [[nodiscard]] std::size_t extent_raw_bytes() const noexcept {
    return raw_bytes_;
  }
  [[nodiscard]] std::size_t extent_encoded_bytes() const noexcept {
    return encoded_bytes_;
  }

  /// Appends slice-admitted rows of the partition to `out`. Consults the
  /// Bloom filter first; `bloom_rejections` metric is the caller's concern.
  /// Returns false if the Bloom filter rejected (definite miss).
  bool read(const std::string& partition_key, const ClusteringSlice& slice,
            std::vector<Row>& out) const;

  /// Partition keys in ascending order (metadata only — never decodes).
  [[nodiscard]] std::vector<std::string> partition_keys() const;

  /// Streams partitions in key order for compaction and full scans:
  /// `fn(const std::string& key, const std::vector<Row>& rows)`. Columnar
  /// partitions are decoded one at a time, so residency stays bounded by
  /// the largest single partition rather than the whole table.
  template <typename Fn>
  void for_each_partition(Fn&& fn) const {
    for (const auto& p : partitions_) {
      if (columnar_) {
        fn(p.key, p.extent.decode_all());
      } else {
        fn(p.key, p.rows);
      }
    }
  }

 private:
  struct Stored {
    std::string key;
    std::vector<Row> rows;  ///< empty when columnar
    ColumnarExtent extent;
  };

  SSTable(std::uint64_t generation, std::size_t bloom_hint)
      : generation_(generation), bloom_(std::max<std::size_t>(bloom_hint, 8)) {}

  std::uint64_t generation_;
  std::vector<Stored> partitions_;  ///< sorted by key
  std::size_t rows_ = 0;
  bool columnar_ = false;
  std::size_t raw_bytes_ = 0;
  std::size_t encoded_bytes_ = 0;
  std::shared_ptr<ExtentFile> file_;  ///< null = fully resident
  BloomFilter bloom_;
};

using SSTablePtr = std::shared_ptr<const SSTable>;

/// Merges several runs into one (size-tiered compaction step): partitions
/// unioned, rows with equal clustering keys reconciled last-write-wins.
/// `extent_opts` propagates the output encoding as in the constructor.
/// Returned mutable so the engine can persist_to/attach_file before
/// publishing it as const.
std::shared_ptr<SSTable> compact(std::uint64_t new_generation,
                                 const std::vector<SSTablePtr>& inputs,
                                 const ExtentOptions* extent_opts = nullptr);

}  // namespace hpcla::cassalite
