// Immutable sorted run produced by flushing a memtable: sorted partitions,
// each with clustering-sorted rows, fronted by a Bloom filter on partition
// keys. Mirrors Cassandra's on-disk SSTable at the data-structure level
// (the simulated cluster keeps runs in memory; persistence semantics —
// immutability, merge-on-read, compaction — are what the analytics stack
// depends on, not the medium).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cassalite/bloom.hpp"
#include "cassalite/schema.hpp"
#include "cassalite/value.hpp"

namespace hpcla::cassalite {

/// Immutable after construction; safe to share across threads.
class SSTable {
 public:
  struct Partition {
    std::string key;
    std::vector<Row> rows;  ///< ascending clustering order
  };

  /// Builds from a sorted partition map (as produced by Memtable::drain or
  /// compaction). Generation numbers increase monotonically per table.
  SSTable(std::uint64_t generation,
          std::vector<Partition> sorted_partitions);

  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }
  [[nodiscard]] std::size_t partition_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }

  /// Appends slice-admitted rows of the partition to `out`. Consults the
  /// Bloom filter first; `bloom_rejections` metric is the caller's concern.
  /// Returns false if the Bloom filter rejected (definite miss).
  bool read(const std::string& partition_key, const ClusteringSlice& slice,
            std::vector<Row>& out) const;

  /// All partitions (for compaction and full scans).
  [[nodiscard]] const std::vector<Partition>& partitions() const noexcept {
    return partitions_;
  }

 private:
  std::uint64_t generation_;
  std::vector<Partition> partitions_;  ///< sorted by key
  std::size_t rows_ = 0;
  BloomFilter bloom_;
};

using SSTablePtr = std::shared_ptr<const SSTable>;

/// Merges several runs into one (size-tiered compaction step): partitions
/// unioned, rows with equal clustering keys reconciled last-write-wins.
SSTablePtr compact(std::uint64_t new_generation,
                   const std::vector<SSTablePtr>& inputs);

}  // namespace hpcla::cassalite
