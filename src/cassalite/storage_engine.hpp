// Per-node storage engine: commit log -> memtable -> SSTables, with
// size-tiered compaction and merge-on-read. One instance per simulated
// cluster node; all methods are thread-safe (single internal mutex — a
// node is one "machine", contention across nodes is what we scale).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cassalite/commitlog.hpp"
#include "cassalite/memtable.hpp"
#include "cassalite/schema.hpp"
#include "cassalite/sstable.hpp"

namespace hpcla::cassalite {

/// Tuning knobs, exposed for the ablation benches.
struct StorageOptions {
  /// Memtable flush threshold in bytes.
  std::size_t memtable_flush_bytes = 8u << 20;  // 8 MiB
  /// Compact when a table accumulates this many SSTables.
  std::size_t compaction_threshold = 8;
};

/// Storage-level counters (monotonic; read without locking the engine).
struct StorageMetrics {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t memtable_flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t sstables_read = 0;
  std::uint64_t bloom_rejections = 0;
};

class StorageEngine {
 public:
  explicit StorageEngine(StorageOptions options = {});

  /// Applies one mutation: journal, memtable, maybe flush/compact.
  void apply(const WriteCommand& cmd);

  /// Reads a partition slice, merging memtable and all SSTables
  /// (last-write-wins per clustering key), honoring limit/reverse.
  [[nodiscard]] ReadResult read(const ReadQuery& q) const;

  /// Partition keys of a table currently stored on this node (union of
  /// memtable and SSTables) — the scan entry point for sparklite locality.
  [[nodiscard]] std::vector<std::string> partition_keys(
      const std::string& table) const;

  /// Number of rows stored for a table (post-reconciliation upper bound:
  /// duplicates across runs counted once per run).
  [[nodiscard]] std::uint64_t approximate_rows(const std::string& table) const;

  /// Simulates a crash: all memtables are lost, then recovered from the
  /// commit log. Returns the number of replayed mutations. The engine is
  /// fully usable afterwards — used by availability fault-injection tests.
  std::size_t crash_and_recover();

  [[nodiscard]] StorageMetrics metrics() const;

  /// Forces all memtables to SSTables (test/bench hook).
  void flush_all();

 private:
  struct TableStore {
    Memtable memtable;
    std::vector<SSTablePtr> sstables;
    std::uint64_t next_generation = 1;
    /// LSN of the newest mutation already covered by the SSTables.
    std::uint64_t flushed_lsn = 0;
    /// LSN of the newest mutation applied to the memtable.
    std::uint64_t applied_lsn = 0;
  };

  void apply_locked(const WriteCommand& cmd, std::uint64_t lsn);
  void maybe_flush_locked(const std::string& table, TableStore& store);
  void flush_locked(const std::string& table, TableStore& store);
  void maybe_compact_locked(TableStore& store);

  mutable std::mutex mu_;
  StorageOptions options_;
  CommitLog log_;
  std::map<std::string, TableStore> tables_;
  mutable StorageMetrics metrics_;
};

}  // namespace hpcla::cassalite
