// Per-node storage engine: commit log -> memtable -> SSTables, with
// size-tiered compaction and merge-on-read. One instance per simulated
// cluster node.
//
// Concurrency model (see DESIGN.md §"Storage concurrency"):
//   * Reads are snapshot-based and run without the writer lock. Each table
//     publishes its immutable SSTable list as a shared_ptr<const
//     TableSnapshot> swapped atomically on flush/compaction; the live
//     memtable is read under a brief shared lock. A read therefore costs
//     one shared-lock acquisition plus one atomic load, then proceeds
//     entirely against immutable structures. A per-table publish version
//     lets readers reuse a thread-local snapshot reference between
//     publishes, so the hot read path skips the contended atomic
//     shared_ptr load (and its refcount cache-line bounce) entirely.
//   * Writes (`apply`), flush, compaction publish, and crash recovery are
//     serialized by one writer-exclusive mutex per engine.
//   * Flush publishes the new SSTable *before* draining the memtable, and
//     readers consult the memtable *before* loading the snapshot — so a
//     concurrent reader can observe a row twice (reconciled last-write-wins)
//     but never miss it.
//   * Compaction merges its input runs outside every lock and re-enters the
//     writer lock only to swap the snapshot, so a long compaction stalls
//     neither readers nor writers.
//
// Out-of-core tier (DESIGN.md §14): with `extent_files` on, flush and
// compaction write each SSTable's columnar extents to an on-disk extent
// file under `data_dir` and the published SSTables hold only lightweight
// handles; reads fetch blocks by mmap/pread through the process
// BlockCache. reopen_from_disk() rebuilds the whole engine state from
// those files plus the commit log — the cold-start path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cassalite/commitlog.hpp"
#include "cassalite/memtable.hpp"
#include "cassalite/schema.hpp"
#include "cassalite/sstable.hpp"

namespace hpcla {
class FaultInjector;
}

namespace hpcla::cassalite {

/// Tuning knobs, exposed for the ablation benches.
struct StorageOptions {
  /// True when HPCLA_COLUMNAR_EXTENTS is set to anything but "0".
  static bool columnar_extents_default() noexcept;
  /// True when HPCLA_EXTENT_FILES is set to anything but "0".
  static bool extent_files_default() noexcept;
  /// False only when HPCLA_EXTENT_MMAP is set to "0" (pread fallback).
  static bool extent_mmap_default() noexcept;
  /// HPCLA_BLOCK_CACHE_BYTES, default 0 (cache disabled).
  static std::size_t block_cache_bytes_default() noexcept;

  /// Memtable flush threshold in bytes.
  std::size_t memtable_flush_bytes = 8u << 20;  // 8 MiB
  /// Compact when a table accumulates this many SSTables.
  std::size_t compaction_threshold = 8;
  /// Store SSTable partitions as compressed columnar extents decoded
  /// lazily per read slice (DESIGN.md §13.2) instead of plain Row vectors.
  bool columnar_extents = columnar_extents_default();
  /// Rows per extent group when columnar_extents is on — the lazy-decode
  /// and compression granularity.
  std::size_t extent_rows_per_group = 1024;
  /// Persist extents to on-disk extent files on flush/compaction (implies
  /// columnar_extents); SSTables keep only handles and block indexes.
  bool extent_files = extent_files_default();
  /// Directory for extent files. Empty = a unique scratch subdirectory
  /// (honoring HPCLA_SPILL_DIR) that is removed with the engine; explicit
  /// paths persist across engine lifetimes for reopen_from_disk().
  std::string data_dir;
  /// Fetch extent blocks through mmap (pread streaming when off or when
  /// the map fails).
  bool extent_mmap = extent_mmap_default();
  /// Budget for the process-wide decoded-block cache. Applied to the
  /// BlockCache singleton at engine construction *grow-only* (the cache
  /// is shared by every engine in the process, so a small-budget engine
  /// never shrinks or mass-evicts it); 0 leaves the cache untouched.
  /// Callers needing an exact budget use BlockCache::set_capacity.
  std::size_t block_cache_bytes = block_cache_bytes_default();
};

/// Plain snapshot of the storage-level counters, safe to copy around.
/// The engine maintains these as relaxed atomics; `metrics()` never locks.
struct StorageMetrics {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t memtable_flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t sstables_read = 0;
  std::uint64_t bloom_rejections = 0;
  /// Snapshot acquisitions serving reads: one per read(), one per
  /// scan_partitions() batch (a batch amortizes the acquisition).
  std::uint64_t snapshot_reads = 0;
  /// Wall time the compaction publish step held the writer lock — the only
  /// part of compaction that can stall writers (readers are never stalled).
  std::uint64_t compaction_stall_us = 0;
  /// Extent compression accounting across currently published SSTables
  /// (zero unless columnar_extents is on): boxed-Row footprint of the
  /// encoded data vs. the encoded bytes held (on disk once extent_files).
  std::uint64_t extent_raw_bytes = 0;
  std::uint64_t extent_encoded_bytes = 0;
  /// Extent files written (flush + compaction) since construction.
  std::uint64_t extent_files_written = 0;
};

class StorageEngine {
 public:
  explicit StorageEngine(StorageOptions options = {});
  ~StorageEngine();

  /// Applies one mutation: journal, memtable, maybe flush/compact.
  void apply(const WriteCommand& cmd);

  /// Fallible apply: when a fault injector is attached and fires a
  /// transient write fault for this node, the mutation is rejected
  /// *before* touching the commit log and false is returned — the
  /// coordinator retries or hints. Without an injector this is `apply`.
  [[nodiscard]] bool try_apply(const WriteCommand& cmd);

  /// Attaches a fault injector; `node` is this engine's index in the
  /// injector's node space. Pass nullptr to detach. Not thread-safe
  /// against in-flight writes — wire up before traffic starts.
  void set_fault_injector(FaultInjector* injector, std::size_t node);

  /// Reads a partition slice, merging memtable and all SSTables
  /// (last-write-wins per clustering key), honoring limit/reverse.
  /// Lock-free against the snapshot; safe under concurrent writers.
  [[nodiscard]] ReadResult read(const ReadQuery& q) const;

  /// Batch scan: reads several partitions of one table against a *single*
  /// snapshot acquisition and invokes `fn(key, rows)` per requested key
  /// (rows slice-filtered, reconciled, ascending clustering order; keys
  /// with no rows are still reported, with an empty vector). An empty
  /// `keys` scans every partition currently on this node. This is the
  /// sparklite node-local scan path: one task drives a whole partition
  /// batch instead of paying per-key synchronization.
  void scan_partitions(
      const std::string& table, const std::vector<std::string>& keys,
      const ClusteringSlice& slice,
      const std::function<void(const std::string& key, std::vector<Row> rows)>&
          fn) const;

  /// Partition keys of a table currently stored on this node (union of
  /// memtable and SSTables) — the scan entry point for sparklite locality.
  [[nodiscard]] std::vector<std::string> partition_keys(
      const std::string& table) const;

  /// Names of every table with data on this node (sorted). Range streaming
  /// and anti-entropy repair enumerate tables through this, so data written
  /// to tables never registered with Cluster::create_table still moves.
  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Number of rows stored for a table (post-reconciliation upper bound:
  /// duplicates across runs counted once per run).
  [[nodiscard]] std::uint64_t approximate_rows(const std::string& table) const;

  /// Simulates a crash: all memtables are lost, then recovered from the
  /// commit log. With extent_files on, the in-memory SSTable objects are
  /// dropped too and the node reopens from its extent files — the honest
  /// crash path. Returns the number of replayed mutations.
  std::size_t crash_and_recover();

  /// Cold start from disk: discards every in-memory table structure,
  /// rebuilds SSTables from the extent files found in data_dir(), and
  /// replays the commit log past the highest LSN the files cover.
  /// Requires extent_files. Returns the number of replayed mutations.
  std::size_t reopen_from_disk();

  /// The extent-file directory ("" unless extent_files is on).
  [[nodiscard]] const std::string& data_dir() const noexcept {
    return data_dir_;
  }

  [[nodiscard]] StorageMetrics metrics() const;

  /// Forces all memtables to SSTables (test/bench hook).
  void flush_all();

 private:
  /// Immutable view of one table's on-"disk" state. Shared with readers;
  /// never mutated after publication.
  struct TableSnapshot {
    std::vector<SSTablePtr> sstables;
  };
  using SnapshotPtr = std::shared_ptr<const TableSnapshot>;

  struct TableStore {
    /// Guards the live memtable only: writers unique, readers shared.
    mutable std::shared_mutex mem_mu;
    Memtable memtable;
    /// Published SSTable list; swapped (release) on flush/compaction and
    /// loaded (acquire) by readers. Non-snapshot fields below are written
    /// only under the engine writer mutex.
    std::atomic<SnapshotPtr> snapshot{std::make_shared<TableSnapshot>()};
    /// Bumped (release) after every snapshot store — readers compare it
    /// against a thread-local cache to skip the atomic shared_ptr load.
    std::atomic<std::uint64_t> snapshot_version{1};
    /// Process-unique id keying the thread-local snapshot cache (table
    /// stores from different engines may reuse addresses).
    const std::uint64_t id;
    std::uint64_t next_generation = 1;
    /// LSN of the newest mutation already covered by the SSTables.
    std::uint64_t flushed_lsn = 0;
    /// LSN of the newest mutation applied to the memtable.
    std::uint64_t applied_lsn = 0;
    /// True while a compaction for this table is merging out-of-lock.
    bool compacting = false;

    TableStore();
  };

  /// A compaction prepared under the writer lock and executed outside it.
  struct CompactionJob {
    TableStore* store = nullptr;
    std::string table;
    std::vector<SSTablePtr> inputs;  ///< prefix of the snapshot at grab time
    std::uint64_t generation = 0;
  };

  /// Relaxed atomic counters behind the StorageMetrics snapshot.
  struct Counters {
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> memtable_flushes{0};
    std::atomic<std::uint64_t> compactions{0};
    std::atomic<std::uint64_t> sstables_read{0};
    std::atomic<std::uint64_t> bloom_rejections{0};
    std::atomic<std::uint64_t> snapshot_reads{0};
    std::atomic<std::uint64_t> compaction_stall_us{0};
    std::atomic<std::uint64_t> extent_files_written{0};
  };

  /// Read-side table lookup (shared map lock; pointer stays valid because
  /// tables are never erased and std::map nodes are stable).
  const TableStore* find_table(const std::string& table) const;
  /// Write-side lookup-or-create (caller holds the writer mutex).
  TableStore& table_for_write(const std::string& table);

  /// Read-side snapshot acquisition with the thread-local version cache:
  /// when the table's publish version matches the cached one, the cached
  /// shared_ptr is reused — no atomic shared_ptr load, no refcount bounce.
  /// Slots live in a process registry so compaction and engine teardown
  /// invalidate stale entries held by idle threads (otherwise a parked
  /// pool thread would pin superseded SSTables and their extent files).
  static SnapshotPtr load_snapshot(const TableStore& store);
  /// Publishes a new snapshot and bumps the version (writer side).
  static void publish_snapshot(TableStore& store, SnapshotPtr next);

  /// nullptr when columnar extents are off; otherwise the shared encoding
  /// options handed to every SSTable build (flush and compaction alike).
  [[nodiscard]] const ExtentOptions* extent_opts() const noexcept {
    return options_.columnar_extents ? &extent_opts_ : nullptr;
  }

  /// Writes `sst`'s blocks + footer to a fresh extent file in data_dir_
  /// and attaches the sealed file. No-op unless extent_files is on.
  void persist_sstable(const std::string& table, SSTable& sst,
                       std::uint64_t flushed_lsn);

  void apply_one_locked(const WriteCommand& cmd, std::uint64_t lsn,
                        std::vector<CompactionJob>& jobs);
  void flush_store_locked(const std::string& table, TableStore& store);
  std::optional<CompactionJob> maybe_begin_compaction_locked(
      const std::string& table, TableStore& store);
  void run_compaction(CompactionJob job);
  /// Shared core of reopen_from_disk/crash_and_recover: caller holds the
  /// writer mutex; compaction jobs triggered by replay are returned.
  std::size_t reopen_locked(std::vector<CompactionJob>& jobs);

  /// LWW-reconciles candidate rows in place (sort by key then write_ts,
  /// keep the newest version of each clustering key).
  static void reconcile(std::vector<Row>& candidates);

  /// Serializes apply/flush/compaction-publish/recovery.
  mutable std::mutex writer_mu_;
  StorageOptions options_;
  ExtentOptions extent_opts_;
  std::string data_dir_;          ///< resolved extent-file directory
  bool owns_data_dir_ = false;    ///< scratch subdir removed in dtor
  std::atomic<std::uint64_t> next_file_seq_{1};
  FaultInjector* injector_ = nullptr;  ///< not owned; see set_fault_injector
  std::size_t injector_node_ = 0;
  CommitLog log_;
  /// Guards the table map structure (insertions vs. reader lookups).
  mutable std::shared_mutex map_mu_;
  std::map<std::string, TableStore> tables_;
  mutable Counters counters_;
};

}  // namespace hpcla::cassalite
