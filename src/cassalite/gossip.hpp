// Gossip membership and failure detection.
//
// Cassandra's "masterless ring design ... gives an identical role to each
// node" (paper §II-A): liveness is decided by peer-to-peer gossip, not a
// master. This module simulates that protocol in rounds: every round each
// live node picks fanout random peers and exchanges heartbeat vectors
// (taking the elementwise max); a node whose heartbeat a peer hasn't seen
// advance for `suspect_after_rounds` rounds is *suspected* by that peer.
//
// The simulation is deterministic (seeded peer selection) so the classic
// gossip properties are testable: rumor spread in O(log N) rounds, and
// unanimous suspicion of a dead node within a bounded window.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace hpcla {
class FaultInjector;
}

namespace hpcla::cassalite {

struct GossipOptions {
  std::size_t node_count = 8;
  /// Peers contacted by each node per round.
  std::size_t fanout = 2;
  /// A peer is suspected after its heartbeat stalls for this many rounds.
  std::int64_t suspect_after_rounds = 6;
  std::uint64_t seed = 0x90551F;
};

/// Round-driven gossip simulator.
class Gossiper {
 public:
  explicit Gossiper(GossipOptions options);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return options_.node_count;
  }
  [[nodiscard]] std::int64_t round() const noexcept { return round_; }

  /// Adds a fresh node to the membership (elastic join). The joiner gets a
  /// suspicion grace window anchored at the current round — peers that have
  /// not heard its heartbeat yet do not suspect it until
  /// `suspect_after_rounds` rounds after the *join*, not after round 0.
  /// Returns the new node's index.
  std::size_t add_node();

  /// Marks a node dead: it stops heartbeating and gossiping (its state is
  /// still gossiped *about* by others).
  void kill(std::size_t node);

  /// Brings a node back: it resumes heartbeating with a bumped generation
  /// so peers immediately learn it returned.
  void revive(std::size_t node);

  [[nodiscard]] bool is_dead(std::size_t node) const;

  /// Advances one gossip round: live nodes bump their own heartbeat, then
  /// exchange vectors with `fanout` random peers. The exchange models real
  /// gossip's SYN/ACK as two one-way merges: the SYN direction is dropped
  /// when the initiator->peer link is partitioned, the ACK direction when
  /// peer->initiator is — so an asymmetric partition degrades gossip to
  /// one-way rumor flow instead of silently staying bidirectional.
  void step();

  /// Runs `n` rounds.
  void run(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) step();
  }

  /// Attaches a fault injector: each gossip exchange consults
  /// `drop_gossip()` and a dropped exchange performs no merge (the rumor
  /// is lost in flight). Pass nullptr to detach.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Does `observer` currently suspect `target` of being down?
  /// (A node never suspects itself; dead observers hold stale views.)
  [[nodiscard]] bool suspects(std::size_t observer, std::size_t target) const;

  /// Number of live nodes that suspect `target`.
  [[nodiscard]] std::size_t suspicion_count(std::size_t target) const;

  /// Heartbeat of `target` as known by `observer` (test introspection).
  [[nodiscard]] std::int64_t known_heartbeat(std::size_t observer,
                                             std::size_t target) const;

  /// True when every live node knows every live node's current-round
  /// heartbeat within the suspicion window (cluster view converged).
  [[nodiscard]] bool converged() const;

 private:
  struct View {
    std::int64_t heartbeat = 0;       ///< highest heartbeat seen
    std::int64_t seen_at_round = 0;   ///< round when it last advanced
  };

  /// One-way merge: `dst` absorbs every heartbeat `src` knows better.
  void absorb(std::size_t dst, std::size_t src);

  GossipOptions options_;
  Rng rng_;
  FaultInjector* injector_ = nullptr;  ///< not owned
  std::int64_t round_ = 0;
  std::vector<bool> dead_;
  /// Round each node joined (0 for founding members): anchors the
  /// never-heard-of-it suspicion grace window for elastic joiners.
  std::vector<std::int64_t> joined_at_round_;
  /// views_[observer][target]
  std::vector<std::vector<View>> views_;
};

}  // namespace hpcla::cassalite
