// A small CQL dialect over cassalite.
//
// Paper §III: "The analytics server translates data query requests received
// from the frontend and relays them to the backend database server in the
// form of Cassandra Query Language (CQL) queries." This module is that
// surface: textual SELECT/INSERT statements parsed and executed against a
// Cluster, honoring each table's declared partition/clustering columns.
//
// Supported grammar (case-insensitive keywords):
//
//   SELECT <col[, col...] | * | COUNT(*)> FROM <table>
//     WHERE <pk-col> = <lit> [AND <pk-col> = <lit>]...
//     [AND <first-ck-col> <op> <lit>]...          -- op in {=, <, <=, >, >=}
//     [ORDER BY <first-ck-col> [ASC|DESC]]
//     [LIMIT <n>]
//
//   INSERT INTO <table> (col[, col...]) VALUES (lit[, lit...])
//
// Literals: 64-bit integers, doubles, 'single-quoted strings' ('' escapes
// a quote), true/false/null.
//
// The partition key is assembled from the WHERE equalities on the table's
// partition columns (joined with '|', matching the data model's key
// format); every partition column must be constrained. Range predicates
// are allowed only on the *first* clustering column, like real CQL.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cassalite/cluster.hpp"
#include "common/json.hpp"

namespace hpcla::cassalite {

/// A parsed SELECT.
struct CqlSelect {
  std::string table;
  /// Selected column names; empty = * .
  std::vector<std::string> columns;
  bool count_only = false;  ///< SELECT COUNT(*)
  /// (column, literal) equality constraints on partition columns.
  std::vector<std::pair<std::string, Value>> partition_eq;
  /// Constraints on the first clustering column.
  std::optional<Value> ck_eq;
  std::optional<Value> ck_lower;        ///< inclusive unless ck_lower_strict
  bool ck_lower_strict = false;
  std::optional<Value> ck_upper;        ///< exclusive unless ck_upper_inclusive
  bool ck_upper_inclusive = false;
  bool order_desc = false;
  std::size_t limit = 0;  ///< 0 = none
};

/// A parsed INSERT.
struct CqlInsert {
  std::string table;
  std::vector<std::pair<std::string, Value>> values;  ///< column -> literal
};

/// A parsed statement.
struct CqlStatement {
  std::optional<CqlSelect> select;
  std::optional<CqlInsert> insert;
};

/// Parses one statement (a trailing ';' is allowed).
Result<CqlStatement> parse_cql(std::string_view text);

/// Result of execution: SELECT yields rows (as JSON objects keyed by
/// column name, with clustering columns materialized from the key);
/// COUNT(*) and INSERT yield `count`.
struct CqlResult {
  Json rows = Json::array();
  std::int64_t count = 0;
  bool is_rows = false;

  [[nodiscard]] Json to_json() const {
    Json j = Json::object();
    if (is_rows) {
      j["rows"] = rows;
    }
    j["count"] = count;
    return j;
  }
};

/// Parses + executes against a cluster.
Result<CqlResult> execute_cql(Cluster& cluster, std::string_view text,
                              Consistency consistency = Consistency::kOne);

}  // namespace hpcla::cassalite
