// Merkle trees over token ranges — the comparison half of anti-entropy
// repair (DESIGN.md §15). Each replica summarises a token range as a
// fixed-depth hash tree: the range is split into 2^depth equal-width leaf
// sub-ranges, every partition hashes into the leaf covering its token, and
// two replicas' trees diff leaf-by-leaf to localise divergence. Only the
// partitions inside divergent leaves are then streamed for LWW
// reconciliation — the Cassandra repair protocol, minus the network.
//
// Leaf accumulation is *commutative* (wrapping sum of mixed per-partition
// digests), so replicas may scan partitions in any order and still produce
// identical trees for identical data.
#pragma once

#include <cstdint>
#include <vector>

#include "cassalite/ring.hpp"

namespace hpcla::cassalite {

class MerkleTree {
 public:
  /// A tree over `range` with 2^depth leaves. A range with lo == hi and
  /// wraps == true denotes the full token space.
  MerkleTree(TokenRange range, int depth);

  [[nodiscard]] const TokenRange& range() const noexcept { return range_; }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t leaf_count() const noexcept {
    return leaves_.size();
  }
  [[nodiscard]] std::uint64_t keys_added() const noexcept { return keys_; }

  /// Folds one partition into the tree. `key_digest` must capture the
  /// partition's full contents (key + rows), e.g.
  /// hash_combine(fnv1a_64(key), rows_digest(rows)). `token` must lie
  /// inside range().
  void add(Token token, std::uint64_t key_digest);

  /// Leaf index covering `token` (which must lie inside range()).
  [[nodiscard]] std::size_t leaf_index(Token token) const;

  /// The token sub-range a leaf covers (empty leaves possible on narrow
  /// ranges; then lo == hi and wraps == false, containing no token).
  [[nodiscard]] TokenRange leaf_range(std::size_t leaf) const;

  /// Root hash: order-sensitive fold of the leaf hashes. Equal roots <=>
  /// equal leaf vectors.
  [[nodiscard]] std::uint64_t root() const noexcept;

  [[nodiscard]] std::uint64_t leaf_hash(std::size_t leaf) const {
    return leaves_[leaf];
  }

  /// Indices of leaves whose hashes differ between two trees built over
  /// the same range and depth.
  [[nodiscard]] static std::vector<std::size_t> diff(const MerkleTree& a,
                                                     const MerkleTree& b);

 private:
  /// Offset of `token` within (lo, hi], in [0, span). Modular arithmetic
  /// makes this correct for wrapping ranges too.
  [[nodiscard]] std::uint64_t offset_of(Token token) const noexcept;
  /// First offset covered by `leaf` (== span for leaf == leaf_count).
  [[nodiscard]] std::uint64_t leaf_start(std::size_t leaf) const noexcept;

  TokenRange range_;
  int depth_;
  std::uint64_t span_;  ///< range width in tokens; 0 encodes 2^64 (full)
  std::uint64_t keys_ = 0;
  std::vector<std::uint64_t> leaves_;
};

}  // namespace hpcla::cassalite
