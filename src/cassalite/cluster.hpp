// The simulated cassalite cluster: N nodes (each a StorageEngine), a token
// ring for placement, replication with tunable consistency, hinted handoff
// for writes to down nodes, and read repair. This is the paper's
// "32 VM Cassandra cluster" scaled to an in-process simulation — identical
// data paths, node boundaries enforced by the ring, failures injectable.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cassalite/ring.hpp"
#include "cassalite/schema.hpp"
#include "cassalite/storage_engine.hpp"

namespace hpcla {
class ThreadPool;
}

namespace hpcla::cassalite {

/// Cassandra-style tunable consistency for reads and writes.
enum class Consistency : std::uint8_t { kOne, kQuorum, kAll };

std::string_view consistency_name(Consistency c) noexcept;

/// Number of replica acknowledgements required at replication factor rf.
constexpr std::size_t required_acks(Consistency c, std::size_t rf) noexcept {
  switch (c) {
    case Consistency::kOne: return 1;
    case Consistency::kQuorum: return rf / 2 + 1;
    case Consistency::kAll: return rf;
  }
  return rf;
}

struct ClusterOptions {
  std::size_t node_count = 4;
  std::size_t replication_factor = 3;
  std::size_t vnodes = 64;
  std::uint64_t ring_seed = 0xCA55A17E;
  /// Number of failure domains ("racks"); node i lives in rack i % racks.
  /// 0 disables rack awareness (SimpleStrategy placement).
  std::size_t racks = 0;
  StorageOptions storage;
};

/// Coordinator-level counters (atomics; safe to read anytime).
struct ClusterMetrics {
  std::uint64_t writes_ok = 0;
  std::uint64_t writes_unavailable = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_unavailable = 0;
  std::uint64_t hints_stored = 0;
  std::uint64_t hints_replayed = 0;
  std::uint64_t read_repairs = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  // ------------------------------------------------------------------ DDL

  /// Registers a table. Duplicate names are rejected.
  Status create_table(TableSchema schema);

  /// Schema lookup.
  [[nodiscard]] Result<TableSchema> schema(const std::string& table) const;

  /// All registered schemas, in creation order.
  [[nodiscard]] std::vector<TableSchema> schemas() const;

  // ----------------------------------------------------------------- data

  /// Coordinator write: assigns a write timestamp, routes to the replica
  /// set, stores hints for down replicas. Fails with UNAVAILABLE when
  /// fewer than required_acks replicas are alive.
  Status insert(const std::string& table, const std::string& partition_key,
                Row row, Consistency consistency = Consistency::kQuorum);

  /// Coordinator read: queries the required number of live replicas,
  /// reconciles last-write-wins, and repairs stale replicas it touched.
  /// Logically const: read repair only rewrites replica-internal state.
  [[nodiscard]] Result<ReadResult> select(
      const ReadQuery& query,
      Consistency consistency = Consistency::kOne) const;

  /// One page of a large partition (Cassandra-style paging): ascending
  /// clustering order, at most `page_size` rows, starting strictly after
  /// `resume_after` (nullopt = from the slice start). `query.limit` and
  /// `query.reverse` are ignored. The returned `next` token is set iff
  /// more rows remain; feed it back to continue.
  struct Page {
    std::vector<Row> rows;
    std::optional<ClusteringKey> next;
  };
  [[nodiscard]] Result<Page> select_page(
      const ReadQuery& query, std::size_t page_size,
      const std::optional<ClusteringKey>& resume_after = std::nullopt,
      Consistency consistency = Consistency::kOne) const;

  /// Multi-partition read fanned across `pool`; results align with
  /// `partition_keys` by index. At Consistency::kOne, keys are grouped by
  /// their first live replica and each node's batch is served against a
  /// single storage snapshot (StorageEngine::scan_partitions) — one task
  /// drives a whole node-local batch instead of issuing per-key reads.
  /// Higher consistency levels fan out per-key quorum selects instead.
  [[nodiscard]] std::vector<Result<ReadResult>> parallel_read(
      ThreadPool& pool, const std::string& table,
      const std::vector<std::string>& partition_keys,
      const ClusteringSlice& slice = {},
      Consistency consistency = Consistency::kOne) const;

  // ------------------------------------------------------------- topology

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t replication_factor() const noexcept {
    return options_.replication_factor;
  }
  [[nodiscard]] const TokenRing& ring() const noexcept { return ring_; }

  /// Replica set for a partition key (primary first); rack-aware when the
  /// cluster was configured with failure domains.
  [[nodiscard]] std::vector<NodeIndex> replicas_of(
      const std::string& partition_key) const {
    if (!rack_of_.empty()) {
      return ring_.replicas_rack_aware(partition_key,
                                       options_.replication_factor, rack_of_);
    }
    return ring_.replicas(partition_key, options_.replication_factor);
  }

  /// Rack of a node (-1 when rack awareness is disabled).
  [[nodiscard]] int rack_of(NodeIndex node) const {
    HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
    return rack_of_.empty() ? -1 : rack_of_[node];
  }

  /// Kills every node of one rack (fault-injection convenience).
  void kill_rack(int rack);

  // ------------------------------------------------------ fault injection

  /// Marks a node down: it stops acking writes and serving reads; writes
  /// destined for it are stored as hints on the coordinator.
  void kill_node(NodeIndex node);

  /// Brings a node back and replays its hinted mutations.
  /// Returns the number of hints replayed.
  std::size_t revive_node(NodeIndex node);

  /// Simulates a process crash on a node: its memtables are lost and
  /// recovered from the commit log (the node stays "up" throughout).
  /// Returns the number of replayed mutations.
  std::size_t crash_node(NodeIndex node);

  [[nodiscard]] bool is_alive(NodeIndex node) const;
  [[nodiscard]] std::size_t live_node_count() const;
  [[nodiscard]] std::size_t pending_hints() const;

  // --------------------------------------------- scan / locality support

  /// Direct access to a node's engine — sparklite workers use this to scan
  /// partitions resident on "their" node (data locality, paper §III-A).
  [[nodiscard]] const StorageEngine& engine(NodeIndex node) const;

  /// Partition keys of `table` whose *primary* replica is `node`.
  [[nodiscard]] std::vector<std::string> primary_partition_keys(
      NodeIndex node, const std::string& table) const;

  /// All partition keys of `table` across the cluster (deduplicated).
  [[nodiscard]] std::vector<std::string> all_partition_keys(
      const std::string& table) const;

  [[nodiscard]] ClusterMetrics metrics() const;

 private:
  struct Hint {
    NodeIndex target;
    WriteCommand cmd;
  };

  ClusterOptions options_;
  TokenRing ring_;
  std::vector<int> rack_of_;  ///< empty = rack-blind
  std::vector<std::unique_ptr<StorageEngine>> nodes_;
  std::unique_ptr<std::atomic<bool>[]> alive_;

  mutable std::mutex ddl_mu_;
  std::vector<TableSchema> schemas_;

  mutable std::mutex hints_mu_;
  std::vector<Hint> hints_;

  std::atomic<std::int64_t> write_clock_{1};

  // metrics
  mutable std::atomic<std::uint64_t> writes_ok_{0};
  mutable std::atomic<std::uint64_t> writes_unavailable_{0};
  mutable std::atomic<std::uint64_t> reads_ok_{0};
  mutable std::atomic<std::uint64_t> reads_unavailable_{0};
  mutable std::atomic<std::uint64_t> hints_stored_{0};
  mutable std::atomic<std::uint64_t> hints_replayed_{0};
  mutable std::atomic<std::uint64_t> read_repairs_{0};
};

}  // namespace hpcla::cassalite
