// The simulated cassalite cluster: N nodes (each a StorageEngine), a token
// ring for placement, replication with tunable consistency, hinted handoff
// for writes to down nodes, and read repair. This is the paper's
// "32 VM Cassandra cluster" scaled to an in-process simulation — identical
// data paths, node boundaries enforced by the ring, failures injectable.
//
// Since PR 9 the topology is *elastic*: the ring lives inside an
// epoch-stamped TopologyVersion published RCU-style (like PR 6's rowstore
// snapshots). add_node/remove_node/rebalance move token ranges in three
// stages — publish a pending ring (writers dual-write old+new owners),
// stream moved ranges to their new owners from a quorum of old owners,
// then commit the new ring — so no write acked at QUORUM is ever lost
// across a movement. Merkle-tree anti-entropy repair reconciles replicas
// that diverged while partitioned (DESIGN.md §15).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cassalite/ring.hpp"
#include "cassalite/schema.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/telemetry.hpp"

namespace hpcla {
class ThreadPool;
class FaultInjector;
class SimClock;
}

namespace hpcla::cassalite {

/// Cassandra-style tunable consistency for reads and writes.
enum class Consistency : std::uint8_t { kOne, kQuorum, kAll };

std::string_view consistency_name(Consistency c) noexcept;

/// Number of replica acknowledgements required at replication factor rf.
constexpr std::size_t required_acks(Consistency c, std::size_t rf) noexcept {
  switch (c) {
    case Consistency::kOne: return 1;
    case Consistency::kQuorum: return rf / 2 + 1;
    case Consistency::kAll: return rf;
  }
  return rf;
}

struct ClusterOptions {
  std::size_t node_count = 4;
  std::size_t replication_factor = 3;
  std::size_t vnodes = 64;
  std::uint64_t ring_seed = 0xCA55A17E;
  /// Number of failure domains ("racks"); node i lives in rack i % racks.
  /// 0 disables rack awareness (SimpleStrategy placement).
  std::size_t racks = 0;
  StorageOptions storage;

  // --- resilience knobs (virtual milliseconds; see DESIGN.md §10) ---

  /// Soft per-replica deadline: a replica answering slower than this is
  /// counted as timed out and does not contribute to the consistency level.
  std::int64_t read_timeout_ms = 1000;
  std::int64_t write_timeout_ms = 1000;
  /// Launch one speculative read on the next-best replica when the
  /// consistency level has not been met after this long.
  std::int64_t speculative_delay_ms = 50;
  bool speculative_retry = true;
  /// Transient replica errors are retried on the same replica up to this
  /// many times, with exponential backoff + decorrelated jitter.
  std::size_t max_replica_retries = 2;
  std::int64_t retry_backoff_base_ms = 4;
  std::int64_t retry_backoff_max_ms = 64;
  /// At QUORUM/ALL, ship one data response plus digests; fall back to full
  /// reads + repair only on digest mismatch.
  bool digest_reads = true;
  /// Hinted-handoff bounds, enforced per target node (sharded queues).
  /// The default absorbs a full batch-ingest day with one replica down;
  /// oldest hints are dropped first once the bound is hit.
  std::size_t max_hints_per_node = 65536;
  std::int64_t hint_ttl_ms = 600000;  // 10 virtual minutes

  // --- elastic-topology knobs (DESIGN.md §15) ---

  /// Upper bound on engine slots across the cluster's lifetime (node
  /// additions never reallocate the engine/hint/liveness arrays). 0 means
  /// node_count + 16.
  std::size_t max_node_count = 0;
  /// Merkle tree depth for anti-entropy repair: each repaired range splits
  /// into 2^depth leaves; only divergent leaves stream rows.
  int repair_merkle_depth = 4;
  /// Which node the coordinator logic "runs on" for partition-link checks
  /// (a partitioned coordinator cannot reach replicas across the cut).
  std::size_t coordinator_node = 0;
};

/// Coordinator-level counters (atomics; safe to read anytime).
struct ClusterMetrics {
  std::uint64_t writes_ok = 0;
  std::uint64_t writes_unavailable = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_unavailable = 0;
  std::uint64_t hints_stored = 0;
  std::uint64_t hints_replayed = 0;
  std::uint64_t read_repairs = 0;
  // resilience counters
  std::uint64_t read_retries = 0;
  std::uint64_t write_retries = 0;
  std::uint64_t speculative_reads = 0;
  std::uint64_t replica_timeouts = 0;
  std::uint64_t digest_mismatches = 0;
  std::uint64_t hints_expired = 0;
  std::uint64_t hints_overflowed = 0;
  // elastic topology + anti-entropy counters
  std::uint64_t topology_changes = 0;     ///< committed ring transitions
  std::uint64_t pending_range_writes = 0; ///< writes dual-routed to movers
  std::uint64_t stream_rows_sent = 0;     ///< rows copied by rebalance streams
  std::uint64_t repairs_scheduled = 0;    ///< repair(table) invocations
  std::uint64_t ranges_streamed = 0;      ///< moved ranges + divergent leaves
  std::uint64_t repair_rows_sent = 0;     ///< rows applied by repair
};

/// Per-read coordinator trace: how the read completed under faults.
/// Latencies are virtual (fault-injected); 0 without an injector.
struct ReadTrace {
  ReadResult result;
  std::int64_t latency_ms = 0;
  std::size_t replicas_contacted = 0;
  bool speculated = false;
  bool digest_matched = true;
};

/// Result of one anti-entropy repair pass (see Cluster::repair).
struct RepairReport {
  std::size_t tables = 0;            ///< tables repaired
  std::size_t ranges_checked = 0;    ///< ownership ranges Merkle-compared
  std::size_t ranges_diverged = 0;   ///< divergent Merkle leaves found
  std::size_t rows_streamed = 0;     ///< rows applied to stale replicas
  std::size_t replicas_repaired = 0; ///< (replica, leaf) repair applications
};

/// Movement stages surfaced to the topology hook (chaos tests inject
/// partitions and traffic at exact protocol points through this).
enum class TopologyStage { kPendingPublished, kStreamed, kCommitted };

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  // ------------------------------------------------------------------ DDL

  /// Registers a table. Duplicate names are rejected.
  Status create_table(TableSchema schema);

  /// Schema lookup.
  [[nodiscard]] Result<TableSchema> schema(const std::string& table) const;

  /// All registered schemas, in creation order.
  [[nodiscard]] std::vector<TableSchema> schemas() const;

  // ----------------------------------------------------------------- data

  /// Coordinator write: assigns a write timestamp, routes to the replica
  /// set, stores hints for down replicas. Fails with UNAVAILABLE when
  /// fewer than required_acks replicas are alive. During a topology
  /// movement the write is dual-routed: natural replicas of the committed
  /// ring plus the pending ring's extra owners, all of which must ack
  /// (pending-range writes) so the post-commit quorum always intersects
  /// the acked set.
  Status insert(const std::string& table, const std::string& partition_key,
                Row row, Consistency consistency = Consistency::kQuorum);

  /// Coordinator read: queries the required number of live replicas,
  /// reconciles last-write-wins, and repairs stale replicas it touched.
  /// Logically const: read repair only rewrites replica-internal state.
  [[nodiscard]] Result<ReadResult> select(
      const ReadQuery& query,
      Consistency consistency = Consistency::kOne) const;

  /// `select` plus a coordinator trace (virtual latency, speculation,
  /// digest outcome) — the observability hook for the chaos harness and
  /// the speculative-retry latency tests.
  [[nodiscard]] Result<ReadTrace> select_traced(
      const ReadQuery& query,
      Consistency consistency = Consistency::kOne) const;

  /// One page of a large partition (Cassandra-style paging): ascending
  /// clustering order, at most `page_size` rows, starting strictly after
  /// `resume_after` (nullopt = from the slice start). `query.limit` and
  /// `query.reverse` are ignored. The returned `next` token is set iff
  /// more rows remain; feed it back to continue.
  struct Page {
    std::vector<Row> rows;
    std::optional<ClusteringKey> next;
  };
  [[nodiscard]] Result<Page> select_page(
      const ReadQuery& query, std::size_t page_size,
      const std::optional<ClusteringKey>& resume_after = std::nullopt,
      Consistency consistency = Consistency::kOne) const;

  /// Multi-partition read fanned across `pool`; results align with
  /// `partition_keys` by index. At Consistency::kOne, keys are grouped by
  /// their first live replica and each node's batch is served against a
  /// single storage snapshot (StorageEngine::scan_partitions) — one task
  /// drives a whole node-local batch instead of issuing per-key reads.
  /// Higher consistency levels fan out per-key quorum selects instead.
  [[nodiscard]] std::vector<Result<ReadResult>> parallel_read(
      ThreadPool& pool, const std::string& table,
      const std::vector<std::string>& partition_keys,
      const ClusteringSlice& slice = {},
      Consistency consistency = Consistency::kOne) const;

  // ------------------------------------------------------------- topology

  /// Engine slots ever created (index space). Removed members keep their
  /// slot, so this only grows; use member_count() for ring membership.
  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_slots_.load(std::memory_order_acquire);
  }
  /// Current ring members.
  [[nodiscard]] std::size_t member_count() const noexcept {
    return ring().node_count();
  }
  [[nodiscard]] bool is_member(NodeIndex node) const noexcept {
    return ring().is_member(node);
  }
  [[nodiscard]] std::size_t replication_factor() const noexcept {
    return options_.replication_factor;
  }
  /// The committed ring of the current topology version. The reference
  /// stays valid for the cluster's lifetime (superseded rings are pinned
  /// by the topology history), but a new ring may be published at any
  /// time — re-call for fresh placement.
  [[nodiscard]] const TokenRing& ring() const noexcept;

  /// Epoch of the current topology version (bumps on every publish:
  /// pending, commit, and abort).
  [[nodiscard]] std::uint64_t ring_epoch() const noexcept;

  /// True while a movement's pending ring is published but not committed.
  [[nodiscard]] bool movement_in_progress() const noexcept;

  /// Adds a fresh node (new StorageEngine slot) to the ring and streams
  /// its gained ranges from a quorum of the old owners before committing.
  /// `vnodes` 0 means the cluster default; `rack` -1 means the slot's
  /// default failure domain (index % racks). Returns the new node's index.
  Result<NodeIndex> add_node(std::size_t vnodes = 0, int rack = -1,
                             std::uint64_t token_seed = 0x5EEDAD0Dull);

  /// Removes a member from the ring (decommission): its ranges fall to
  /// the remaining members, streamed before the commit. The engine slot
  /// and its data survive — only ownership changes. Refused when it would
  /// leave fewer members than the replication factor.
  Status remove_node(NodeIndex node);

  /// Re-derives every member's tokens from `token_seed` and migrates all
  /// moved ranges (a full elastic rebalance).
  Status rebalance(std::uint64_t token_seed);

  /// Ranges served by `node` as a streaming source across all movements
  /// (introspection for the suspicion-aware source-selection tests).
  [[nodiscard]] std::uint64_t streams_served(NodeIndex node) const;

  /// Observes movement stages (chaos tests schedule partitions and traffic
  /// at exact protocol points). Called with topology lock held — do not
  /// call topology operations from inside. Wire up before traffic starts.
  void set_topology_hook(std::function<void(TopologyStage)> hook);

  // --------------------------------------------------------- anti-entropy

  /// Merkle anti-entropy repair of one table: every ownership range of the
  /// committed ring is hash-tree-compared across its live replicas; only
  /// divergent leaves stream rows, reconciled last-write-wins. Replicas
  /// end byte-identical on every compared range.
  Result<RepairReport> repair(const std::string& table);

  /// repair() over every registered table, summed.
  Result<RepairReport> repair_all();

  /// Replica set for a partition key (primary first); rack-aware when the
  /// cluster was configured with failure domains.
  [[nodiscard]] std::vector<NodeIndex> replicas_of(
      const std::string& partition_key) const {
    return replicas_in(ring(), partition_key);
  }

  /// Rack of a node (-1 when rack awareness is disabled).
  [[nodiscard]] int rack_of(NodeIndex node) const {
    HPCLA_CHECK_MSG(node < node_count(), "node index out of range");
    return rack_aware_ ? rack_of_[node] : -1;
  }

  /// Kills every node of one rack (fault-injection convenience).
  void kill_rack(int rack);

  // ------------------------------------------------------ fault injection

  /// Attaches a fault injector: its crash windows extend node liveness,
  /// its error rates drive transient read/write failures, its latencies
  /// drive timeouts and speculation, and its partition links gate
  /// coordinator<->replica traffic. Also forwards to every node's
  /// StorageEngine and (when no clock was set) adopts the injector's
  /// SimClock for hint TTLs. Wire up before traffic starts.
  void set_fault_injector(FaultInjector* injector);

  /// Virtual clock for hint TTL accounting (nullptr = TTLs never fire).
  void set_clock(SimClock* clock);

  /// Suspicion oracle consulted when ordering replicas for reads and when
  /// choosing streaming sources: suspected nodes are tried last (reads)
  /// or excluded (streams). Typically wraps Gossiper::suspects from the
  /// coordinator's viewpoint. Must be safe to call concurrently; wire up
  /// before traffic starts.
  void set_suspicion_source(std::function<bool(NodeIndex)> suspected);

  /// Invoked immediately before streaming sources are chosen, so the
  /// failure detector can refresh its verdicts (e.g. run gossip rounds)
  /// instead of acting on stale suspicion.
  void set_suspicion_refresher(std::function<void()> refresher);

  /// Replica read order for a key: up replicas only, unsuspected before
  /// suspected, ring order otherwise (introspection for ordering tests).
  [[nodiscard]] std::vector<NodeIndex> read_order_of(
      const std::string& partition_key) const;

  /// Marks a node down: it stops acking writes and serving reads; writes
  /// destined for it are stored as hints on the coordinator.
  void kill_node(NodeIndex node);

  /// Brings a node back and replays its hinted mutations.
  /// Returns the number of hints replayed.
  std::size_t revive_node(NodeIndex node);

  /// Replays (and drops) the hint queue of one node, skipping TTL-expired
  /// entries. Safe to call anytime; a no-op for an empty queue. Returns
  /// the number of hints applied.
  std::size_t replay_hints(NodeIndex node);

  /// Replays hints for every node currently up and reachable from the
  /// coordinator (chaos-heal convenience).
  std::size_t replay_all_hints();

  /// Simulates a process crash on a node: its memtables are lost and
  /// recovered from the commit log (the node stays "up" throughout).
  /// Returns the number of replayed mutations.
  std::size_t crash_node(NodeIndex node);

  [[nodiscard]] bool is_alive(NodeIndex node) const;
  [[nodiscard]] std::size_t live_node_count() const;
  [[nodiscard]] std::size_t pending_hints() const;

  // --------------------------------------------- scan / locality support

  /// Direct access to a node's engine — sparklite workers use this to scan
  /// partitions resident on "their" node (data locality, paper §III-A).
  [[nodiscard]] const StorageEngine& engine(NodeIndex node) const;

  /// Partition keys of `table` whose *primary* replica is `node`.
  [[nodiscard]] std::vector<std::string> primary_partition_keys(
      NodeIndex node, const std::string& table) const;

  /// All partition keys of `table` across the cluster (deduplicated).
  [[nodiscard]] std::vector<std::string> all_partition_keys(
      const std::string& table) const;

  [[nodiscard]] ClusterMetrics metrics() const;

 private:
  struct Hint {
    WriteCommand cmd;
    std::int64_t stored_at_ms = 0;  ///< SimClock time; TTL anchor
  };

  /// Per-target-node hint queue: its own mutex, FIFO, TTL + size bound.
  /// Sharding means a write hinting node A never contends with replay or
  /// writes hinting node B (the old design took one global mutex on every
  /// operation — ROADMAP open item).
  struct HintShard {
    mutable std::mutex mu;
    std::deque<Hint> q;
  };

  /// One atomically-published topology version. `committed` is the ring
  /// reads use; during a movement `pending` carries the successor ring and
  /// `moved` its diff, and writers dual-route. `inflight` counts writers
  /// currently routing against this version — the movement coordinator
  /// drains it after publishing a successor, so no write straddles the
  /// stream-then-commit boundary unseen (RCU grace period).
  struct TopologyVersion {
    std::uint64_t epoch = 0;
    std::shared_ptr<const TokenRing> committed;
    std::shared_ptr<const TokenRing> pending;  ///< null outside movements
    std::vector<MovedRange> moved;
    mutable std::atomic<std::uint64_t> inflight{0};
  };

  /// One coordinator attempt against one replica, resolved in virtual
  /// time. `end` is when the coordinator learns the outcome (response,
  /// final retry failure, or soft-timeout expiry).
  struct ReplicaTry {
    NodeIndex replica = 0;
    std::int64_t start = 0;
    std::int64_t end = 0;
    bool usable = false;    ///< responded ok within read_timeout_ms
    bool timed_out = false;
    bool hedged = false;    ///< launched as the speculative extra read
    std::size_t retries = 0;  ///< transient-error retries consumed
  };

  [[nodiscard]] const TopologyVersion* topo() const noexcept {
    return topo_.load(std::memory_order_acquire);
  }
  /// Pins the current version for a write: increments inflight and
  /// re-checks publication so the movement coordinator's drain is exact.
  [[nodiscard]] const TopologyVersion* enter_write() const;
  void leave_write(const TopologyVersion* v) const;
  /// Publishes `next` (under topo_mu_) and waits for the superseded
  /// version's inflight writers to drain.
  void publish_and_drain(std::shared_ptr<TopologyVersion> next);
  /// Shared movement driver: pending publish -> stream -> commit.
  Status apply_topology_change_locked(
      std::shared_ptr<const TokenRing> next_ring);
  /// Streams every moved range to its gained owners from a quorum of old
  /// owners (suspicion- and partition-aware source selection).
  Status stream_moved_ranges(const std::vector<MovedRange>& moved);
  /// Union of registered schemas and every engine's stored tables.
  [[nodiscard]] std::vector<std::string> all_table_names() const;

  /// Replica set of `key` in an explicit ring (rack-aware when enabled).
  [[nodiscard]] std::vector<NodeIndex> replicas_in(
      const TokenRing& ring, const std::string& key) const {
    if (rack_aware_) {
      return ring.replicas_rack_aware(key, options_.replication_factor,
                                      rack_of_);
    }
    return ring.replicas(key, options_.replication_factor);
  }

  /// Node accepts traffic: marked alive AND not inside an injected crash
  /// window.
  [[nodiscard]] bool replica_up(NodeIndex node) const;
  /// Coordinator can exchange a round trip with `node` (no partition link
  /// down in either direction).
  [[nodiscard]] bool reachable(NodeIndex node) const;
  [[nodiscard]] std::int64_t now_ms() const noexcept;
  /// Read preference order over an explicit replica set (up + reachable
  /// replicas only, unsuspected first).
  [[nodiscard]] std::vector<NodeIndex> order_replicas(
      const std::vector<NodeIndex>& replicas) const;
  /// Appends to `node`'s hint shard, enforcing TTL + size bound.
  void store_hint(NodeIndex node, const WriteCommand& cmd);
  /// Deterministic decorrelated jitter for a retry backoff.
  [[nodiscard]] std::int64_t backoff_ms(std::uint64_t salt,
                                        std::int64_t prev) const;
  /// Simulates one replica read try (retry loop + backoff) in virtual time.
  [[nodiscard]] ReplicaTry run_read_try(NodeIndex replica, std::int64_t start,
                                        std::uint64_t salt) const;
  /// Full-partition read straight off one replica (repair/stream helper).
  [[nodiscard]] std::vector<Row> read_partition(NodeIndex node,
                                                const std::string& table,
                                                const std::string& key) const;

  ClusterOptions options_;
  std::size_t capacity_ = 0;  ///< engine-slot bound (max_node_count)
  bool rack_aware_ = false;
  std::vector<int> rack_of_;  ///< capacity_-sized; only members are read
  std::atomic<std::size_t> node_slots_{0};
  std::unique_ptr<std::unique_ptr<StorageEngine>[]> nodes_;
  std::unique_ptr<std::atomic<bool>[]> alive_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> streams_served_;

  // Topology versions: readers follow the raw pointer (lock-free); the
  // history vector (guarded by topo_mu_) pins every published version for
  // the cluster's lifetime so ring() references never dangle.
  mutable std::mutex topo_mu_;
  std::vector<std::shared_ptr<TopologyVersion>> topo_history_;
  mutable std::atomic<const TopologyVersion*> topo_{nullptr};

  // Fault wiring: raw pointers, not owned; set before traffic starts.
  FaultInjector* injector_ = nullptr;
  SimClock* clock_ = nullptr;
  std::function<bool(NodeIndex)> suspected_;
  std::function<void()> suspicion_refresher_;
  std::function<void(TopologyStage)> topology_hook_;

  mutable std::mutex ddl_mu_;
  std::vector<TableSchema> schemas_;

  std::unique_ptr<HintShard[]> hint_shards_;

  std::atomic<std::int64_t> write_clock_{1};

  // metrics
  mutable std::atomic<std::uint64_t> writes_ok_{0};
  mutable std::atomic<std::uint64_t> writes_unavailable_{0};
  mutable std::atomic<std::uint64_t> reads_ok_{0};
  mutable std::atomic<std::uint64_t> reads_unavailable_{0};
  mutable std::atomic<std::uint64_t> hints_stored_{0};
  mutable std::atomic<std::uint64_t> hints_replayed_{0};
  mutable std::atomic<std::uint64_t> read_repairs_{0};
  mutable std::atomic<std::uint64_t> read_retries_{0};
  mutable std::atomic<std::uint64_t> write_retries_{0};
  mutable std::atomic<std::uint64_t> speculative_reads_{0};
  mutable std::atomic<std::uint64_t> replica_timeouts_{0};
  mutable std::atomic<std::uint64_t> digest_mismatches_{0};
  mutable std::atomic<std::uint64_t> hints_expired_{0};
  mutable std::atomic<std::uint64_t> hints_overflowed_{0};
  mutable std::atomic<std::uint64_t> topology_changes_{0};
  mutable std::atomic<std::uint64_t> pending_range_writes_{0};
  mutable std::atomic<std::uint64_t> stream_rows_sent_{0};
  mutable std::atomic<std::uint64_t> repairs_scheduled_{0};
  mutable std::atomic<std::uint64_t> ranges_streamed_{0};
  mutable std::atomic<std::uint64_t> repair_rows_sent_{0};

  // Registry collector exposing the counters above plus the aggregated
  // per-node StorageMetrics under `cassalite.*` names (DESIGN.md §11).
  // Last member: it captures `this`, so it must deregister first.
  telemetry::CollectorHandle telemetry_;
};

}  // namespace hpcla::cassalite
