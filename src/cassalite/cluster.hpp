// The simulated cassalite cluster: N nodes (each a StorageEngine), a token
// ring for placement, replication with tunable consistency, hinted handoff
// for writes to down nodes, and read repair. This is the paper's
// "32 VM Cassandra cluster" scaled to an in-process simulation — identical
// data paths, node boundaries enforced by the ring, failures injectable.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cassalite/ring.hpp"
#include "cassalite/schema.hpp"
#include "cassalite/storage_engine.hpp"
#include "common/telemetry.hpp"

namespace hpcla {
class ThreadPool;
class FaultInjector;
class SimClock;
}

namespace hpcla::cassalite {

/// Cassandra-style tunable consistency for reads and writes.
enum class Consistency : std::uint8_t { kOne, kQuorum, kAll };

std::string_view consistency_name(Consistency c) noexcept;

/// Number of replica acknowledgements required at replication factor rf.
constexpr std::size_t required_acks(Consistency c, std::size_t rf) noexcept {
  switch (c) {
    case Consistency::kOne: return 1;
    case Consistency::kQuorum: return rf / 2 + 1;
    case Consistency::kAll: return rf;
  }
  return rf;
}

struct ClusterOptions {
  std::size_t node_count = 4;
  std::size_t replication_factor = 3;
  std::size_t vnodes = 64;
  std::uint64_t ring_seed = 0xCA55A17E;
  /// Number of failure domains ("racks"); node i lives in rack i % racks.
  /// 0 disables rack awareness (SimpleStrategy placement).
  std::size_t racks = 0;
  StorageOptions storage;

  // --- resilience knobs (virtual milliseconds; see DESIGN.md §10) ---

  /// Soft per-replica deadline: a replica answering slower than this is
  /// counted as timed out and does not contribute to the consistency level.
  std::int64_t read_timeout_ms = 1000;
  std::int64_t write_timeout_ms = 1000;
  /// Launch one speculative read on the next-best replica when the
  /// consistency level has not been met after this long.
  std::int64_t speculative_delay_ms = 50;
  bool speculative_retry = true;
  /// Transient replica errors are retried on the same replica up to this
  /// many times, with exponential backoff + decorrelated jitter.
  std::size_t max_replica_retries = 2;
  std::int64_t retry_backoff_base_ms = 4;
  std::int64_t retry_backoff_max_ms = 64;
  /// At QUORUM/ALL, ship one data response plus digests; fall back to full
  /// reads + repair only on digest mismatch.
  bool digest_reads = true;
  /// Hinted-handoff bounds, enforced per target node (sharded queues).
  /// The default absorbs a full batch-ingest day with one replica down;
  /// oldest hints are dropped first once the bound is hit.
  std::size_t max_hints_per_node = 65536;
  std::int64_t hint_ttl_ms = 600000;  // 10 virtual minutes
};

/// Coordinator-level counters (atomics; safe to read anytime).
struct ClusterMetrics {
  std::uint64_t writes_ok = 0;
  std::uint64_t writes_unavailable = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_unavailable = 0;
  std::uint64_t hints_stored = 0;
  std::uint64_t hints_replayed = 0;
  std::uint64_t read_repairs = 0;
  // resilience counters
  std::uint64_t read_retries = 0;
  std::uint64_t write_retries = 0;
  std::uint64_t speculative_reads = 0;
  std::uint64_t replica_timeouts = 0;
  std::uint64_t digest_mismatches = 0;
  std::uint64_t hints_expired = 0;
  std::uint64_t hints_overflowed = 0;
};

/// Per-read coordinator trace: how the read completed under faults.
/// Latencies are virtual (fault-injected); 0 without an injector.
struct ReadTrace {
  ReadResult result;
  std::int64_t latency_ms = 0;
  std::size_t replicas_contacted = 0;
  bool speculated = false;
  bool digest_matched = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  // ------------------------------------------------------------------ DDL

  /// Registers a table. Duplicate names are rejected.
  Status create_table(TableSchema schema);

  /// Schema lookup.
  [[nodiscard]] Result<TableSchema> schema(const std::string& table) const;

  /// All registered schemas, in creation order.
  [[nodiscard]] std::vector<TableSchema> schemas() const;

  // ----------------------------------------------------------------- data

  /// Coordinator write: assigns a write timestamp, routes to the replica
  /// set, stores hints for down replicas. Fails with UNAVAILABLE when
  /// fewer than required_acks replicas are alive.
  Status insert(const std::string& table, const std::string& partition_key,
                Row row, Consistency consistency = Consistency::kQuorum);

  /// Coordinator read: queries the required number of live replicas,
  /// reconciles last-write-wins, and repairs stale replicas it touched.
  /// Logically const: read repair only rewrites replica-internal state.
  [[nodiscard]] Result<ReadResult> select(
      const ReadQuery& query,
      Consistency consistency = Consistency::kOne) const;

  /// `select` plus a coordinator trace (virtual latency, speculation,
  /// digest outcome) — the observability hook for the chaos harness and
  /// the speculative-retry latency tests.
  [[nodiscard]] Result<ReadTrace> select_traced(
      const ReadQuery& query,
      Consistency consistency = Consistency::kOne) const;

  /// One page of a large partition (Cassandra-style paging): ascending
  /// clustering order, at most `page_size` rows, starting strictly after
  /// `resume_after` (nullopt = from the slice start). `query.limit` and
  /// `query.reverse` are ignored. The returned `next` token is set iff
  /// more rows remain; feed it back to continue.
  struct Page {
    std::vector<Row> rows;
    std::optional<ClusteringKey> next;
  };
  [[nodiscard]] Result<Page> select_page(
      const ReadQuery& query, std::size_t page_size,
      const std::optional<ClusteringKey>& resume_after = std::nullopt,
      Consistency consistency = Consistency::kOne) const;

  /// Multi-partition read fanned across `pool`; results align with
  /// `partition_keys` by index. At Consistency::kOne, keys are grouped by
  /// their first live replica and each node's batch is served against a
  /// single storage snapshot (StorageEngine::scan_partitions) — one task
  /// drives a whole node-local batch instead of issuing per-key reads.
  /// Higher consistency levels fan out per-key quorum selects instead.
  [[nodiscard]] std::vector<Result<ReadResult>> parallel_read(
      ThreadPool& pool, const std::string& table,
      const std::vector<std::string>& partition_keys,
      const ClusteringSlice& slice = {},
      Consistency consistency = Consistency::kOne) const;

  // ------------------------------------------------------------- topology

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t replication_factor() const noexcept {
    return options_.replication_factor;
  }
  [[nodiscard]] const TokenRing& ring() const noexcept { return ring_; }

  /// Replica set for a partition key (primary first); rack-aware when the
  /// cluster was configured with failure domains.
  [[nodiscard]] std::vector<NodeIndex> replicas_of(
      const std::string& partition_key) const {
    if (!rack_of_.empty()) {
      return ring_.replicas_rack_aware(partition_key,
                                       options_.replication_factor, rack_of_);
    }
    return ring_.replicas(partition_key, options_.replication_factor);
  }

  /// Rack of a node (-1 when rack awareness is disabled).
  [[nodiscard]] int rack_of(NodeIndex node) const {
    HPCLA_CHECK_MSG(node < nodes_.size(), "node index out of range");
    return rack_of_.empty() ? -1 : rack_of_[node];
  }

  /// Kills every node of one rack (fault-injection convenience).
  void kill_rack(int rack);

  // ------------------------------------------------------ fault injection

  /// Attaches a fault injector: its crash windows extend node liveness,
  /// its error rates drive transient read/write failures, its latencies
  /// drive timeouts and speculation. Also forwards to every node's
  /// StorageEngine and (when no clock was set) adopts the injector's
  /// SimClock for hint TTLs. Wire up before traffic starts.
  void set_fault_injector(FaultInjector* injector);

  /// Virtual clock for hint TTL accounting (nullptr = TTLs never fire).
  void set_clock(SimClock* clock);

  /// Suspicion oracle consulted when ordering replicas for reads: suspected
  /// nodes are tried last. Typically wraps Gossiper::suspects from the
  /// coordinator's viewpoint. Must be safe to call concurrently; wire up
  /// before traffic starts.
  void set_suspicion_source(std::function<bool(NodeIndex)> suspected);

  /// Replica read order for a key: up replicas only, unsuspected before
  /// suspected, ring order otherwise (introspection for ordering tests).
  [[nodiscard]] std::vector<NodeIndex> read_order_of(
      const std::string& partition_key) const;

  /// Marks a node down: it stops acking writes and serving reads; writes
  /// destined for it are stored as hints on the coordinator.
  void kill_node(NodeIndex node);

  /// Brings a node back and replays its hinted mutations.
  /// Returns the number of hints replayed.
  std::size_t revive_node(NodeIndex node);

  /// Replays (and drops) the hint queue of one node, skipping TTL-expired
  /// entries. Safe to call anytime; a no-op for an empty queue. Returns
  /// the number of hints applied.
  std::size_t replay_hints(NodeIndex node);

  /// Replays hints for every node currently up (chaos-heal convenience).
  std::size_t replay_all_hints();

  /// Simulates a process crash on a node: its memtables are lost and
  /// recovered from the commit log (the node stays "up" throughout).
  /// Returns the number of replayed mutations.
  std::size_t crash_node(NodeIndex node);

  [[nodiscard]] bool is_alive(NodeIndex node) const;
  [[nodiscard]] std::size_t live_node_count() const;
  [[nodiscard]] std::size_t pending_hints() const;

  // --------------------------------------------- scan / locality support

  /// Direct access to a node's engine — sparklite workers use this to scan
  /// partitions resident on "their" node (data locality, paper §III-A).
  [[nodiscard]] const StorageEngine& engine(NodeIndex node) const;

  /// Partition keys of `table` whose *primary* replica is `node`.
  [[nodiscard]] std::vector<std::string> primary_partition_keys(
      NodeIndex node, const std::string& table) const;

  /// All partition keys of `table` across the cluster (deduplicated).
  [[nodiscard]] std::vector<std::string> all_partition_keys(
      const std::string& table) const;

  [[nodiscard]] ClusterMetrics metrics() const;

 private:
  struct Hint {
    WriteCommand cmd;
    std::int64_t stored_at_ms = 0;  ///< SimClock time; TTL anchor
  };

  /// Per-target-node hint queue: its own mutex, FIFO, TTL + size bound.
  /// Sharding means a write hinting node A never contends with replay or
  /// writes hinting node B (the old design took one global mutex on every
  /// operation — ROADMAP open item).
  struct HintShard {
    mutable std::mutex mu;
    std::deque<Hint> q;
  };

  /// One coordinator attempt against one replica, resolved in virtual
  /// time. `end` is when the coordinator learns the outcome (response,
  /// final retry failure, or soft-timeout expiry).
  struct ReplicaTry {
    NodeIndex replica = 0;
    std::int64_t start = 0;
    std::int64_t end = 0;
    bool usable = false;    ///< responded ok within read_timeout_ms
    bool timed_out = false;
    bool hedged = false;    ///< launched as the speculative extra read
    std::size_t retries = 0;  ///< transient-error retries consumed
  };

  /// Node accepts traffic: marked alive AND not inside an injected crash
  /// window.
  [[nodiscard]] bool replica_up(NodeIndex node) const;
  [[nodiscard]] std::int64_t now_ms() const noexcept;
  /// Read preference order over an explicit replica set (up replicas only,
  /// unsuspected first).
  [[nodiscard]] std::vector<NodeIndex> order_replicas(
      const std::vector<NodeIndex>& replicas) const;
  /// Appends to `node`'s hint shard, enforcing TTL + size bound.
  void store_hint(NodeIndex node, const WriteCommand& cmd);
  /// Deterministic decorrelated jitter for a retry backoff.
  [[nodiscard]] std::int64_t backoff_ms(std::uint64_t salt,
                                        std::int64_t prev) const;
  /// Simulates one replica read try (retry loop + backoff) in virtual time.
  [[nodiscard]] ReplicaTry run_read_try(NodeIndex replica, std::int64_t start,
                                        std::uint64_t salt) const;

  ClusterOptions options_;
  TokenRing ring_;
  std::vector<int> rack_of_;  ///< empty = rack-blind
  std::vector<std::unique_ptr<StorageEngine>> nodes_;
  std::unique_ptr<std::atomic<bool>[]> alive_;

  // Fault wiring: raw pointers, not owned; set before traffic starts.
  FaultInjector* injector_ = nullptr;
  SimClock* clock_ = nullptr;
  std::function<bool(NodeIndex)> suspected_;

  mutable std::mutex ddl_mu_;
  std::vector<TableSchema> schemas_;

  std::unique_ptr<HintShard[]> hint_shards_;

  std::atomic<std::int64_t> write_clock_{1};

  // metrics
  mutable std::atomic<std::uint64_t> writes_ok_{0};
  mutable std::atomic<std::uint64_t> writes_unavailable_{0};
  mutable std::atomic<std::uint64_t> reads_ok_{0};
  mutable std::atomic<std::uint64_t> reads_unavailable_{0};
  mutable std::atomic<std::uint64_t> hints_stored_{0};
  mutable std::atomic<std::uint64_t> hints_replayed_{0};
  mutable std::atomic<std::uint64_t> read_repairs_{0};
  mutable std::atomic<std::uint64_t> read_retries_{0};
  mutable std::atomic<std::uint64_t> write_retries_{0};
  mutable std::atomic<std::uint64_t> speculative_reads_{0};
  mutable std::atomic<std::uint64_t> replica_timeouts_{0};
  mutable std::atomic<std::uint64_t> digest_mismatches_{0};
  mutable std::atomic<std::uint64_t> hints_expired_{0};
  mutable std::atomic<std::uint64_t> hints_overflowed_{0};

  // Registry collector exposing the counters above plus the aggregated
  // per-node StorageMetrics under `cassalite.*` names (DESIGN.md §11).
  // Last member: it captures `this`, so it must deregister first.
  telemetry::CollectorHandle telemetry_;
};

}  // namespace hpcla::cassalite
