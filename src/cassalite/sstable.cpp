#include "cassalite/sstable.hpp"

#include <algorithm>
#include <map>

namespace hpcla::cassalite {

SSTable::SSTable(std::uint64_t generation,
                 std::vector<Partition> sorted_partitions,
                 const ExtentOptions* extent_opts)
    : generation_(generation),
      columnar_(extent_opts != nullptr),
      bloom_(std::max<std::size_t>(sorted_partitions.size(), 8)) {
  partitions_.reserve(sorted_partitions.size());
  for (auto& p : sorted_partitions) {
    rows_ += p.rows.size();
    bloom_.insert(p.key);
    Stored s;
    s.key = std::move(p.key);
    if (columnar_) {
      s.extent = ColumnarExtent::encode(p.rows, *extent_opts);
      raw_bytes_ += s.extent.raw_bytes();
      encoded_bytes_ += s.extent.encoded_bytes();
    } else {
      s.rows = std::move(p.rows);
    }
    partitions_.push_back(std::move(s));
  }
}

std::shared_ptr<SSTable> SSTable::from_extent_file(
    std::shared_ptr<ExtentFile> file, const ExtentOptions& opts) {
  const ExtentFileFooter& footer = file->footer();
  auto table = std::shared_ptr<SSTable>(
      new SSTable(footer.generation, footer.partitions.size()));
  table->columnar_ = true;
  table->file_ = file;
  table->partitions_.reserve(footer.partitions.size());
  for (const auto& part : footer.partitions) {
    table->rows_ += static_cast<std::size_t>(part.rows);
    table->bloom_.insert(part.key);
    Stored s;
    s.key = part.key;
    s.extent = ColumnarExtent::from_file(file, part.groups, part.rows,
                                         part.raw_bytes, opts);
    table->raw_bytes_ += s.extent.raw_bytes();
    table->encoded_bytes_ += s.extent.encoded_bytes();
    table->partitions_.push_back(std::move(s));
  }
  return table;
}

void SSTable::persist_to(ExtentFileWriter& writer, ExtentFileFooter& footer) {
  for (auto& p : partitions_) {
    p.extent.persist(
        [&writer](std::string_view block) { return writer.append(block); });
    ExtentFilePartition part;
    part.key = p.key;
    part.rows = p.extent.row_count();
    part.raw_bytes = p.extent.raw_bytes();
    part.groups = p.extent.group_metas();
    footer.partitions.push_back(std::move(part));
  }
}

void SSTable::attach_file(const std::shared_ptr<ExtentFile>& file) {
  file_ = file;
  for (auto& p : partitions_) p.extent.attach_file(file);
}

bool SSTable::read(const std::string& partition_key,
                   const ClusteringSlice& slice, std::vector<Row>& out) const {
  if (!bloom_.may_contain(partition_key)) return false;
  const auto it = std::lower_bound(
      partitions_.begin(), partitions_.end(), partition_key,
      [](const Stored& p, const std::string& k) { return p.key < k; });
  if (it == partitions_.end() || it->key != partition_key) return true;
  if (columnar_) {
    it->extent.read(slice, out);
    return true;
  }
  const auto& rows = it->rows;
  auto begin = rows.begin();
  auto end = rows.end();
  if (slice.lower) {
    begin = std::lower_bound(begin, end, *slice.lower,
                             [](const Row& r, const ClusteringKey& k) {
                               return r.key.compare(k) == std::strong_ordering::less;
                             });
  }
  if (slice.upper) {
    end = std::lower_bound(begin, end, *slice.upper,
                           [](const Row& r, const ClusteringKey& k) {
                             return r.key.compare(k) == std::strong_ordering::less;
                           });
  }
  out.insert(out.end(), begin, end);
  return true;
}

std::vector<std::string> SSTable::partition_keys() const {
  std::vector<std::string> keys;
  keys.reserve(partitions_.size());
  for (const auto& p : partitions_) keys.push_back(p.key);
  return keys;
}

std::shared_ptr<SSTable> compact(std::uint64_t new_generation,
                                 const std::vector<SSTablePtr>& inputs,
                                 const ExtentOptions* extent_opts) {
  // partition key -> clustering key -> newest row. std::map keeps both
  // levels sorted, which is exactly the SSTable layout invariant.
  std::map<std::string, std::map<ClusteringKey, Row>> merged;
  for (const auto& table : inputs) {
    table->for_each_partition([&](const std::string& key,
                                  const std::vector<Row>& part_rows) {
      auto& rows = merged[key];
      for (const auto& row : part_rows) {
        auto [it, inserted] = rows.try_emplace(row.key, row);
        if (!inserted && row.write_ts >= it->second.write_ts) {
          it->second = row;
        }
      }
    });
  }
  std::vector<SSTable::Partition> partitions;
  partitions.reserve(merged.size());
  for (auto& [key, rows] : merged) {
    SSTable::Partition p;
    p.key = key;
    p.rows.reserve(rows.size());
    for (auto& [_, row] : rows) p.rows.push_back(std::move(row));
    partitions.push_back(std::move(p));
  }
  return std::make_shared<SSTable>(new_generation, std::move(partitions),
                                   extent_opts);
}

}  // namespace hpcla::cassalite
