#include "cassalite/value.hpp"

#include <cmath>

#include "common/hash.hpp"

namespace hpcla::cassalite {
namespace {

/// Type rank for cross-type ordering: null < bool < numeric < text.
int type_rank(const Value& v) noexcept {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_int() || v.is_double()) return 2;
  return 3;
}

std::strong_ordering order_doubles(double a, double b) noexcept {
  // Values never hold NaN (the double constructor rejects it), so
  // partial_ordering collapses to strong.
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace

double Value::checked_double(double v) {
  HPCLA_CHECK_MSG(!std::isnan(v), "NaN is not a valid cell value");
  return v;
}

bool Value::as_bool() const {
  HPCLA_CHECK_MSG(is_bool(), "Value::as_bool on non-bool");
  return std::get<bool>(rep_);
}

std::int64_t Value::as_int() const {
  HPCLA_CHECK_MSG(is_int(), "Value::as_int on non-int");
  return std::get<std::int64_t>(rep_);
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(rep_));
  HPCLA_CHECK_MSG(is_double(), "Value::as_double on non-numeric");
  return std::get<double>(rep_);
}

const std::string& Value::as_text() const {
  HPCLA_CHECK_MSG(is_text(), "Value::as_text on non-text");
  return std::get<std::string>(rep_);
}

std::strong_ordering Value::compare(const Value& o) const noexcept {
  const int ra = type_rank(*this);
  const int rb = type_rank(o);
  if (ra != rb) return ra <=> rb;
  switch (ra) {
    case 0:
      return std::strong_ordering::equal;
    case 1:
      return std::get<bool>(rep_) <=> std::get<bool>(o.rep_);
    case 2: {
      // Exact int-int comparison; otherwise compare as doubles.
      if (is_int() && o.is_int()) {
        return std::get<std::int64_t>(rep_) <=> std::get<std::int64_t>(o.rep_);
      }
      return order_doubles(as_double(), o.as_double());
    }
    default:
      return std::get<std::string>(rep_).compare(std::get<std::string>(o.rep_)) <=> 0;
  }
}

Json Value::to_json() const {
  if (is_null()) return Json(nullptr);
  if (is_bool()) return Json(std::get<bool>(rep_));
  if (is_int()) return Json(std::get<std::int64_t>(rep_));
  if (is_double()) return Json(std::get<double>(rep_));
  return Json(std::get<std::string>(rep_));
}

Result<Value> Value::from_json(const Json& j) {
  if (j.is_null()) return Value();
  if (j.is_bool()) return Value(j.as_bool());
  if (j.is_int()) return Value(j.as_int());
  if (j.is_double()) {
    const double d = j.as_double();
    if (std::isnan(d)) return invalid_argument("NaN is not a valid cell value");
    return Value(d);
  }
  if (j.is_string()) return Value(j.as_string());
  return invalid_argument("cell values must be JSON scalars");
}

std::size_t Value::memory_bytes() const noexcept {
  std::size_t base = sizeof(Value);
  if (is_text()) base += std::get<std::string>(rep_).capacity();
  return base;
}

std::string Value::to_string() const {
  if (is_text()) return "\"" + std::get<std::string>(rep_) + "\"";
  return to_json().dump();
}

std::strong_ordering ClusteringKey::compare(const ClusteringKey& o) const noexcept {
  const std::size_t n = std::min(parts.size(), o.parts.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = parts[i].compare(o.parts[i]);
    if (c != std::strong_ordering::equal) return c;
  }
  return parts.size() <=> o.parts.size();
}

std::size_t ClusteringKey::memory_bytes() const noexcept {
  std::size_t total = sizeof(ClusteringKey);
  for (const auto& p : parts) total += p.memory_bytes();
  return total;
}

Json ClusteringKey::to_json() const {
  Json arr = Json::array();
  for (const auto& p : parts) arr.push_back(p.to_json());
  return arr;
}

std::string ClusteringKey::to_string() const { return to_json().dump(); }

const Value* Row::find(std::string_view name) const noexcept {
  for (const auto& c : cells) {
    if (c.name == name) return &c.value;
  }
  return nullptr;
}

void Row::set(std::string name, Value v) {
  for (auto& c : cells) {
    if (c.name == name) {
      c.value = std::move(v);
      return;
    }
  }
  cells.push_back(Cell{std::move(name), std::move(v)});
}

std::size_t Row::memory_bytes() const noexcept {
  std::size_t total = sizeof(Row) + key.memory_bytes();
  for (const auto& c : cells) {
    total += c.name.capacity() + c.value.memory_bytes();
  }
  return total;
}

Json Row::to_json() const {
  Json j = Json::object();
  j["key"] = key.to_json();
  Json cols = Json::object();
  for (const auto& c : cells) cols[c.name] = c.value.to_json();
  j["columns"] = std::move(cols);
  return j;
}

std::uint64_t rows_digest(const std::vector<Row>& rows) noexcept {
  // Seed with the row count so [] and [empty-ish row] never collide.
  std::uint64_t h = hash_combine(fnv1a_64("cassalite.rows"), rows.size());
  for (const Row& r : rows) {
    h = hash_combine(h, fnv1a_64(r.key.to_string()));
    h = hash_combine(h, static_cast<std::uint64_t>(r.write_ts));
    h = hash_combine(h, r.cells.size());
    for (const Cell& c : r.cells) {
      h = hash_combine(h, fnv1a_64(c.name));
      h = hash_combine(h, fnv1a_64(c.value.to_string()));
    }
  }
  return h;
}

}  // namespace hpcla::cassalite
