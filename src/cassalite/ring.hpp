// Consistent-hash token ring with virtual nodes — cassalite's masterless
// placement layer (paper §II-A: "a hashing-based distributed database...
// a partition is associated with a hash key and mapped to one or more
// nodes"; Fig 4 shows (hour, type) partitions mapped over 4 nodes).
//
// Since PR 9 the ring is a *value*: each TokenRing instance is still
// immutable, but elastic topology derives new rings from old ones
// (with_node / without_node / reshuffled) and the cluster atomically
// publishes the successor. Membership is therefore a set of node indices,
// not a dense 0..n-1 range: a removed node leaves a hole in the index
// space so surviving engines keep their slots.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "common/status.hpp"

namespace hpcla::cassalite {

/// Index of a node within a cluster.
using NodeIndex = std::size_t;

/// Half-open-on-the-left token interval (lo, hi]. `wraps` means the range
/// crosses the int64 wraparound point: it covers (lo, +inf] ∪ [-inf, hi].
struct TokenRange {
  Token lo = 0;
  Token hi = 0;
  bool wraps = false;

  [[nodiscard]] bool contains(Token t) const noexcept {
    return wraps ? (t > lo || t <= hi) : (t > lo && t <= hi);
  }
};

/// One token interval whose replica set changes between two rings, as
/// computed by ring_diff(). `gained` nodes must be streamed the range
/// before the new ring commits; `lost` nodes stop being owners (their
/// copies become stale but are never deleted — repair reconciles them).
struct MovedRange {
  TokenRange range;
  std::vector<NodeIndex> old_owners;
  std::vector<NodeIndex> new_owners;
  std::vector<NodeIndex> gained;  ///< in new_owners but not old_owners
  std::vector<NodeIndex> lost;    ///< in old_owners but not new_owners
};

/// Token ring: each member node owns `vnodes` pseudo-random tokens; a
/// partition key is owned by the member whose token is the first at or
/// after the key's token (clockwise), and replicated on the next RF-1
/// *distinct* members. Each instance is immutable; topology changes build
/// derived rings.
class TokenRing {
 public:
  /// Builds a ring for members {0..node_count-1} with `vnodes` tokens
  /// each, deterministically derived from `seed`.
  TokenRing(std::size_t node_count, std::size_t vnodes = 64,
            std::uint64_t seed = 0xCA55A17E);

  /// Number of member nodes (not the index space size).
  [[nodiscard]] std::size_t node_count() const noexcept {
    return members_.size();
  }
  /// 1 + the highest member index: the engine-array span the ring refers
  /// into. A removed member leaves a hole, so this can exceed node_count().
  [[nodiscard]] std::size_t index_space() const noexcept {
    return index_space_;
  }
  [[nodiscard]] std::size_t vnodes_per_node() const noexcept { return vnodes_; }

  [[nodiscard]] bool is_member(NodeIndex node) const noexcept;
  /// Member indices, sorted ascending.
  [[nodiscard]] const std::vector<NodeIndex>& members() const noexcept {
    return members_;
  }
  /// Tokens owned by one member, sorted ascending (empty if not a member).
  [[nodiscard]] std::vector<Token> tokens_of(NodeIndex node) const;
  /// Every token in the ring, sorted ascending and distinct.
  [[nodiscard]] std::vector<Token> boundary_tokens() const;

  // ---------------------------------------------------- derived topologies

  /// A ring with `node` added as a member owning `vnodes` fresh tokens
  /// derived from `seed` (0 vnodes means "same as this ring"). `node` must
  /// not already be a member.
  [[nodiscard]] TokenRing with_node(NodeIndex node, std::size_t vnodes,
                                    std::uint64_t seed) const;

  /// A ring with `node` (a current member) removed; its ranges fall to the
  /// clockwise successors.
  [[nodiscard]] TokenRing without_node(NodeIndex node) const;

  /// A ring with the same members but all tokens re-derived from `seed`
  /// (a full rebalance: most ranges move).
  [[nodiscard]] TokenRing reshuffled(std::uint64_t seed) const;

  // ----------------------------------------------------------- placement

  /// The primary owner of a partition key.
  [[nodiscard]] NodeIndex primary(std::string_view partition_key) const;

  /// The replica set (primary first, then clockwise distinct successors).
  /// `rf` is clamped to the member count.
  [[nodiscard]] std::vector<NodeIndex> replicas(std::string_view partition_key,
                                                std::size_t rf) const;

  /// Same as replicas() but starting from a precomputed token.
  [[nodiscard]] std::vector<NodeIndex> replicas_for_token(Token t,
                                                          std::size_t rf) const;

  /// Rack-aware replica selection (NetworkTopologyStrategy-style): walks
  /// the ring clockwise preferring nodes whose rack (`rack_of[node]`) has
  /// not supplied a replica yet, then fills any remainder with distinct
  /// nodes regardless of rack. With rf <= rack count, replicas land on
  /// rf distinct racks, so the loss of one whole rack never removes more
  /// than one replica of any partition.
  [[nodiscard]] std::vector<NodeIndex> replicas_rack_aware(
      std::string_view partition_key, std::size_t rf,
      const std::vector<int>& rack_of) const;

  /// Token-based variant of replicas_rack_aware().
  [[nodiscard]] std::vector<NodeIndex> replicas_for_token_rack_aware(
      Token t, std::size_t rf, const std::vector<int>& rack_of) const;

 private:
  struct Entry {
    Token token;
    NodeIndex node;
  };

  TokenRing() = default;  ///< for derived-topology builders

  /// Sorts entries, nudges colliding tokens apart, recomputes members.
  void finalize();

  std::size_t vnodes_ = 1;
  std::size_t index_space_ = 0;
  std::vector<Entry> entries_;       ///< sorted by token
  std::vector<NodeIndex> members_;   ///< sorted distinct node indices
};

/// Diffs two rings: partitions token space at the union of both rings'
/// boundary tokens (ownership is constant on each interval in both rings)
/// and emits every interval whose replica set changes, merging adjacent
/// intervals with identical old/new owner lists. Placement is rack-aware
/// when `rack_of` is non-empty (it must cover both rings' index spaces).
[[nodiscard]] std::vector<MovedRange> ring_diff(const TokenRing& before,
                                                const TokenRing& after,
                                                std::size_t rf,
                                                const std::vector<int>& rack_of);

}  // namespace hpcla::cassalite
