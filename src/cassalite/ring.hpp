// Consistent-hash token ring with virtual nodes — cassalite's masterless
// placement layer (paper §II-A: "a hashing-based distributed database...
// a partition is associated with a hash key and mapped to one or more
// nodes"; Fig 4 shows (hour, type) partitions mapped over 4 nodes).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "common/status.hpp"

namespace hpcla::cassalite {

/// Index of a node within a cluster.
using NodeIndex = std::size_t;

/// Token ring: each node owns `vnodes` pseudo-random tokens; a partition
/// key is owned by the node whose token is the first at or after the key's
/// token (clockwise), and replicated on the next RF-1 *distinct* nodes.
/// Immutable after construction.
class TokenRing {
 public:
  /// Builds a ring for `node_count` nodes with `vnodes` tokens each,
  /// deterministically derived from `seed`.
  TokenRing(std::size_t node_count, std::size_t vnodes = 64,
            std::uint64_t seed = 0xCA55A17E);

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t vnodes_per_node() const noexcept { return vnodes_; }

  /// The primary owner of a partition key.
  [[nodiscard]] NodeIndex primary(std::string_view partition_key) const;

  /// The replica set (primary first, then clockwise distinct successors).
  /// `rf` is clamped to the node count.
  [[nodiscard]] std::vector<NodeIndex> replicas(std::string_view partition_key,
                                                std::size_t rf) const;

  /// Same as replicas() but starting from a precomputed token.
  [[nodiscard]] std::vector<NodeIndex> replicas_for_token(Token t,
                                                          std::size_t rf) const;

  /// Rack-aware replica selection (NetworkTopologyStrategy-style): walks
  /// the ring clockwise preferring nodes whose rack (`rack_of(node)`) has
  /// not supplied a replica yet, then fills any remainder with distinct
  /// nodes regardless of rack. With rf <= rack count, replicas land on
  /// rf distinct racks, so the loss of one whole rack never removes more
  /// than one replica of any partition.
  [[nodiscard]] std::vector<NodeIndex> replicas_rack_aware(
      std::string_view partition_key, std::size_t rf,
      const std::vector<int>& rack_of) const;

 private:
  struct Entry {
    Token token;
    NodeIndex node;
  };

  std::size_t node_count_;
  std::size_t vnodes_;
  std::vector<Entry> entries_;  ///< sorted by token
};

}  // namespace hpcla::cassalite
