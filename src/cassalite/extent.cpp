#include "cassalite/extent.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "cassalite/extent_file.hpp"
#include "common/block_cache.hpp"
#include "common/block_codec.hpp"
#include "common/status.hpp"

namespace hpcla::cassalite {
namespace {

using codec::get_varint;
using codec::put_varint;
using codec::zigzag_decode;
using codec::zigzag_encode;

// Column kinds. A column is "typed" only when every value shares the type;
// any mixture (nulls included) falls back to the tagged kind.
enum ColumnKind : std::uint8_t {
  kAllNull = 0,
  kInt64Delta = 1,     // zigzag(delta) varints
  kDoubleRaw = 2,      // 8 raw bytes each (bit-exact)
  kTextDict = 3,       // dictionary + varint indexes
  kTextRaw = 4,        // high-cardinality fallback: varint len + bytes
  kBoolPacked = 5,     // bitpacked, 8 per byte
  kMixed = 6,          // per-value tag + payload
};

enum MixedTag : std::uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagText = 5,
};

void put_double(std::string& out, double v) {
  char buf[sizeof(double)];
  std::memcpy(buf, &v, sizeof(double));
  out.append(buf, sizeof(double));
}

const char* get_double(const char* p, const char* end, double& v) {
  if (static_cast<std::size_t>(end - p) < sizeof(double)) return nullptr;
  std::memcpy(&v, p, sizeof(double));
  return p + sizeof(double);
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

const char* get_string(const char* p, const char* end, std::string& s) {
  std::uint64_t len = 0;
  p = get_varint(p, end, len);
  if (!p || static_cast<std::uint64_t>(end - p) < len) return nullptr;
  s.assign(p, static_cast<std::size_t>(len));
  return p + len;
}

void encode_value_column(const std::vector<const Value*>& values,
                         std::string& out) {
  const std::size_t n = values.size();
  bool all_null = true, all_bool = true, all_int = true, all_double = true,
       all_text = true;
  for (const Value* v : values) {
    all_null &= v->is_null();
    all_bool &= v->is_bool();
    all_int &= v->is_int();
    all_double &= v->is_double();
    all_text &= v->is_text();
  }
  if (n == 0 || all_null) {
    out.push_back(static_cast<char>(kAllNull));
    return;
  }
  if (all_int) {
    out.push_back(static_cast<char>(kInt64Delta));
    std::int64_t prev = 0;
    for (const Value* v : values) {
      const std::int64_t x = v->as_int();
      put_varint(out, zigzag_encode(x - prev));
      prev = x;
    }
    return;
  }
  if (all_double) {
    out.push_back(static_cast<char>(kDoubleRaw));
    for (const Value* v : values) put_double(out, v->as_double());
    return;
  }
  if (all_bool) {
    out.push_back(static_cast<char>(kBoolPacked));
    std::uint8_t byte = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (values[i]->as_bool()) byte |= static_cast<std::uint8_t>(1u << (i % 8));
      if (i % 8 == 7 || i + 1 == n) {
        out.push_back(static_cast<char>(byte));
        byte = 0;
      }
    }
    return;
  }
  if (all_text) {
    // First-appearance-order dictionary; fall back to raw strings when the
    // column is too distinct for the indexes to pay for the dictionary.
    std::unordered_map<std::string_view, std::uint64_t> ids;
    std::vector<const std::string*> dict;
    ids.reserve(n);
    for (const Value* v : values) {
      const std::string& s = v->as_text();
      if (ids.try_emplace(s, dict.size()).second) dict.push_back(&s);
    }
    if (dict.size() * 2 <= n && dict.size() <= 65535) {
      out.push_back(static_cast<char>(kTextDict));
      put_varint(out, dict.size());
      for (const std::string* s : dict) put_string(out, *s);
      for (const Value* v : values) put_varint(out, ids[v->as_text()]);
    } else {
      out.push_back(static_cast<char>(kTextRaw));
      for (const Value* v : values) put_string(out, v->as_text());
    }
    return;
  }
  out.push_back(static_cast<char>(kMixed));
  for (const Value* v : values) {
    if (v->is_null()) {
      out.push_back(static_cast<char>(kTagNull));
    } else if (v->is_bool()) {
      out.push_back(static_cast<char>(v->as_bool() ? kTagTrue : kTagFalse));
    } else if (v->is_int()) {
      out.push_back(static_cast<char>(kTagInt));
      put_varint(out, zigzag_encode(v->as_int()));
    } else if (v->is_double()) {
      out.push_back(static_cast<char>(kTagDouble));
      put_double(out, v->as_double());
    } else {
      out.push_back(static_cast<char>(kTagText));
      put_string(out, v->as_text());
    }
  }
}

const char* decode_value_column(const char* p, const char* end, std::size_t n,
                                std::vector<Value>& out) {
  out.clear();
  out.reserve(n);
  if (p >= end) return nullptr;
  const auto kind = static_cast<std::uint8_t>(*p++);
  switch (kind) {
    case kAllNull:
      out.assign(n, Value());
      return p;
    case kInt64Delta: {
      std::int64_t prev = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t zz = 0;
        p = get_varint(p, end, zz);
        if (!p) return nullptr;
        prev += zigzag_decode(zz);
        out.emplace_back(prev);
      }
      return p;
    }
    case kDoubleRaw: {
      for (std::size_t i = 0; i < n; ++i) {
        double d = 0;
        p = get_double(p, end, d);
        if (!p) return nullptr;
        out.emplace_back(d);
      }
      return p;
    }
    case kBoolPacked: {
      std::uint8_t byte = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (i % 8 == 0) {
          if (p >= end) return nullptr;
          byte = static_cast<std::uint8_t>(*p++);
        }
        out.emplace_back((byte >> (i % 8) & 1) != 0);
      }
      return p;
    }
    case kTextDict: {
      std::uint64_t dict_size = 0;
      p = get_varint(p, end, dict_size);
      if (!p) return nullptr;
      std::vector<std::string> dict(static_cast<std::size_t>(dict_size));
      for (auto& s : dict) {
        p = get_string(p, end, s);
        if (!p) return nullptr;
      }
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t id = 0;
        p = get_varint(p, end, id);
        if (!p || id >= dict.size()) return nullptr;
        out.emplace_back(dict[static_cast<std::size_t>(id)]);
      }
      return p;
    }
    case kTextRaw: {
      for (std::size_t i = 0; i < n; ++i) {
        std::string s;
        p = get_string(p, end, s);
        if (!p) return nullptr;
        out.emplace_back(std::move(s));
      }
      return p;
    }
    case kMixed: {
      for (std::size_t i = 0; i < n; ++i) {
        if (p >= end) return nullptr;
        const auto tag = static_cast<std::uint8_t>(*p++);
        switch (tag) {
          case kTagNull:
            out.emplace_back();
            break;
          case kTagFalse:
            out.emplace_back(false);
            break;
          case kTagTrue:
            out.emplace_back(true);
            break;
          case kTagInt: {
            std::uint64_t zz = 0;
            p = get_varint(p, end, zz);
            if (!p) return nullptr;
            out.emplace_back(zigzag_decode(zz));
            break;
          }
          case kTagDouble: {
            double d = 0;
            p = get_double(p, end, d);
            if (!p) return nullptr;
            out.emplace_back(d);
            break;
          }
          case kTagText: {
            std::string s;
            p = get_string(p, end, s);
            if (!p) return nullptr;
            out.emplace_back(std::move(s));
            break;
          }
          default:
            return nullptr;
        }
      }
      return p;
    }
    default:
      return nullptr;
  }
}

std::size_t decoded_rows_bytes(const std::vector<Row>& rows) {
  std::size_t total = 0;
  for (const Row& r : rows) total += r.memory_bytes();
  return total;
}

}  // namespace

ExtentCacheOwner::ExtentCacheOwner() : id_(BlockCache::new_owner_id()) {}

ExtentCacheOwner::~ExtentCacheOwner() {
  BlockCache::instance().erase_owner(id_);
}

ColumnarExtent::Group ColumnarExtent::encode_group(const Row* rows,
                                                   std::size_t n) {
  Group g;
  g.meta.rows = static_cast<std::uint32_t>(n);
  g.meta.first = rows[0].key;
  g.meta.last = rows[n - 1].key;

  std::string body;
  // write_ts column: zigzag deltas (timestamps are near-monotonic).
  std::int64_t prev_ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    put_varint(body, zigzag_encode(rows[i].write_ts - prev_ts));
    prev_ts = rows[i].write_ts;
  }
  // Clustering keys: per-row arity, then one value column per part index
  // (rows shorter than the index simply don't contribute).
  std::size_t max_arity = 0;
  for (std::size_t i = 0; i < n; ++i) {
    put_varint(body, rows[i].key.parts.size());
    max_arity = std::max(max_arity, rows[i].key.parts.size());
  }
  for (std::size_t j = 0; j < max_arity; ++j) {
    std::vector<const Value*> column;
    for (std::size_t i = 0; i < n; ++i) {
      if (j < rows[i].key.parts.size()) column.push_back(&rows[i].key.parts[j]);
    }
    encode_value_column(column, body);
  }
  // Cell names: first-appearance dictionary + per-row layout (count + ids
  // in the row's own cell order, so decode rebuilds cells verbatim).
  std::unordered_map<std::string_view, std::uint64_t> name_ids;
  std::vector<const std::string*> names;
  for (std::size_t i = 0; i < n; ++i) {
    for (const Cell& c : rows[i].cells) {
      if (name_ids.try_emplace(c.name, names.size()).second) {
        names.push_back(&c.name);
      }
    }
  }
  put_varint(body, names.size());
  for (const std::string* s : names) put_string(body, *s);
  for (std::size_t i = 0; i < n; ++i) {
    put_varint(body, rows[i].cells.size());
    for (const Cell& c : rows[i].cells) put_varint(body, name_ids[c.name]);
  }
  // One value column per cell name, values in (row, occurrence) order.
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::vector<const Value*> column;
    for (std::size_t i = 0; i < n; ++i) {
      for (const Cell& cell : rows[i].cells) {
        if (name_ids[cell.name] == c) column.push_back(&cell.value);
      }
    }
    put_varint(body, column.size());
    encode_value_column(column, body);
  }

  g.meta.raw_size = static_cast<std::uint32_t>(body.size());
  g.body = codec::block_compress(body);
  g.meta.length = static_cast<std::uint32_t>(g.body.size());
  return g;
}

ColumnarExtent ColumnarExtent::encode(const std::vector<Row>& rows,
                                      const ExtentOptions& opts) {
  ColumnarExtent ext;
  ext.rows_ = rows.size();
  for (const Row& r : rows) ext.raw_bytes_ += r.memory_bytes();
  const std::size_t per_group = std::max<std::size_t>(opts.rows_per_group, 1);
  for (std::size_t begin = 0; begin < rows.size(); begin += per_group) {
    const std::size_t n = std::min(per_group, rows.size() - begin);
    ext.groups_.push_back(encode_group(rows.data() + begin, n));
  }
  for (const Group& g : ext.groups_) {
    ext.encoded_bytes_ += g.body.size() + g.meta.first.memory_bytes() +
                          g.meta.last.memory_bytes() + sizeof(Group);
  }
  if (opts.cache_decoded) {
    ext.cache_ = std::make_shared<ExtentCacheOwner>();
  }
  return ext;
}

ColumnarExtent ColumnarExtent::from_file(std::shared_ptr<ExtentFile> file,
                                         std::vector<ExtentGroupMeta> groups,
                                         std::uint64_t rows,
                                         std::uint64_t raw_bytes,
                                         const ExtentOptions& opts) {
  ColumnarExtent ext;
  ext.rows_ = static_cast<std::size_t>(rows);
  ext.raw_bytes_ = static_cast<std::size_t>(raw_bytes);
  ext.file_ = std::move(file);
  ext.groups_.reserve(groups.size());
  for (auto& meta : groups) {
    Group g;
    g.meta = std::move(meta);
    ext.encoded_bytes_ += g.meta.length + g.meta.first.memory_bytes() +
                          g.meta.last.memory_bytes() + sizeof(Group);
    ext.groups_.push_back(std::move(g));
  }
  if (opts.cache_decoded) {
    ext.cache_ = std::make_shared<ExtentCacheOwner>();
  }
  return ext;
}

void ColumnarExtent::persist(
    const std::function<std::uint64_t(std::string_view)>& append) {
  for (Group& g : groups_) {
    g.meta.offset = append(g.body);
    g.meta.length = static_cast<std::uint32_t>(g.body.size());
    std::string().swap(g.body);  // the file copy is the only copy now
  }
}

std::vector<ExtentGroupMeta> ColumnarExtent::group_metas() const {
  std::vector<ExtentGroupMeta> out;
  out.reserve(groups_.size());
  for (const Group& g : groups_) out.push_back(g.meta);
  return out;
}

std::vector<Row> ColumnarExtent::decode_group(const Group& g) const {
  decoded_groups_.fetch_add(1, std::memory_order_relaxed);
  std::string scratch;
  std::string_view compressed = g.body;
  if (file_ != nullptr && g.body.empty()) {
    compressed = file_->fetch(g.meta.offset, g.meta.length, scratch);
  }
  std::string body;
  HPCLA_CHECK_MSG(codec::block_decompress(compressed, g.meta.raw_size, body),
                  "corrupt extent group");
  const char* p = body.data();
  const char* end = p + body.size();
  const std::size_t n = g.meta.rows;
  std::vector<Row> rows(n);

  std::int64_t prev_ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t zz = 0;
    p = get_varint(p, end, zz);
    HPCLA_CHECK_MSG(p, "corrupt extent write_ts");
    prev_ts += zigzag_decode(zz);
    rows[i].write_ts = prev_ts;
  }
  std::vector<std::size_t> arity(n);
  std::size_t max_arity = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t a = 0;
    p = get_varint(p, end, a);
    HPCLA_CHECK_MSG(p, "corrupt extent arity");
    arity[i] = static_cast<std::size_t>(a);
    max_arity = std::max(max_arity, arity[i]);
    rows[i].key.parts.resize(arity[i]);
  }
  std::vector<Value> column;
  for (std::size_t j = 0; j < max_arity; ++j) {
    std::size_t present = 0;
    for (std::size_t i = 0; i < n; ++i) present += j < arity[i];
    p = decode_value_column(p, end, present, column);
    HPCLA_CHECK_MSG(p, "corrupt extent key column");
    std::size_t at = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (j < arity[i]) rows[i].key.parts[j] = std::move(column[at++]);
    }
  }
  std::uint64_t name_count = 0;
  p = get_varint(p, end, name_count);
  HPCLA_CHECK_MSG(p, "corrupt extent name dict");
  std::vector<std::string> names(static_cast<std::size_t>(name_count));
  for (auto& s : names) {
    p = get_string(p, end, s);
    HPCLA_CHECK_MSG(p, "corrupt extent name");
  }
  std::vector<std::vector<std::uint64_t>> layout(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t cells = 0;
    p = get_varint(p, end, cells);
    HPCLA_CHECK_MSG(p, "corrupt extent cell count");
    layout[i].resize(static_cast<std::size_t>(cells));
    for (auto& id : layout[i]) {
      p = get_varint(p, end, id);
      HPCLA_CHECK_MSG(p && id < names.size(), "corrupt extent cell id");
    }
    rows[i].cells.reserve(layout[i].size());
  }
  std::vector<std::vector<Value>> columns(names.size());
  std::vector<std::size_t> next(names.size(), 0);
  for (std::size_t c = 0; c < names.size(); ++c) {
    std::uint64_t count = 0;
    p = get_varint(p, end, count);
    HPCLA_CHECK_MSG(p, "corrupt extent column count");
    p = decode_value_column(p, end, static_cast<std::size_t>(count),
                            columns[c]);
    HPCLA_CHECK_MSG(p, "corrupt extent value column");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint64_t id : layout[i]) {
      auto& col = columns[static_cast<std::size_t>(id)];
      auto& pos = next[static_cast<std::size_t>(id)];
      HPCLA_CHECK_MSG(pos < col.size(), "corrupt extent cell stream");
      rows[i].cells.push_back(
          Cell{names[static_cast<std::size_t>(id)], std::move(col[pos++])});
    }
  }
  return rows;
}

std::shared_ptr<const std::vector<Row>> ColumnarExtent::group_rows(
    std::size_t index) const {
  auto& cache = BlockCache::instance();
  if (cache_ != nullptr) {
    if (auto hit = cache.lookup(cache_->id(), index)) {
      return std::static_pointer_cast<const std::vector<Row>>(hit);
    }
  }
  auto rows =
      std::make_shared<const std::vector<Row>>(decode_group(groups_[index]));
  if (cache_ != nullptr) {
    cache.insert(cache_->id(), index, rows, decoded_rows_bytes(*rows));
  }
  return rows;
}

void ColumnarExtent::read(const ClusteringSlice& slice,
                          std::vector<Row>& out) const {
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    const Group& g = groups_[i];
    // Prune: the group covers [first, last]; skip when wholly outside.
    if (slice.lower &&
        g.meta.last.compare(*slice.lower) == std::strong_ordering::less) {
      continue;
    }
    if (slice.upper &&
        g.meta.first.compare(*slice.upper) != std::strong_ordering::less) {
      // Groups are in ascending order — nothing later can match either.
      break;
    }
    if (cache_ != nullptr) {
      const auto rows = group_rows(i);
      for (const Row& row : *rows) {
        if (slice.admits(row.key)) out.push_back(row);
      }
    } else {
      for (auto& row : decode_group(g)) {
        if (slice.admits(row.key)) out.push_back(std::move(row));
      }
    }
  }
}

std::vector<Row> ColumnarExtent::decode_all() const {
  std::vector<Row> out;
  out.reserve(rows_);
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (cache_ != nullptr) {
      const auto rows = group_rows(i);
      for (const Row& row : *rows) out.push_back(row);
    } else {
      for (auto& row : decode_group(groups_[i])) out.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace hpcla::cassalite
