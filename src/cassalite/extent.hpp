// Columnar extent encoding for SSTable partitions (DESIGN.md §13.2), the
// DataSeries idea applied to cassalite: instead of vectors of boxed Rows, a
// partition is stored as row groups of per-column typed arrays —
// zigzag-delta varints for integers, bit-exact raw doubles, dictionaries
// for repetitive text (with a raw fallback for high-cardinality columns),
// bitpacked bools — compressed with the shared LZ4-style block codec.
// Decoding is lazy per read slice: each group keeps its first/last
// clustering key uncompressed, so a slice read touches only the groups its
// range intersects and a full scan streams group by group.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cassalite/schema.hpp"
#include "cassalite/value.hpp"

namespace hpcla::cassalite {

/// Encoding knobs (StorageOptions carries them per engine).
struct ExtentOptions {
  /// Rows per compressed group — the lazy-decode granularity. Smaller
  /// groups prune harder on narrow slices; larger groups compress better.
  std::size_t rows_per_group = 1024;
};

/// One partition's rows, columnar-encoded. Immutable after encode();
/// decode-side counters are relaxed atomics, safe for concurrent readers.
class ColumnarExtent {
 public:
  ColumnarExtent() = default;
  // The decode counter is atomic, so moves are spelled out (encode()
  // returns by value; extents are immutable once published).
  ColumnarExtent(ColumnarExtent&& o) noexcept
      : groups_(std::move(o.groups_)),
        rows_(o.rows_),
        raw_bytes_(o.raw_bytes_),
        encoded_bytes_(o.encoded_bytes_),
        decoded_groups_(o.decoded_groups_.load(std::memory_order_relaxed)) {}
  ColumnarExtent& operator=(ColumnarExtent&& o) noexcept {
    groups_ = std::move(o.groups_);
    rows_ = o.rows_;
    raw_bytes_ = o.raw_bytes_;
    encoded_bytes_ = o.encoded_bytes_;
    decoded_groups_.store(o.decoded_groups_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    return *this;
  }

  /// Encodes rows (ascending clustering order, as SSTables store them).
  static ColumnarExtent encode(const std::vector<Row>& rows,
                               const ExtentOptions& opts);

  /// Appends slice-admitted rows to `out` in ascending clustering order,
  /// decoding only the groups whose [first, last] key range intersects the
  /// slice.
  void read(const ClusteringSlice& slice, std::vector<Row>& out) const;

  /// Decodes everything (compaction, full scans).
  [[nodiscard]] std::vector<Row> decode_all() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return groups_.size();
  }
  /// Approximate boxed-Row footprint of the input (compression numerator).
  [[nodiscard]] std::size_t raw_bytes() const noexcept { return raw_bytes_; }
  /// Resident encoded footprint (compression denominator).
  [[nodiscard]] std::size_t encoded_bytes() const noexcept {
    return encoded_bytes_;
  }
  /// Groups decompressed so far — tests assert slice reads prune groups.
  [[nodiscard]] std::uint64_t decoded_groups() const noexcept {
    return decoded_groups_.load(std::memory_order_relaxed);
  }

 private:
  struct Group {
    ClusteringKey first;  ///< kept decoded for slice pruning
    ClusteringKey last;
    std::uint32_t rows = 0;
    std::uint32_t raw_size = 0;  ///< pre-compression body bytes
    std::string body;            ///< block-compressed column streams
  };

  static Group encode_group(const Row* rows, std::size_t n);
  std::vector<Row> decode_group(const Group& g) const;

  std::vector<Group> groups_;
  std::size_t rows_ = 0;
  std::size_t raw_bytes_ = 0;
  std::size_t encoded_bytes_ = 0;
  mutable std::atomic<std::uint64_t> decoded_groups_{0};
};

}  // namespace hpcla::cassalite
