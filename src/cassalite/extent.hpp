// Columnar extent encoding for SSTable partitions (DESIGN.md §13.2), the
// DataSeries idea applied to cassalite: instead of vectors of boxed Rows, a
// partition is stored as row groups of per-column typed arrays —
// zigzag-delta varints for integers, bit-exact raw doubles, dictionaries
// for repetitive text (with a raw fallback for high-cardinality columns),
// bitpacked bools — compressed with the shared LZ4-style block codec.
// Decoding is lazy per read slice: each group keeps its first/last
// clustering key uncompressed, so a slice read touches only the groups its
// range intersects and a full scan streams group by group.
//
// Since PR 8 an extent's compressed bodies may live *outside* the object,
// in an on-disk extent file (extent_file.hpp): persist() streams the
// bodies out, attach_file() binds the read-side handle, and decode fetches
// blocks back by mmap/pread on demand. Decoded groups are optionally
// shared through the process BlockCache (ExtentOptions::cache_decoded), so
// hot groups decompress once, not once per read.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cassalite/schema.hpp"
#include "cassalite/value.hpp"

namespace hpcla::cassalite {

class ExtentFile;

/// Encoding knobs (StorageOptions carries them per engine).
struct ExtentOptions {
  /// Rows per compressed group — the lazy-decode granularity. Smaller
  /// groups prune harder on narrow slices; larger groups compress better.
  std::size_t rows_per_group = 1024;
  /// Share decoded groups through the process BlockCache. Off by default:
  /// the cache itself is sized by StorageOptions::block_cache_bytes /
  /// HPCLA_BLOCK_CACHE_BYTES, and an unsized cache admits nothing.
  bool cache_decoded = false;
};

/// One row group's placement metadata — everything the extent-file footer
/// stores about a block, and everything pruning needs without touching it.
struct ExtentGroupMeta {
  ClusteringKey first;  ///< kept decoded for slice pruning
  ClusteringKey last;
  std::uint32_t rows = 0;
  std::uint32_t raw_size = 0;  ///< pre-compression body bytes
  std::uint64_t offset = 0;    ///< compressed body position in the file
  std::uint32_t length = 0;    ///< compressed body bytes
};

/// RAII claim on a BlockCache owner id. Copies of one extent (moves,
/// shared snapshots) share the registration; the last one out drops the
/// owner's cached blocks so superseded SSTables can't serve stale reads.
class ExtentCacheOwner {
 public:
  ExtentCacheOwner();
  ~ExtentCacheOwner();
  ExtentCacheOwner(const ExtentCacheOwner&) = delete;
  ExtentCacheOwner& operator=(const ExtentCacheOwner&) = delete;
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  std::uint64_t id_;
};

/// One partition's rows, columnar-encoded. Immutable after encode();
/// decode-side counters are relaxed atomics, safe for concurrent readers.
class ColumnarExtent {
 public:
  ColumnarExtent() = default;
  // The decode counter is atomic, so moves are spelled out (encode()
  // returns by value; extents are immutable once published).
  ColumnarExtent(ColumnarExtent&& o) noexcept
      : groups_(std::move(o.groups_)),
        rows_(o.rows_),
        raw_bytes_(o.raw_bytes_),
        encoded_bytes_(o.encoded_bytes_),
        file_(std::move(o.file_)),
        cache_(std::move(o.cache_)),
        decoded_groups_(o.decoded_groups_.load(std::memory_order_relaxed)) {}
  ColumnarExtent& operator=(ColumnarExtent&& o) noexcept {
    groups_ = std::move(o.groups_);
    rows_ = o.rows_;
    raw_bytes_ = o.raw_bytes_;
    encoded_bytes_ = o.encoded_bytes_;
    file_ = std::move(o.file_);
    cache_ = std::move(o.cache_);
    decoded_groups_.store(o.decoded_groups_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    return *this;
  }

  /// Encodes rows (ascending clustering order, as SSTables store them).
  static ColumnarExtent encode(const std::vector<Row>& rows,
                               const ExtentOptions& opts);

  /// Rebuilds a file-backed extent from footer metadata: no block is read
  /// until a slice actually needs it.
  static ColumnarExtent from_file(std::shared_ptr<ExtentFile> file,
                                  std::vector<ExtentGroupMeta> groups,
                                  std::uint64_t rows, std::uint64_t raw_bytes,
                                  const ExtentOptions& opts);

  /// Streams each group's compressed body through `append` (which returns
  /// the chosen file offset) and drops the resident copies. The extent is
  /// unreadable until attach_file() binds the handle those offsets refer
  /// to — flush writes all partitions, seals the file, then attaches.
  void persist(const std::function<std::uint64_t(std::string_view)>& append);
  void attach_file(std::shared_ptr<ExtentFile> file) {
    file_ = std::move(file);
  }

  /// Per-group placement metadata (extent-file footer contents).
  [[nodiscard]] std::vector<ExtentGroupMeta> group_metas() const;

  /// Appends slice-admitted rows to `out` in ascending clustering order,
  /// decoding only the groups whose [first, last] key range intersects the
  /// slice.
  void read(const ClusteringSlice& slice, std::vector<Row>& out) const;

  /// Decodes everything (compaction, full scans).
  [[nodiscard]] std::vector<Row> decode_all() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return groups_.size();
  }
  /// Approximate boxed-Row footprint of the input (compression numerator).
  [[nodiscard]] std::size_t raw_bytes() const noexcept { return raw_bytes_; }
  /// Encoded footprint (compression denominator; on disk once persisted).
  [[nodiscard]] std::size_t encoded_bytes() const noexcept {
    return encoded_bytes_;
  }
  [[nodiscard]] bool file_backed() const noexcept { return file_ != nullptr; }
  [[nodiscard]] const std::shared_ptr<ExtentFile>& file() const noexcept {
    return file_;
  }
  /// Groups decompressed so far — tests assert slice reads prune groups.
  /// BlockCache hits reuse an already-decoded group and do *not* count.
  [[nodiscard]] std::uint64_t decoded_groups() const noexcept {
    return decoded_groups_.load(std::memory_order_relaxed);
  }

 private:
  struct Group {
    ExtentGroupMeta meta;
    std::string body;  ///< block-compressed column streams; empty once
                       ///< persisted to an extent file
  };

  static Group encode_group(const Row* rows, std::size_t n);
  /// Decompresses + decodes one group (counting it). Fetches the body
  /// from the extent file when persisted.
  std::vector<Row> decode_group(const Group& g) const;
  /// Cache-aware decode: returns a shared decoded group, reusing the
  /// BlockCache copy when one is resident.
  [[nodiscard]] std::shared_ptr<const std::vector<Row>> group_rows(
      std::size_t index) const;

  std::vector<Group> groups_;
  std::size_t rows_ = 0;
  std::size_t raw_bytes_ = 0;
  std::size_t encoded_bytes_ = 0;
  std::shared_ptr<ExtentFile> file_;        ///< null = bodies resident
  std::shared_ptr<ExtentCacheOwner> cache_;  ///< null = caching off
  mutable std::atomic<std::uint64_t> decoded_groups_{0};
};

}  // namespace hpcla::cassalite
