#include "cassalite/merkle.hpp"

#include "common/status.hpp"

namespace hpcla::cassalite {
namespace {

/// splitmix64 finalizer: decorrelates per-partition digests before the
/// commutative wrapping sum so correlated inputs can't cancel.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

MerkleTree::MerkleTree(TokenRange range, int depth)
    : range_(range), depth_(depth) {
  HPCLA_CHECK_MSG(depth >= 0 && depth <= 16, "merkle depth out of range");
  // (lo, hi] width via modular subtraction; wraps ranges get the correct
  // wrapped width, and lo == hi with wraps means the full 2^64 space
  // (span_ == 0 encodes that).
  span_ = static_cast<std::uint64_t>(range.hi) -
          static_cast<std::uint64_t>(range.lo);
  HPCLA_CHECK_MSG(span_ != 0 || range.wraps, "merkle over an empty range");
  leaves_.assign(std::size_t{1} << depth, 0);
}

std::uint64_t MerkleTree::offset_of(Token token) const noexcept {
  return static_cast<std::uint64_t>(token) -
         static_cast<std::uint64_t>(range_.lo) - 1;
}

std::uint64_t MerkleTree::leaf_start(std::size_t leaf) const noexcept {
  if (span_ == 0) {  // full token space: exact power-of-two split
    // leaf == leaf_count() wraps to 0 (offset 2^64), which is what the
    // modular token arithmetic in leaf_range() wants.
    return depth_ == 0 ? 0
                       : static_cast<std::uint64_t>(leaf) << (64 - depth_);
  }
  // ceil(leaf * span / leaf_count): the smallest offset mapping to `leaf`.
  const unsigned __int128 num =
      static_cast<unsigned __int128>(leaf) * span_ + leaves_.size() - 1;
  return static_cast<std::uint64_t>(num / leaves_.size());
}

std::size_t MerkleTree::leaf_index(Token token) const {
  HPCLA_CHECK_MSG(range_.contains(token), "merkle: token outside range");
  const std::uint64_t off = offset_of(token);
  if (span_ == 0) {
    return depth_ == 0 ? 0 : static_cast<std::size_t>(off >> (64 - depth_));
  }
  return static_cast<std::size_t>(
      static_cast<unsigned __int128>(off) * leaves_.size() / span_);
}

TokenRange MerkleTree::leaf_range(std::size_t leaf) const {
  HPCLA_CHECK_MSG(leaf < leaves_.size(), "merkle: leaf index out of range");
  const std::uint64_t start = leaf_start(leaf);
  const std::uint64_t end = leaf_start(leaf + 1);
  // Tokens in this leaf are lo+1+start .. lo+end, i.e. (lo+start, lo+end].
  const Token a =
      static_cast<Token>(static_cast<std::uint64_t>(range_.lo) + start);
  const Token b =
      static_cast<Token>(static_cast<std::uint64_t>(range_.lo) + end);
  if (start == end) {
    // Depth-0 full-space tree: the single leaf is the whole ring.
    if (span_ == 0) return TokenRange{range_.lo, range_.hi, true};
    return TokenRange{a, a, false};  // empty leaf (range narrower than 2^depth)
  }
  // A non-empty modular interval (a, b] wraps iff a >= b in signed order.
  return TokenRange{a, b, a >= b};
}

void MerkleTree::add(Token token, std::uint64_t key_digest) {
  leaves_[leaf_index(token)] += mix64(key_digest);
  ++keys_;
}

std::uint64_t MerkleTree::root() const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint64_t leaf : leaves_) {
    h = hash_combine(h, leaf);
  }
  return h;
}

std::vector<std::size_t> MerkleTree::diff(const MerkleTree& a,
                                          const MerkleTree& b) {
  HPCLA_CHECK_MSG(a.depth_ == b.depth_ && a.span_ == b.span_ &&
                      a.range_.lo == b.range_.lo && a.range_.hi == b.range_.hi,
                  "merkle: diff over mismatched trees");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < a.leaves_.size(); ++i) {
    if (a.leaves_[i] != b.leaves_[i]) out.push_back(i);
  }
  return out;
}

}  // namespace hpcla::cassalite
