#include "cassalite/storage_engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <system_error>
#include <utility>

#include "common/block_cache.hpp"
#include "common/clock.hpp"
#include "common/faultsim.hpp"
#include "common/scratch.hpp"
#include "common/status.hpp"
#include "common/telemetry.hpp"

namespace hpcla::cassalite {
namespace {

bool env_flag(const char* name, bool fallback) {
  const char* e = std::getenv(name);
  if (e == nullptr || *e == '\0') return fallback;
  return std::string_view(e) != "0";
}

// Numeric suffix of an "ext-<n>.extent" file name, 0 when the name does
// not match. Reopen seeds the fresh-file sequence from these — file names
// are numbered by a process-global counter, so per-table generations say
// nothing about which names are taken on disk.
std::uint64_t extent_file_seq(const std::filesystem::path& path) {
  const std::string stem = path.stem().string();  // "ext-<n>"
  constexpr std::string_view kPrefix = "ext-";
  if (stem.size() <= kPrefix.size() || stem.compare(0, kPrefix.size(), kPrefix) != 0) {
    return 0;
  }
  std::uint64_t seq = 0;
  for (std::size_t i = kPrefix.size(); i < stem.size(); ++i) {
    const char c = stem[i];
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

// Thread-local snapshot cache slot (see load_snapshot), registered
// process-wide so the engine can invalidate entries held by threads that
// are no longer reading: without this, an idle pool thread's cached
// snapshot pins superseded SSTables — and their remove_on_close() extent
// files — until that thread happens to read again or exits. The per-slot
// mutex is uncontended on the read path (only invalidation sweeps, which
// ride on rare compactions and engine teardown, contend for it).
struct SnapshotCacheSlot {
  std::mutex mu;
  std::uint64_t table_id = 0;
  std::uint64_t version = 0;
  std::shared_ptr<const void> snap;
};

class SnapshotCacheRegistry {
 public:
  static SnapshotCacheRegistry& instance() {
    // Leaked: thread_local slot destructors may outlive function statics.
    static auto* reg = new SnapshotCacheRegistry();
    return *reg;
  }
  void add(SnapshotCacheSlot* slot) {
    std::lock_guard lock(mu_);
    slots_.push_back(slot);
  }
  void remove(SnapshotCacheSlot* slot) {
    std::lock_guard lock(mu_);
    std::erase(slots_, slot);
  }
  /// Drops every thread's cached snapshot of one table (by store id).
  void invalidate(std::uint64_t table_id) {
    std::lock_guard lock(mu_);
    for (SnapshotCacheSlot* slot : slots_) {
      std::lock_guard slot_lock(slot->mu);
      if (slot->table_id == table_id) {
        slot->table_id = 0;
        slot->version = 0;
        slot->snap.reset();
      }
    }
  }

 private:
  std::mutex mu_;
  std::vector<SnapshotCacheSlot*> slots_;
};

SnapshotCacheSlot& thread_snapshot_slot() {
  struct Registered {
    SnapshotCacheSlot slot;
    Registered() { SnapshotCacheRegistry::instance().add(&slot); }
    ~Registered() { SnapshotCacheRegistry::instance().remove(&slot); }
  };
  thread_local Registered r;
  return r.slot;
}

}  // namespace

bool StorageOptions::columnar_extents_default() noexcept {
  return env_flag("HPCLA_COLUMNAR_EXTENTS", false);
}

bool StorageOptions::extent_files_default() noexcept {
  return env_flag("HPCLA_EXTENT_FILES", false);
}

bool StorageOptions::extent_mmap_default() noexcept {
  return env_flag("HPCLA_EXTENT_MMAP", true);
}

std::size_t StorageOptions::block_cache_bytes_default() noexcept {
  const char* e = std::getenv("HPCLA_BLOCK_CACHE_BYTES");
  if (e == nullptr || *e == '\0') return 0;
  return static_cast<std::size_t>(std::strtoull(e, nullptr, 10));
}

StorageEngine::TableStore::TableStore()
    : id([] {
        static std::atomic<std::uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()) {}

StorageEngine::StorageEngine(StorageOptions options) : options_(options) {
  if (options_.extent_files) options_.columnar_extents = true;
  extent_opts_.rows_per_group =
      std::max<std::size_t>(options_.extent_rows_per_group, 1);
  if (options_.block_cache_bytes != 0) {
    // Engines share the process-wide cache, so engine-driven sizing is
    // grow-only: constructing a small-budget engine must not mass-evict
    // a bigger engine's resident working set. Tests (or callers) that
    // need an exact or smaller budget call set_capacity directly.
    BlockCache& cache = BlockCache::instance();
    if (cache.capacity() < options_.block_cache_bytes) {
      cache.set_capacity(options_.block_cache_bytes);
    }
  }
  // Decoded-group caching only pays when the process cache can hold the
  // result; otherwise the plain move-out decode path is strictly faster.
  extent_opts_.cache_decoded =
      options_.extent_files && BlockCache::instance().capacity() != 0;
  if (options_.extent_files) {
    if (options_.data_dir.empty()) {
      data_dir_ = scratch::make_subdir("hpcla-extents");
      owns_data_dir_ = true;
    } else {
      std::error_code ec;
      std::filesystem::create_directories(options_.data_dir, ec);
      data_dir_ = options_.data_dir;
    }
    HPCLA_CHECK_MSG(!data_dir_.empty(), "cannot create extent data dir");
  }
}

StorageEngine::~StorageEngine() {
  // Release every thread's cached snapshot of this engine's tables so
  // superseded SSTables (and their extent files) die with the engine
  // instead of dangling from idle threads' caches.
  for (const auto& [_, store] : tables_) {
    SnapshotCacheRegistry::instance().invalidate(store.id);
  }
  if (owns_data_dir_) scratch::remove_all(data_dir_);
}

const StorageEngine::TableStore* StorageEngine::find_table(
    const std::string& table) const {
  std::shared_lock lock(map_mu_);
  const auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second;
}

StorageEngine::TableStore& StorageEngine::table_for_write(
    const std::string& table) {
  {
    std::shared_lock lock(map_mu_);
    const auto it = tables_.find(table);
    if (it != tables_.end()) return it->second;
  }
  std::unique_lock lock(map_mu_);
  return tables_[table];
}

StorageEngine::SnapshotPtr StorageEngine::load_snapshot(
    const TableStore& store) {
  // One-entry thread-local cache keyed by (table id, publish version).
  // Publishes are rare next to reads, so the hot path degenerates to an
  // uncontended thread-owned lock plus two loads — the atomic shared_ptr
  // load below serializes readers on the control block's refcount (and on
  // a spinlock in libstdc++'s non-lock-free atomic<shared_ptr>), which is
  // what flattened read scaling at 8 threads before this cache existed.
  // The slot is registry-visible so compaction and engine teardown can
  // clear stale entries out from under idle threads (hence the lock).
  SnapshotCacheSlot& slot = thread_snapshot_slot();
  const std::uint64_t version =
      store.snapshot_version.load(std::memory_order_acquire);
  {
    std::lock_guard lock(slot.mu);
    if (slot.table_id == store.id && slot.version == version &&
        slot.snap != nullptr) {
      return std::static_pointer_cast<const TableSnapshot>(slot.snap);
    }
  }
  // Safety: a reader that must observe a publish (because it already
  // observed the corresponding memtable drain via mem_mu) sees the bumped
  // version — publish stores the snapshot before bumping, and the drain
  // happens after the bump, so lock acquisition ordering carries the new
  // version to the reader and the mismatch forces a fresh load here.
  SnapshotPtr snap = store.snapshot.load(std::memory_order_acquire);
  {
    std::lock_guard lock(slot.mu);
    slot.table_id = store.id;
    slot.version = version;
    slot.snap = snap;
  }
  return snap;
}

void StorageEngine::publish_snapshot(TableStore& store, SnapshotPtr next) {
  store.snapshot.store(std::move(next), std::memory_order_release);
  store.snapshot_version.fetch_add(1, std::memory_order_release);
}

void StorageEngine::apply(const WriteCommand& cmd) {
  std::vector<CompactionJob> jobs;
  {
    std::lock_guard writer(writer_mu_);
    const std::uint64_t lsn = log_.append(cmd);
    apply_one_locked(cmd, lsn, jobs);
  }
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  for (auto& job : jobs) run_compaction(std::move(job));
}

bool StorageEngine::try_apply(const WriteCommand& cmd) {
  // Fault fires before the commit-log append: a transiently failed write
  // leaves no trace on this node, exactly like a dropped network mutation.
  if (injector_ != nullptr && injector_->fail_write(injector_node_)) {
    return false;
  }
  apply(cmd);
  return true;
}

void StorageEngine::set_fault_injector(FaultInjector* injector,
                                       std::size_t node) {
  injector_ = injector;
  injector_node_ = node;
}

void StorageEngine::apply_one_locked(const WriteCommand& cmd,
                                     std::uint64_t lsn,
                                     std::vector<CompactionJob>& jobs) {
  TableStore& store = table_for_write(cmd.table);
  {
    std::unique_lock mem(store.mem_mu);
    store.memtable.put(cmd.partition_key, cmd.row);
  }
  store.applied_lsn = std::max(store.applied_lsn, lsn);
  if (store.memtable.memory_bytes() >= options_.memtable_flush_bytes) {
    flush_store_locked(cmd.table, store);
    if (auto job = maybe_begin_compaction_locked(cmd.table, store)) {
      jobs.push_back(std::move(*job));
    }
  }
}

void StorageEngine::persist_sstable(const std::string& table, SSTable& sst,
                                    std::uint64_t flushed_lsn) {
  if (!options_.extent_files) return;
  // Never reuse a name already present on disk: the writer truncates, and
  // an existing file may be live (mmapped by a published SSTable). Reopen
  // seeds the sequence past everything it scanned, so this loop only
  // skips names raced in by a foreign writer sharing the directory.
  std::string path;
  std::error_code exists_ec;
  do {
    path = data_dir_ + "/ext-" +
           std::to_string(
               next_file_seq_.fetch_add(1, std::memory_order_relaxed)) +
           ".extent";
  } while (std::filesystem::exists(path, exists_ec));
  ExtentFileWriter writer(path);
  ExtentFileFooter footer;
  footer.table = table;
  footer.generation = sst.generation();
  footer.flushed_lsn = flushed_lsn;
  sst.persist_to(writer, footer);
  writer.finish(footer);
  auto file = ExtentFile::open(path, options_.extent_mmap);
  HPCLA_CHECK_MSG(file != nullptr, "cannot reopen sealed extent file");
  sst.attach_file(file);
  counters_.extent_files_written.fetch_add(1, std::memory_order_relaxed);
}

void StorageEngine::flush_store_locked(const std::string& table,
                                       TableStore& store) {
  if (store.memtable.empty()) return;
  // Writers are excluded by writer_mu_, so a shared lock is enough for a
  // consistent copy even while readers stream through. Rows are copied
  // straight into SSTable partitions (one copy, not map-clone + move).
  std::vector<SSTable::Partition> partitions;
  {
    std::shared_lock mem(store.mem_mu);
    const auto& frozen = store.memtable.partitions();
    partitions.reserve(frozen.size());
    for (const auto& [key, rows] : frozen) {
      partitions.push_back(SSTable::Partition{key, rows});
    }
  }
  auto sst = std::make_shared<SSTable>(store.next_generation++,
                                       std::move(partitions), extent_opts());
  // The footer covers every mutation currently in the memtable, i.e.
  // everything up to applied_lsn (which becomes flushed_lsn below).
  persist_sstable(table, *sst, store.applied_lsn);

  // Publish BEFORE drain: a reader checks the memtable first, so between
  // publish and drain it sees the rows twice (reconciled) — never zero.
  const SnapshotPtr old = store.snapshot.load(std::memory_order_relaxed);
  auto next = std::make_shared<TableSnapshot>();
  next->sstables = old->sstables;
  next->sstables.push_back(std::move(sst));
  publish_snapshot(store, std::move(next));
  {
    std::unique_lock mem(store.mem_mu);
    (void)store.memtable.drain();
  }
  store.flushed_lsn = store.applied_lsn;
  counters_.memtable_flushes.fetch_add(1, std::memory_order_relaxed);

  // Commit-log entries at or below the minimum flushed LSN across tables
  // are durable in SSTables and can be recycled. (Holding writer_mu_ makes
  // iterating tables_ safe: only writers insert.)
  std::uint64_t min_unflushed = log_.last_lsn();
  for (const auto& [_, t] : tables_) {
    if (t.applied_lsn > t.flushed_lsn) {
      // This table still has memtable-only data covering (flushed, applied].
      min_unflushed = std::min(min_unflushed, t.flushed_lsn);
    }
  }
  log_.truncate(min_unflushed);
}

std::optional<StorageEngine::CompactionJob>
StorageEngine::maybe_begin_compaction_locked(const std::string& table,
                                             TableStore& store) {
  const SnapshotPtr snap = store.snapshot.load(std::memory_order_relaxed);
  if (snap->sstables.size() < options_.compaction_threshold ||
      store.compacting) {
    return std::nullopt;
  }
  store.compacting = true;
  CompactionJob job;
  job.store = &store;
  job.table = table;
  job.inputs = snap->sstables;
  job.generation = store.next_generation++;
  return job;
}

void StorageEngine::run_compaction(CompactionJob job) {
  // The heavy merge runs with no lock held: readers keep reading the old
  // snapshot, writers keep appending new SSTables behind our inputs.
  std::shared_ptr<SSTable> merged =
      compact(job.generation, job.inputs, extent_opts());
  // The merged run covers exactly what its inputs covered: take the
  // newest input footer LSN (0 when inputs are purely in-memory).
  std::uint64_t covered_lsn = 0;
  for (const auto& input : job.inputs) {
    if (const auto& f = input->extent_file()) {
      covered_lsn = std::max(covered_lsn, f->footer().flushed_lsn);
    }
  }
  persist_sstable(job.table, *merged, covered_lsn);

  Stopwatch publish_watch;
  {
    std::lock_guard writer(writer_mu_);
    // Our inputs are a stable prefix of the current list: only flushes
    // append (behind them) and only one compaction per table is in flight.
    const SnapshotPtr cur = job.store->snapshot.load(std::memory_order_relaxed);
    auto next = std::make_shared<TableSnapshot>();
    next->sstables.reserve(cur->sstables.size() - job.inputs.size() + 1);
    next->sstables.push_back(std::move(merged));
    next->sstables.insert(
        next->sstables.end(),
        cur->sstables.begin() +
            static_cast<std::ptrdiff_t>(job.inputs.size()),
        cur->sstables.end());
    publish_snapshot(*job.store, std::move(next));
    job.store->compacting = false;
  }
  // Idle threads' cached snapshots would otherwise pin the superseded
  // inputs (and their files) indefinitely; clear them now. Threads that
  // reloaded the new snapshot just refill on their next read.
  SnapshotCacheRegistry::instance().invalidate(job.store->id);
  // Superseded runs' files go when their last reader drops the handle
  // (in-flight snapshots may still be streaming from them).
  for (const auto& input : job.inputs) {
    if (const auto& f = input->extent_file()) f->remove_on_close();
  }
  counters_.compactions.fetch_add(1, std::memory_order_relaxed);
  counters_.compaction_stall_us.fetch_add(
      static_cast<std::uint64_t>(publish_watch.elapsed_micros()),
      std::memory_order_relaxed);
}

void StorageEngine::reconcile(std::vector<Row>& candidates) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Row& a, const Row& b) {
                     const auto c = a.key.compare(b.key);
                     if (c != std::strong_ordering::equal) {
                       return c == std::strong_ordering::less;
                     }
                     return a.write_ts < b.write_ts;
                   });
  // Keep the newest version of each clustering key.
  std::size_t out = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (out != 0 && candidates[out - 1].key == candidates[i].key) {
      candidates[out - 1] = std::move(candidates[i]);
    } else {
      if (out != i) candidates[out] = std::move(candidates[i]);
      ++out;
    }
  }
  candidates.resize(out);
}

ReadResult StorageEngine::read(const ReadQuery& q) const {
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  ReadResult result;
  const TableStore* store = find_table(q.table);
  if (store == nullptr) return result;
  counters_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);

  // Memtable BEFORE snapshot: flush publishes before draining, so this
  // order can only duplicate rows across the two sources, never lose them.
  std::vector<Row> candidates;
  {
    std::shared_lock mem(store->mem_mu);
    store->memtable.read(q.partition_key, q.slice, candidates);
  }
  const SnapshotPtr snap = load_snapshot(*store);
  for (const auto& sst : snap->sstables) {
    counters_.sstables_read.fetch_add(1, std::memory_order_relaxed);
    if (!sst->read(q.partition_key, q.slice, candidates)) {
      counters_.bloom_rejections.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (candidates.empty()) return result;
  reconcile(candidates);

  if (q.reverse) std::reverse(candidates.begin(), candidates.end());
  if (q.limit != 0 && candidates.size() > q.limit) {
    candidates.resize(q.limit);
    result.truncated = true;
  }
  result.rows = std::move(candidates);
  return result;
}

void StorageEngine::scan_partitions(
    const std::string& table, const std::vector<std::string>& keys,
    const ClusteringSlice& slice,
    const std::function<void(const std::string& key, std::vector<Row> rows)>&
        fn) const {
  telemetry::Span span("cassalite.scan");
  // Stats deltas are whole-process (other threads contribute), so only
  // worth the shard walk when a trace is actually recording.
  const bool tag_cache = span.active() && extent_opts_.cache_decoded;
  const BlockCache::Stats cache_before =
      tag_cache ? BlockCache::instance().stats() : BlockCache::Stats{};

  const TableStore* store = find_table(table);
  if (store == nullptr) {
    for (const auto& key : keys) fn(key, {});
    return;
  }
  counters_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::string> scan_keys = keys;
  if (scan_keys.empty()) {
    // Whole-table scan: union of live and flushed keys. The memtable is
    // listed before the snapshot (same ordering argument as read()); a
    // newer snapshot in the data pass only adds duplicates, which
    // reconcile away.
    std::set<std::string> all;
    {
      std::shared_lock mem(store->mem_mu);
      auto live = store->memtable.partition_keys();
      all.insert(std::make_move_iterator(live.begin()),
                 std::make_move_iterator(live.end()));
    }
    const SnapshotPtr snap = load_snapshot(*store);
    for (const auto& sst : snap->sstables) {
      for (auto& k : sst->partition_keys()) all.insert(std::move(k));
    }
    scan_keys.assign(all.begin(), all.end());
  }

  counters_.reads.fetch_add(scan_keys.size(), std::memory_order_relaxed);
  // Process in chunks: one shared-lock + snapshot acquisition covers a
  // whole chunk (amortized synchronization) while the merge stays
  // cache-hot. Memtable-before-snapshot order per chunk, as in read().
  constexpr std::size_t kChunk = 16;
  std::vector<std::vector<Row>> mem_rows(std::min(kChunk, scan_keys.size()));
  for (std::size_t begin = 0; begin < scan_keys.size(); begin += kChunk) {
    const std::size_t end = std::min(begin + kChunk, scan_keys.size());
    {
      std::shared_lock mem(store->mem_mu);
      for (std::size_t k = begin; k < end; ++k) {
        mem_rows[k - begin].clear();
        store->memtable.read(scan_keys[k], slice, mem_rows[k - begin]);
      }
    }
    const SnapshotPtr snap = load_snapshot(*store);
    for (std::size_t k = begin; k < end; ++k) {
      const std::string& key = scan_keys[k];
      std::vector<Row> candidates = std::move(mem_rows[k - begin]);
      for (const auto& sst : snap->sstables) {
        counters_.sstables_read.fetch_add(1, std::memory_order_relaxed);
        if (!sst->read(key, slice, candidates)) {
          counters_.bloom_rejections.fetch_add(1, std::memory_order_relaxed);
        }
      }
      reconcile(candidates);
      fn(key, std::move(candidates));
    }
  }

  if (span.active()) {
    span.tag("table", table);
    span.tag("keys", static_cast<std::uint64_t>(scan_keys.size()));
    if (tag_cache) {
      const BlockCache::Stats after = BlockCache::instance().stats();
      span.tag("blockcache_hits", after.hits - cache_before.hits);
      span.tag("blockcache_misses", after.misses - cache_before.misses);
    }
  }
}

std::vector<std::string> StorageEngine::partition_keys(
    const std::string& table) const {
  const TableStore* store = find_table(table);
  if (store == nullptr) return {};
  std::set<std::string> keys;
  {
    std::shared_lock mem(store->mem_mu);
    for (auto& k : store->memtable.partition_keys()) keys.insert(std::move(k));
  }
  const SnapshotPtr snap = load_snapshot(*store);
  for (const auto& sst : snap->sstables) {
    for (auto& k : sst->partition_keys()) keys.insert(std::move(k));
  }
  return {keys.begin(), keys.end()};
}

std::vector<std::string> StorageEngine::table_names() const {
  std::shared_lock lock(map_mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;  // std::map iteration order: already sorted
}

std::uint64_t StorageEngine::approximate_rows(const std::string& table) const {
  const TableStore* store = find_table(table);
  if (store == nullptr) return 0;
  std::uint64_t total = 0;
  {
    std::shared_lock mem(store->mem_mu);
    total += store->memtable.row_count();
  }
  const SnapshotPtr snap = load_snapshot(*store);
  for (const auto& sst : snap->sstables) total += sst->row_count();
  return total;
}

std::size_t StorageEngine::reopen_locked(std::vector<CompactionJob>& jobs) {
  // Drop every in-memory structure: memtables are gone (a crash loses
  // them), and with extent files on the SSTable objects themselves are
  // rebuilt from disk rather than trusted.
  for (auto& [_, store] : tables_) {
    {
      std::unique_lock mem(store.mem_mu);
      (void)store.memtable.drain();
    }
    if (options_.extent_files) {
      publish_snapshot(store, std::make_shared<TableSnapshot>());
      store.flushed_lsn = 0;
      store.next_generation = 1;
    }
    store.applied_lsn = store.flushed_lsn;
  }

  if (options_.extent_files) {
    // Scan the data dir for sealed extent files. Files that fail to open
    // (torn writes, foreign files) are skipped, not fatal — but their
    // names still count toward the fresh-file sequence below, so a later
    // flush can never truncate a path that exists on disk.
    std::map<std::string, std::vector<std::shared_ptr<ExtentFile>>> by_table;
    std::uint64_t max_seq = 0;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(data_dir_, ec)) {
      if (!entry.is_regular_file() ||
          entry.path().extension() != ".extent") {
        continue;
      }
      max_seq = std::max(max_seq, extent_file_seq(entry.path()));
      if (auto file =
              ExtentFile::open(entry.path().string(), options_.extent_mmap)) {
        by_table[file->footer().table].push_back(std::move(file));
      }
    }
    for (auto& [table, files] : by_table) {
      // Ascending generation restores flush order (compaction outputs carry
      // a generation above their inputs', so they sort behind them too).
      std::sort(files.begin(), files.end(),
                [](const auto& a, const auto& b) {
                  return a->footer().generation < b->footer().generation;
                });
      TableStore& store = table_for_write(table);
      auto next = std::make_shared<TableSnapshot>();
      for (auto& file : files) {
        store.next_generation =
            std::max(store.next_generation, file->footer().generation + 1);
        store.flushed_lsn =
            std::max(store.flushed_lsn, file->footer().flushed_lsn);
        next->sstables.push_back(
            SSTable::from_extent_file(std::move(file), extent_opts_));
      }
      store.applied_lsn = store.flushed_lsn;
      publish_snapshot(store, std::move(next));
    }
    // Keep fresh file names clear of anything already in the directory.
    // max_seq comes from the file names themselves, NOT from per-table
    // generations: the sequence is process-global across tables, so the
    // per-table generation max can sit below a live file's number.
    std::uint64_t seq = next_file_seq_.load(std::memory_order_relaxed);
    next_file_seq_.store(std::max(seq, max_seq + 1),
                         std::memory_order_relaxed);
  }

  // Replay everything newer than the oldest flushed point. Replaying a
  // mutation that already reached an SSTable is harmless: reconciliation
  // is last-write-wins on identical write_ts.
  std::uint64_t min_flushed = log_.last_lsn();
  for (const auto& [_, store] : tables_) {
    min_flushed = std::min(min_flushed, store.flushed_lsn);
  }
  const auto entries = log_.replay(min_flushed);
  std::uint64_t lsn = min_flushed;
  for (const auto& cmd : entries) {
    apply_one_locked(cmd, ++lsn, jobs);
  }
  return entries.size();
}

std::size_t StorageEngine::crash_and_recover() {
  std::vector<CompactionJob> jobs;
  std::size_t replayed = 0;
  {
    std::lock_guard writer(writer_mu_);
    replayed = reopen_locked(jobs);
  }
  for (auto& job : jobs) run_compaction(std::move(job));
  return replayed;
}

std::size_t StorageEngine::reopen_from_disk() {
  HPCLA_CHECK_MSG(options_.extent_files,
                  "reopen_from_disk requires extent_files");
  return crash_and_recover();
}

StorageMetrics StorageEngine::metrics() const {
  StorageMetrics m;
  m.writes = counters_.writes.load(std::memory_order_relaxed);
  m.reads = counters_.reads.load(std::memory_order_relaxed);
  m.memtable_flushes =
      counters_.memtable_flushes.load(std::memory_order_relaxed);
  m.compactions = counters_.compactions.load(std::memory_order_relaxed);
  m.sstables_read = counters_.sstables_read.load(std::memory_order_relaxed);
  m.bloom_rejections =
      counters_.bloom_rejections.load(std::memory_order_relaxed);
  m.snapshot_reads = counters_.snapshot_reads.load(std::memory_order_relaxed);
  m.compaction_stall_us =
      counters_.compaction_stall_us.load(std::memory_order_relaxed);
  m.extent_files_written =
      counters_.extent_files_written.load(std::memory_order_relaxed);
  // Extent accounting reflects the currently published SSTables (it shrinks
  // when compaction supersedes runs). Tables are never erased and map nodes
  // are stable, so a shared map lock plus acquire snapshot loads suffice.
  {
    std::shared_lock map(map_mu_);
    for (const auto& [_, store] : tables_) {
      const SnapshotPtr snap = store.snapshot.load(std::memory_order_acquire);
      for (const auto& sst : snap->sstables) {
        m.extent_raw_bytes += sst->extent_raw_bytes();
        m.extent_encoded_bytes += sst->extent_encoded_bytes();
      }
    }
  }
  return m;
}

void StorageEngine::flush_all() {
  std::vector<CompactionJob> jobs;
  {
    std::lock_guard writer(writer_mu_);
    for (auto& [table, store] : tables_) {
      flush_store_locked(table, store);
      if (auto job = maybe_begin_compaction_locked(table, store)) {
        jobs.push_back(std::move(*job));
      }
    }
  }
  for (auto& job : jobs) run_compaction(std::move(job));
}

}  // namespace hpcla::cassalite
