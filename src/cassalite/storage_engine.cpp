#include "cassalite/storage_engine.hpp"

#include <algorithm>
#include <set>

namespace hpcla::cassalite {

StorageEngine::StorageEngine(StorageOptions options) : options_(options) {}

void StorageEngine::apply(const WriteCommand& cmd) {
  std::lock_guard lock(mu_);
  const std::uint64_t lsn = log_.append(cmd);
  apply_locked(cmd, lsn);
  ++metrics_.writes;
}

void StorageEngine::apply_locked(const WriteCommand& cmd, std::uint64_t lsn) {
  TableStore& store = tables_[cmd.table];
  store.memtable.put(cmd.partition_key, cmd.row);
  store.applied_lsn = std::max(store.applied_lsn, lsn);
  maybe_flush_locked(cmd.table, store);
}

void StorageEngine::maybe_flush_locked(const std::string& table,
                                       TableStore& store) {
  if (store.memtable.memory_bytes() >= options_.memtable_flush_bytes) {
    flush_locked(table, store);
  }
}

void StorageEngine::flush_locked(const std::string& /*table*/,
                                 TableStore& store) {
  if (store.memtable.empty()) return;
  auto drained = store.memtable.drain();
  std::vector<SSTable::Partition> partitions;
  partitions.reserve(drained.size());
  for (auto& [key, rows] : drained) {
    partitions.push_back(SSTable::Partition{key, std::move(rows)});
  }
  store.sstables.push_back(std::make_shared<const SSTable>(
      store.next_generation++, std::move(partitions)));
  store.flushed_lsn = store.applied_lsn;
  ++metrics_.memtable_flushes;
  maybe_compact_locked(store);

  // Commit-log entries at or below the minimum flushed LSN across tables
  // are durable in SSTables and can be recycled.
  std::uint64_t min_unflushed = log_.last_lsn();
  for (const auto& [_, t] : tables_) {
    if (t.applied_lsn > t.flushed_lsn) {
      // This table still has memtable-only data covering (flushed, applied].
      min_unflushed = std::min(min_unflushed, t.flushed_lsn);
    }
  }
  log_.truncate(min_unflushed);
}

void StorageEngine::maybe_compact_locked(TableStore& store) {
  if (store.sstables.size() < options_.compaction_threshold) return;
  SSTablePtr merged = compact(store.next_generation++, store.sstables);
  store.sstables.clear();
  store.sstables.push_back(std::move(merged));
  ++metrics_.compactions;
}

ReadResult StorageEngine::read(const ReadQuery& q) const {
  std::lock_guard lock(mu_);
  ++metrics_.reads;
  ReadResult result;
  const auto it = tables_.find(q.table);
  if (it == tables_.end()) return result;
  const TableStore& store = it->second;

  // Gather candidates from every run, then reconcile by clustering key.
  std::vector<Row> candidates;
  store.memtable.read(q.partition_key, q.slice, candidates);
  for (const auto& sst : store.sstables) {
    ++metrics_.sstables_read;
    if (!sst->read(q.partition_key, q.slice, candidates)) {
      ++metrics_.bloom_rejections;
    }
  }
  if (candidates.empty()) return result;

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Row& a, const Row& b) {
                     const auto c = a.key.compare(b.key);
                     if (c != std::strong_ordering::equal) {
                       return c == std::strong_ordering::less;
                     }
                     return a.write_ts < b.write_ts;
                   });
  // Keep the newest version of each clustering key.
  std::vector<Row> merged;
  merged.reserve(candidates.size());
  for (auto& row : candidates) {
    if (!merged.empty() && merged.back().key == row.key) {
      merged.back() = std::move(row);
    } else {
      merged.push_back(std::move(row));
    }
  }

  if (q.reverse) std::reverse(merged.begin(), merged.end());
  if (q.limit != 0 && merged.size() > q.limit) {
    merged.resize(q.limit);
    result.truncated = true;
  }
  result.rows = std::move(merged);
  return result;
}

std::vector<std::string> StorageEngine::partition_keys(
    const std::string& table) const {
  std::lock_guard lock(mu_);
  std::set<std::string> keys;
  const auto it = tables_.find(table);
  if (it == tables_.end()) return {};
  for (const auto& k : it->second.memtable.partition_keys()) keys.insert(k);
  for (const auto& sst : it->second.sstables) {
    for (const auto& p : sst->partitions()) keys.insert(p.key);
  }
  return {keys.begin(), keys.end()};
}

std::uint64_t StorageEngine::approximate_rows(const std::string& table) const {
  std::lock_guard lock(mu_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) return 0;
  std::uint64_t total = it->second.memtable.row_count();
  for (const auto& sst : it->second.sstables) total += sst->row_count();
  return total;
}

std::size_t StorageEngine::crash_and_recover() {
  std::lock_guard lock(mu_);
  // Lose all memtables; SSTables survive (they are "on disk").
  for (auto& [_, store] : tables_) {
    (void)store.memtable.drain();
    store.applied_lsn = store.flushed_lsn;
  }
  // Replay everything newer than the oldest flushed point. Replaying a
  // mutation that already reached an SSTable is harmless: reconciliation
  // is last-write-wins on identical write_ts.
  std::uint64_t min_flushed = log_.last_lsn();
  for (const auto& [_, store] : tables_) {
    min_flushed = std::min(min_flushed, store.flushed_lsn);
  }
  const auto entries = log_.replay(min_flushed);
  std::uint64_t lsn = min_flushed;
  for (const auto& cmd : entries) {
    apply_locked(cmd, ++lsn);
  }
  return entries.size();
}

StorageMetrics StorageEngine::metrics() const {
  std::lock_guard lock(mu_);
  return metrics_;
}

void StorageEngine::flush_all() {
  std::lock_guard lock(mu_);
  for (auto& [name, store] : tables_) flush_locked(name, store);
}

}  // namespace hpcla::cassalite
