#include "cassalite/storage_engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/clock.hpp"
#include "common/faultsim.hpp"

namespace hpcla::cassalite {

bool StorageOptions::columnar_extents_default() noexcept {
  const char* e = std::getenv("HPCLA_COLUMNAR_EXTENTS");
  return e != nullptr && *e != '\0' && std::string_view(e) != "0";
}

StorageEngine::StorageEngine(StorageOptions options) : options_(options) {
  extent_opts_.rows_per_group =
      std::max<std::size_t>(options_.extent_rows_per_group, 1);
}

const StorageEngine::TableStore* StorageEngine::find_table(
    const std::string& table) const {
  std::shared_lock lock(map_mu_);
  const auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second;
}

StorageEngine::TableStore& StorageEngine::table_for_write(
    const std::string& table) {
  {
    std::shared_lock lock(map_mu_);
    const auto it = tables_.find(table);
    if (it != tables_.end()) return it->second;
  }
  std::unique_lock lock(map_mu_);
  return tables_[table];
}

void StorageEngine::apply(const WriteCommand& cmd) {
  std::vector<CompactionJob> jobs;
  {
    std::lock_guard writer(writer_mu_);
    const std::uint64_t lsn = log_.append(cmd);
    apply_one_locked(cmd, lsn, jobs);
  }
  counters_.writes.fetch_add(1, std::memory_order_relaxed);
  for (auto& job : jobs) run_compaction(std::move(job));
}

bool StorageEngine::try_apply(const WriteCommand& cmd) {
  // Fault fires before the commit-log append: a transiently failed write
  // leaves no trace on this node, exactly like a dropped network mutation.
  if (injector_ != nullptr && injector_->fail_write(injector_node_)) {
    return false;
  }
  apply(cmd);
  return true;
}

void StorageEngine::set_fault_injector(FaultInjector* injector,
                                       std::size_t node) {
  injector_ = injector;
  injector_node_ = node;
}

void StorageEngine::apply_one_locked(const WriteCommand& cmd,
                                     std::uint64_t lsn,
                                     std::vector<CompactionJob>& jobs) {
  TableStore& store = table_for_write(cmd.table);
  {
    std::unique_lock mem(store.mem_mu);
    store.memtable.put(cmd.partition_key, cmd.row);
  }
  store.applied_lsn = std::max(store.applied_lsn, lsn);
  if (store.memtable.memory_bytes() >= options_.memtable_flush_bytes) {
    flush_store_locked(store);
    if (auto job = maybe_begin_compaction_locked(store)) {
      jobs.push_back(std::move(*job));
    }
  }
}

void StorageEngine::flush_store_locked(TableStore& store) {
  if (store.memtable.empty()) return;
  // Writers are excluded by writer_mu_, so a shared lock is enough for a
  // consistent copy even while readers stream through. Rows are copied
  // straight into SSTable partitions (one copy, not map-clone + move).
  std::vector<SSTable::Partition> partitions;
  {
    std::shared_lock mem(store.mem_mu);
    const auto& frozen = store.memtable.partitions();
    partitions.reserve(frozen.size());
    for (const auto& [key, rows] : frozen) {
      partitions.push_back(SSTable::Partition{key, rows});
    }
  }
  auto sst = std::make_shared<const SSTable>(
      store.next_generation++, std::move(partitions), extent_opts());

  // Publish BEFORE drain: a reader checks the memtable first, so between
  // publish and drain it sees the rows twice (reconciled) — never zero.
  const SnapshotPtr old = store.snapshot.load(std::memory_order_relaxed);
  auto next = std::make_shared<TableSnapshot>();
  next->sstables = old->sstables;
  next->sstables.push_back(std::move(sst));
  store.snapshot.store(std::move(next), std::memory_order_release);
  {
    std::unique_lock mem(store.mem_mu);
    (void)store.memtable.drain();
  }
  store.flushed_lsn = store.applied_lsn;
  counters_.memtable_flushes.fetch_add(1, std::memory_order_relaxed);

  // Commit-log entries at or below the minimum flushed LSN across tables
  // are durable in SSTables and can be recycled. (Holding writer_mu_ makes
  // iterating tables_ safe: only writers insert.)
  std::uint64_t min_unflushed = log_.last_lsn();
  for (const auto& [_, t] : tables_) {
    if (t.applied_lsn > t.flushed_lsn) {
      // This table still has memtable-only data covering (flushed, applied].
      min_unflushed = std::min(min_unflushed, t.flushed_lsn);
    }
  }
  log_.truncate(min_unflushed);
}

std::optional<StorageEngine::CompactionJob>
StorageEngine::maybe_begin_compaction_locked(TableStore& store) {
  const SnapshotPtr snap = store.snapshot.load(std::memory_order_relaxed);
  if (snap->sstables.size() < options_.compaction_threshold ||
      store.compacting) {
    return std::nullopt;
  }
  store.compacting = true;
  CompactionJob job;
  job.store = &store;
  job.inputs = snap->sstables;
  job.generation = store.next_generation++;
  return job;
}

void StorageEngine::run_compaction(CompactionJob job) {
  // The heavy merge runs with no lock held: readers keep reading the old
  // snapshot, writers keep appending new SSTables behind our inputs.
  SSTablePtr merged = compact(job.generation, job.inputs, extent_opts());

  Stopwatch publish_watch;
  {
    std::lock_guard writer(writer_mu_);
    // Our inputs are a stable prefix of the current list: only flushes
    // append (behind them) and only one compaction per table is in flight.
    const SnapshotPtr cur = job.store->snapshot.load(std::memory_order_relaxed);
    auto next = std::make_shared<TableSnapshot>();
    next->sstables.reserve(cur->sstables.size() - job.inputs.size() + 1);
    next->sstables.push_back(std::move(merged));
    next->sstables.insert(
        next->sstables.end(),
        cur->sstables.begin() +
            static_cast<std::ptrdiff_t>(job.inputs.size()),
        cur->sstables.end());
    job.store->snapshot.store(std::move(next), std::memory_order_release);
    job.store->compacting = false;
  }
  counters_.compactions.fetch_add(1, std::memory_order_relaxed);
  counters_.compaction_stall_us.fetch_add(
      static_cast<std::uint64_t>(publish_watch.elapsed_micros()),
      std::memory_order_relaxed);
}

void StorageEngine::reconcile(std::vector<Row>& candidates) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Row& a, const Row& b) {
                     const auto c = a.key.compare(b.key);
                     if (c != std::strong_ordering::equal) {
                       return c == std::strong_ordering::less;
                     }
                     return a.write_ts < b.write_ts;
                   });
  // Keep the newest version of each clustering key.
  std::size_t out = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (out != 0 && candidates[out - 1].key == candidates[i].key) {
      candidates[out - 1] = std::move(candidates[i]);
    } else {
      if (out != i) candidates[out] = std::move(candidates[i]);
      ++out;
    }
  }
  candidates.resize(out);
}

ReadResult StorageEngine::read(const ReadQuery& q) const {
  counters_.reads.fetch_add(1, std::memory_order_relaxed);
  ReadResult result;
  const TableStore* store = find_table(q.table);
  if (store == nullptr) return result;
  counters_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);

  // Memtable BEFORE snapshot: flush publishes before draining, so this
  // order can only duplicate rows across the two sources, never lose them.
  std::vector<Row> candidates;
  {
    std::shared_lock mem(store->mem_mu);
    store->memtable.read(q.partition_key, q.slice, candidates);
  }
  const SnapshotPtr snap = store->snapshot.load(std::memory_order_acquire);
  for (const auto& sst : snap->sstables) {
    counters_.sstables_read.fetch_add(1, std::memory_order_relaxed);
    if (!sst->read(q.partition_key, q.slice, candidates)) {
      counters_.bloom_rejections.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (candidates.empty()) return result;
  reconcile(candidates);

  if (q.reverse) std::reverse(candidates.begin(), candidates.end());
  if (q.limit != 0 && candidates.size() > q.limit) {
    candidates.resize(q.limit);
    result.truncated = true;
  }
  result.rows = std::move(candidates);
  return result;
}

void StorageEngine::scan_partitions(
    const std::string& table, const std::vector<std::string>& keys,
    const ClusteringSlice& slice,
    const std::function<void(const std::string& key, std::vector<Row> rows)>&
        fn) const {
  const TableStore* store = find_table(table);
  if (store == nullptr) {
    for (const auto& key : keys) fn(key, {});
    return;
  }
  counters_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);

  std::vector<std::string> scan_keys = keys;
  if (scan_keys.empty()) {
    // Whole-table scan: union of live and flushed keys. The memtable is
    // listed before the snapshot (same ordering argument as read()); a
    // newer snapshot in the data pass only adds duplicates, which
    // reconcile away.
    std::set<std::string> all;
    {
      std::shared_lock mem(store->mem_mu);
      auto live = store->memtable.partition_keys();
      all.insert(std::make_move_iterator(live.begin()),
                 std::make_move_iterator(live.end()));
    }
    const SnapshotPtr snap = store->snapshot.load(std::memory_order_acquire);
    for (const auto& sst : snap->sstables) {
      for (auto& k : sst->partition_keys()) all.insert(std::move(k));
    }
    scan_keys.assign(all.begin(), all.end());
  }

  counters_.reads.fetch_add(scan_keys.size(), std::memory_order_relaxed);
  // Process in chunks: one shared-lock + snapshot acquisition covers a
  // whole chunk (amortized synchronization) while the merge stays
  // cache-hot. Memtable-before-snapshot order per chunk, as in read().
  constexpr std::size_t kChunk = 16;
  std::vector<std::vector<Row>> mem_rows(std::min(kChunk, scan_keys.size()));
  for (std::size_t begin = 0; begin < scan_keys.size(); begin += kChunk) {
    const std::size_t end = std::min(begin + kChunk, scan_keys.size());
    {
      std::shared_lock mem(store->mem_mu);
      for (std::size_t k = begin; k < end; ++k) {
        mem_rows[k - begin].clear();
        store->memtable.read(scan_keys[k], slice, mem_rows[k - begin]);
      }
    }
    const SnapshotPtr snap = store->snapshot.load(std::memory_order_acquire);
    for (std::size_t k = begin; k < end; ++k) {
      const std::string& key = scan_keys[k];
      std::vector<Row> candidates = std::move(mem_rows[k - begin]);
      for (const auto& sst : snap->sstables) {
        counters_.sstables_read.fetch_add(1, std::memory_order_relaxed);
        if (!sst->read(key, slice, candidates)) {
          counters_.bloom_rejections.fetch_add(1, std::memory_order_relaxed);
        }
      }
      reconcile(candidates);
      fn(key, std::move(candidates));
    }
  }
}

std::vector<std::string> StorageEngine::partition_keys(
    const std::string& table) const {
  const TableStore* store = find_table(table);
  if (store == nullptr) return {};
  std::set<std::string> keys;
  {
    std::shared_lock mem(store->mem_mu);
    for (auto& k : store->memtable.partition_keys()) keys.insert(std::move(k));
  }
  const SnapshotPtr snap = store->snapshot.load(std::memory_order_acquire);
  for (const auto& sst : snap->sstables) {
    for (auto& k : sst->partition_keys()) keys.insert(std::move(k));
  }
  return {keys.begin(), keys.end()};
}

std::uint64_t StorageEngine::approximate_rows(const std::string& table) const {
  const TableStore* store = find_table(table);
  if (store == nullptr) return 0;
  std::uint64_t total = 0;
  {
    std::shared_lock mem(store->mem_mu);
    total += store->memtable.row_count();
  }
  const SnapshotPtr snap = store->snapshot.load(std::memory_order_acquire);
  for (const auto& sst : snap->sstables) total += sst->row_count();
  return total;
}

std::size_t StorageEngine::crash_and_recover() {
  std::vector<CompactionJob> jobs;
  std::size_t replayed = 0;
  {
    std::lock_guard writer(writer_mu_);
    // Lose all memtables; SSTables survive (they are "on disk").
    for (auto& [_, store] : tables_) {
      std::unique_lock mem(store.mem_mu);
      (void)store.memtable.drain();
      store.applied_lsn = store.flushed_lsn;
    }
    // Replay everything newer than the oldest flushed point. Replaying a
    // mutation that already reached an SSTable is harmless: reconciliation
    // is last-write-wins on identical write_ts.
    std::uint64_t min_flushed = log_.last_lsn();
    for (const auto& [_, store] : tables_) {
      min_flushed = std::min(min_flushed, store.flushed_lsn);
    }
    const auto entries = log_.replay(min_flushed);
    std::uint64_t lsn = min_flushed;
    for (const auto& cmd : entries) {
      apply_one_locked(cmd, ++lsn, jobs);
    }
    replayed = entries.size();
  }
  for (auto& job : jobs) run_compaction(std::move(job));
  return replayed;
}

StorageMetrics StorageEngine::metrics() const {
  StorageMetrics m;
  m.writes = counters_.writes.load(std::memory_order_relaxed);
  m.reads = counters_.reads.load(std::memory_order_relaxed);
  m.memtable_flushes =
      counters_.memtable_flushes.load(std::memory_order_relaxed);
  m.compactions = counters_.compactions.load(std::memory_order_relaxed);
  m.sstables_read = counters_.sstables_read.load(std::memory_order_relaxed);
  m.bloom_rejections =
      counters_.bloom_rejections.load(std::memory_order_relaxed);
  m.snapshot_reads = counters_.snapshot_reads.load(std::memory_order_relaxed);
  m.compaction_stall_us =
      counters_.compaction_stall_us.load(std::memory_order_relaxed);
  // Extent accounting reflects the currently published SSTables (it shrinks
  // when compaction supersedes runs). Tables are never erased and map nodes
  // are stable, so a shared map lock plus acquire snapshot loads suffice.
  {
    std::shared_lock map(map_mu_);
    for (const auto& [_, store] : tables_) {
      const SnapshotPtr snap = store.snapshot.load(std::memory_order_acquire);
      for (const auto& sst : snap->sstables) {
        m.extent_raw_bytes += sst->extent_raw_bytes();
        m.extent_encoded_bytes += sst->extent_encoded_bytes();
      }
    }
  }
  return m;
}

void StorageEngine::flush_all() {
  std::vector<CompactionJob> jobs;
  {
    std::lock_guard writer(writer_mu_);
    for (auto& [_, store] : tables_) {
      flush_store_locked(store);
      if (auto job = maybe_begin_compaction_locked(store)) {
        jobs.push_back(std::move(*job));
      }
    }
  }
  for (auto& job : jobs) run_compaction(std::move(job));
}

}  // namespace hpcla::cassalite
