#include "cassalite/cql.hpp"

#include <algorithm>
#include <cctype>

#include "common/strings.hpp"

namespace hpcla::cassalite {
namespace {

// ---------------------------------------------------------------- lexer

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   ///< identifier (lowercased) / symbol / raw number
  Value literal;      ///< for kNumber / kString
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> out;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size()) break;
      const char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(ident());
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '+') {
        auto t = number();
        if (!t.is_ok()) return t.status();
        out.push_back(std::move(t.value()));
      } else if (c == '\'') {
        auto t = string_lit();
        if (!t.is_ok()) return t.status();
        out.push_back(std::move(t.value()));
      } else if (c == '<' || c == '>') {
        std::string sym(1, c);
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          sym.push_back('=');
          ++pos_;
        }
        out.push_back(Token{TokKind::kSymbol, sym, {}});
      } else if (c == '=' || c == ',' || c == '(' || c == ')' || c == '*' ||
                 c == ';') {
        out.push_back(Token{TokKind::kSymbol, std::string(1, c), {}});
        ++pos_;
      } else {
        return invalid_argument("CQL: unexpected character '" +
                                std::string(1, c) + "' at offset " +
                                std::to_string(pos_));
      }
    }
    out.push_back(Token{TokKind::kEnd, "", {}});
    return out;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Token ident() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    Token t;
    t.kind = TokKind::kIdent;
    t.text = to_lower(text_.substr(start, pos_ - start));
    return t;
  }

  Result<Token> number() {
    const std::size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_double = true;
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-') &&
            (c == 'e' || c == 'E')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    const std::string raw(text_.substr(start, pos_ - start));
    Token t;
    t.kind = TokKind::kNumber;
    t.text = raw;
    if (!is_double) {
      long long v = 0;
      if (!parse_int(raw, v)) {
        return invalid_argument("CQL: bad integer literal '" + raw + "'");
      }
      t.literal = Value(static_cast<std::int64_t>(v));
    } else {
      try {
        t.literal = Value(std::stod(raw));
      } catch (...) {
        return invalid_argument("CQL: bad numeric literal '" + raw + "'");
      }
    }
    return t;
  }

  Result<Token> string_lit() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '\'') {
        if (pos_ < text_.size() && text_[pos_] == '\'') {
          out.push_back('\'');  // '' escape
          ++pos_;
          continue;
        }
        Token t;
        t.kind = TokKind::kString;
        t.literal = Value(out);
        t.text = std::move(out);
        return t;
      }
      out.push_back(c);
    }
    return invalid_argument("CQL: unterminated string literal");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<CqlStatement> parse() {
    CqlStatement stmt;
    if (accept_kw("select")) {
      auto s = parse_select();
      if (!s.is_ok()) return s.status();
      stmt.select = std::move(s.value());
    } else if (accept_kw("insert")) {
      auto i = parse_insert();
      if (!i.is_ok()) return i.status();
      stmt.insert = std::move(i.value());
    } else {
      return invalid_argument("CQL: expected SELECT or INSERT");
    }
    accept_sym(";");
    if (peek().kind != TokKind::kEnd) {
      return invalid_argument("CQL: trailing tokens after statement");
    }
    return stmt;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }

  bool accept_kw(std::string_view kw) {
    if (peek().kind == TokKind::kIdent && peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool accept_sym(std::string_view sym) {
    if (peek().kind == TokKind::kSymbol && peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> expect_ident(const char* what) {
    if (peek().kind != TokKind::kIdent) {
      return invalid_argument(std::string("CQL: expected ") + what);
    }
    return advance().text;
  }

  Result<Value> expect_literal() {
    const Token& t = peek();
    if (t.kind == TokKind::kNumber || t.kind == TokKind::kString) {
      return advance().literal;
    }
    if (t.kind == TokKind::kIdent) {
      if (t.text == "true") {
        ++pos_;
        return Value(true);
      }
      if (t.text == "false") {
        ++pos_;
        return Value(false);
      }
      if (t.text == "null") {
        ++pos_;
        return Value();
      }
    }
    return invalid_argument("CQL: expected literal, got '" + t.text + "'");
  }

  Result<CqlSelect> parse_select() {
    CqlSelect sel;
    // Projection.
    if (accept_sym("*")) {
      // all columns
    } else if (peek().kind == TokKind::kIdent && peek().text == "count") {
      ++pos_;
      if (!accept_sym("(") || !accept_sym("*") || !accept_sym(")")) {
        return invalid_argument("CQL: expected COUNT(*)");
      }
      sel.count_only = true;
    } else {
      while (true) {
        auto col = expect_ident("column name");
        if (!col.is_ok()) return col.status();
        sel.columns.push_back(std::move(col.value()));
        if (!accept_sym(",")) break;
      }
    }
    if (!accept_kw("from")) return invalid_argument("CQL: expected FROM");
    auto table = expect_ident("table name");
    if (!table.is_ok()) return table.status();
    sel.table = std::move(table.value());

    // WHERE clauses. Equalities go to partition_eq (the executor decides,
    // schema in hand, whether each names a partition column or the first
    // clustering column); range operators fill the clustering slots.
    if (accept_kw("where")) {
      while (true) {
        auto col = expect_ident("column in WHERE");
        if (!col.is_ok()) return col.status();
        std::string op;
        for (const char* candidate : {"=", "<=", ">=", "<", ">"}) {
          if (accept_sym(candidate)) {
            op = candidate;
            break;
          }
        }
        if (op.empty()) {
          return invalid_argument("CQL: expected comparison operator");
        }
        auto lit = expect_literal();
        if (!lit.is_ok()) return lit.status();
        if (op == "=") {
          sel.partition_eq.emplace_back(col.value(), std::move(lit.value()));
        } else {
          if (op == "<") {
            sel.ck_upper = std::move(lit.value());
            sel.ck_upper_inclusive = false;
          } else if (op == "<=") {
            sel.ck_upper = std::move(lit.value());
            sel.ck_upper_inclusive = true;
          } else if (op == ">") {
            sel.ck_lower = std::move(lit.value());
            sel.ck_lower_strict = true;
          } else {  // >=
            sel.ck_lower = std::move(lit.value());
            sel.ck_lower_strict = false;
          }
          sel_range_cols_.push_back(col.value());
        }
        if (!accept_kw("and")) break;
      }
    }

    if (accept_kw("order")) {
      if (!accept_kw("by")) return invalid_argument("CQL: expected ORDER BY");
      auto col = expect_ident("ORDER BY column");
      if (!col.is_ok()) return col.status();
      sel_order_col_ = col.value();
      if (accept_kw("desc")) {
        sel.order_desc = true;
      } else {
        accept_kw("asc");
      }
    }
    if (accept_kw("limit")) {
      if (peek().kind != TokKind::kNumber || !peek().literal.is_int() ||
          peek().literal.as_int() <= 0) {
        return invalid_argument("CQL: LIMIT requires a positive integer");
      }
      sel.limit = static_cast<std::size_t>(advance().literal.as_int());
    }
    return sel;
  }

  Result<CqlInsert> parse_insert() {
    CqlInsert ins;
    if (!accept_kw("into")) return invalid_argument("CQL: expected INTO");
    auto table = expect_ident("table name");
    if (!table.is_ok()) return table.status();
    ins.table = std::move(table.value());
    if (!accept_sym("(")) return invalid_argument("CQL: expected '('");
    std::vector<std::string> cols;
    while (true) {
      auto col = expect_ident("column name");
      if (!col.is_ok()) return col.status();
      cols.push_back(std::move(col.value()));
      if (accept_sym(",")) continue;
      break;
    }
    if (!accept_sym(")")) return invalid_argument("CQL: expected ')'");
    if (!accept_kw("values")) return invalid_argument("CQL: expected VALUES");
    if (!accept_sym("(")) return invalid_argument("CQL: expected '('");
    std::vector<Value> vals;
    while (true) {
      auto lit = expect_literal();
      if (!lit.is_ok()) return lit.status();
      vals.push_back(std::move(lit.value()));
      if (accept_sym(",")) continue;
      break;
    }
    if (!accept_sym(")")) return invalid_argument("CQL: expected ')'");
    if (cols.size() != vals.size()) {
      return invalid_argument("CQL: column/value count mismatch");
    }
    for (std::size_t i = 0; i < cols.size(); ++i) {
      ins.values.emplace_back(std::move(cols[i]), std::move(vals[i]));
    }
    return ins;
  }

 public:
  // Side-channel parse artifacts the executor needs.
  std::vector<std::string> sel_range_cols_;
  std::string sel_order_col_;

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

std::string value_to_key_part(const Value& v) {
  if (v.is_int()) return std::to_string(v.as_int());
  if (v.is_text()) return v.as_text();
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_double()) return format_double(v.as_double(), 17);
  return "";
}

}  // namespace

Result<CqlStatement> parse_cql(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.run();
  if (!tokens.is_ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.parse();
}

namespace {

Result<CqlResult> execute_select(Cluster& cluster, const CqlSelect& sel,
                                 const std::vector<std::string>& range_cols,
                                 const std::string& order_col,
                                 Consistency consistency) {
  auto schema = cluster.schema(sel.table);
  if (!schema.is_ok()) return schema.status();

  // Partition key: every partition column must have exactly one equality;
  // equalities on the first clustering column become an exact slice.
  std::vector<std::pair<std::string, Value>> pk_eq;
  std::optional<Value> ck_eq;
  const std::string first_ck = schema->clustering_key_columns.empty()
                                   ? std::string()
                                   : schema->clustering_key_columns.front();
  for (const auto& [col, lit] : sel.partition_eq) {
    const auto& pk_cols = schema->partition_key_columns;
    if (std::find(pk_cols.begin(), pk_cols.end(), col) != pk_cols.end()) {
      pk_eq.emplace_back(col, lit);
    } else if (col == first_ck) {
      if (ck_eq) return invalid_argument("CQL: duplicate equality on " + col);
      ck_eq = lit;
    } else {
      return invalid_argument(
          "CQL: column '" + col +
          "' is neither a partition column nor the first clustering column "
          "of " + sel.table);
    }
  }
  for (const auto& col : range_cols) {
    if (col != first_ck) {
      return invalid_argument("CQL: range predicate allowed only on '" +
                              first_ck + "' for table " + sel.table);
    }
  }
  if (!order_col.empty() && order_col != first_ck) {
    return invalid_argument("CQL: ORDER BY must name '" + first_ck + "'");
  }

  // Assemble the key in the schema's declared column order.
  std::string key;
  for (const auto& col : schema->partition_key_columns) {
    const auto it = std::find_if(pk_eq.begin(), pk_eq.end(),
                                 [&](const auto& p) { return p.first == col; });
    if (it == pk_eq.end()) {
      return invalid_argument("CQL: partition column '" + col +
                              "' must be constrained with '='");
    }
    if (!key.empty()) key.push_back('|');
    key += value_to_key_part(it->second);
  }

  // Slice bounds narrow the storage read where expressible; the exact CQL
  // semantics on the first clustering column ("=", ">", "<=" over
  // multi-part keys) are enforced by a residual filter afterwards, and
  // LIMIT is applied only post-filter (so reverse order stays correct).
  ReadQuery q;
  q.table = sel.table;
  q.partition_key = key;
  q.limit = 0;
  q.reverse = sel.order_desc;
  if (ck_eq) {
    ClusteringKey lower;
    lower.parts.push_back(*ck_eq);
    q.slice.lower = std::move(lower);  // residual: parts[0] == v
  } else {
    if (sel.ck_lower) {
      ClusteringKey lower;
      lower.parts.push_back(*sel.ck_lower);
      q.slice.lower = std::move(lower);  // '>' residual: parts[0] != v
    }
    if (sel.ck_upper && !sel.ck_upper_inclusive) {
      ClusteringKey upper;
      upper.parts.push_back(*sel.ck_upper);
      q.slice.upper = std::move(upper);  // exact for '<'
    }
    // '<=' keeps the slice open above; residual: parts[0] <= v.
  }

  auto result = cluster.select(q, consistency);
  if (!result.is_ok()) return result.status();
  std::vector<Row> rows = std::move(result->rows);

  auto first_part_ok = [&](const Row& row) {
    if (row.key.parts.empty()) {
      return !ck_eq && !sel.ck_upper && !sel.ck_lower;
    }
    const Value& v = row.key.parts.front();
    if (ck_eq) return v == *ck_eq;
    if (sel.ck_lower && sel.ck_lower_strict && v == *sel.ck_lower) {
      return false;  // '>' excludes the bound's whole prefix
    }
    if (sel.ck_upper && sel.ck_upper_inclusive &&
        v.compare(*sel.ck_upper) == std::strong_ordering::greater) {
      return false;  // '<=' residual
    }
    return true;
  };

  CqlResult out;
  std::size_t admitted = 0;
  for (const auto& row : rows) {
    if (!first_part_ok(row)) continue;
    if (sel.limit && admitted >= sel.limit) break;
    ++admitted;
    if (sel.count_only) continue;
    Json obj = Json::object();
    // Clustering columns from the key, by declared name.
    for (std::size_t i = 0; i < schema->clustering_key_columns.size() &&
                            i < row.key.parts.size();
         ++i) {
      obj[schema->clustering_key_columns[i]] = row.key.parts[i].to_json();
    }
    for (const auto& cell : row.cells) {
      if (!sel.columns.empty() &&
          std::find(sel.columns.begin(), sel.columns.end(), cell.name) ==
              sel.columns.end()) {
        continue;
      }
      obj[cell.name] = cell.value.to_json();
    }
    out.rows.push_back(std::move(obj));
  }
  out.count = static_cast<std::int64_t>(admitted);
  out.is_rows = !sel.count_only;
  return out;
}

Result<CqlResult> execute_insert(Cluster& cluster, const CqlInsert& ins,
                                 Consistency consistency) {
  auto schema = cluster.schema(ins.table);
  if (!schema.is_ok()) return schema.status();

  const auto find_value = [&](const std::string& col) -> const Value* {
    for (const auto& [name, v] : ins.values) {
      if (name == col) return &v;
    }
    return nullptr;
  };

  std::string key;
  for (const auto& col : schema->partition_key_columns) {
    const Value* v = find_value(col);
    if (!v) {
      return invalid_argument("CQL INSERT: missing partition column '" + col +
                              "'");
    }
    if (!key.empty()) key.push_back('|');
    key += value_to_key_part(*v);
  }
  Row row;
  for (const auto& col : schema->clustering_key_columns) {
    const Value* v = find_value(col);
    if (!v) {
      return invalid_argument("CQL INSERT: missing clustering column '" + col +
                              "'");
    }
    row.key.parts.push_back(*v);
  }
  for (const auto& [name, v] : ins.values) {
    const auto& pk = schema->partition_key_columns;
    const auto& ck = schema->clustering_key_columns;
    if (std::find(pk.begin(), pk.end(), name) != pk.end()) continue;
    if (std::find(ck.begin(), ck.end(), name) != ck.end()) continue;
    row.set(name, v);
  }
  HPCLA_RETURN_IF_ERROR(cluster.insert(ins.table, key, std::move(row),
                                       consistency));
  CqlResult out;
  out.count = 1;
  return out;
}

}  // namespace

Result<CqlResult> execute_cql(Cluster& cluster, std::string_view text,
                              Consistency consistency) {
  Lexer lexer(text);
  auto tokens = lexer.run();
  if (!tokens.is_ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  auto stmt = parser.parse();
  if (!stmt.is_ok()) return stmt.status();
  if (stmt->select) {
    return execute_select(cluster, *stmt->select, parser.sel_range_cols_,
                          parser.sel_order_col_, consistency);
  }
  return execute_insert(cluster, *stmt->insert, consistency);
}

}  // namespace hpcla::cassalite
