// On-disk extent files: the persistence tier under cassalite's columnar
// SSTables (DESIGN.md §14.1).
//
// One file holds every partition of one SSTable generation:
//
//     "HPEXT1\n"                           header magic
//     <compressed group blocks...>         appended in write order
//     <footer>                             index, see below
//     u64 footer_offset  u64 footer_len    little-endian trailer
//     "HPEXT1\n"                           trailer magic
//
// The footer is the self-describing index: table name, generation, the
// commit-log LSN the file covers, and per partition the key plus one
// ExtentGroupMeta per row group — uncompressed first/last clustering keys
// (slice pruning without touching the block), row count, raw size, and the
// block's (offset, length) in the file. A reader reconstructs the whole
// SSTable skeleton from the footer alone; group blocks are fetched lazily
// by mmap (default) or pread and decoded through the BlockCache.
//
// Writers go through ExtentFileWriter, which keeps a scratch::FileGuard
// armed until finish() — an exception unwinding mid-write removes the
// partial file instead of leaving a truncated orphan for the next
// reopen-from-disk scan to trip over.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cassalite/extent.hpp"
#include "common/scratch.hpp"

namespace hpcla::cassalite {

/// Footer entry for one partition: its key and per-group metadata.
struct ExtentFilePartition {
  std::string key;
  std::vector<ExtentGroupMeta> groups;
  std::uint64_t rows = 0;
  std::uint64_t raw_bytes = 0;  ///< boxed-row footprint (metrics)
};

/// The self-describing index at the end of every extent file.
struct ExtentFileFooter {
  std::string table;
  std::uint64_t generation = 0;
  std::uint64_t flushed_lsn = 0;  ///< commit log is durable past this LSN
  std::vector<ExtentFilePartition> partitions;
};

/// Append-only writer. Blocks first, then finish(footer) seals the file;
/// destruction before finish() removes the partial file.
class ExtentFileWriter {
 public:
  explicit ExtentFileWriter(std::string path);
  ExtentFileWriter(const ExtentFileWriter&) = delete;
  ExtentFileWriter& operator=(const ExtentFileWriter&) = delete;

  /// Appends one compressed group block; returns its file offset.
  std::uint64_t append(std::string_view block);

  /// Writes the footer + trailer and keeps the file.
  void finish(const ExtentFileFooter& footer);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  scratch::FileGuard guard_;
  std::ofstream out_;
  std::uint64_t offset_ = 0;
};

/// Read-only handle on a sealed extent file. Fetches are thread-safe:
/// mmap when enabled (zero-copy views into the mapping) with a pread
/// fallback that streams into a caller-provided scratch buffer.
class ExtentFile : public std::enable_shared_from_this<ExtentFile> {
 public:
  /// Opens and validates `path`; returns nullptr when the file is not a
  /// sealed extent file or its footer indexes blocks outside the file
  /// bounds (truncated writes never survive the writer guard, but
  /// reopen-from-disk must shrug off stray or corrupt files).
  static std::shared_ptr<ExtentFile> open(const std::string& path,
                                          bool use_mmap);

  ~ExtentFile();
  ExtentFile(const ExtentFile&) = delete;
  ExtentFile& operator=(const ExtentFile&) = delete;

  /// Bytes [offset, offset+length): a view into the mapping when mmapped,
  /// otherwise `scratch` is filled via pread and viewed.
  [[nodiscard]] std::string_view fetch(std::uint64_t offset,
                                       std::uint32_t length,
                                       std::string& scratch) const;

  [[nodiscard]] const ExtentFileFooter& footer() const noexcept {
    return footer_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool mapped() const noexcept { return map_ != nullptr; }

  /// Marks the file superseded (compaction replaced it): it is unlinked
  /// when the last reader releases the handle, never while a concurrent
  /// snapshot still reads it.
  void remove_on_close() noexcept {
    remove_on_close_.store(true, std::memory_order_release);
  }

 private:
  ExtentFile() = default;

  std::string path_;
  int fd_ = -1;
  std::size_t size_ = 0;
  const char* map_ = nullptr;
  ExtentFileFooter footer_;
  std::atomic<bool> remove_on_close_{false};
};

}  // namespace hpcla::cassalite
