#include "cassalite/extent_file.hpp"

#include <cstring>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/block_codec.hpp"
#include "common/status.hpp"

namespace hpcla::cassalite {
namespace {

using codec::get_varint;
using codec::put_varint;
using codec::zigzag_decode;
using codec::zigzag_encode;

constexpr char kMagic[] = "HPEXT1\n";
constexpr std::size_t kMagicLen = sizeof(kMagic) - 1;  // 7
constexpr std::size_t kTrailerLen = 2 * sizeof(std::uint64_t) + kMagicLen;

void put_u64(std::string& out, std::uint64_t v) {
  char buf[sizeof(v)];
  for (std::size_t i = 0; i < sizeof(v); ++i) {
    buf[i] = static_cast<char>(v >> (8 * i));
  }
  out.append(buf, sizeof(v));
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(v); ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

const char* get_string(const char* p, const char* end, std::string& s) {
  std::uint64_t len = 0;
  p = get_varint(p, end, len);
  if (!p || static_cast<std::uint64_t>(end - p) < len) return nullptr;
  s.assign(p, static_cast<std::size_t>(len));
  return p + len;
}

// Tagged scalar codec for footer clustering keys — the columnar encoder
// in extent.cpp is for dense value columns; footers hold a handful of
// boundary keys, so one tag byte per value is the right trade.
enum ValueTag : std::uint8_t {
  kTagNull = 0,
  kTagFalse = 1,
  kTagTrue = 2,
  kTagInt = 3,
  kTagDouble = 4,
  kTagText = 5,
};

void put_value(std::string& out, const Value& v) {
  if (v.is_null()) {
    out.push_back(static_cast<char>(kTagNull));
  } else if (v.is_bool()) {
    out.push_back(static_cast<char>(v.as_bool() ? kTagTrue : kTagFalse));
  } else if (v.is_int()) {
    out.push_back(static_cast<char>(kTagInt));
    put_varint(out, zigzag_encode(v.as_int()));
  } else if (v.is_double()) {
    out.push_back(static_cast<char>(kTagDouble));
    char buf[sizeof(double)];
    const double d = v.as_double();
    std::memcpy(buf, &d, sizeof(double));
    out.append(buf, sizeof(double));
  } else {
    out.push_back(static_cast<char>(kTagText));
    put_string(out, v.as_text());
  }
}

const char* get_value(const char* p, const char* end, Value& v) {
  if (p >= end) return nullptr;
  const auto tag = static_cast<std::uint8_t>(*p++);
  switch (tag) {
    case kTagNull:
      v = Value();
      return p;
    case kTagFalse:
      v = Value(false);
      return p;
    case kTagTrue:
      v = Value(true);
      return p;
    case kTagInt: {
      std::uint64_t zz = 0;
      p = get_varint(p, end, zz);
      if (!p) return nullptr;
      v = Value(zigzag_decode(zz));
      return p;
    }
    case kTagDouble: {
      if (static_cast<std::size_t>(end - p) < sizeof(double)) return nullptr;
      double d = 0;
      std::memcpy(&d, p, sizeof(double));
      v = Value(d);
      return p + sizeof(double);
    }
    case kTagText: {
      std::string s;
      p = get_string(p, end, s);
      if (!p) return nullptr;
      v = Value(std::move(s));
      return p;
    }
    default:
      return nullptr;
  }
}

void put_key(std::string& out, const ClusteringKey& k) {
  put_varint(out, k.parts.size());
  for (const Value& v : k.parts) put_value(out, v);
}

const char* get_key(const char* p, const char* end, ClusteringKey& k) {
  std::uint64_t parts = 0;
  p = get_varint(p, end, parts);
  if (!p) return nullptr;
  k.parts.resize(static_cast<std::size_t>(parts));
  for (auto& v : k.parts) {
    p = get_value(p, end, v);
    if (!p) return nullptr;
  }
  return p;
}

std::string encode_footer(const ExtentFileFooter& f) {
  std::string out;
  put_string(out, f.table);
  put_varint(out, f.generation);
  put_varint(out, f.flushed_lsn);
  put_varint(out, f.partitions.size());
  for (const auto& part : f.partitions) {
    put_string(out, part.key);
    put_varint(out, part.rows);
    put_varint(out, part.raw_bytes);
    put_varint(out, part.groups.size());
    for (const auto& g : part.groups) {
      put_key(out, g.first);
      put_key(out, g.last);
      put_varint(out, g.rows);
      put_varint(out, g.raw_size);
      put_varint(out, g.offset);
      put_varint(out, g.length);
    }
  }
  return out;
}

bool decode_footer(const char* p, const char* end, ExtentFileFooter& f) {
  std::uint64_t n = 0;
  p = get_string(p, end, f.table);
  if (p) p = get_varint(p, end, f.generation);
  if (p) p = get_varint(p, end, f.flushed_lsn);
  if (p) p = get_varint(p, end, n);
  if (!p) return false;
  f.partitions.resize(static_cast<std::size_t>(n));
  for (auto& part : f.partitions) {
    std::uint64_t groups = 0;
    p = get_string(p, end, part.key);
    if (p) p = get_varint(p, end, part.rows);
    if (p) p = get_varint(p, end, part.raw_bytes);
    if (p) p = get_varint(p, end, groups);
    if (!p) return false;
    part.groups.resize(static_cast<std::size_t>(groups));
    for (auto& g : part.groups) {
      std::uint64_t rows = 0, raw = 0, len = 0;
      p = get_key(p, end, g.first);
      if (p) p = get_key(p, end, g.last);
      if (p) p = get_varint(p, end, rows);
      if (p) p = get_varint(p, end, raw);
      if (p) p = get_varint(p, end, g.offset);
      if (p) p = get_varint(p, end, len);
      if (!p) return false;
      g.rows = static_cast<std::uint32_t>(rows);
      g.raw_size = static_cast<std::uint32_t>(raw);
      g.length = static_cast<std::uint32_t>(len);
    }
  }
  return p == end;
}

}  // namespace

// ------------------------------------------------------------------ writer

ExtentFileWriter::ExtentFileWriter(std::string path)
    : path_(std::move(path)),
      guard_(path_),
      out_(path_, std::ios::binary | std::ios::trunc) {
  HPCLA_CHECK_MSG(out_.good(), "cannot create extent file");
  out_.write(kMagic, static_cast<std::streamsize>(kMagicLen));
  offset_ = kMagicLen;
}

std::uint64_t ExtentFileWriter::append(std::string_view block) {
  const std::uint64_t at = offset_;
  out_.write(block.data(), static_cast<std::streamsize>(block.size()));
  HPCLA_CHECK_MSG(out_.good(), "extent file write failed");
  offset_ += block.size();
  return at;
}

void ExtentFileWriter::finish(const ExtentFileFooter& footer) {
  const std::string bytes = encode_footer(footer);
  const std::uint64_t footer_at = offset_;
  std::string trailer;
  trailer.reserve(bytes.size() + kTrailerLen);
  trailer.append(bytes);
  put_u64(trailer, footer_at);
  put_u64(trailer, bytes.size());
  trailer.append(kMagic, kMagicLen);
  out_.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out_.flush();
  HPCLA_CHECK_MSG(out_.good(), "extent file footer write failed");
  out_.close();
  guard_.release();  // sealed: the file is complete and self-describing
}

// ------------------------------------------------------------------ reader

std::shared_ptr<ExtentFile> ExtentFile::open(const std::string& path,
                                             bool use_mmap) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < kMagicLen + kTrailerLen) {
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);

  // Trailer first: a file without both magics is not ours (or is a torn
  // write that escaped the writer guard) — skip it, don't crash the scan.
  char trailer[kTrailerLen];
  if (::pread(fd, trailer, kTrailerLen,
              static_cast<off_t>(size - kTrailerLen)) !=
      static_cast<ssize_t>(kTrailerLen)) {
    ::close(fd);
    return nullptr;
  }
  char head[kMagicLen];
  if (::pread(fd, head, kMagicLen, 0) != static_cast<ssize_t>(kMagicLen) ||
      std::memcmp(head, kMagic, kMagicLen) != 0 ||
      std::memcmp(trailer + 2 * sizeof(std::uint64_t), kMagic, kMagicLen) !=
          0) {
    ::close(fd);
    return nullptr;
  }
  const std::uint64_t footer_at = get_u64(trailer);
  const std::uint64_t footer_len = get_u64(trailer + sizeof(std::uint64_t));
  if (footer_at + footer_len + kTrailerLen != size) {
    ::close(fd);
    return nullptr;
  }

  std::string footer_bytes(static_cast<std::size_t>(footer_len), '\0');
  if (footer_len > 0 &&
      ::pread(fd, footer_bytes.data(), footer_bytes.size(),
              static_cast<off_t>(footer_at)) !=
          static_cast<ssize_t>(footer_bytes.size())) {
    ::close(fd);
    return nullptr;
  }

  auto file = std::shared_ptr<ExtentFile>(new ExtentFile());
  file->path_ = path;
  file->fd_ = fd;
  file->size_ = size;
  if (!decode_footer(footer_bytes.data(),
                     footer_bytes.data() + footer_bytes.size(),
                     file->footer_)) {
    return nullptr;  // dtor closes the fd
  }
  // A footer that decodes but points blocks outside the file is still
  // corrupt: reject it here so fetch() never walks off the mapping. The
  // subtraction order avoids uint64 overflow on absurd offsets.
  for (const auto& part : file->footer_.partitions) {
    for (const auto& g : part.groups) {
      if (g.offset > size || g.length > size - g.offset) return nullptr;
    }
  }
  if (use_mmap) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (map != MAP_FAILED) file->map_ = static_cast<const char*>(map);
    // mmap failure is not fatal — fetch() falls back to pread.
  }
  return file;
}

ExtentFile::~ExtentFile() {
  if (map_ != nullptr) {
    ::munmap(const_cast<char*>(map_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
  if (remove_on_close_.load(std::memory_order_acquire)) {
    scratch::remove_file(path_);
  }
}

std::string_view ExtentFile::fetch(std::uint64_t offset, std::uint32_t length,
                                   std::string& scratch) const {
  HPCLA_CHECK_MSG(offset <= size_ && length <= size_ - offset,
                  "extent block out of bounds");
  if (map_ != nullptr) {
    return std::string_view(map_ + offset, length);
  }
  scratch.resize(length);
  std::size_t done = 0;
  while (done < length) {
    const ssize_t n = ::pread(fd_, scratch.data() + done, length - done,
                              static_cast<off_t>(offset + done));
    HPCLA_CHECK_MSG(n > 0, "extent block read failed");
    done += static_cast<std::size_t>(n);
  }
  return scratch;
}

}  // namespace hpcla::cassalite
