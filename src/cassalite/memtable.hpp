// In-memory write buffer: the first stop of every mutation on a node.
// Rows are kept sorted per partition; when the accounted size crosses the
// flush threshold, the storage engine freezes the memtable into an SSTable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cassalite/schema.hpp"
#include "cassalite/value.hpp"

namespace hpcla::cassalite {

/// One table's memtable on one node. Not internally synchronized — the
/// owning StorageEngine serializes writers and lets concurrent readers in
/// under a shared lock (const methods touch no mutable state).
class Memtable {
 public:
  /// Inserts or overwrites (same clustering key, last-write-wins by
  /// write_ts) a row. Returns bytes added to the accounting.
  std::size_t put(const std::string& partition_key, Row row);

  /// Rows of one partition admitted by the slice, ascending clustering
  /// order. Appends to `out`.
  void read(const std::string& partition_key, const ClusteringSlice& slice,
            std::vector<Row>& out) const;

  /// All partition keys present (sorted).
  [[nodiscard]] std::vector<std::string> partition_keys() const;

  [[nodiscard]] std::size_t partition_count() const noexcept {
    return partitions_.size();
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return bytes_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  /// Direct view of the sorted content. Flush reads this under the shared
  /// memtable lock (the engine writer mutex excludes mutation) to build
  /// the SSTable and *publish it* before drain(), so a reader that checks
  /// the memtable first can only see a row twice (reconciled), never miss
  /// it. Copying rows straight into SSTable partitions from this view
  /// replaces the old clone-the-whole-map flush path.
  [[nodiscard]] const std::map<std::string, std::vector<Row>>& partitions()
      const noexcept {
    return partitions_;
  }

  /// Hands the sorted partition map to the flusher and resets.
  [[nodiscard]] std::map<std::string, std::vector<Row>> drain();

 private:
  // partition key -> rows sorted by clustering key
  std::map<std::string, std::vector<Row>> partitions_;
  std::size_t rows_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace hpcla::cassalite
