// Table schemas and read-query specifications (the CQL-shaped surface).
//
// cassalite queries follow Cassandra's access model exactly: a read names a
// partition key and optionally a clustering range within that partition —
// "data is retrieved by row key and range within a row" (paper §II-A).
// Arbitrary secondary predicates are the job of the sparklite layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cassalite/value.hpp"

namespace hpcla::cassalite {

/// DDL-level description of a table. Column *types* are deliberately not
/// fixed (flexible schema); only the key structure is declared.
struct TableSchema {
  std::string name;
  /// Documentation of what composes the partition key, e.g. {"hour","type"}.
  std::vector<std::string> partition_key_columns;
  /// Documentation of the clustering key parts, e.g. {"ts","seq"}.
  std::vector<std::string> clustering_key_columns;
  std::string comment;

  [[nodiscard]] Json to_json() const {
    Json j = Json::object();
    j["name"] = name;
    Json pk = Json::array();
    for (const auto& c : partition_key_columns) pk.push_back(c);
    j["partition_key"] = std::move(pk);
    Json ck = Json::array();
    for (const auto& c : clustering_key_columns) ck.push_back(c);
    j["clustering_key"] = std::move(ck);
    j["comment"] = comment;
    return j;
  }
};

/// Half-open clustering-key slice. Unset bounds are unbounded.
struct ClusteringSlice {
  std::optional<ClusteringKey> lower;  ///< inclusive
  std::optional<ClusteringKey> upper;  ///< exclusive

  [[nodiscard]] bool admits(const ClusteringKey& k) const noexcept {
    if (lower && k.compare(*lower) == std::strong_ordering::less) return false;
    if (upper && k.compare(*upper) != std::strong_ordering::less) return false;
    return true;
  }
};

/// SELECT ... FROM table WHERE partition_key = ? [AND clustering in slice]
/// [ORDER BY clustering DESC] [LIMIT n].
struct ReadQuery {
  std::string table;
  std::string partition_key;
  ClusteringSlice slice;
  std::size_t limit = 0;    ///< 0 = unlimited
  bool reverse = false;     ///< descending clustering order
};

/// Result of a partition read.
struct ReadResult {
  std::vector<Row> rows;
  /// True when `limit` cut the scan short.
  bool truncated = false;
};

/// Mutation: one row appended/overwritten in one partition of one table.
struct WriteCommand {
  std::string table;
  std::string partition_key;
  Row row;
};

}  // namespace hpcla::cassalite
