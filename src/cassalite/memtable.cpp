#include "cassalite/memtable.hpp"

#include <algorithm>

namespace hpcla::cassalite {

std::size_t Memtable::put(const std::string& partition_key, Row row) {
  auto& rows = partitions_[partition_key];
  const auto it = std::lower_bound(
      rows.begin(), rows.end(), row, [](const Row& a, const Row& b) {
        return a.key.compare(b.key) == std::strong_ordering::less;
      });
  std::size_t added = 0;
  if (it != rows.end() && it->key == row.key) {
    // Same clustering key: last-write-wins.
    if (row.write_ts >= it->write_ts) {
      const std::size_t old_bytes = it->memory_bytes();
      added = row.memory_bytes();
      bytes_ += added;
      bytes_ -= std::min(bytes_, old_bytes);
      *it = std::move(row);
      added = 0;  // no net new row
    }
    return added;
  }
  added = row.memory_bytes() + partition_key.size();
  rows.insert(it, std::move(row));
  ++rows_;
  bytes_ += added;
  return added;
}

void Memtable::read(const std::string& partition_key,
                    const ClusteringSlice& slice, std::vector<Row>& out) const {
  const auto part = partitions_.find(partition_key);
  if (part == partitions_.end()) return;
  const auto& rows = part->second;
  auto begin = rows.begin();
  auto end = rows.end();
  if (slice.lower) {
    begin = std::lower_bound(begin, end, *slice.lower,
                             [](const Row& r, const ClusteringKey& k) {
                               return r.key.compare(k) == std::strong_ordering::less;
                             });
  }
  if (slice.upper) {
    end = std::lower_bound(begin, end, *slice.upper,
                           [](const Row& r, const ClusteringKey& k) {
                             return r.key.compare(k) == std::strong_ordering::less;
                           });
  }
  out.insert(out.end(), begin, end);
}

std::vector<std::string> Memtable::partition_keys() const {
  std::vector<std::string> out;
  out.reserve(partitions_.size());
  for (const auto& [k, _] : partitions_) out.push_back(k);
  return out;
}

std::map<std::string, std::vector<Row>> Memtable::drain() {
  std::map<std::string, std::vector<Row>> out;
  out.swap(partitions_);
  rows_ = 0;
  bytes_ = 0;
  return out;
}

}  // namespace hpcla::cassalite
