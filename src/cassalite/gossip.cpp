#include "cassalite/gossip.hpp"

#include "common/faultsim.hpp"

namespace hpcla::cassalite {

Gossiper::Gossiper(GossipOptions options)
    : options_(options), rng_(options.seed) {
  HPCLA_CHECK_MSG(options_.node_count >= 2, "gossip needs >= 2 nodes");
  options_.fanout = std::max<std::size_t>(1, options_.fanout);
  dead_.assign(options_.node_count, false);
  joined_at_round_.assign(options_.node_count, 0);
  views_.assign(options_.node_count,
                std::vector<View>(options_.node_count));
}

std::size_t Gossiper::add_node() {
  const std::size_t idx = options_.node_count++;
  dead_.push_back(false);
  joined_at_round_.push_back(round_);
  for (auto& row : views_) row.emplace_back();
  views_.emplace_back(options_.node_count, View{});
  // The joiner's first heartbeat is its join announcement; it spreads
  // through normal gossip from the next round on.
  auto& self = views_[idx][idx];
  self.heartbeat = 1;
  self.seen_at_round = round_;
  return idx;
}

void Gossiper::kill(std::size_t node) {
  HPCLA_CHECK_MSG(node < options_.node_count, "node out of range");
  dead_[node] = true;
}

void Gossiper::revive(std::size_t node) {
  HPCLA_CHECK_MSG(node < options_.node_count, "node out of range");
  dead_[node] = false;
  // Generation bump: restart with a heartbeat far ahead of anything peers
  // saw, so the resurrection propagates as fresh news.
  auto& self = views_[node][node];
  self.heartbeat += 1000;
  self.seen_at_round = round_;
}

bool Gossiper::is_dead(std::size_t node) const {
  HPCLA_CHECK_MSG(node < options_.node_count, "node out of range");
  return dead_[node];
}

void Gossiper::absorb(std::size_t dst, std::size_t src) {
  for (std::size_t t = 0; t < options_.node_count; ++t) {
    View& vd = views_[dst][t];
    const View& vs = views_[src][t];
    if (vd.heartbeat < vs.heartbeat) {
      vd.heartbeat = vs.heartbeat;
      vd.seen_at_round = round_;
    }
  }
}

void Gossiper::step() {
  ++round_;
  // 1) Live nodes beat their own hearts.
  for (std::size_t n = 0; n < options_.node_count; ++n) {
    if (dead_[n]) continue;
    auto& self = views_[n][n];
    ++self.heartbeat;
    self.seen_at_round = round_;
  }
  // 2) Each live node gossips with `fanout` random peers.
  for (std::size_t n = 0; n < options_.node_count; ++n) {
    if (dead_[n]) continue;
    for (std::size_t f = 0; f < options_.fanout; ++f) {
      std::size_t peer = rng_.next_below(options_.node_count - 1);
      if (peer >= n) ++peer;  // uniform over peers != n
      if (dead_[peer]) continue;  // connection refused
      if (injector_ != nullptr && injector_->drop_gossip()) continue;
      // SYN: n's vector travels to peer; ACK: peer's vector travels back.
      // A cut SYN link kills the whole exchange (the peer never learns it
      // should reply); a cut ACK link loses only the reply — the peer still
      // absorbed the SYN, so rumors flow one way across an asymmetric cut.
      if (injector_ != nullptr && injector_->link_down(n, peer)) continue;
      absorb(peer, n);
      if (injector_ != nullptr && injector_->link_down(peer, n)) continue;
      absorb(n, peer);
    }
  }
}

bool Gossiper::suspects(std::size_t observer, std::size_t target) const {
  HPCLA_CHECK_MSG(observer < options_.node_count, "observer out of range");
  HPCLA_CHECK_MSG(target < options_.node_count, "target out of range");
  if (observer == target) return false;
  const View& v = views_[observer][target];
  if (v.heartbeat == 0) {
    // Never heard of it: suspicious once the grace window passes — anchored
    // at the target's join round, so a late joiner gets the same grace a
    // founding member got at round 0.
    return round_ - joined_at_round_[target] > options_.suspect_after_rounds;
  }
  return round_ - v.seen_at_round > options_.suspect_after_rounds;
}

std::size_t Gossiper::suspicion_count(std::size_t target) const {
  std::size_t n = 0;
  for (std::size_t o = 0; o < options_.node_count; ++o) {
    if (o == target || dead_[o]) continue;
    n += suspects(o, target) ? 1 : 0;
  }
  return n;
}

std::int64_t Gossiper::known_heartbeat(std::size_t observer,
                                       std::size_t target) const {
  HPCLA_CHECK_MSG(observer < options_.node_count, "observer out of range");
  HPCLA_CHECK_MSG(target < options_.node_count, "target out of range");
  return views_[observer][target].heartbeat;
}

bool Gossiper::converged() const {
  for (std::size_t o = 0; o < options_.node_count; ++o) {
    if (dead_[o]) continue;
    for (std::size_t t = 0; t < options_.node_count; ++t) {
      if (dead_[t] || o == t) continue;
      if (suspects(o, t)) return false;
    }
  }
  return true;
}

}  // namespace hpcla::cassalite
