#include "cassalite/ring.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace hpcla::cassalite {
namespace {

/// Tokens for one node, decorrelated from other nodes under the same seed
/// so with_node/reshuffled never depend on generation order.
std::vector<Token> tokens_for_node(NodeIndex node, std::size_t vnodes,
                                   std::uint64_t seed) {
  Rng rng(hash_combine(seed, static_cast<std::uint64_t>(node)));
  std::vector<Token> out;
  out.reserve(vnodes);
  for (std::size_t v = 0; v < vnodes; ++v) {
    out.push_back(static_cast<Token>(rng.next_u64()));
  }
  return out;
}

}  // namespace

TokenRing::TokenRing(std::size_t node_count, std::size_t vnodes,
                     std::uint64_t seed) {
  HPCLA_CHECK_MSG(node_count >= 1, "ring requires at least one node");
  HPCLA_CHECK_MSG(vnodes >= 1, "ring requires at least one vnode per node");
  vnodes_ = vnodes;
  entries_.reserve(node_count * vnodes);
  // Preserve the original (pre-elastic) token layout: one sequential Rng
  // over all nodes, so seeded tests keep their historical placements.
  Rng rng(seed);
  for (NodeIndex n = 0; n < node_count; ++n) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      entries_.push_back(Entry{static_cast<Token>(rng.next_u64()), n});
    }
  }
  finalize();
}

void TokenRing::finalize() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.token != b.token ? a.token < b.token : a.node < b.node;
            });
  // Colliding tokens are astronomically unlikely with 64-bit tokens but
  // would make ownership ambiguous; nudge duplicates apart deterministically.
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].token == entries_[i - 1].token) {
      ++entries_[i].token;
    }
  }
  members_.clear();
  index_space_ = 0;
  for (const Entry& e : entries_) {
    if (std::find(members_.begin(), members_.end(), e.node) == members_.end()) {
      members_.push_back(e.node);
    }
    index_space_ = std::max(index_space_, e.node + 1);
  }
  std::sort(members_.begin(), members_.end());
}

bool TokenRing::is_member(NodeIndex node) const noexcept {
  return std::binary_search(members_.begin(), members_.end(), node);
}

std::vector<Token> TokenRing::tokens_of(NodeIndex node) const {
  std::vector<Token> out;
  for (const Entry& e : entries_) {
    if (e.node == node) out.push_back(e.token);
  }
  return out;
}

std::vector<Token> TokenRing::boundary_tokens() const {
  std::vector<Token> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.token);
  // entries_ is sorted and collision-nudged, so tokens are already distinct.
  return out;
}

TokenRing TokenRing::with_node(NodeIndex node, std::size_t vnodes,
                               std::uint64_t seed) const {
  HPCLA_CHECK_MSG(!is_member(node), "with_node: node is already a member");
  if (vnodes == 0) vnodes = vnodes_;
  TokenRing next;
  next.vnodes_ = vnodes_;
  next.entries_ = entries_;
  for (Token t : tokens_for_node(node, vnodes, seed)) {
    next.entries_.push_back(Entry{t, node});
  }
  next.finalize();
  return next;
}

TokenRing TokenRing::without_node(NodeIndex node) const {
  HPCLA_CHECK_MSG(is_member(node), "without_node: node is not a member");
  HPCLA_CHECK_MSG(members_.size() >= 2,
                  "without_node: cannot remove the last member");
  TokenRing next;
  next.vnodes_ = vnodes_;
  next.entries_.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.node != node) next.entries_.push_back(e);
  }
  next.finalize();
  return next;
}

TokenRing TokenRing::reshuffled(std::uint64_t seed) const {
  TokenRing next;
  next.vnodes_ = vnodes_;
  next.entries_.reserve(entries_.size());
  for (NodeIndex node : members_) {
    const std::size_t vnodes = tokens_of(node).size();
    for (Token t : tokens_for_node(node, vnodes, seed)) {
      next.entries_.push_back(Entry{t, node});
    }
  }
  next.finalize();
  return next;
}

NodeIndex TokenRing::primary(std::string_view partition_key) const {
  return replicas(partition_key, 1).front();
}

std::vector<NodeIndex> TokenRing::replicas(std::string_view partition_key,
                                           std::size_t rf) const {
  return replicas_for_token(token_for_key(partition_key), rf);
}

std::vector<NodeIndex> TokenRing::replicas_rack_aware(
    std::string_view partition_key, std::size_t rf,
    const std::vector<int>& rack_of) const {
  return replicas_for_token_rack_aware(token_for_key(partition_key), rf,
                                       rack_of);
}

std::vector<NodeIndex> TokenRing::replicas_for_token_rack_aware(
    Token t, std::size_t rf, const std::vector<int>& rack_of) const {
  HPCLA_CHECK_MSG(rack_of.size() >= index_space_,
                  "rack_of must cover every node index");
  rf = std::min(std::max<std::size_t>(rf, 1), members_.size());
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), t,
      [](const Entry& e, Token tok) { return e.token < tok; });
  const std::size_t start = it == entries_.end()
                                ? 0
                                : static_cast<std::size_t>(it - entries_.begin());

  std::vector<NodeIndex> out;
  std::vector<int> racks_used;
  // Pass 1: distinct nodes in distinct racks.
  for (std::size_t step = 0; step < entries_.size() && out.size() < rf;
       ++step) {
    const NodeIndex node = entries_[(start + step) % entries_.size()].node;
    if (std::find(out.begin(), out.end(), node) != out.end()) continue;
    const int rack = rack_of[node];
    if (std::find(racks_used.begin(), racks_used.end(), rack) !=
        racks_used.end()) {
      continue;
    }
    out.push_back(node);
    racks_used.push_back(rack);
  }
  // Pass 2: fill the remainder with distinct nodes, rack-blind.
  for (std::size_t step = 0; step < entries_.size() && out.size() < rf;
       ++step) {
    const NodeIndex node = entries_[(start + step) % entries_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

std::vector<NodeIndex> TokenRing::replicas_for_token(Token t,
                                                     std::size_t rf) const {
  rf = std::min(std::max<std::size_t>(rf, 1), members_.size());
  std::vector<NodeIndex> out;
  out.reserve(rf);
  // First vnode with token >= t, wrapping.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), t,
      [](const Entry& e, Token tok) { return e.token < tok; });
  std::size_t idx = it == entries_.end()
                        ? 0
                        : static_cast<std::size_t>(it - entries_.begin());
  for (std::size_t step = 0; step < entries_.size() && out.size() < rf;
       ++step) {
    const NodeIndex node = entries_[(idx + step) % entries_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

std::vector<MovedRange> ring_diff(const TokenRing& before,
                                  const TokenRing& after, std::size_t rf,
                                  const std::vector<int>& rack_of) {
  // Partition the token space at the union of both rings' tokens: within
  // each resulting interval, ownership is constant in *both* rings (each
  // ring's own boundaries are a subset of the union).
  std::vector<Token> bounds = before.boundary_tokens();
  {
    std::vector<Token> b2 = after.boundary_tokens();
    bounds.insert(bounds.end(), b2.begin(), b2.end());
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  HPCLA_CHECK_MSG(!bounds.empty(), "ring_diff: empty rings");

  auto owners = [&](const TokenRing& ring, Token t) {
    return rack_of.empty()
               ? ring.replicas_for_token(t, rf)
               : ring.replicas_for_token_rack_aware(t, rf, rack_of);
  };
  auto minus = [](const std::vector<NodeIndex>& a,
                  const std::vector<NodeIndex>& b) {
    std::vector<NodeIndex> out;
    for (NodeIndex n : a) {
      if (std::find(b.begin(), b.end(), n) == b.end()) out.push_back(n);
    }
    return out;
  };
  auto same_set = [&](const std::vector<NodeIndex>& a,
                      const std::vector<NodeIndex>& b) {
    return a.size() == b.size() && minus(a, b).empty();
  };

  std::vector<MovedRange> moved;
  // Intervals (bounds[i-1], bounds[i]] for i >= 1, then the wrap interval
  // (bounds.back(), bounds.front()]. The inclusive upper bound is always a
  // token inside the interval, so it serves as the ownership probe.
  const std::size_t k = bounds.size();
  for (std::size_t i = 0; i < k; ++i) {
    const bool wrap = i == 0;
    const Token lo = wrap ? bounds[k - 1] : bounds[i - 1];
    const Token hi = bounds[i];
    if (wrap && k == 1) continue;  // single boundary: full ring, one owner set
    std::vector<NodeIndex> old_owners = owners(before, hi);
    std::vector<NodeIndex> new_owners = owners(after, hi);
    if (same_set(old_owners, new_owners)) continue;
    // Merge with the previous emitted range when contiguous + same owners.
    if (!wrap && !moved.empty() && !moved.back().range.wraps &&
        moved.back().range.hi == lo &&
        moved.back().old_owners == old_owners &&
        moved.back().new_owners == new_owners) {
      moved.back().range.hi = hi;
      continue;
    }
    MovedRange m;
    m.range = TokenRange{lo, hi, wrap};
    m.gained = minus(new_owners, old_owners);
    m.lost = minus(old_owners, new_owners);
    m.old_owners = std::move(old_owners);
    m.new_owners = std::move(new_owners);
    moved.push_back(std::move(m));
  }
  return moved;
}

}  // namespace hpcla::cassalite
