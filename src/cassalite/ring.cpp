#include "cassalite/ring.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace hpcla::cassalite {

TokenRing::TokenRing(std::size_t node_count, std::size_t vnodes,
                     std::uint64_t seed)
    : node_count_(node_count), vnodes_(vnodes) {
  HPCLA_CHECK_MSG(node_count >= 1, "ring requires at least one node");
  HPCLA_CHECK_MSG(vnodes >= 1, "ring requires at least one vnode per node");
  Rng rng(seed);
  entries_.reserve(node_count * vnodes);
  for (NodeIndex n = 0; n < node_count; ++n) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      entries_.push_back(Entry{static_cast<Token>(rng.next_u64()), n});
    }
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.token < b.token; });
  // Colliding tokens are astronomically unlikely with 64-bit tokens but
  // would make ownership ambiguous; nudge duplicates apart deterministically.
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].token == entries_[i - 1].token) {
      ++entries_[i].token;
    }
  }
}

NodeIndex TokenRing::primary(std::string_view partition_key) const {
  return replicas(partition_key, 1).front();
}

std::vector<NodeIndex> TokenRing::replicas(std::string_view partition_key,
                                           std::size_t rf) const {
  return replicas_for_token(token_for_key(partition_key), rf);
}

std::vector<NodeIndex> TokenRing::replicas_rack_aware(
    std::string_view partition_key, std::size_t rf,
    const std::vector<int>& rack_of) const {
  HPCLA_CHECK_MSG(rack_of.size() == node_count_,
                  "rack_of must cover every node");
  rf = std::min(std::max<std::size_t>(rf, 1), node_count_);
  const Token t = token_for_key(partition_key);
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), t,
      [](const Entry& e, Token tok) { return e.token < tok; });
  const std::size_t start = it == entries_.end()
                                ? 0
                                : static_cast<std::size_t>(it - entries_.begin());

  std::vector<NodeIndex> out;
  std::vector<int> racks_used;
  // Pass 1: distinct nodes in distinct racks.
  for (std::size_t step = 0; step < entries_.size() && out.size() < rf;
       ++step) {
    const NodeIndex node = entries_[(start + step) % entries_.size()].node;
    if (std::find(out.begin(), out.end(), node) != out.end()) continue;
    const int rack = rack_of[node];
    if (std::find(racks_used.begin(), racks_used.end(), rack) !=
        racks_used.end()) {
      continue;
    }
    out.push_back(node);
    racks_used.push_back(rack);
  }
  // Pass 2: fill the remainder with distinct nodes, rack-blind.
  for (std::size_t step = 0; step < entries_.size() && out.size() < rf;
       ++step) {
    const NodeIndex node = entries_[(start + step) % entries_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

std::vector<NodeIndex> TokenRing::replicas_for_token(Token t,
                                                     std::size_t rf) const {
  rf = std::min(std::max<std::size_t>(rf, 1), node_count_);
  std::vector<NodeIndex> out;
  out.reserve(rf);
  // First vnode with token >= t, wrapping.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), t,
      [](const Entry& e, Token tok) { return e.token < tok; });
  std::size_t idx = it == entries_.end()
                        ? 0
                        : static_cast<std::size_t>(it - entries_.begin());
  for (std::size_t step = 0; step < entries_.size() && out.size() < rf;
       ++step) {
    const NodeIndex node = entries_[(idx + step) % entries_.size()].node;
    if (std::find(out.begin(), out.end(), node) == out.end()) {
      out.push_back(node);
    }
  }
  return out;
}

}  // namespace hpcla::cassalite
