// Cell values and composite clustering keys for the cassalite column store.
//
// Cassandra models a partition as a wide row: rows sorted by a clustering
// key, each row holding named cells. HPC log schemas are deliberately
// flexible (paper §II-A "Flexibility"), so cells are dynamically typed and
// any row may carry columns other rows in the same table lack (the paper's
// "Other Info" column family).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/json.hpp"
#include "common/status.hpp"

namespace hpcla::cassalite {

/// Dynamically typed cell: null, bool, int64, double, or text.
class Value {
 public:
  Value() noexcept : rep_(std::monostate{}) {}
  Value(bool b) noexcept : rep_(b) {}                           // NOLINT
  Value(int v) noexcept : rep_(static_cast<std::int64_t>(v)) {} // NOLINT
  Value(std::int64_t v) noexcept : rep_(v) {}                   // NOLINT
  /// NaN is rejected (throws): cell ordering must stay total.
  Value(double v) : rep_(checked_double(v)) {}                  // NOLINT
  Value(const char* s) : rep_(std::string(s)) {}                // NOLINT
  Value(std::string s) noexcept : rep_(std::move(s)) {}         // NOLINT
  Value(std::string_view s) : rep_(std::string(s)) {}           // NOLINT

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(rep_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(rep_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(rep_);
  }
  [[nodiscard]] bool is_double() const noexcept {
    return std::holds_alternative<double>(rep_);
  }
  [[nodiscard]] bool is_text() const noexcept {
    return std::holds_alternative<std::string>(rep_);
  }

  /// Typed accessors; HPCLA_CHECK on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  ///< int promotes to double
  [[nodiscard]] const std::string& as_text() const;

  /// Total order: by type rank (null < bool < numeric < text), numerics
  /// compared cross-type so int 2 < double 2.5. This makes mixed-type
  /// clustering keys well defined.
  [[nodiscard]] std::strong_ordering compare(const Value& o) const noexcept;

  friend bool operator==(const Value& a, const Value& b) noexcept {
    return a.compare(b) == std::strong_ordering::equal;
  }
  friend bool operator<(const Value& a, const Value& b) noexcept {
    return a.compare(b) == std::strong_ordering::less;
  }

  /// JSON representation (null/bool/int/double/string).
  [[nodiscard]] Json to_json() const;

  /// Value from a JSON scalar; arrays/objects are rejected.
  static Result<Value> from_json(const Json& j);

  /// Approximate in-memory footprint in bytes (memtable accounting).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Diagnostic rendering, e.g. `42`, `"text"`, `null`.
  [[nodiscard]] std::string to_string() const;

 private:
  static double checked_double(double v);

  std::variant<std::monostate, bool, std::int64_t, double, std::string> rep_;
};

/// Composite clustering key: lexicographic over its parts. Event tables
/// cluster by (timestamp, seq); application tables by (name, jobid) etc.
struct ClusteringKey {
  std::vector<Value> parts;

  [[nodiscard]] std::strong_ordering compare(const ClusteringKey& o) const noexcept;

  friend bool operator==(const ClusteringKey& a, const ClusteringKey& b) noexcept {
    return a.compare(b) == std::strong_ordering::equal;
  }
  friend bool operator<(const ClusteringKey& a, const ClusteringKey& b) noexcept {
    return a.compare(b) == std::strong_ordering::less;
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  [[nodiscard]] Json to_json() const;
  [[nodiscard]] std::string to_string() const;

  /// Convenience builders.
  static ClusteringKey of(std::initializer_list<Value> parts) {
    return ClusteringKey{std::vector<Value>(parts)};
  }
};

/// One named cell.
struct Cell {
  std::string name;
  Value value;

  friend bool operator==(const Cell&, const Cell&) = default;
};

/// A stored row: clustering key + cells + the write timestamp used for
/// last-write-wins reconciliation across replicas and compaction.
struct Row {
  ClusteringKey key;
  std::vector<Cell> cells;
  std::int64_t write_ts = 0;  ///< microseconds, assigned by the coordinator

  /// Cell value by name; nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view name) const noexcept;

  /// Sets or overwrites a cell.
  void set(std::string name, Value v);

  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  [[nodiscard]] Json to_json() const;

  friend bool operator==(const Row&, const Row&) = default;
};

/// Order-sensitive digest of a row set (keys, cells, write timestamps).
/// Two replicas hold byte-identical data for a slice iff their digests
/// match — the coordinator compares these instead of shipping full rows
/// on the QUORUM/ALL digest-read fast path.
[[nodiscard]] std::uint64_t rows_digest(const std::vector<Row>& rows) noexcept;

}  // namespace hpcla::cassalite
