#include "cassalite/commitlog.hpp"

namespace hpcla::cassalite {

std::uint64_t CommitLog::append(WriteCommand cmd) {
  const std::uint64_t lsn = next_lsn_++;
  entries_.push_back(Entry{lsn, std::move(cmd)});
  return lsn;
}

std::vector<WriteCommand> CommitLog::replay(std::uint64_t after_lsn) const {
  std::vector<WriteCommand> out;
  for (const auto& e : entries_) {
    if (e.lsn > after_lsn) out.push_back(e.cmd);
  }
  return out;
}

void CommitLog::truncate(std::uint64_t up_to_lsn) {
  while (!entries_.empty() && entries_.front().lsn <= up_to_lsn) {
    entries_.pop_front();
  }
}

}  // namespace hpcla::cassalite
