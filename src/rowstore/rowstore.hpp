// rowstore: the RDBMS baseline the paper rejected (§II-A).
//
// "First, a schema of a relational database, once created, is very
//  difficult to modify, whereas the format of HPC logs tend to change
//  periodically. Second, due to its support for the ACID properties and
//  two-phase commit protocols, it does not scale."
//
// This baseline makes both objections measurable:
//   * rigid schema: inserts must match the declared column list exactly;
//     adding a column is an O(table) rewrite (add_column),
//   * serialized ACID commits: one global lock orders every transaction,
//     with an optional synchronous-commit delay, so write throughput stays
//     flat as writer threads are added — the bench_rdbms_baseline
//     experiment contrasts this with cassalite's per-node scaling.
//
// Reads, however, no longer ride the transaction lock. Mirroring the
// cassalite storage engine, each table keeps an immutable base snapshot
// (schema + row map) behind a shared_ptr, with recent inserts in a small
// delta; the writer merges delta into a freshly published base once it
// grows past `delta_merge_rows`. A read costs one shared-lock
// acquisition (copy the base pointer, consult the delta) and then runs
// entirely against immutable structures, so reader throughput scales
// with cores even while a writer commits — writes stay serialized (the
// ACID objection stands), reads scale (the bench_concurrent_read tail no
// longer collapses under reader fan-out).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cassalite/value.hpp"
#include "common/status.hpp"

namespace hpcla::rowstore {

using cassalite::Value;

/// Declared column: name + fixed type.
struct ColumnDef {
  enum class Kind : std::uint8_t { kInt, kDouble, kText, kBool };
  std::string name;
  Kind kind = Kind::kInt;
};

/// True if `v` conforms to the declared kind (nulls are allowed anywhere).
bool value_matches(const Value& v, ColumnDef::Kind kind) noexcept;

struct RowStoreOptions {
  /// Simulated synchronous-commit cost per transaction, microseconds.
  int commit_delay_us = 0;
  /// Delta rows accumulated before the writer folds them into a freshly
  /// published base snapshot (amortizes the O(table) copy).
  std::size_t delta_merge_rows = 256;
};

/// Single-node ACID row store: one global transaction lock for writes,
/// RCU-style snapshot reads.
class RowStore {
 public:
  explicit RowStore(RowStoreOptions options = RowStoreOptions());

  /// Creates a table whose first `key_columns` columns form the primary
  /// key. Duplicate names or empty keys are rejected.
  Status create_table(const std::string& name, std::vector<ColumnDef> columns,
                      std::size_t key_columns);

  /// Inserts one row; the value list must match the schema arity and
  /// types exactly (the "rigid schema" property). Duplicate primary keys
  /// are rejected (uniqueness constraint).
  Status insert(const std::string& table, std::vector<Value> values);

  /// Point lookup by primary key. Runs against the published snapshot +
  /// delta; never takes the transaction lock.
  [[nodiscard]] Result<std::vector<Value>> get(
      const std::string& table, const std::vector<Value>& key) const;

  /// Range scan over primary keys in [lo, hi) (lexicographic). Snapshot
  /// read path, like get().
  [[nodiscard]] Result<std::vector<std::vector<Value>>> scan(
      const std::string& table, const std::vector<Value>& lo,
      const std::vector<Value>& hi) const;

  /// ALTER TABLE ADD COLUMN: appends a column with a default, rewriting
  /// every stored row. Returns the number of rows rewritten.
  Result<std::uint64_t> add_column(const std::string& table, ColumnDef column,
                                   Value default_value);

  [[nodiscard]] Result<std::uint64_t> row_count(const std::string& table) const;

  /// Total committed transactions (inserts + schema changes).
  [[nodiscard]] std::uint64_t commits() const;

  /// Delta-to-base merges published so far (snapshot read-path telemetry).
  [[nodiscard]] std::uint64_t snapshot_merges() const noexcept {
    return merges_.load(std::memory_order_relaxed);
  }

 private:
  using RowMap = std::map<std::vector<Value>, std::vector<Value>>;

  /// Immutable once published; readers hold it via shared_ptr.
  struct TableBase {
    std::vector<ColumnDef> columns;
    std::size_t key_columns = 0;
    std::shared_ptr<const RowMap> rows = std::make_shared<RowMap>();
  };
  using BasePtr = std::shared_ptr<const TableBase>;

  struct Table {
    /// Published base snapshot. Guarded by delta_mu: the writer swaps it
    /// and drains the delta under the unique lock, readers copy the
    /// pointer and consult the delta under one shared-lock acquisition —
    /// so every reader sees a *consistent* (base, delta) pair in which
    /// the two are disjoint, and runs against the immutable base outside
    /// any lock. (Writers may additionally read `base` while holding
    /// only mu_, since only mu_-holders ever mutate it.)
    BasePtr base;
    mutable std::shared_mutex delta_mu;
    RowMap delta;  ///< recent inserts, folded into base on merge
  };

  /// Looks up a table under the (rarely written) directory lock.
  [[nodiscard]] Table* find_table(const std::string& name) const;

  void commit_point() const;

  static Status validate(const TableBase& t, const std::vector<Value>& values);

  /// Folds base + delta into a new base snapshot and publishes it; called
  /// by writers under mu_ with `schema` optionally replacing the columns.
  void publish_merged(Table& t, const BasePtr& old_base);

  RowStoreOptions options_;
  mutable std::mutex mu_;  ///< the global transaction lock (writers only)
  mutable std::shared_mutex dir_mu_;  ///< table directory
  std::map<std::string, std::unique_ptr<Table>> tables_;
  mutable std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> merges_{0};
};

}  // namespace hpcla::rowstore
