// rowstore: the RDBMS baseline the paper rejected (§II-A).
//
// "First, a schema of a relational database, once created, is very
//  difficult to modify, whereas the format of HPC logs tend to change
//  periodically. Second, due to its support for the ACID properties and
//  two-phase commit protocols, it does not scale."
//
// This baseline makes both objections measurable:
//   * rigid schema: inserts must match the declared column list exactly;
//     adding a column is an O(table) rewrite (add_column),
//   * serialized ACID commits: one global lock orders every transaction,
//     with an optional synchronous-commit delay, so write throughput stays
//     flat as writer threads are added — the bench_rdbms_baseline
//     experiment contrasts this with cassalite's per-node scaling.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cassalite/value.hpp"
#include "common/status.hpp"

namespace hpcla::rowstore {

using cassalite::Value;

/// Declared column: name + fixed type.
struct ColumnDef {
  enum class Kind : std::uint8_t { kInt, kDouble, kText, kBool };
  std::string name;
  Kind kind = Kind::kInt;
};

/// True if `v` conforms to the declared kind (nulls are allowed anywhere).
bool value_matches(const Value& v, ColumnDef::Kind kind) noexcept;

struct RowStoreOptions {
  /// Simulated synchronous-commit cost per transaction, microseconds.
  int commit_delay_us = 0;
};

/// Single-node ACID row store with a global transaction lock.
class RowStore {
 public:
  explicit RowStore(RowStoreOptions options = RowStoreOptions());

  /// Creates a table whose first `key_columns` columns form the primary
  /// key. Duplicate names or empty keys are rejected.
  Status create_table(const std::string& name, std::vector<ColumnDef> columns,
                      std::size_t key_columns);

  /// Inserts one row; the value list must match the schema arity and
  /// types exactly (the "rigid schema" property). Duplicate primary keys
  /// are rejected (uniqueness constraint).
  Status insert(const std::string& table, std::vector<Value> values);

  /// Point lookup by primary key.
  [[nodiscard]] Result<std::vector<Value>> get(
      const std::string& table, const std::vector<Value>& key) const;

  /// Range scan over primary keys in [lo, hi) (lexicographic).
  [[nodiscard]] Result<std::vector<std::vector<Value>>> scan(
      const std::string& table, const std::vector<Value>& lo,
      const std::vector<Value>& hi) const;

  /// ALTER TABLE ADD COLUMN: appends a column with a default, rewriting
  /// every stored row. Returns the number of rows rewritten.
  Result<std::uint64_t> add_column(const std::string& table, ColumnDef column,
                                   Value default_value);

  [[nodiscard]] Result<std::uint64_t> row_count(const std::string& table) const;

  /// Total committed transactions (inserts + schema changes).
  [[nodiscard]] std::uint64_t commits() const;

 private:
  struct Table {
    std::vector<ColumnDef> columns;
    std::size_t key_columns = 0;
    // Primary-key index: composite key -> full row.
    std::map<std::vector<Value>, std::vector<Value>> rows;
  };

  void commit_point() const;

  Status validate(const Table& t, const std::vector<Value>& values) const;

  RowStoreOptions options_;
  mutable std::mutex mu_;  ///< the global transaction lock
  std::map<std::string, Table> tables_;
  mutable std::uint64_t commits_ = 0;
};

}  // namespace hpcla::rowstore
