#include "rowstore/rowstore.hpp"

#include <chrono>
#include <set>
#include <thread>

namespace hpcla::rowstore {

bool value_matches(const Value& v, ColumnDef::Kind kind) noexcept {
  if (v.is_null()) return true;
  switch (kind) {
    case ColumnDef::Kind::kInt: return v.is_int();
    case ColumnDef::Kind::kDouble: return v.is_double() || v.is_int();
    case ColumnDef::Kind::kText: return v.is_text();
    case ColumnDef::Kind::kBool: return v.is_bool();
  }
  return false;
}

RowStore::RowStore(RowStoreOptions options) : options_(options) {}

void RowStore::commit_point() const {
  ++commits_;
  if (options_.commit_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.commit_delay_us));
  }
}

Status RowStore::create_table(const std::string& name,
                              std::vector<ColumnDef> columns,
                              std::size_t key_columns) {
  if (columns.empty() || key_columns == 0 || key_columns > columns.size()) {
    return invalid_argument("table '" + name + "' needs 1..N key columns");
  }
  std::set<std::string> names;
  for (const auto& c : columns) {
    if (!names.insert(c.name).second) {
      return invalid_argument("duplicate column '" + c.name + "'");
    }
  }
  std::lock_guard lock(mu_);
  if (tables_.contains(name)) {
    return already_exists("table '" + name + "' already exists");
  }
  Table t;
  t.columns = std::move(columns);
  t.key_columns = key_columns;
  tables_.emplace(name, std::move(t));
  commit_point();
  return Status::ok();
}

Status RowStore::validate(const Table& t,
                          const std::vector<Value>& values) const {
  if (values.size() != t.columns.size()) {
    return invalid_argument("row arity " + std::to_string(values.size()) +
                            " != schema arity " +
                            std::to_string(t.columns.size()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!value_matches(values[i], t.columns[i].kind)) {
      return invalid_argument("type mismatch in column '" +
                              t.columns[i].name + "'");
    }
  }
  return Status::ok();
}

Status RowStore::insert(const std::string& table, std::vector<Value> values) {
  std::lock_guard lock(mu_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) return not_found("no table '" + table + "'");
  Table& t = it->second;
  HPCLA_RETURN_IF_ERROR(validate(t, values));
  std::vector<Value> key(values.begin(),
                         values.begin() + static_cast<std::ptrdiff_t>(t.key_columns));
  auto [_, inserted] = t.rows.try_emplace(std::move(key), std::move(values));
  if (!inserted) {
    return already_exists("duplicate primary key in '" + table + "'");
  }
  commit_point();
  return Status::ok();
}

Result<std::vector<Value>> RowStore::get(const std::string& table,
                                         const std::vector<Value>& key) const {
  std::lock_guard lock(mu_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) return not_found("no table '" + table + "'");
  const auto row = it->second.rows.find(key);
  if (row == it->second.rows.end()) return not_found("key not found");
  return row->second;
}

Result<std::vector<std::vector<Value>>> RowStore::scan(
    const std::string& table, const std::vector<Value>& lo,
    const std::vector<Value>& hi) const {
  std::lock_guard lock(mu_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) return not_found("no table '" + table + "'");
  std::vector<std::vector<Value>> out;
  auto begin = lo.empty() ? it->second.rows.begin()
                          : it->second.rows.lower_bound(lo);
  auto end = hi.empty() ? it->second.rows.end()
                        : it->second.rows.lower_bound(hi);
  for (; begin != end; ++begin) out.push_back(begin->second);
  return out;
}

Result<std::uint64_t> RowStore::add_column(const std::string& table,
                                           ColumnDef column,
                                           Value default_value) {
  std::lock_guard lock(mu_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) return not_found("no table '" + table + "'");
  Table& t = it->second;
  for (const auto& c : t.columns) {
    if (c.name == column.name) {
      return already_exists("column '" + column.name + "' already exists");
    }
  }
  if (!value_matches(default_value, column.kind)) {
    return invalid_argument("default value type mismatch");
  }
  t.columns.push_back(std::move(column));
  // The expensive part the paper complains about: every row is rewritten.
  std::uint64_t rewritten = 0;
  for (auto& [_, row] : t.rows) {
    row.push_back(default_value);
    ++rewritten;
  }
  commit_point();
  return rewritten;
}

Result<std::uint64_t> RowStore::row_count(const std::string& table) const {
  std::lock_guard lock(mu_);
  const auto it = tables_.find(table);
  if (it == tables_.end()) return not_found("no table '" + table + "'");
  return static_cast<std::uint64_t>(it->second.rows.size());
}

std::uint64_t RowStore::commits() const {
  std::lock_guard lock(mu_);
  return commits_;
}

}  // namespace hpcla::rowstore
