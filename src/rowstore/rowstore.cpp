#include "rowstore/rowstore.hpp"

#include <chrono>
#include <set>
#include <thread>

namespace hpcla::rowstore {

bool value_matches(const Value& v, ColumnDef::Kind kind) noexcept {
  if (v.is_null()) return true;
  switch (kind) {
    case ColumnDef::Kind::kInt: return v.is_int();
    case ColumnDef::Kind::kDouble: return v.is_double() || v.is_int();
    case ColumnDef::Kind::kText: return v.is_text();
    case ColumnDef::Kind::kBool: return v.is_bool();
  }
  return false;
}

RowStore::RowStore(RowStoreOptions options) : options_(options) {
  if (options_.delta_merge_rows == 0) options_.delta_merge_rows = 1;
}

void RowStore::commit_point() const {
  commits_.fetch_add(1, std::memory_order_relaxed);
  if (options_.commit_delay_us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.commit_delay_us));
  }
}

RowStore::Table* RowStore::find_table(const std::string& name) const {
  std::shared_lock lock(dir_mu_);
  const auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status RowStore::create_table(const std::string& name,
                              std::vector<ColumnDef> columns,
                              std::size_t key_columns) {
  if (columns.empty() || key_columns == 0 || key_columns > columns.size()) {
    return invalid_argument("table '" + name + "' needs 1..N key columns");
  }
  std::set<std::string> names;
  for (const auto& c : columns) {
    if (!names.insert(c.name).second) {
      return invalid_argument("duplicate column '" + c.name + "'");
    }
  }
  std::lock_guard lock(mu_);
  auto base = std::make_shared<TableBase>();
  base->columns = std::move(columns);
  base->key_columns = key_columns;
  auto t = std::make_unique<Table>();
  t->base = std::move(base);  // no readers until the directory insert
  {
    std::lock_guard dir(dir_mu_);
    if (tables_.contains(name)) {
      return already_exists("table '" + name + "' already exists");
    }
    tables_.emplace(name, std::move(t));
  }
  commit_point();
  return Status::ok();
}

Status RowStore::validate(const TableBase& t,
                          const std::vector<Value>& values) {
  if (values.size() != t.columns.size()) {
    return invalid_argument("row arity " + std::to_string(values.size()) +
                            " != schema arity " +
                            std::to_string(t.columns.size()));
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!value_matches(values[i], t.columns[i].kind)) {
      return invalid_argument("type mismatch in column '" +
                              t.columns[i].name + "'");
    }
  }
  return Status::ok();
}

void RowStore::publish_merged(Table& t, const BasePtr& old_base) {
  // Build the merged row map outside the delta lock (delta is only
  // written under mu_, which we hold), then swap base and drain delta in
  // one critical section: any reader's shared-lock acquisition sees
  // either (old base, full delta) or (merged base, empty delta), never a
  // half-published mix.
  auto merged = std::make_shared<RowMap>(*old_base->rows);
  for (auto& [k, v] : t.delta) (*merged)[k] = v;
  auto next = std::make_shared<TableBase>();
  next->columns = old_base->columns;
  next->key_columns = old_base->key_columns;
  next->rows = std::move(merged);
  {
    std::unique_lock delta(t.delta_mu);
    t.base = std::move(next);
    t.delta.clear();
  }
  merges_.fetch_add(1, std::memory_order_relaxed);
}

Status RowStore::insert(const std::string& table, std::vector<Value> values) {
  std::lock_guard lock(mu_);
  Table* t = find_table(table);
  if (t == nullptr) return not_found("no table '" + table + "'");
  const BasePtr base = t->base;  // safe under mu_: only writers mutate it
  HPCLA_RETURN_IF_ERROR(validate(*base, values));
  std::vector<Value> key(
      values.begin(),
      values.begin() + static_cast<std::ptrdiff_t>(base->key_columns));
  if (base->rows->contains(key)) {
    return already_exists("duplicate primary key in '" + table + "'");
  }
  {
    std::unique_lock delta(t->delta_mu);
    auto [_, inserted] = t->delta.try_emplace(std::move(key),
                                              std::move(values));
    if (!inserted) {
      return already_exists("duplicate primary key in '" + table + "'");
    }
  }
  if (t->delta.size() >= options_.delta_merge_rows) publish_merged(*t, base);
  commit_point();
  return Status::ok();
}

Result<std::vector<Value>> RowStore::get(const std::string& table,
                                         const std::vector<Value>& key) const {
  const Table* t = find_table(table);
  if (t == nullptr) return not_found("no table '" + table + "'");
  // One shared-lock acquisition covers the delta lookup and the base
  // pointer copy (a consistent pair); the base search runs lock-free
  // against the immutable snapshot.
  BasePtr base;
  {
    std::shared_lock delta(t->delta_mu);
    const auto it = t->delta.find(key);
    if (it != t->delta.end()) return it->second;
    base = t->base;
  }
  const auto row = base->rows->find(key);
  if (row == base->rows->end()) return not_found("key not found");
  return row->second;
}

Result<std::vector<std::vector<Value>>> RowStore::scan(
    const std::string& table, const std::vector<Value>& lo,
    const std::vector<Value>& hi) const {
  const Table* t = find_table(table);
  if (t == nullptr) return not_found("no table '" + table + "'");
  // Copy the delta slice and the base pointer under one shared-lock
  // acquisition (a consistent, disjoint pair), then interleave the two
  // sorted sequences outside any lock.
  RowMap recent;
  BasePtr base;
  {
    std::shared_lock delta(t->delta_mu);
    auto begin = lo.empty() ? t->delta.begin() : t->delta.lower_bound(lo);
    auto end = hi.empty() ? t->delta.end() : t->delta.lower_bound(hi);
    recent.insert(begin, end);
    base = t->base;
  }
  auto begin = lo.empty() ? base->rows->begin() : base->rows->lower_bound(lo);
  auto end = hi.empty() ? base->rows->end() : base->rows->lower_bound(hi);
  std::vector<std::vector<Value>> out;
  auto d = recent.begin();
  for (; begin != end; ++begin) {
    while (d != recent.end() && d->first < begin->first) {
      out.push_back(d->second);
      ++d;
    }
    if (d != recent.end() && d->first == begin->first) ++d;  // delta wins
    out.push_back(begin->second);
  }
  for (; d != recent.end(); ++d) out.push_back(d->second);
  return out;
}

Result<std::uint64_t> RowStore::add_column(const std::string& table,
                                           ColumnDef column,
                                           Value default_value) {
  std::lock_guard lock(mu_);
  Table* t = find_table(table);
  if (t == nullptr) return not_found("no table '" + table + "'");
  BasePtr base = t->base;  // safe under mu_: only writers mutate it
  for (const auto& c : base->columns) {
    if (c.name == column.name) {
      return already_exists("column '" + column.name + "' already exists");
    }
  }
  if (!value_matches(default_value, column.kind)) {
    return invalid_argument("default value type mismatch");
  }
  // Fold the delta in first so the rewrite covers every row, then publish
  // one snapshot with the new schema and the widened rows. The expensive
  // part the paper complains about: every row is copied and rewritten.
  if (!t->delta.empty()) {
    publish_merged(*t, base);
    base = t->base;
  }
  auto widened = std::make_shared<RowMap>();
  std::uint64_t rewritten = 0;
  for (const auto& [k, row] : *base->rows) {
    auto copy = row;
    copy.push_back(default_value);
    widened->emplace(k, std::move(copy));
    ++rewritten;
  }
  auto next = std::make_shared<TableBase>();
  next->columns = base->columns;
  next->columns.push_back(std::move(column));
  next->key_columns = base->key_columns;
  next->rows = std::move(widened);
  {
    std::unique_lock delta(t->delta_mu);  // exclude concurrent readers
    t->base = std::move(next);
  }
  commit_point();
  return rewritten;
}

Result<std::uint64_t> RowStore::row_count(const std::string& table) const {
  const Table* t = find_table(table);
  if (t == nullptr) return not_found("no table '" + table + "'");
  // The (base, delta) pair read under the shared lock is consistent and
  // disjoint (the membership check is defensive), so the sum is exact.
  std::uint64_t extra = 0;
  BasePtr base;
  {
    std::shared_lock delta(t->delta_mu);
    base = t->base;
    for (const auto& [k, _] : t->delta) {
      if (!base->rows->contains(k)) ++extra;
    }
  }
  return static_cast<std::uint64_t>(base->rows->size()) + extra;
}

std::uint64_t RowStore::commits() const {
  return commits_.load(std::memory_order_relaxed);
}

}  // namespace hpcla::rowstore
