// The Machine: the `nodeinfos` side of the data model (paper §II-B).
//
// "The nodeinfos contains information about the system including the
//  position of a rack in terms of row and column number, the position of a
//  compute node in terms of rack, chassis, blade, and module number,
//  network and routing information, etc."
//
// Machine materializes one NodeInfo per node slot: physical position,
// hardware description (AMD Opteron 6274 + NVIDIA K20X per the paper),
// Gemini router id and a 3D torus routing coordinate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "topo/cname.hpp"

namespace hpcla::topo {

/// 3D torus coordinate of a Gemini router (Titan's interconnect is a
/// 3D torus; we derive a deterministic coordinate from physical position).
struct TorusCoord {
  int x = 0;
  int y = 0;
  int z = 0;

  friend constexpr bool operator==(const TorusCoord&, const TorusCoord&) = default;
};

/// Static description of one node slot — one row of the `nodeinfos` table.
struct NodeInfo {
  NodeId id = kInvalidNode;
  Coord coord;
  std::string cname;          ///< node-level cname, e.g. "c3-17c1s5n2"
  int cabinet = 0;            ///< dense cabinet index [0, 200)
  int blade = 0;              ///< dense blade index [0, 4800)
  int gemini = 0;             ///< dense Gemini router index [0, 9600)
  TorusCoord torus;           ///< router position in the 3D torus
  std::string cpu_model;      ///< "AMD Opteron 6274 (16 cores)"
  int cpu_cores = 16;
  int cpu_memory_gb = 32;     ///< DDR3
  std::string gpu_model;      ///< "NVIDIA K20X (Kepler)"
  int gpu_memory_gb = 6;      ///< GDDR5

  /// JSON row as served to the frontend.
  [[nodiscard]] Json to_json() const;
};

/// Whole-machine geometry + per-node metadata. Immutable after
/// construction; shared read-only across threads.
class Machine {
 public:
  /// Builds the full Titan-shaped machine (19,200 nodes).
  Machine();

  /// Number of node slots.
  [[nodiscard]] int node_count() const noexcept {
    return static_cast<int>(nodes_.size());
  }

  /// NodeInfo by dense id (checked).
  [[nodiscard]] const NodeInfo& node(NodeId id) const;

  /// All node infos, ordered by id.
  [[nodiscard]] const std::vector<NodeInfo>& nodes() const noexcept {
    return nodes_;
  }

  /// Node ids contained in a (possibly coarse) location coordinate.
  [[nodiscard]] std::vector<NodeId> nodes_in(const Coord& where) const;

  /// Resolves a location cname to the node ids it contains.
  [[nodiscard]] Result<std::vector<NodeId>> nodes_at(std::string_view cname) const;

  /// Ids of all nodes in a cabinet (dense cabinet index).
  [[nodiscard]] std::vector<NodeId> nodes_in_cabinet(int cabinet) const;

 private:
  std::vector<NodeInfo> nodes_;
};

/// Process-wide machine singleton. The geometry is fixed, so modules share
/// one instance instead of threading a reference everywhere.
const Machine& titan();

}  // namespace hpcla::topo
