#include "topo/cname.hpp"

#include <array>
#include <cstdio>

namespace hpcla::topo {

using G = TitanGeometry;

std::string_view location_level_name(LocationLevel level) noexcept {
  switch (level) {
    case LocationLevel::kSystem: return "system";
    case LocationLevel::kCabinet: return "cabinet";
    case LocationLevel::kCage: return "cage";
    case LocationLevel::kBlade: return "blade";
    case LocationLevel::kNode: return "node";
  }
  return "?";
}

LocationLevel Coord::level() const noexcept {
  if (row < 0 || col < 0) return LocationLevel::kSystem;
  if (cage < 0) return LocationLevel::kCabinet;
  if (slot < 0) return LocationLevel::kCage;
  if (node < 0) return LocationLevel::kBlade;
  return LocationLevel::kNode;
}

NodeId node_id(const Coord& c) {
  HPCLA_CHECK_MSG(c.row >= 0 && c.row < G::kRows, "cname row out of range");
  HPCLA_CHECK_MSG(c.col >= 0 && c.col < G::kCols, "cname col out of range");
  HPCLA_CHECK_MSG(c.cage >= 0 && c.cage < G::kCagesPerCabinet,
                  "cname cage out of range");
  HPCLA_CHECK_MSG(c.slot >= 0 && c.slot < G::kSlotsPerCage,
                  "cname slot out of range");
  HPCLA_CHECK_MSG(c.node >= 0 && c.node < G::kNodesPerBlade,
                  "cname node out of range");
  return static_cast<NodeId>(
      ((c.cabinet_index() * G::kCagesPerCabinet + c.cage) * G::kSlotsPerCage +
       c.slot) * G::kNodesPerBlade + c.node);
}

Coord coord_of(NodeId id) {
  HPCLA_CHECK_MSG(id >= 0 && id < G::kTotalNodes, "node id out of range");
  Coord c;
  c.node = id % G::kNodesPerBlade;
  id /= G::kNodesPerBlade;
  c.slot = id % G::kSlotsPerCage;
  id /= G::kSlotsPerCage;
  c.cage = id % G::kCagesPerCabinet;
  id /= G::kCagesPerCabinet;
  c.col = id % G::kCols;
  c.row = id / G::kCols;
  return c;
}

int cabinet_of(NodeId id) {
  HPCLA_CHECK_MSG(id >= 0 && id < G::kTotalNodes, "node id out of range");
  return id / G::kNodesPerCabinet;
}

int blade_of(NodeId id) {
  HPCLA_CHECK_MSG(id >= 0 && id < G::kTotalNodes, "node id out of range");
  return id / G::kNodesPerBlade;
}

int gemini_of(NodeId id) {
  HPCLA_CHECK_MSG(id >= 0 && id < G::kTotalNodes, "node id out of range");
  return id / 2;  // node pairs (n0,n1) and (n2,n3) each share a router
}

NodeId gemini_peer(NodeId id) {
  HPCLA_CHECK_MSG(id >= 0 && id < G::kTotalNodes, "node id out of range");
  return id ^ 1;
}

std::string format_cname(const Coord& c) {
  std::array<char, 48> buf{};
  switch (c.level()) {
    case LocationLevel::kSystem:
      return "system";
    case LocationLevel::kCabinet:
      std::snprintf(buf.data(), buf.size(), "c%d-%d", c.col, c.row);
      break;
    case LocationLevel::kCage:
      std::snprintf(buf.data(), buf.size(), "c%d-%dc%d", c.col, c.row, c.cage);
      break;
    case LocationLevel::kBlade:
      std::snprintf(buf.data(), buf.size(), "c%d-%dc%ds%d", c.col, c.row,
                    c.cage, c.slot);
      break;
    case LocationLevel::kNode:
      std::snprintf(buf.data(), buf.size(), "c%d-%dc%ds%dn%d", c.col, c.row,
                    c.cage, c.slot, c.node);
      break;
  }
  return buf.data();
}

std::string cname_of(NodeId id) { return format_cname(coord_of(id)); }

namespace {

/// Parses a decimal int at text[pos...]; advances pos. Returns -1 on error.
int parse_num(std::string_view text, std::size_t& pos) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return -1;
  int v = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    v = v * 10 + (text[pos] - '0');
    if (v > 100000) return -1;  // absurd field, bail before overflow
    ++pos;
  }
  return v;
}

}  // namespace

Result<Coord> parse_cname(std::string_view text) {
  const auto bad = [&](const char* why) {
    return invalid_argument("bad cname '" + std::string(text) + "': " + why);
  };

  std::size_t pos = 0;
  Coord c;
  if (pos >= text.size() || text[pos] != 'c') return bad("must start with 'c'");
  ++pos;
  c.col = parse_num(text, pos);
  if (c.col < 0) return bad("missing column");
  if (pos >= text.size() || text[pos] != '-') return bad("missing '-'");
  ++pos;
  c.row = parse_num(text, pos);
  if (c.row < 0) return bad("missing row");
  if (c.col >= G::kCols) return bad("column out of range");
  if (c.row >= G::kRows) return bad("row out of range");
  if (pos == text.size()) return c;  // cabinet-level

  if (text[pos] != 'c') return bad("expected 'c' (cage)");
  ++pos;
  c.cage = parse_num(text, pos);
  if (c.cage < 0 || c.cage >= G::kCagesPerCabinet) return bad("bad cage");
  if (pos == text.size()) return c;  // cage-level

  if (text[pos] != 's') return bad("expected 's' (slot)");
  ++pos;
  c.slot = parse_num(text, pos);
  if (c.slot < 0 || c.slot >= G::kSlotsPerCage) return bad("bad slot");
  if (pos == text.size()) return c;  // blade-level

  if (text[pos] != 'n') return bad("expected 'n' (node)");
  ++pos;
  c.node = parse_num(text, pos);
  if (c.node < 0 || c.node >= G::kNodesPerBlade) return bad("bad node");
  if (pos != text.size()) return bad("trailing characters");
  return c;
}

bool contains(const Coord& outer, const Coord& inner) noexcept {
  switch (outer.level()) {
    case LocationLevel::kSystem:
      return true;
    case LocationLevel::kCabinet:
      return outer.row == inner.row && outer.col == inner.col;
    case LocationLevel::kCage:
      return outer.row == inner.row && outer.col == inner.col &&
             outer.cage == inner.cage;
    case LocationLevel::kBlade:
      return outer.row == inner.row && outer.col == inner.col &&
             outer.cage == inner.cage && outer.slot == inner.slot;
    case LocationLevel::kNode:
      return outer == inner;
  }
  return false;
}

}  // namespace hpcla::topo
