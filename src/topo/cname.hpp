// Cray component names ("cnames") and the Titan machine geometry.
//
// Titan (paper §II-B): 200 cabinets in a grid of 25 rows × 8 columns; each
// cabinet holds 3 cages, each cage 8 blades (slots), each blade 4 nodes,
// and each pair of nodes shares one Gemini router. 200·3·8·4 = 19,200
// node slots.
//
// A node's cname is "c<col>-<row>c<cage>s<slot>n<node>", e.g. "c3-17c1s5n2"
// = cabinet at column 3 / row 17, cage 1, slot 5, node 2. Cabinet cnames
// ("c3-17"), cage cnames ("c3-17c1") and blade cnames ("c3-17c1s5") address
// the enclosing components; the location hierarchy is exactly what the
// frontend's physical system map navigates.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace hpcla::topo {

/// Machine geometry constants (Titan, per the paper).
struct TitanGeometry {
  static constexpr int kRows = 25;
  static constexpr int kCols = 8;
  static constexpr int kCabinets = kRows * kCols;          // 200
  static constexpr int kCagesPerCabinet = 3;
  static constexpr int kSlotsPerCage = 8;
  static constexpr int kNodesPerBlade = 4;
  static constexpr int kNodesPerCabinet =
      kCagesPerCabinet * kSlotsPerCage * kNodesPerBlade;   // 96
  static constexpr int kTotalNodes = kCabinets * kNodesPerCabinet;  // 19200
  static constexpr int kGeminisPerBlade = kNodesPerBlade / 2;       // 2
};

/// Dense node index in [0, kTotalNodes). The data model stores NodeIds;
/// cnames appear only in raw log text and rendered output.
using NodeId = std::int32_t;

constexpr NodeId kInvalidNode = -1;

/// Granularity of a location selection in a query context.
enum class LocationLevel : std::uint8_t {
  kSystem = 0,   ///< whole machine
  kCabinet,      ///< "c3-17"
  kCage,         ///< "c3-17c1"
  kBlade,        ///< "c3-17c1s5"
  kNode,         ///< "c3-17c1s5n2"
};

std::string_view location_level_name(LocationLevel level) noexcept;

/// Fully decomposed position of a node (or of a coarser component when the
/// trailing fields are -1).
struct Coord {
  int row = -1;   ///< cabinet row, 0..24
  int col = -1;   ///< cabinet column, 0..7
  int cage = -1;  ///< 0..2
  int slot = -1;  ///< 0..7 (blade within cage)
  int node = -1;  ///< 0..3 (node within blade)

  friend constexpr auto operator<=>(const Coord&, const Coord&) = default;

  /// Deepest level specified by this coordinate.
  [[nodiscard]] LocationLevel level() const noexcept;

  /// Cabinet index in [0, 200): row-major over the 25×8 grid.
  [[nodiscard]] constexpr int cabinet_index() const noexcept {
    return row * TitanGeometry::kCols + col;
  }
};

/// Converts a *node-level* coordinate to its dense id. All five fields must
/// be in range (checked).
NodeId node_id(const Coord& c);

/// Inverse of node_id.
Coord coord_of(NodeId id);

/// Cabinet index in [0, 200) for a node id.
int cabinet_of(NodeId id);

/// Blade index in [0, 4800) for a node id (cabinet*24 + cage*8 + slot).
int blade_of(NodeId id);

/// Gemini router index in [0, 9600). Titan's Gemini is shared between a
/// pair of adjacent nodes on a blade: (n0,n1) share one router, (n2,n3)
/// the other.
int gemini_of(NodeId id);

/// The id of the node sharing this node's Gemini router.
NodeId gemini_peer(NodeId id);

/// Formats the cname at the coordinate's own level:
/// "c3-17", "c3-17c1", "c3-17c1s5", or "c3-17c1s5n2".
std::string format_cname(const Coord& c);

/// Convenience: node-level cname for a dense id.
std::string cname_of(NodeId id);

/// Parses a cname at any level; unspecified trailing fields are -1.
/// Rejects out-of-range fields and trailing garbage.
Result<Coord> parse_cname(std::string_view text);

/// True if `outer` (possibly coarse) contains `inner` (node-level coord).
bool contains(const Coord& outer, const Coord& inner) noexcept;

}  // namespace hpcla::topo
