#include "topo/machine.hpp"

namespace hpcla::topo {

using G = TitanGeometry;

Json NodeInfo::to_json() const {
  Json j = Json::object();
  j["nid"] = id;
  j["cname"] = cname;
  j["row"] = coord.row;
  j["col"] = coord.col;
  j["cage"] = coord.cage;
  j["slot"] = coord.slot;
  j["node"] = coord.node;
  j["cabinet"] = cabinet;
  j["blade"] = blade;
  j["gemini"] = gemini;
  Json t = Json::object();
  t["x"] = torus.x;
  t["y"] = torus.y;
  t["z"] = torus.z;
  j["torus"] = std::move(t);
  j["cpu"] = cpu_model;
  j["cpu_cores"] = cpu_cores;
  j["cpu_memory_gb"] = cpu_memory_gb;
  j["gpu"] = gpu_model;
  j["gpu_memory_gb"] = gpu_memory_gb;
  return j;
}

Machine::Machine() {
  nodes_.reserve(G::kTotalNodes);
  for (NodeId id = 0; id < G::kTotalNodes; ++id) {
    NodeInfo info;
    info.id = id;
    info.coord = coord_of(id);
    info.cname = format_cname(info.coord);
    info.cabinet = cabinet_of(id);
    info.blade = blade_of(id);
    info.gemini = gemini_of(id);
    // Torus: X spans columns, Y spans rows, Z walks the 48 Geminis within a
    // cabinet — a deterministic stand-in for Titan's real 25×16×24 torus.
    info.torus = TorusCoord{info.coord.col, info.coord.row,
                            info.gemini % (G::kNodesPerCabinet / 2)};
    info.cpu_model = "AMD Opteron 6274 (16 cores)";
    info.gpu_model = "NVIDIA K20X (Kepler)";
    nodes_.push_back(std::move(info));
  }
}

const NodeInfo& Machine::node(NodeId id) const {
  HPCLA_CHECK_MSG(id >= 0 && id < node_count(), "node id out of range");
  return nodes_[static_cast<std::size_t>(id)];
}

std::vector<NodeId> Machine::nodes_in(const Coord& where) const {
  std::vector<NodeId> out;
  switch (where.level()) {
    case LocationLevel::kSystem: {
      out.resize(nodes_.size());
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        out[i] = static_cast<NodeId>(i);
      }
      break;
    }
    case LocationLevel::kCabinet:
      return nodes_in_cabinet(where.cabinet_index());
    case LocationLevel::kCage: {
      out.reserve(G::kSlotsPerCage * G::kNodesPerBlade);
      Coord c = where;
      for (c.slot = 0; c.slot < G::kSlotsPerCage; ++c.slot) {
        for (c.node = 0; c.node < G::kNodesPerBlade; ++c.node) {
          out.push_back(node_id(c));
        }
      }
      break;
    }
    case LocationLevel::kBlade: {
      out.reserve(G::kNodesPerBlade);
      Coord c = where;
      for (c.node = 0; c.node < G::kNodesPerBlade; ++c.node) {
        out.push_back(node_id(c));
      }
      break;
    }
    case LocationLevel::kNode:
      out.push_back(node_id(where));
      break;
  }
  return out;
}

Result<std::vector<NodeId>> Machine::nodes_at(std::string_view cname) const {
  if (cname == "system" || cname.empty()) {
    return nodes_in(Coord{});
  }
  auto coord = parse_cname(cname);
  if (!coord.is_ok()) return coord.status();
  return nodes_in(coord.value());
}

std::vector<NodeId> Machine::nodes_in_cabinet(int cabinet) const {
  HPCLA_CHECK_MSG(cabinet >= 0 && cabinet < G::kCabinets,
                  "cabinet index out of range");
  std::vector<NodeId> out;
  out.reserve(G::kNodesPerCabinet);
  const NodeId first = static_cast<NodeId>(cabinet) * G::kNodesPerCabinet;
  for (NodeId id = first; id < first + G::kNodesPerCabinet; ++id) {
    out.push_back(id);
  }
  return out;
}

const Machine& titan() {
  static const Machine machine;
  return machine;
}

}  // namespace hpcla::topo
