#include "buslite/broker.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace hpcla::buslite {

Broker::Broker() {
  retired_.push_back(std::make_unique<TopicMap>());
  topics_.store(retired_.back().get(), std::memory_order_release);
  telemetry_ = telemetry::registry().register_collector(
      [this](telemetry::MetricSink& sink) {
        const BrokerMetrics m = metrics();
        sink.counter("buslite.produces", m.produces);
        sink.counter("buslite.fetches", m.fetches);
        sink.counter("buslite.messages_fetched", m.messages_fetched);
        sink.counter("buslite.messages_trimmed", m.messages_trimmed);
        sink.counter("buslite.commits", m.commits);
        sink.counter("buslite.produce_contention", m.produce_contention);
        // Internal (`_`-prefixed) topic traffic under the excluded-from-
        // export selftel prefix, so the dogfooded bus metrics only show
        // foreground load (DESIGN.md §16).
        const BrokerMetrics s = internal_metrics();
        sink.counter("selftel.bus.produces", s.produces);
        sink.counter("selftel.bus.fetches", s.fetches);
        sink.counter("selftel.bus.messages_fetched", s.messages_fetched);
        sink.counter("selftel.bus.commits", s.commits);
      });
}

Broker::Partition::Partition() {
  auto first = std::make_shared<Chunk>(0);
  tail = first;
  head.store(std::move(first), std::memory_order_relaxed);
}

Broker::Partition::~Partition() {
  // Unlink the chunk chain iteratively: letting shared_ptr destructors
  // cascade would recurse once per chunk and can blow the stack on a
  // long-lived partition.
  auto c = head.exchange(nullptr, std::memory_order_relaxed);
  tail.reset();
  while (c) {
    auto next = c->next.exchange(nullptr, std::memory_order_relaxed);
    c = std::move(next);
  }
}

Broker::Topic::Topic(TopicConfig c) : config(c) {
  partitions.reserve(static_cast<std::size_t>(config.partitions));
  for (int p = 0; p < config.partitions; ++p) {
    partitions.push_back(std::make_unique<Partition>());
  }
}

Broker::Topic* Broker::find_topic(const TopicMap& map,
                                  const std::string& name) {
  const auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

Broker::CommitShard& Broker::commit_shard(const std::string& key) const {
  return commit_shards_[murmur3_64(key) % kCommitShards];
}

Status Broker::create_topic(const std::string& name, TopicConfig config) {
  if (config.partitions <= 0) {
    return invalid_argument("topic '" + name + "' needs >= 1 partition");
  }
  std::lock_guard lock(create_mu_);
  const TopicMap* current = topic_map();
  if (current->contains(name)) {
    return already_exists("topic '" + name + "' already exists");
  }
  // RCU publish: copy the (small) map of shared topic handles, insert, and
  // swap the snapshot pointer. Concurrent lookups keep using the old map,
  // which retired_ keeps alive.
  auto next = std::make_unique<TopicMap>(*current);
  next->emplace(name, std::make_shared<Topic>(config));
  topics_.store(next.get(), std::memory_order_release);
  retired_.push_back(std::move(next));
  return Status::ok();
}

bool Broker::has_topic(const std::string& name) const {
  return topic_map()->contains(name);
}

Result<int> Broker::partition_count(const std::string& topic) const {
  auto map = topic_map();
  const Topic* t = find_topic(*map, topic);
  if (t == nullptr) return not_found("no topic '" + topic + "'");
  return t->config.partitions;
}

Result<std::pair<int, std::int64_t>> Broker::produce(const std::string& topic,
                                                     std::string key,
                                                     std::string value,
                                                     UnixMillis timestamp) {
  auto map = topic_map();
  Topic* t = find_topic(*map, topic);
  if (t == nullptr) return not_found("no topic '" + topic + "'");

  const std::size_t pcount = t->partitions.size();
  std::size_t pidx;
  if (key.empty()) {
    pidx = t->round_robin.fetch_add(1, std::memory_order_relaxed) % pcount;
  } else {
    pidx = murmur3_64(key) % pcount;
  }
  Partition& p = *t->partitions[pidx];

  std::unique_lock lock(p.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    p.contention.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }

  // Only producers (under p.mu) advance published_next, so a relaxed load
  // here sees the latest value.
  const std::int64_t off = p.published_next.load(std::memory_order_relaxed);
  Chunk* tail = p.tail.get();
  if (off >= tail->base + static_cast<std::int64_t>(kChunkMessages)) {
    auto grown = std::make_shared<Chunk>(
        tail->base + static_cast<std::int64_t>(kChunkMessages));
    // Link before any offset in the new chunk is published, so readers
    // that see the tail can always walk to the covering chunk.
    tail->next.store(grown, std::memory_order_release);
    p.tail = grown;
    tail = grown.get();
  }
  Message& slot = tail->slots[static_cast<std::size_t>(off - tail->base)];
  slot.key = std::move(key);
  slot.value = std::move(value);
  slot.timestamp = timestamp;
  slot.offset = off;
  // Publish-before-read: the slot write above happens-before this release
  // store, which fetch() acquire-loads.
  p.published_next.store(off + 1, std::memory_order_release);

  // Retention: advance the floor and unlink fully-trimmed head chunks.
  // In-flight fetches that already grabbed the old head keep the chain
  // alive through their shared_ptr.
  const std::size_t cap = t->config.retention_messages;
  if (cap != 0) {
    const std::int64_t base = p.published_base.load(std::memory_order_relaxed);
    const std::int64_t new_base = off + 1 - static_cast<std::int64_t>(cap);
    if (new_base > base) {
      p.trimmed.fetch_add(static_cast<std::uint64_t>(new_base - base),
                          std::memory_order_relaxed);
      p.published_base.store(new_base, std::memory_order_release);
      auto head = p.head.load(std::memory_order_relaxed);
      while (head->base + static_cast<std::int64_t>(kChunkMessages) <=
             new_base) {
        auto next = head->next.load(std::memory_order_relaxed);
        p.head.store(next, std::memory_order_release);
        head = std::move(next);
      }
    }
  }
  p.produces.fetch_add(1, std::memory_order_relaxed);
  return std::make_pair(static_cast<int>(pidx), off);
}

Result<std::vector<Message>> Broker::fetch(const std::string& topic,
                                           int partition, std::int64_t offset,
                                           std::size_t max_messages) const {
  auto map = topic_map();
  const Topic* t = find_topic(*map, topic);
  if (t == nullptr) return not_found("no topic '" + topic + "'");
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= t->partitions.size()) {
    return invalid_argument("partition " + std::to_string(partition) +
                            " out of range for '" + topic + "'");
  }
  const Partition& p = *t->partitions[static_cast<std::size_t>(partition)];
  p.fetches.fetch_add(1, std::memory_order_relaxed);

  std::vector<Message> out;
  const std::int64_t tail = p.published_next.load(std::memory_order_acquire);
  const std::int64_t base = p.published_base.load(std::memory_order_acquire);
  std::int64_t start = std::max(offset, base);
  if (start >= tail) return out;

  ChunkPtr chunk = p.head.load(std::memory_order_acquire);
  // A trim may have advanced past our base load; clamp forward to the
  // oldest chunk still linked (keeps the returned batch dense).
  if (chunk == nullptr) return out;
  start = std::max(start, chunk->base);
  if (start >= tail) return out;
  while (chunk != nullptr &&
         start >= chunk->base + static_cast<std::int64_t>(kChunkMessages)) {
    chunk = chunk->next.load(std::memory_order_acquire);
  }

  const std::size_t n = std::min(
      max_messages, static_cast<std::size_t>(tail - start));
  out.reserve(n);
  while (out.size() < n && chunk != nullptr) {
    const auto idx = static_cast<std::size_t>(start - chunk->base);
    if (idx >= kChunkMessages) {
      chunk = chunk->next.load(std::memory_order_acquire);
      continue;
    }
    out.push_back(chunk->slots[idx]);
    ++start;
  }
  p.fetched_messages.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

Result<std::int64_t> Broker::end_offset(const std::string& topic,
                                        int partition) const {
  auto map = topic_map();
  const Topic* t = find_topic(*map, topic);
  if (t == nullptr) return not_found("no topic '" + topic + "'");
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= t->partitions.size()) {
    return invalid_argument("bad partition");
  }
  return t->partitions[static_cast<std::size_t>(partition)]
      ->published_next.load(std::memory_order_acquire);
}

Result<std::int64_t> Broker::begin_offset(const std::string& topic,
                                          int partition) const {
  auto map = topic_map();
  const Topic* t = find_topic(*map, topic);
  if (t == nullptr) return not_found("no topic '" + topic + "'");
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= t->partitions.size()) {
    return invalid_argument("bad partition");
  }
  return t->partitions[static_cast<std::size_t>(partition)]
      ->published_base.load(std::memory_order_acquire);
}

namespace {

bool internal_topic(const std::string& name) noexcept {
  return !name.empty() && name.front() == '_';
}

}  // namespace

BrokerMetrics Broker::metrics() const noexcept {
  // Sum the per-partition counters of user topics. Topics are never
  // deleted, so the current snapshot covers every partition that ever
  // counted anything. Internal (`_`-prefixed) topics — the self-telemetry
  // bus — are summed separately by internal_metrics() so exported broker
  // metrics never reflect telemetry traffic itself.
  BrokerMetrics m;
  const TopicMap* map = topic_map();
  for (const auto& [name, t] : *map) {
    if (internal_topic(name)) continue;
    for (const auto& p : t->partitions) {
      m.produces += p->produces.load(std::memory_order_relaxed);
      m.fetches += p->fetches.load(std::memory_order_relaxed);
      m.messages_fetched += p->fetched_messages.load(std::memory_order_relaxed);
      m.messages_trimmed += p->trimmed.load(std::memory_order_relaxed);
      m.produce_contention += p->contention.load(std::memory_order_relaxed);
    }
  }
  for (const auto& shard : commit_shards_) {
    std::lock_guard lock(shard.mu);
    m.commits += shard.commits;
  }
  return m;
}

BrokerMetrics Broker::internal_metrics() const noexcept {
  BrokerMetrics m;
  const TopicMap* map = topic_map();
  for (const auto& [name, t] : *map) {
    if (!internal_topic(name)) continue;
    for (const auto& p : t->partitions) {
      m.produces += p->produces.load(std::memory_order_relaxed);
      m.fetches += p->fetches.load(std::memory_order_relaxed);
      m.messages_fetched += p->fetched_messages.load(std::memory_order_relaxed);
      m.messages_trimmed += p->trimmed.load(std::memory_order_relaxed);
      m.produce_contention += p->contention.load(std::memory_order_relaxed);
    }
  }
  for (const auto& shard : commit_shards_) {
    std::lock_guard lock(shard.mu);
    m.commits += shard.internal_commits;
  }
  return m;
}

Result<std::int64_t> Broker::committed(const std::string& group,
                                       const std::string& topic,
                                       int partition) const {
  const std::string key =
      group + "|" + topic + "|" + std::to_string(partition);
  CommitShard& shard = commit_shard(key);
  std::lock_guard lock(shard.mu);
  const auto it = shard.offsets.find(key);
  if (it == shard.offsets.end()) {
    return not_found("no commit for group '" + group + "'");
  }
  return it->second;
}

Status Broker::commit(const std::string& group, const std::string& topic,
                      int partition, std::int64_t offset) {
  if (!has_topic(topic)) return not_found("no topic '" + topic + "'");
  const std::string key =
      group + "|" + topic + "|" + std::to_string(partition);
  CommitShard& shard = commit_shard(key);
  {
    std::lock_guard lock(shard.mu);
    shard.offsets[key] = offset;
    if (internal_topic(topic)) {
      ++shard.internal_commits;
    } else {
      ++shard.commits;
    }
  }
  return Status::ok();
}

// ---------------------------------------------------------------- Consumer

Consumer::Consumer(Broker& broker, std::string group, std::string topic,
                   std::size_t member_index, std::size_t member_count)
    : broker_(&broker), group_(std::move(group)), topic_(std::move(topic)) {
  HPCLA_CHECK_MSG(member_count >= 1 && member_index < member_count,
                  "bad consumer-group member index");
  const auto pcount = broker_->partition_count(topic_);
  HPCLA_CHECK_MSG(pcount.is_ok(), "consumer on unknown topic");
  for (int p = 0; p < pcount.value(); ++p) {
    if (static_cast<std::size_t>(p) % member_count != member_index) continue;
    owned_.push_back(p);
    const auto committed = broker_->committed(group_, topic_, p);
    positions_.push_back(committed.is_ok() ? committed.value() : 0);
  }
}

std::vector<Message> Consumer::poll(std::size_t max_messages) {
  std::vector<Message> out;
  if (owned_.empty() || max_messages == 0) return out;
  // Round-robin over owned partitions, draining fairly until the budget is
  // spent or every partition is exhausted.
  std::size_t idle_rounds = 0;
  while (out.size() < max_messages && idle_rounds < owned_.size()) {
    const std::size_t slot = next_slot_;
    next_slot_ = (next_slot_ + 1) % owned_.size();
    const std::size_t budget =
        std::max<std::size_t>(1, (max_messages - out.size()) / owned_.size());
    auto batch =
        broker_->fetch(topic_, owned_[slot], positions_[slot], budget);
    if (!batch.is_ok() || batch->empty()) {
      ++idle_rounds;
      continue;
    }
    idle_rounds = 0;
    positions_[slot] = batch->back().offset + 1;
    consumed_.fetch_add(batch->size(), std::memory_order_relaxed);
    out.insert(out.end(), std::make_move_iterator(batch->begin()),
               std::make_move_iterator(batch->end()));
  }
  return out;
}

std::vector<Message> Consumer::poll_one(std::size_t owned_index,
                                        std::size_t max_messages) {
  HPCLA_CHECK_MSG(owned_index < owned_.size(), "poll_one index out of range");
  auto batch = broker_->fetch(topic_, owned_[owned_index],
                              positions_[owned_index], max_messages);
  if (!batch.is_ok() || batch->empty()) return {};
  positions_[owned_index] = batch->back().offset + 1;
  consumed_.fetch_add(batch->size(), std::memory_order_relaxed);
  return std::move(batch).value();
}

void Consumer::commit() {
  for (std::size_t slot = 0; slot < owned_.size(); ++slot) {
    (void)broker_->commit(group_, topic_, owned_[slot], positions_[slot]);
  }
}

void Consumer::seek_to_committed() {
  for (std::size_t slot = 0; slot < owned_.size(); ++slot) {
    const auto committed = broker_->committed(group_, topic_, owned_[slot]);
    if (committed.is_ok()) positions_[slot] = committed.value();
  }
}

}  // namespace hpcla::buslite
