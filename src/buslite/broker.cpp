#include "buslite/broker.hpp"

#include <algorithm>

#include "common/hash.hpp"

namespace hpcla::buslite {

Status Broker::create_topic(const std::string& name, TopicConfig config) {
  if (config.partitions <= 0) {
    return invalid_argument("topic '" + name + "' needs >= 1 partition");
  }
  std::lock_guard lock(mu_);
  if (topics_.contains(name)) {
    return already_exists("topic '" + name + "' already exists");
  }
  Topic t;
  t.config = config;
  t.partitions.resize(static_cast<std::size_t>(config.partitions));
  topics_.emplace(name, std::move(t));
  return Status::ok();
}

bool Broker::has_topic(const std::string& name) const {
  std::lock_guard lock(mu_);
  return topics_.contains(name);
}

Result<int> Broker::partition_count(const std::string& topic) const {
  std::lock_guard lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return not_found("no topic '" + topic + "'");
  return it->second.config.partitions;
}

Result<std::pair<int, std::int64_t>> Broker::produce(const std::string& topic,
                                                     std::string key,
                                                     std::string value,
                                                     UnixMillis timestamp) {
  std::lock_guard lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return not_found("no topic '" + topic + "'");
  Topic& t = it->second;

  const std::size_t pcount = t.partitions.size();
  std::size_t pidx;
  if (key.empty()) {
    pidx = t.round_robin++ % pcount;
  } else {
    pidx = murmur3_64(key) % pcount;
  }
  Partition& p = t.partitions[pidx];

  Message m;
  m.key = std::move(key);
  m.value = std::move(value);
  m.timestamp = timestamp;
  m.offset = p.next_offset++;
  p.messages.push_back(std::move(m));

  // Retention: trim oldest beyond the cap.
  const std::size_t cap = t.config.retention_messages;
  if (cap != 0) {
    while (p.messages.size() > cap) {
      p.messages.pop_front();
      ++p.base_offset;
    }
  }
  return std::make_pair(static_cast<int>(pidx), p.next_offset - 1);
}

Result<std::vector<Message>> Broker::fetch(const std::string& topic,
                                           int partition, std::int64_t offset,
                                           std::size_t max_messages) const {
  std::lock_guard lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return not_found("no topic '" + topic + "'");
  const Topic& t = it->second;
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= t.partitions.size()) {
    return invalid_argument("partition " + std::to_string(partition) +
                            " out of range for '" + topic + "'");
  }
  const Partition& p = t.partitions[static_cast<std::size_t>(partition)];
  std::vector<Message> out;
  const std::int64_t start = std::max(offset, p.base_offset);
  if (start >= p.next_offset) return out;
  const std::size_t idx = static_cast<std::size_t>(start - p.base_offset);
  const std::size_t n =
      std::min(max_messages, p.messages.size() - idx);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(p.messages[idx + i]);
  return out;
}

Result<std::int64_t> Broker::end_offset(const std::string& topic,
                                        int partition) const {
  std::lock_guard lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return not_found("no topic '" + topic + "'");
  const Topic& t = it->second;
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= t.partitions.size()) {
    return invalid_argument("bad partition");
  }
  return t.partitions[static_cast<std::size_t>(partition)].next_offset;
}

Result<std::int64_t> Broker::begin_offset(const std::string& topic,
                                          int partition) const {
  std::lock_guard lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return not_found("no topic '" + topic + "'");
  const Topic& t = it->second;
  if (partition < 0 ||
      static_cast<std::size_t>(partition) >= t.partitions.size()) {
    return invalid_argument("bad partition");
  }
  return t.partitions[static_cast<std::size_t>(partition)].base_offset;
}

Result<std::int64_t> Broker::committed(const std::string& group,
                                       const std::string& topic,
                                       int partition) const {
  std::lock_guard lock(mu_);
  const auto it =
      commits_.find(group + "|" + topic + "|" + std::to_string(partition));
  if (it == commits_.end()) {
    return not_found("no commit for group '" + group + "'");
  }
  return it->second;
}

Status Broker::commit(const std::string& group, const std::string& topic,
                      int partition, std::int64_t offset) {
  std::lock_guard lock(mu_);
  if (!topics_.contains(topic)) return not_found("no topic '" + topic + "'");
  commits_[group + "|" + topic + "|" + std::to_string(partition)] = offset;
  return Status::ok();
}

const Broker::Topic* Broker::find_topic(const std::string& name) const {
  const auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------- Consumer

Consumer::Consumer(Broker& broker, std::string group, std::string topic,
                   std::size_t member_index, std::size_t member_count)
    : broker_(&broker), group_(std::move(group)), topic_(std::move(topic)) {
  HPCLA_CHECK_MSG(member_count >= 1 && member_index < member_count,
                  "bad consumer-group member index");
  const auto pcount = broker_->partition_count(topic_);
  HPCLA_CHECK_MSG(pcount.is_ok(), "consumer on unknown topic");
  for (int p = 0; p < pcount.value(); ++p) {
    if (static_cast<std::size_t>(p) % member_count != member_index) continue;
    owned_.push_back(p);
    const auto committed = broker_->committed(group_, topic_, p);
    positions_.push_back(committed.is_ok() ? committed.value() : 0);
  }
}

std::vector<Message> Consumer::poll(std::size_t max_messages) {
  std::vector<Message> out;
  if (owned_.empty() || max_messages == 0) return out;
  // Round-robin over owned partitions, draining fairly until the budget is
  // spent or every partition is exhausted.
  std::size_t idle_rounds = 0;
  while (out.size() < max_messages && idle_rounds < owned_.size()) {
    const std::size_t slot = next_slot_;
    next_slot_ = (next_slot_ + 1) % owned_.size();
    const std::size_t budget =
        std::max<std::size_t>(1, (max_messages - out.size()) / owned_.size());
    auto batch =
        broker_->fetch(topic_, owned_[slot], positions_[slot], budget);
    if (!batch.is_ok() || batch->empty()) {
      ++idle_rounds;
      continue;
    }
    idle_rounds = 0;
    positions_[slot] = batch->back().offset + 1;
    consumed_ += batch->size();
    out.insert(out.end(), std::make_move_iterator(batch->begin()),
               std::make_move_iterator(batch->end()));
  }
  return out;
}

void Consumer::commit() {
  for (std::size_t slot = 0; slot < owned_.size(); ++slot) {
    (void)broker_->commit(group_, topic_, owned_[slot], positions_[slot]);
  }
}

}  // namespace hpcla::buslite
