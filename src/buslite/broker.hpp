// buslite: a minimal Kafka-shaped message bus.
//
// The paper's streaming path (§III-D) publishes each parsed event
// occurrence to a Kafka topic; the analytics framework subscribes and
// feeds a Spark Streaming micro-batch pipeline. buslite reproduces the
// contract that pipeline depends on: named topics, hashed partitioning by
// key, per-partition total order, durable offsets per consumer group, and
// retention trimming.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace hpcla::buslite {

/// One record on the bus. `value` is an opaque payload — the ingestion
/// layer serializes event occurrences as JSON.
struct Message {
  std::string key;
  std::string value;
  UnixMillis timestamp = 0;
  std::int64_t offset = -1;  ///< assigned by the broker on append
};

struct TopicConfig {
  int partitions = 4;
  /// Maximum messages retained per partition (oldest trimmed first);
  /// 0 = unlimited.
  std::size_t retention_messages = 0;
};

/// In-process broker. All methods are thread-safe.
class Broker {
 public:
  /// Creates a topic; rejects duplicates and non-positive partition counts.
  Status create_topic(const std::string& name, TopicConfig config = {});

  [[nodiscard]] bool has_topic(const std::string& name) const;
  [[nodiscard]] Result<int> partition_count(const std::string& topic) const;

  /// Appends a message; the partition is chosen by hashing `key`
  /// (empty keys round-robin). Returns (partition, offset).
  Result<std::pair<int, std::int64_t>> produce(const std::string& topic,
                                               std::string key,
                                               std::string value,
                                               UnixMillis timestamp);

  /// Reads up to `max_messages` starting at `offset` from one partition.
  /// Reading at or past the end returns an empty batch (not an error).
  /// Offsets below the retention floor clamp forward to the oldest
  /// retained message.
  Result<std::vector<Message>> fetch(const std::string& topic, int partition,
                                     std::int64_t offset,
                                     std::size_t max_messages) const;

  /// Next offset to be assigned in a partition (== current size since
  /// offsets are dense before retention trimming).
  Result<std::int64_t> end_offset(const std::string& topic,
                                  int partition) const;
  /// Oldest retained offset.
  Result<std::int64_t> begin_offset(const std::string& topic,
                                    int partition) const;

  // ---------------------------------------------------- consumer groups

  /// Durable committed offset for (group, topic, partition); kNotFound if
  /// the group never committed.
  Result<std::int64_t> committed(const std::string& group,
                                 const std::string& topic,
                                 int partition) const;

  Status commit(const std::string& group, const std::string& topic,
                int partition, std::int64_t offset);

 private:
  struct Partition {
    std::deque<Message> messages;
    std::int64_t base_offset = 0;  ///< offset of messages.front()
    std::int64_t next_offset = 0;
  };
  struct Topic {
    TopicConfig config;
    std::vector<Partition> partitions;
    std::uint64_t round_robin = 0;
  };

  const Topic* find_topic(const std::string& name) const;

  mutable std::mutex mu_;
  std::map<std::string, Topic> topics_;
  std::map<std::string, std::int64_t> commits_;  ///< "group|topic|part" -> offset
};

/// Convenience producer bound to one topic.
class Producer {
 public:
  Producer(Broker& broker, std::string topic)
      : broker_(&broker), topic_(std::move(topic)) {}

  Status send(std::string key, std::string value, UnixMillis timestamp) {
    auto r = broker_->produce(topic_, std::move(key), std::move(value),
                              timestamp);
    return r.status();
  }

 private:
  Broker* broker_;
  std::string topic_;
};

/// Consumer bound to (group, topic): tracks per-partition positions,
/// resuming from committed offsets. poll() round-robins partitions.
///
/// Group membership uses static assignment: member `member_index` of
/// `member_count` owns the partitions p with p % member_count ==
/// member_index, so a group's members consume disjoint partition sets
/// whose union covers the topic (Kafka's consumer-group contract).
class Consumer {
 public:
  /// Single-member consumer owning every partition.
  Consumer(Broker& broker, std::string group, std::string topic)
      : Consumer(broker, std::move(group), std::move(topic), 0, 1) {}

  /// Group member `member_index` (0-based) of `member_count`.
  Consumer(Broker& broker, std::string group, std::string topic,
           std::size_t member_index, std::size_t member_count);

  /// Fetches up to `max_messages` across owned partitions (per-partition
  /// order preserved; cross-partition interleaving round-robin).
  std::vector<Message> poll(std::size_t max_messages);

  /// Commits everything handed out by poll() so far.
  void commit();

  /// Total messages consumed by this instance.
  [[nodiscard]] std::uint64_t consumed() const noexcept { return consumed_; }

  /// Partitions this member owns.
  [[nodiscard]] const std::vector<int>& assignment() const noexcept {
    return owned_;
  }

 private:
  Broker* broker_;
  std::string group_;
  std::string topic_;
  std::vector<int> owned_;              ///< partition indices
  std::vector<std::int64_t> positions_; ///< parallel to owned_
  std::size_t next_slot_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace hpcla::buslite
