// buslite: a minimal Kafka-shaped message bus.
//
// The paper's streaming path (§III-D) publishes each parsed event
// occurrence to a Kafka topic; the analytics framework subscribes and
// feeds a Spark Streaming micro-batch pipeline. buslite reproduces the
// contract that pipeline depends on: named topics, hashed partitioning by
// key, per-partition total order, durable offsets per consumer group, and
// retention trimming.
//
// Concurrency model (see DESIGN.md §8):
//   * The topic map is an RCU-style atomic snapshot: lookups (produce,
//     fetch, offsets) are one acquire-load; create_topic copies and
//     republishes under a creation mutex.
//   * Each partition is an append-only chunked log. Producers serialize on
//     a *per-partition* mutex only — concurrent producers to different
//     partitions never contend. The slot is written before the tail offset
//     is published (release store), so fetch reads everything below the
//     published tail lock-free — the same publish-before-drain pattern as
//     the cassalite TableSnapshot.
//   * Retention advances an atomic base offset and unlinks whole chunks;
//     in-flight fetches keep their chunk chain alive via shared_ptr.
//   * Consumer-group commits live in a striped map (per-shard mutexes).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "common/telemetry.hpp"

namespace hpcla::buslite {

/// One record on the bus. `value` is an opaque payload — the ingestion
/// layer serializes event occurrences as JSON.
struct Message {
  std::string key;
  std::string value;
  UnixMillis timestamp = 0;
  std::int64_t offset = -1;  ///< assigned by the broker on append
};

struct TopicConfig {
  int partitions = 4;
  /// Maximum messages retained per partition (oldest trimmed first);
  /// 0 = unlimited.
  std::size_t retention_messages = 0;
};

/// Plain snapshot of the broker counters, safe to copy around. The broker
/// maintains these as relaxed atomics; `metrics()` never locks.
struct BrokerMetrics {
  std::uint64_t produces = 0;
  std::uint64_t fetches = 0;           ///< fetch() calls (including empty)
  std::uint64_t messages_fetched = 0;
  std::uint64_t messages_trimmed = 0;  ///< retention evictions
  std::uint64_t commits = 0;
  /// Produce lock acquisitions that found the partition lock already held
  /// — the contention the per-partition sharding is meant to eliminate.
  std::uint64_t produce_contention = 0;
};

/// In-process broker. All methods are thread-safe.
class Broker {
 public:
  Broker();

  /// Creates a topic; rejects duplicates and non-positive partition counts.
  Status create_topic(const std::string& name, TopicConfig config = {});

  [[nodiscard]] bool has_topic(const std::string& name) const;
  [[nodiscard]] Result<int> partition_count(const std::string& topic) const;

  /// Appends a message; the partition is chosen by hashing `key`
  /// (empty keys round-robin). Returns (partition, offset).
  Result<std::pair<int, std::int64_t>> produce(const std::string& topic,
                                               std::string key,
                                               std::string value,
                                               UnixMillis timestamp);

  /// Reads up to `max_messages` starting at `offset` from one partition.
  /// Reading at or past the end returns an empty batch (not an error).
  /// Offsets below the retention floor clamp forward to the oldest
  /// retained message. Lock-free against the published tail.
  Result<std::vector<Message>> fetch(const std::string& topic, int partition,
                                     std::int64_t offset,
                                     std::size_t max_messages) const;

  /// Next offset to be assigned in a partition (== current size since
  /// offsets are dense before retention trimming).
  Result<std::int64_t> end_offset(const std::string& topic,
                                  int partition) const;
  /// Oldest retained offset.
  Result<std::int64_t> begin_offset(const std::string& topic,
                                    int partition) const;

  /// Counters for user topics only. Internal (`_`-prefixed) topics — the
  /// self-telemetry bus — are excluded and reported by internal_metrics(),
  /// so the exported broker metrics only ever show foreground traffic.
  [[nodiscard]] BrokerMetrics metrics() const noexcept;

  /// Counters for internal (`_`-prefixed) topics.
  [[nodiscard]] BrokerMetrics internal_metrics() const noexcept;

  // ---------------------------------------------------- consumer groups

  /// Durable committed offset for (group, topic, partition); kNotFound if
  /// the group never committed.
  Result<std::int64_t> committed(const std::string& group,
                                 const std::string& topic,
                                 int partition) const;

  Status commit(const std::string& group, const std::string& topic,
                int partition, std::int64_t offset);

 private:
  /// Messages per chunk of a partition log. Dense: chunk k spans offsets
  /// [k*kChunkMessages, (k+1)*kChunkMessages).
  static constexpr std::size_t kChunkMessages = 256;
  static constexpr std::size_t kCommitShards = 16;

  /// One fixed-size segment of a partition log. Slots are written exactly
  /// once (by the producer holding the partition lock, before the tail
  /// covering them is published) and immutable afterwards.
  struct Chunk {
    explicit Chunk(std::int64_t base_offset) : base(base_offset) {}
    const std::int64_t base;  ///< offset of slots[0]
    std::array<Message, kChunkMessages> slots;
    std::atomic<std::shared_ptr<Chunk>> next{nullptr};
  };
  using ChunkPtr = std::shared_ptr<Chunk>;

  struct Partition {
    Partition();
    ~Partition();
    /// Serializes producers and retention trimming for this partition only.
    std::mutex mu;
    /// Oldest retained chunk; readers acquire-load and walk `next`.
    std::atomic<ChunkPtr> head;
    /// Chunk receiving appends (guarded by mu).
    ChunkPtr tail;
    /// First offset not yet produced; release-stored after the slot write.
    std::atomic<std::int64_t> published_next{0};
    /// Oldest retained offset; advanced by retention trimming.
    std::atomic<std::int64_t> published_base{0};
    // Counters live with their partition so concurrent producers never
    // bounce one shared metrics cache line; metrics() sums them up.
    std::atomic<std::uint64_t> produces{0};
    std::atomic<std::uint64_t> trimmed{0};
    std::atomic<std::uint64_t> contention{0};
    /// Consumer-side counters on their own line: fetch runs lock-free and
    /// must not invalidate the producers' hot line.
    alignas(64) mutable std::atomic<std::uint64_t> fetches{0};
    mutable std::atomic<std::uint64_t> fetched_messages{0};
  };

  /// Immutable after construction except for the per-partition state above
  /// and the round-robin counter, so the RCU topic-map snapshot can share
  /// Topic objects freely.
  struct Topic {
    explicit Topic(TopicConfig c);
    const TopicConfig config;
    std::vector<std::unique_ptr<Partition>> partitions;
    std::atomic<std::uint64_t> round_robin{0};
  };
  using TopicMap = std::map<std::string, std::shared_ptr<Topic>>;

  struct CommitShard {
    mutable std::mutex mu;
    std::map<std::string, std::int64_t> offsets;  ///< "group|topic|part"
    std::uint64_t commits = 0;                    ///< guarded by mu
    std::uint64_t internal_commits = 0;           ///< `_`-prefixed topics
  };

  [[nodiscard]] const TopicMap* topic_map() const {
    return topics_.load(std::memory_order_acquire);
  }
  /// nullptr when the topic does not exist. The returned pointer stays
  /// valid as long as the caller holds the map snapshot (Topics are
  /// shared_ptr-owned by every snapshot that contains them). Non-const:
  /// Topic's mutable state is all its own synchronized members.
  static Topic* find_topic(const TopicMap& map, const std::string& name);

  CommitShard& commit_shard(const std::string& key) const;

  /// Serializes topic creation (map copy + republish) only.
  std::mutex create_mu_;
  /// Current snapshot as a plain atomic pointer: hot-path lookups are one
  /// acquire load with no refcount traffic (std::atomic<std::shared_ptr>
  /// takes an internal lock per access, which stalls every producer when
  /// the holder is preempted). Topics are never deleted, so superseded
  /// snapshots are parked in retired_ (guarded by create_mu_) and every
  /// published pointer stays valid for the broker's lifetime.
  std::atomic<const TopicMap*> topics_{nullptr};
  std::vector<std::unique_ptr<const TopicMap>> retired_;
  mutable std::array<CommitShard, kCommitShards> commit_shards_;
  /// Registry collector (captures `this`). Last member so it deregisters
  /// before anything it reads is torn down.
  telemetry::CollectorHandle telemetry_;
};

/// Convenience producer bound to one topic.
class Producer {
 public:
  Producer(Broker& broker, std::string topic)
      : broker_(&broker), topic_(std::move(topic)) {}

  Status send(std::string key, std::string value, UnixMillis timestamp) {
    auto r = broker_->produce(topic_, std::move(key), std::move(value),
                              timestamp);
    return r.status();
  }

 private:
  Broker* broker_;
  std::string topic_;
};

/// Consumer bound to (group, topic): tracks per-partition positions,
/// resuming from committed offsets. poll() round-robins partitions.
///
/// Group membership uses static assignment: member `member_index` of
/// `member_count` owns the partitions p with p % member_count ==
/// member_index, so a group's members consume disjoint partition sets
/// whose union covers the topic (Kafka's consumer-group contract).
class Consumer {
 public:
  /// Single-member consumer owning every partition.
  Consumer(Broker& broker, std::string group, std::string topic)
      : Consumer(broker, std::move(group), std::move(topic), 0, 1) {}

  /// Group member `member_index` (0-based) of `member_count`.
  Consumer(Broker& broker, std::string group, std::string topic,
           std::size_t member_index, std::size_t member_count);

  /// Fetches up to `max_messages` across owned partitions (per-partition
  /// order preserved; cross-partition interleaving round-robin).
  std::vector<Message> poll(std::size_t max_messages);

  /// Fetches up to `max_messages` from the single owned partition at
  /// `owned_index` (an index into assignment(), not a partition id),
  /// advancing only that partition's position. Distinct owned_index values
  /// may be polled from different threads concurrently — the parallel
  /// drain path of sparklite::MicroBatchStream.
  std::vector<Message> poll_one(std::size_t owned_index,
                                std::size_t max_messages);

  /// Commits everything handed out by poll()/poll_one() so far.
  void commit();

  /// Re-reads the group's committed offsets and rewinds/advances this
  /// instance's positions to them — how a restarted or rebalanced member
  /// resumes from progress another instance committed after this one was
  /// constructed. Partitions the group never committed keep their current
  /// position.
  void seek_to_committed();

  /// Total messages consumed by this instance.
  [[nodiscard]] std::uint64_t consumed() const noexcept {
    return consumed_.load(std::memory_order_relaxed);
  }

  /// Partitions this member owns.
  [[nodiscard]] const std::vector<int>& assignment() const noexcept {
    return owned_;
  }

 private:
  Broker* broker_;
  std::string group_;
  std::string topic_;
  std::vector<int> owned_;              ///< partition indices
  std::vector<std::int64_t> positions_; ///< parallel to owned_
  std::size_t next_slot_ = 0;
  std::atomic<std::uint64_t> consumed_{0};
};

}  // namespace hpcla::buslite
