#include "telemetry/exporter.hpp"

#include <chrono>
#include <utility>

#include "common/faultsim.hpp"

namespace hpcla::telemetry {

Exporter::Exporter(buslite::Broker& broker, ExporterOptions opts)
    : broker_(&broker), opts_(std::move(opts)) {
  buslite::TopicConfig config;
  config.partitions = opts_.topic_partitions;
  // A shared broker may already carry the topics (two exporters, or a
  // pipeline rebuilt over a live broker) — kAlreadyExists is fine.
  (void)broker_->create_topic(opts_.metrics_topic, config);
  (void)broker_->create_topic(opts_.spans_topic, config);
  base_ = registry().snapshot();
}

std::int64_t Exporter::now_ms() const {
  SimClock* clock = opts_.sim_clock != nullptr ? opts_.sim_clock
                                               : tracer().sim_clock();
  if (clock != nullptr) return clock->now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

bool Exporter::excluded(const std::string& name) const {
  for (const std::string& prefix : opts_.exclude_prefixes) {
    if (name.size() >= prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      return true;
    }
  }
  return false;
}

void Exporter::publish_metric(titanlog::MetricSample sample, UnixMillis ts_ms,
                              std::size_t& published) {
  std::string key = sample.name;  // stable partition per metric
  auto r = broker_->produce(opts_.metrics_topic, std::move(key),
                            sample.to_json().dump(), ts_ms);
  if (r.is_ok()) {
    ++published;
  } else {
    registry().counter("selftel.export.errors").add();
  }
}

void Exporter::publish_spans(UnixMillis ts_ms, std::size_t& published) {
  const UnixSeconds ts = ts_ms / 1000;
  for (CompletedTrace& trace :
       tracer().drain_completed(opts_.max_traces_per_cycle)) {
    for (SpanRecord& span : trace.spans) {
      titanlog::SpanSample sample;
      sample.ts = ts;
      sample.op = trace.root_name;
      sample.name = std::move(span.name);
      sample.trace_id = span.trace_id;
      sample.span_id = span.span_id;
      sample.parent_id = span.parent_id;
      sample.start_us = span.start_us;
      sample.duration_us = span.duration_us;
      sample.slow = trace.slow;
      sample.errored = trace.errored;
      auto r = broker_->produce(opts_.spans_topic, sample.op,
                                sample.to_json().dump(), ts_ms);
      if (r.is_ok()) {
        ++published;
      } else {
        registry().counter("selftel.export.errors").add();
      }
    }
  }
}

std::size_t Exporter::export_now() {
  // Nothing below may generate further telemetry: no spans open while
  // publishing, and the pipeline's own counters sit under the excluded
  // selftel. prefix.
  SuppressScope suppress;
  const std::int64_t ts_ms = now_ms();
  const UnixSeconds ts = ts_ms / 1000;
  RegistrySnapshot snap = registry().snapshot();
  const auto seq = static_cast<std::int64_t>(cycle_);
  std::size_t published = 0;

  for (const auto& [name, value] : snap.counters) {
    if (excluded(name)) continue;
    const auto it = base_.counters.find(name);
    const std::uint64_t before = it == base_.counters.end() ? 0 : it->second;
    if (value <= before) continue;
    titanlog::MetricSample sample;
    sample.ts = ts;
    sample.name = name;
    sample.kind = "counter";
    sample.value = static_cast<double>(value - before);
    sample.seq = seq;
    publish_metric(std::move(sample), ts_ms, published);
  }
  for (const auto& [name, value] : snap.gauges) {
    if (excluded(name)) continue;
    const auto it = base_.gauges.find(name);
    if (it != base_.gauges.end() && it->second == value) continue;
    titanlog::MetricSample sample;
    sample.ts = ts;
    sample.name = name;
    sample.kind = "gauge";
    sample.value = value;
    sample.seq = seq;
    publish_metric(std::move(sample), ts_ms, published);
  }
  for (const auto& [name, h] : snap.histograms) {
    if (excluded(name)) continue;
    const auto it = base_.histograms.find(name);
    const std::uint64_t before_count =
        it == base_.histograms.end() ? 0 : it->second.count;
    const std::uint64_t before_sum =
        it == base_.histograms.end() ? 0 : it->second.sum_us;
    if (h.count <= before_count) continue;
    titanlog::MetricSample sample;
    sample.ts = ts;
    sample.name = name;
    sample.kind = "hist";
    sample.value = static_cast<double>(h.count - before_count);
    sample.sum_us = static_cast<double>(h.sum_us - before_sum);
    sample.p50_us = h.p50_us;
    sample.p95_us = h.p95_us;
    sample.p99_us = h.p99_us;
    sample.max_us = static_cast<double>(h.max_us);
    sample.seq = seq;
    publish_metric(std::move(sample), ts_ms, published);
  }

  publish_spans(ts_ms, published);

  base_ = std::move(snap);
  ++cycle_;
  last_export_ms_ = ts_ms;
  registry().counter("selftel.export.cycles").add();
  registry().counter("selftel.export.events").add(published);
  return published;
}

std::size_t Exporter::tick() {
  const std::int64_t now = now_ms();
  if (last_export_ms_ >= 0 && now - last_export_ms_ < opts_.period_ms) {
    return 0;
  }
  return export_now();
}

void Exporter::rebaseline() {
  SuppressScope suppress;
  base_ = registry().snapshot();
}

}  // namespace hpcla::telemetry
