// telemetry::Exporter — the publish half of the self-telemetry loop
// (DESIGN.md §16). Periodically (or on demand) snapshots the process-wide
// MetricRegistry, diffs it against the previous export baseline, and
// publishes the deltas plus every tail-sampled completed trace as
// titanlog-shaped events on the `_telemetry.*` bus topics. The drain half
// (model::selftel::TelemetryIngestor) lands them in cassalite.
//
// Loop suppression happens at three layers:
//   * every export runs under telemetry::SuppressScope, so publishing
//     never opens spans;
//   * metric names under ExporterOptions::exclude_prefixes (the pipeline's
//     own `selftel.*` instruments, including the broker's internal-topic
//     counters) are never exported;
//   * rebaseline() — called by the pipeline after the drain lands —
//     re-snapshots the registry as the new baseline, absorbing any metric
//     movement the telemetry traffic itself caused (cassalite writes into
//     sys_* tables, consumer commits, ...). With no foreground work, the
//     next cycle therefore publishes zero events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "buslite/broker.hpp"
#include "common/telemetry.hpp"
#include "titanlog/selftel.hpp"

namespace hpcla::telemetry {

struct ExporterOptions {
  std::string metrics_topic = titanlog::kTelemetryMetricsTopic;
  std::string spans_topic = titanlog::kTelemetrySpansTopic;
  /// Partitions for the telemetry topics (created if absent). One keeps
  /// per-topic event order total, which seeded replays rely on.
  int topic_partitions = 1;
  /// tick() export cadence on the exporter clock.
  std::int64_t period_ms = 1000;
  /// Metric-name prefixes never exported: the self-telemetry pipeline's
  /// own instruments, so an idle loop converges to zero deltas.
  std::vector<std::string> exclude_prefixes = {"selftel."};
  /// Completed traces drained from the tracer per cycle.
  std::size_t max_traces_per_cycle = 256;
  /// Virtual clock for timestamps/cadence; nullptr follows the tracer's
  /// SimClock if one is installed, wall time otherwise.
  SimClock* sim_clock = nullptr;
};

class Exporter {
 public:
  /// Creates the telemetry topics (tolerating pre-existing ones) and
  /// snapshots the registry as the initial delta baseline.
  explicit Exporter(buslite::Broker& broker, ExporterOptions opts = {});

  /// Publishes metric deltas against the baseline and all completed
  /// traces the tracer has buffered. Returns the number of events
  /// published. The pre-publish snapshot becomes the new baseline.
  std::size_t export_now();

  /// Periodic driver: exports when `period_ms` has elapsed on the
  /// exporter clock since the last export (first call always exports).
  std::size_t tick();

  /// Re-snapshots the registry as the delta baseline without publishing —
  /// run after the drain lands so self-caused metric movement is absorbed.
  void rebaseline();

  /// Export timestamp source: SimClock milliseconds when one is
  /// installed (deterministic), system wall clock otherwise.
  [[nodiscard]] std::int64_t now_ms() const;

  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycle_; }
  [[nodiscard]] const ExporterOptions& options() const noexcept {
    return opts_;
  }

 private:
  [[nodiscard]] bool excluded(const std::string& name) const;
  void publish_metric(titanlog::MetricSample sample, UnixMillis ts_ms,
                      std::size_t& published);
  void publish_spans(UnixMillis ts_ms, std::size_t& published);

  buslite::Broker* broker_;
  ExporterOptions opts_;
  RegistrySnapshot base_;
  std::uint64_t cycle_ = 0;
  std::int64_t last_export_ms_ = -1;
};

}  // namespace hpcla::telemetry
