// Spill tier for the fused shuffle (DESIGN.md §13.1): when a map task's
// scatter output crosses its byte budget, the bucket cells are serialized
// into a compressed run file under a per-engine spill directory, and the
// lazy reduce side streams runs back block-by-block — so shuffle residency
// is bounded by the budget while results stay byte-identical to the pure
// in-memory path:
//
//   - reduce/group buckets replay rows in (lane, flush, encounter) order,
//     which is exactly the upstream-then-encounter order of the old bucket
//     matrix;
//   - sort_by runs are stable_sorted at spill time, and a stable k-way
//     merge with source-ordinal tie-break reproduces
//     stable_sort-of-concatenation exactly.
//
// Rows spill through the Codec<T> customization point below. Arithmetic
// types, enums, strings, pairs, and vectors are covered; user row types
// opt in by specializing spill::Codec<MyRow> (see bench_spill.cpp for an
// EventRecord example). Element types without a codec compile fine and
// simply never spill.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/block_codec.hpp"
#include "common/status.hpp"

namespace hpcla::sparklite::spill {

// ------------------------------------------------------------------ codecs

/// Serialization customization point for spillable rows. Specializations
/// provide:
///   static constexpr bool enabled = true;
///   static void encode(const T&, std::string& out);
///   static const char* decode(const char* p, const char* end, T& out);
///       // advanced pointer, or nullptr on corrupt input
///   static std::size_t approx_bytes(const T&);  // in-memory footprint
template <typename T, typename Enable = void>
struct Codec {
  static constexpr bool enabled = false;
};

template <typename T>
inline constexpr bool is_spillable_v = Codec<T>::enabled;

/// Fixed-width little-endian scalars (the block codec squeezes out the
/// redundancy, so varint-ing here would only cost CPU).
template <typename T>
struct Codec<T, std::enable_if_t<std::is_arithmetic_v<T> || std::is_enum_v<T>>> {
  static constexpr bool enabled = true;
  static void encode(const T& v, std::string& out) {
    char buf[sizeof(T)];
    std::memcpy(buf, &v, sizeof(T));
    out.append(buf, sizeof(T));
  }
  static const char* decode(const char* p, const char* end, T& v) {
    if (static_cast<std::size_t>(end - p) < sizeof(T)) return nullptr;
    std::memcpy(&v, p, sizeof(T));
    return p + sizeof(T);
  }
  static std::size_t approx_bytes(const T&) { return sizeof(T); }
};

template <>
struct Codec<std::string> {
  static constexpr bool enabled = true;
  static void encode(const std::string& v, std::string& out) {
    codec::put_varint(out, v.size());
    out.append(v);
  }
  static const char* decode(const char* p, const char* end, std::string& v) {
    std::uint64_t len = 0;
    p = codec::get_varint(p, end, len);
    if (!p || static_cast<std::uint64_t>(end - p) < len) return nullptr;
    v.assign(p, static_cast<std::size_t>(len));
    return p + len;
  }
  static std::size_t approx_bytes(const std::string& v) {
    return sizeof(std::string) + v.size();
  }
};

template <typename A, typename B>
struct Codec<std::pair<A, B>,
             std::enable_if_t<is_spillable_v<A> && is_spillable_v<B>>> {
  static constexpr bool enabled = true;
  static void encode(const std::pair<A, B>& v, std::string& out) {
    Codec<A>::encode(v.first, out);
    Codec<B>::encode(v.second, out);
  }
  static const char* decode(const char* p, const char* end,
                            std::pair<A, B>& v) {
    p = Codec<A>::decode(p, end, v.first);
    if (!p) return nullptr;
    return Codec<B>::decode(p, end, v.second);
  }
  static std::size_t approx_bytes(const std::pair<A, B>& v) {
    return Codec<A>::approx_bytes(v.first) + Codec<B>::approx_bytes(v.second);
  }
};

template <typename V>
struct Codec<std::vector<V>, std::enable_if_t<is_spillable_v<V>>> {
  static constexpr bool enabled = true;
  static void encode(const std::vector<V>& v, std::string& out) {
    codec::put_varint(out, v.size());
    for (const auto& e : v) Codec<V>::encode(e, out);
  }
  static const char* decode(const char* p, const char* end,
                            std::vector<V>& v) {
    std::uint64_t n = 0;
    p = codec::get_varint(p, end, n);
    if (!p) return nullptr;
    v.clear();
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n && p; ++i) {
      V e;
      p = Codec<V>::decode(p, end, e);
      if (p) v.push_back(std::move(e));
    }
    return p;
  }
  static std::size_t approx_bytes(const std::vector<V>& v) {
    std::size_t total = sizeof(std::vector<V>);
    for (const auto& e : v) total += Codec<V>::approx_bytes(e);
    return total;
  }
};

// ----------------------------------------------------------- spill manager

/// Per-engine spill configuration + accounting. The directory is created
/// lazily on first spill (most workloads never touch it) and removed with
/// the engine. Counters are mirrored onto the process-wide telemetry
/// registry (`sparklite.spill.*`) so bench summaries can report spill
/// volume after engines are gone.
class SpillManager {
 public:
  /// `budget`: nullopt inherits HPCLA_SPILL_BUDGET_BYTES (0/unset = spill
  /// disabled); an explicit value overrides the env — 0 forces the pure
  /// in-memory path regardless of environment (tests rely on this).
  /// `dir_override`: empty inherits HPCLA_SPILL_DIR, else the system temp
  /// dir. `fan_in`: max run files merged per external-merge pass.
  SpillManager(std::optional<std::size_t> budget, std::string dir_override,
               std::size_t fan_in);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] std::size_t merge_fan_in() const noexcept { return fan_in_; }

  /// A fresh run-file path under the (lazily created) spill dir.
  std::filesystem::path next_file_path();

  void add_spilled_bytes(std::uint64_t n);
  void add_spill_file();
  void add_merge_pass();

  [[nodiscard]] std::uint64_t bytes_spilled() const noexcept {
    return bytes_spilled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t spill_files() const noexcept {
    return spill_files_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t merge_passes() const noexcept {
    return merge_passes_.load(std::memory_order_relaxed);
  }

 private:
  const std::filesystem::path& dir();

  std::size_t budget_;
  std::string dir_override_;
  std::size_t fan_in_;
  std::once_flag dir_once_;
  std::filesystem::path dir_;
  bool dir_created_ = false;
  std::atomic<std::uint64_t> file_seq_{0};
  std::atomic<std::uint64_t> bytes_spilled_{0};
  std::atomic<std::uint64_t> spill_files_{0};
  std::atomic<std::uint64_t> merge_passes_{0};
};

// -------------------------------------------------------------- run files

/// One spilled run's location inside its lane's file.
struct RunMeta {
  std::size_t bucket = 0;
  std::uint64_t offset = 0;  ///< file offset of the first block
  std::uint64_t length = 0;  ///< total on-disk bytes (headers included)
  std::uint64_t rows = 0;
};

constexpr std::size_t kSpillBlockBytes = 256 * 1024;  ///< raw bytes per block

/// Appends runs of encoded rows to one spill file as compressed blocks:
/// [u32 raw_size][u32 comp_size][comp bytes]... The file is deleted with
/// the writer. Single-writer (each shuffle lane owns one).
template <typename Row>
class RunWriter {
 public:
  explicit RunWriter(SpillManager& mgr)
      : mgr_(&mgr), path_(mgr.next_file_path()) {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    HPCLA_CHECK_MSG(out_.is_open(), "cannot open spill run file");
    mgr_->add_spill_file();
  }
  ~RunWriter() {
    out_.close();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

  void begin_run(std::size_t bucket) {
    cur_ = RunMeta{};
    cur_.bucket = bucket;
    cur_.offset = file_bytes_;
    raw_.clear();
  }

  void add(const Row& row) {
    Codec<Row>::encode(row, raw_);
    ++cur_.rows;
    if (raw_.size() >= kSpillBlockBytes) flush_block();
  }

  RunMeta end_run() {
    if (!raw_.empty()) flush_block();
    out_.flush();
    HPCLA_CHECK_MSG(out_.good(), "spill run write failed (disk full?)");
    return cur_;
  }

 private:
  void flush_block() {
    const std::string comp = codec::block_compress(raw_);
    std::uint32_t hdr[2] = {static_cast<std::uint32_t>(raw_.size()),
                            static_cast<std::uint32_t>(comp.size())};
    out_.write(reinterpret_cast<const char*>(hdr), sizeof(hdr));
    out_.write(comp.data(), static_cast<std::streamsize>(comp.size()));
    const std::uint64_t wrote = sizeof(hdr) + comp.size();
    file_bytes_ += wrote;
    cur_.length += wrote;
    mgr_->add_spilled_bytes(wrote);
    raw_.clear();
  }

  SpillManager* mgr_;
  std::filesystem::path path_;
  std::ofstream out_;
  std::string raw_;
  std::uint64_t file_bytes_ = 0;
  RunMeta cur_;
};

/// Streams one run back, block at a time — memory is one decompressed
/// block, not the run. Each cursor owns its own ifstream, so any number of
/// reduce tasks can replay runs from the same file concurrently.
template <typename Row>
class RunCursor {
 public:
  RunCursor(const std::filesystem::path& path, const RunMeta& meta)
      : in_(path, std::ios::binary), meta_(meta) {
    HPCLA_CHECK_MSG(in_.is_open(), "cannot reopen spill run file");
    in_.seekg(static_cast<std::streamoff>(meta.offset));
  }

  bool next(Row& out) {
    while (pos_ >= raw_.size()) {
      if (!load_block()) return false;
    }
    const char* p = Codec<Row>::decode(raw_.data() + pos_,
                                       raw_.data() + raw_.size(), out);
    HPCLA_CHECK_MSG(p != nullptr, "corrupt spill run row");
    pos_ = static_cast<std::size_t>(p - raw_.data());
    return true;
  }

 private:
  bool load_block() {
    if (consumed_ >= meta_.length) return false;
    std::uint32_t hdr[2];
    in_.read(reinterpret_cast<char*>(hdr), sizeof(hdr));
    HPCLA_CHECK_MSG(in_.good(), "truncated spill block header");
    comp_.resize(hdr[1]);
    in_.read(comp_.data(), static_cast<std::streamsize>(hdr[1]));
    HPCLA_CHECK_MSG(in_.good(), "truncated spill block body");
    HPCLA_CHECK_MSG(
        codec::block_decompress(std::string_view(comp_.data(), comp_.size()),
                                hdr[0], raw_),
        "corrupt spill block");
    consumed_ += sizeof(hdr) + hdr[1];
    pos_ = 0;
    return true;
  }

  std::ifstream in_;
  RunMeta meta_;
  std::string comp_;
  std::string raw_;
  std::size_t pos_ = 0;
  std::uint64_t consumed_ = 0;
};

// ------------------------------------------------------------ scatter sink

/// The shuffle's intermediate store, replacing the all-in-RAM bucket
/// matrix. One Lane per upstream partition (map tasks write only their own
/// lane — no locks); each lane scatters rows into per-bucket cells and,
/// when the lane's resident bytes cross its share of the engine budget,
/// serializes every non-empty cell as a compressed run and frees the RAM.
/// Readers replay a bucket as: per lane, spilled runs in flush order, then
/// the leftover in-memory cell — the same row order the matrix produced.
template <typename Row>
class ScatterSink {
 public:
  using Less = std::function<bool(const Row&, const Row&)>;

  /// `presort`: when set (sort_by), cells are stable_sorted with it before
  /// spilling, making every run sorted — the precondition merge_sorted()
  /// needs to k-way merge instead of re-sorting.
  ScatterSink(SpillManager& mgr, std::size_t upstream, std::size_t buckets,
              Less presort = {})
      : mgr_(&mgr),
        buckets_(buckets),
        presort_(std::move(presort)),
        lanes_(std::max<std::size_t>(upstream, 1)) {
    for (auto& lane : lanes_) {
      lane.cells.resize(buckets_);
      lane.counts.assign(buckets_, 0);
    }
    if constexpr (is_spillable_v<Row>) {
      if (mgr.budget_bytes() > 0) {
        lane_budget_ = std::max<std::size_t>(
            mgr.budget_bytes() / lanes_.size(), 1024);
      }
    }
  }

  /// Routes one row from upstream lane `u` to bucket `d`. Thread-safe
  /// across distinct lanes (the map-stage contract), not within one.
  void emit(std::size_t u, std::size_t d, Row row) {
    Lane& lane = lanes_[u];
    ++lane.counts[d];
    if constexpr (is_spillable_v<Row>) {
      if (lane_budget_ > 0) {
        lane.bytes += Codec<Row>::approx_bytes(row) + sizeof(Row);
      }
    }
    lane.cells[d].push_back(std::move(row));
    if constexpr (is_spillable_v<Row>) {
      if (lane_budget_ > 0) {
        lane.peak_bytes = std::max(lane.peak_bytes, lane.bytes);
        if (lane.bytes >= lane_budget_) spill_lane(lane);
      }
    }
  }

  /// Replays bucket `d` in canonical order. Rows are delivered by value
  /// (decoded or copied), so an uncached lineage can replay repeatedly.
  template <typename Fn>
  void for_each_row(std::size_t d, Fn&& fn) const {
    for (const Lane& lane : lanes_) replay_lane_bucket(lane, d, fn);
  }

  /// Replays every row of lane `u` (all buckets interleaved in encounter
  /// order only when buckets == 1 — the hold-sink case sort_by uses).
  template <typename Fn>
  void for_each_lane_row(std::size_t u, Fn&& fn) const {
    const Lane& lane = lanes_[u];
    for (std::size_t d = 0; d < buckets_; ++d) replay_lane_bucket(lane, d, fn);
  }

  /// Merges bucket `d` into one sorted vector. Requires a presort
  /// comparator (runs sorted at spill time); with no spilled runs this is
  /// concatenate + stable_sort, byte-identical to the pre-spill path, and
  /// with runs it is a stable k-way merge with ordinal tie-break —
  /// identical output either way. Sources beyond the manager's fan-in are
  /// first merged into intermediate runs (counted in `merge_passes_out`).
  template <typename LessFn>
  std::vector<Row> merge_sorted(std::size_t d, LessFn less,
                                std::uint64_t* merge_passes_out = nullptr) {
    std::vector<Row> out;
    if (!bucket_has_runs(d)) {
      for (const Lane& lane : lanes_) {
        out.insert(out.end(), lane.cells[d].begin(), lane.cells[d].end());
      }
      std::stable_sort(out.begin(), out.end(), less);
      return out;
    }
    if constexpr (is_spillable_v<Row>) {
      std::vector<Source> sources;
      for (Lane& lane : lanes_) {
        for (const RunMeta& run : lane.runs) {
          if (run.bucket != d || run.rows == 0) continue;
          Source s;
          s.cursor =
              std::make_unique<RunCursor<Row>>(lane.writer->path(), run);
          sources.push_back(std::move(s));
        }
        if (!lane.cells[d].empty()) {
          Source s;
          s.mem = lane.cells[d];  // copy: lineage may replay this bucket
          std::stable_sort(s.mem.begin(), s.mem.end(), less);
          sources.push_back(std::move(s));
        }
      }
      // External merge passes: fold the leading fan-in sources into one
      // intermediate run until the final merge fits. Prefix groups keep the
      // global source order, so ordinal tie-breaks stay correct.
      const std::size_t fan_in = mgr_->merge_fan_in();
      while (sources.size() > fan_in) {
        auto writer = std::make_shared<RunWriter<Row>>(*mgr_);
        writer->begin_run(d);
        std::vector<Source> group;
        group.reserve(fan_in);
        std::move(sources.begin(),
                  sources.begin() + static_cast<std::ptrdiff_t>(fan_in),
                  std::back_inserter(group));
        sources.erase(sources.begin(),
                      sources.begin() + static_cast<std::ptrdiff_t>(fan_in));
        drain_merge(group, less, [&](Row row) { writer->add(row); });
        Source merged;
        merged.owner = writer;
        merged.cursor = std::make_unique<RunCursor<Row>>(writer->path(),
                                                         writer->end_run());
        sources.insert(sources.begin(), std::move(merged));
        mgr_->add_merge_pass();
        if (merge_passes_out) ++*merge_passes_out;
      }
      std::uint64_t expect = 0;
      for (const Lane& lane : lanes_) expect += lane.counts[d];
      out.reserve(static_cast<std::size_t>(expect));
      drain_merge(sources, less, [&](Row row) { out.push_back(std::move(row)); });
    }
    return out;
  }

  /// Spilled rows per bucket + resident rows per bucket (ShuffleRecord).
  [[nodiscard]] std::vector<std::uint64_t> bucket_record_counts() const {
    std::vector<std::uint64_t> counts(buckets_, 0);
    for (const Lane& lane : lanes_) {
      for (std::size_t d = 0; d < buckets_; ++d) counts[d] += lane.counts[d];
    }
    return counts;
  }

  [[nodiscard]] std::uint64_t spilled_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) {
      for (const RunMeta& run : lane.runs) total += run.length;
    }
    return total;
  }
  [[nodiscard]] std::uint64_t spill_file_count() const noexcept {
    std::uint64_t n = 0;
    for (const Lane& lane : lanes_) n += lane.writer != nullptr;
    return n;
  }
  /// Largest resident-byte high-water mark any lane reached (the
  /// bucket-byte accounting the budget test asserts against).
  [[nodiscard]] std::size_t peak_lane_bytes() const noexcept {
    std::size_t peak = 0;
    for (const Lane& lane : lanes_) peak = std::max(peak, lane.peak_bytes);
    return peak;
  }
  [[nodiscard]] std::size_t lane_budget_bytes() const noexcept {
    return lane_budget_;
  }
  [[nodiscard]] bool spilled() const noexcept {
    for (const Lane& lane : lanes_) {
      if (!lane.runs.empty()) return true;
    }
    return false;
  }

 private:
  struct Lane {
    std::vector<std::vector<Row>> cells;   // [bucket] resident rows
    std::vector<std::uint64_t> counts;     // [bucket] total rows routed
    std::size_t bytes = 0;                 // resident approx bytes
    std::size_t peak_bytes = 0;
    std::unique_ptr<RunWriter<Row>> writer;
    std::vector<RunMeta> runs;             // flush order
  };

  /// One merge input: a run cursor or an in-memory sorted vector. `owner`
  /// keeps intermediate-merge files alive while their cursor drains.
  struct Source {
    std::unique_ptr<RunCursor<Row>> cursor;
    std::shared_ptr<RunWriter<Row>> owner;
    std::vector<Row> mem;
    std::size_t mem_pos = 0;
    Row head{};
    bool has = false;

    bool advance() {
      if (cursor) {
        has = cursor->next(head);
      } else if (mem_pos < mem.size()) {
        head = std::move(mem[mem_pos++]);
        has = true;
      } else {
        has = false;
      }
      return has;
    }
  };

  void spill_lane(Lane& lane) {
    if constexpr (is_spillable_v<Row>) {
      if (!lane.writer) lane.writer = std::make_unique<RunWriter<Row>>(*mgr_);
      for (std::size_t d = 0; d < buckets_; ++d) {
        auto& cell = lane.cells[d];
        if (cell.empty()) continue;
        if (presort_) std::stable_sort(cell.begin(), cell.end(), presort_);
        lane.writer->begin_run(d);
        for (const Row& row : cell) lane.writer->add(row);
        lane.runs.push_back(lane.writer->end_run());
        cell.clear();
        cell.shrink_to_fit();
      }
      lane.bytes = 0;
    }
  }

  template <typename Fn>
  void replay_lane_bucket(const Lane& lane, std::size_t d, Fn&& fn) const {
    if constexpr (is_spillable_v<Row>) {
      for (const RunMeta& run : lane.runs) {
        if (run.bucket != d || run.rows == 0) continue;
        RunCursor<Row> cursor(lane.writer->path(), run);
        Row row;
        while (cursor.next(row)) fn(std::move(row));
      }
    }
    for (const Row& row : lane.cells[d]) fn(Row(row));
  }

  [[nodiscard]] bool bucket_has_runs(std::size_t d) const noexcept {
    for (const Lane& lane : lanes_) {
      for (const RunMeta& run : lane.runs) {
        if (run.bucket == d && run.rows > 0) return true;
      }
    }
    return false;
  }

  /// Stable k-way merge: among equal heads, the earliest source wins —
  /// sources are enumerated in concatenation order, so this reproduces
  /// stable_sort of the concatenated sequence.
  template <typename LessFn, typename Emit>
  static void drain_merge(std::vector<Source>& sources, LessFn less,
                          Emit&& emit) {
    std::vector<std::size_t> heap;  // manual heap of source indices
    heap.reserve(sources.size());
    auto before = [&](std::size_t a, std::size_t b) {
      const Row& ra = sources[a].head;
      const Row& rb = sources[b].head;
      if (less(ra, rb)) return true;
      if (less(rb, ra)) return false;
      return a < b;
    };
    auto heap_cmp = [&](std::size_t a, std::size_t b) { return before(b, a); };
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (sources[i].advance()) heap.push_back(i);
    }
    std::make_heap(heap.begin(), heap.end(), heap_cmp);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      const std::size_t i = heap.back();
      emit(std::move(sources[i].head));
      if (sources[i].advance()) {
        std::push_heap(heap.begin(), heap.end(), heap_cmp);
      } else {
        heap.pop_back();
      }
    }
  }

  SpillManager* mgr_;
  std::size_t buckets_;
  Less presort_;
  std::vector<Lane> lanes_;
  std::size_t lane_budget_ = 0;  // 0 = spilling disabled
};

}  // namespace hpcla::sparklite::spill
