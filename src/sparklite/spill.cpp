#include "sparklite/spill.hpp"

#include <unistd.h>

#include <cstdlib>

#include "common/scratch.hpp"
#include "common/telemetry.hpp"

namespace hpcla::sparklite::spill {
namespace {

std::size_t env_budget_bytes() {
  const char* e = std::getenv("HPCLA_SPILL_BUDGET_BYTES");
  if (!e || !*e) return 0;
  return static_cast<std::size_t>(std::strtoull(e, nullptr, 10));
}

// The shared scratch-root convention (common/scratch.hpp) resolves
// HPCLA_SPILL_DIR for every scratch writer — spill runs and extent files
// land under the same root.
std::filesystem::path base_spill_dir(const std::string& override_dir) {
  if (!override_dir.empty()) return override_dir;
  return scratch::base_dir();
}

}  // namespace

SpillManager::SpillManager(std::optional<std::size_t> budget,
                           std::string dir_override, std::size_t fan_in)
    : budget_(budget ? *budget : env_budget_bytes()),
      dir_override_(std::move(dir_override)),
      fan_in_(std::max<std::size_t>(fan_in, 2)) {}

SpillManager::~SpillManager() {
  if (dir_created_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

const std::filesystem::path& SpillManager::dir() {
  std::call_once(dir_once_, [this] {
    static std::atomic<std::uint64_t> engine_seq{0};
    dir_ = base_spill_dir(dir_override_) /
           ("hpcla-spill-" + std::to_string(::getpid()) + "-" +
            std::to_string(engine_seq.fetch_add(1)));
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    HPCLA_CHECK_MSG(!ec, "cannot create spill directory");
    dir_created_ = true;
  });
  return dir_;
}

std::filesystem::path SpillManager::next_file_path() {
  return dir() / ("run-" +
                  std::to_string(file_seq_.fetch_add(
                      1, std::memory_order_relaxed)) +
                  ".spill");
}

void SpillManager::add_spilled_bytes(std::uint64_t n) {
  bytes_spilled_.fetch_add(n, std::memory_order_relaxed);
  telemetry::registry().counter("sparklite.spill.bytes").add(n);
}

void SpillManager::add_spill_file() {
  spill_files_.fetch_add(1, std::memory_order_relaxed);
  telemetry::registry().counter("sparklite.spill.files").add(1);
}

void SpillManager::add_merge_pass() {
  merge_passes_.fetch_add(1, std::memory_order_relaxed);
  telemetry::registry().counter("sparklite.spill.merge_passes").add(1);
}

}  // namespace hpcla::sparklite::spill
