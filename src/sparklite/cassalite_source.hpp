// Dataset sources backed by cassalite tables.
//
// Each cassalite partition becomes one sparklite partition whose preferred
// node is the partition's primary replica — the co-location contract of
// paper §III-A ("by associating local partitions with the same local Spark
// worker, the big data processing unit performs analytics efficiently").
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cassalite/cluster.hpp"
#include "sparklite/dataset.hpp"

namespace hpcla::sparklite {

/// Scans the given partitions of a table into a Dataset of rows.
/// When `partition_keys` is empty, all partitions of the table are scanned.
inline Dataset<std::pair<std::string, cassalite::Row>> scan_table_keyed(
    Engine& engine, const cassalite::Cluster& cluster,
    const std::string& table, std::vector<std::string> partition_keys = {}) {
  if (partition_keys.empty()) {
    partition_keys = cluster.all_partition_keys(table);
  }
  using Out = std::pair<std::string, cassalite::Row>;
  std::vector<Dataset<Out>::Partition> parts;
  parts.reserve(partition_keys.size());
  for (auto& key : partition_keys) {
    const auto primary = cluster.ring().primary(key);
    parts.push_back(Dataset<Out>::Partition{
        [&cluster, table, key](const TaskContext&) {
          cassalite::ReadQuery q;
          q.table = table;
          q.partition_key = key;
          auto result = cluster.engine(cluster.ring().primary(key)).read(q);
          std::vector<Out> out;
          out.reserve(result.rows.size());
          for (auto& row : result.rows) out.emplace_back(key, std::move(row));
          return out;
        },
        static_cast<int>(primary)});
  }
  return Dataset<Out>(engine, std::move(parts));
}

/// Row-only variant of scan_table_keyed.
inline Dataset<cassalite::Row> scan_table(
    Engine& engine, const cassalite::Cluster& cluster,
    const std::string& table, std::vector<std::string> partition_keys = {}) {
  return scan_table_keyed(engine, cluster, table, std::move(partition_keys))
      .map([](const std::pair<std::string, cassalite::Row>& kv) {
        return kv.second;
      });
}

}  // namespace hpcla::sparklite
