// Dataset sources backed by cassalite tables.
//
// Partition keys are grouped by their primary replica, and each node's
// batch becomes one sparklite partition whose preferred node is that
// replica — the co-location contract of paper §III-A ("by associating local
// partitions with the same local Spark worker, the big data processing unit
// performs analytics efficiently"). A batch is read against a *single*
// storage snapshot (StorageEngine::scan_partitions), so one task drives a
// whole node-local partition batch instead of issuing per-key reads.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cassalite/cluster.hpp"
#include "common/telemetry.hpp"
#include "sparklite/dataset.hpp"

namespace hpcla::sparklite {

/// Scans the given partitions of a table into a Dataset of (key, row)
/// pairs. When `partition_keys` is empty, all partitions of the table are
/// scanned. `max_keys_per_task` splits one node's batch into several tasks
/// (more parallelism within a node); 0 keeps one task per node.
inline Dataset<std::pair<std::string, cassalite::Row>> scan_table_keyed(
    Engine& engine, const cassalite::Cluster& cluster,
    const std::string& table, std::vector<std::string> partition_keys = {},
    std::size_t max_keys_per_task = 0) {
  if (partition_keys.empty()) {
    partition_keys = cluster.all_partition_keys(table);
  }
  // Group by primary replica, preserving key order within each group.
  std::map<cassalite::NodeIndex, std::vector<std::string>> by_node;
  for (auto& key : partition_keys) {
    by_node[cluster.ring().primary(key)].push_back(std::move(key));
  }

  using Out = std::pair<std::string, cassalite::Row>;
  std::vector<Dataset<Out>::Partition> parts;
  parts.reserve(by_node.size());
  for (auto& [node, keys] : by_node) {
    const std::size_t chunk =
        max_keys_per_task == 0 ? keys.size() : max_keys_per_task;
    for (std::size_t begin = 0; begin < keys.size(); begin += chunk) {
      std::vector<std::string> batch(
          keys.begin() + static_cast<std::ptrdiff_t>(begin),
          keys.begin() +
              static_cast<std::ptrdiff_t>(std::min(begin + chunk, keys.size())));
      parts.push_back(Dataset<Out>::Partition{
          [&cluster, table, node = node,
           batch = std::move(batch)](const TaskContext&) {
            // Child of the sparklite.stage span running this task (the
            // engine propagates the trace context onto pool threads).
            telemetry::Span span("cassalite.scan");
            span.tag("table", table);
            span.tag("node", static_cast<std::uint64_t>(node));
            span.tag("keys", static_cast<std::uint64_t>(batch.size()));
            std::vector<Out> out;
            cluster.engine(node).scan_partitions(
                table, batch, {},
                [&out](const std::string& key, std::vector<cassalite::Row> rows) {
                  for (auto& row : rows) out.emplace_back(key, std::move(row));
                });
            span.tag("rows", static_cast<std::uint64_t>(out.size()));
            return out;
          },
          static_cast<int>(node)});
    }
  }
  return Dataset<Out>(engine, std::move(parts));
}

/// Row-only variant of scan_table_keyed.
inline Dataset<cassalite::Row> scan_table(
    Engine& engine, const cassalite::Cluster& cluster,
    const std::string& table, std::vector<std::string> partition_keys = {},
    std::size_t max_keys_per_task = 0) {
  return scan_table_keyed(engine, cluster, table, std::move(partition_keys),
                          max_keys_per_task)
      .map([](const std::pair<std::string, cassalite::Row>& kv) {
        return kv.second;
      });
}

}  // namespace hpcla::sparklite
