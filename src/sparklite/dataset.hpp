// Dataset<T>: sparklite's lazy, partitioned, immutable collection — the RDD
// of this reproduction. Narrow transformations (map/filter/flatMap) compose
// lazily inside a partition; wide transformations (reduceByKey/groupByKey/
// join) materialize through a hash shuffle; actions (collect/count/reduce)
// trigger execution on the Engine's worker pool.
//
// Like an uncached RDD, a Dataset recomputes its lineage on every action;
// cache() pins the partition contents in memory.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sparklite/engine.hpp"

namespace hpcla::sparklite {

template <typename T>
class Dataset {
 public:
  /// Computes the partition's rows. Invoked once per action (lazy lineage).
  using Compute = std::function<std::vector<T>(const TaskContext&)>;

  struct Partition {
    Compute compute;
    /// Node whose co-located worker should run this task; -1 = anywhere.
    int preferred_node = -1;
  };

  Dataset(Engine& engine, std::vector<Partition> partitions)
      : engine_(&engine),
        partitions_(std::make_shared<const std::vector<Partition>>(
            std::move(partitions))) {}

  /// Distributes an in-memory vector over `num_partitions` slices.
  static Dataset parallelize(Engine& engine, std::vector<T> data,
                             std::size_t num_partitions = 0) {
    if (num_partitions == 0) num_partitions = engine.workers();
    num_partitions = std::max<std::size_t>(num_partitions, 1);
    auto shared = std::make_shared<const std::vector<T>>(std::move(data));
    const std::size_t n = shared->size();
    const std::size_t chunks = std::min(num_partitions, std::max<std::size_t>(n, 1));
    std::vector<Partition> parts;
    parts.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = n * c / chunks;
      const std::size_t end = n * (c + 1) / chunks;
      parts.push_back(Partition{
          [shared, begin, end](const TaskContext&) {
            return std::vector<T>(shared->begin() + static_cast<std::ptrdiff_t>(begin),
                                  shared->begin() + static_cast<std::ptrdiff_t>(end));
          },
          -1});
    }
    return Dataset(engine, std::move(parts));
  }

  [[nodiscard]] std::size_t partition_count() const noexcept {
    return partitions_->size();
  }
  [[nodiscard]] Engine& engine() const noexcept { return *engine_; }

  // -------------------------------------------------------------- narrow

  /// Element-wise transform.
  template <typename F>
  auto map(F f) const {
    using R = std::invoke_result_t<F, const T&>;
    return transform_partitions<R>([f](std::vector<T> in, const TaskContext&) {
      std::vector<R> out;
      out.reserve(in.size());
      for (auto& v : in) out.push_back(f(v));
      return out;
    });
  }

  /// Keeps elements where the predicate holds.
  template <typename F>
  Dataset<T> filter(F pred) const {
    return transform_partitions<T>(
        [pred](std::vector<T> in, const TaskContext&) {
          std::vector<T> out;
          for (auto& v : in) {
            if (pred(v)) out.push_back(std::move(v));
          }
          return out;
        });
  }

  /// One-to-many transform; F returns a container of R.
  template <typename F>
  auto flat_map(F f) const {
    using Container = std::invoke_result_t<F, const T&>;
    using R = typename Container::value_type;
    return transform_partitions<R>([f](std::vector<T> in, const TaskContext&) {
      std::vector<R> out;
      for (auto& v : in) {
        auto sub = f(v);
        out.insert(out.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
      }
      return out;
    });
  }

  /// Whole-partition transform: F(vector<T>) -> vector<R>.
  template <typename F>
  auto map_partitions(F f) const {
    using R = typename std::invoke_result_t<F, std::vector<T>>::value_type;
    return transform_partitions<R>(
        [f](std::vector<T> in, const TaskContext&) { return f(std::move(in)); });
  }

  /// Whole-partition transform with task context:
  /// F(vector<T>, const TaskContext&) -> vector<R>. Use when per-partition
  /// output must be salted by the partition index (unique id assignment).
  template <typename F>
  auto map_partitions_indexed(F f) const {
    using R = typename std::invoke_result_t<F, std::vector<T>,
                                            const TaskContext&>::value_type;
    return transform_partitions<R>(
        [f](std::vector<T> in, const TaskContext& ctx) {
          return f(std::move(in), ctx);
        });
  }

  /// Pairs each element with a derived key.
  template <typename F>
  auto key_by(F f) const {
    return map([f](const T& v) { return std::make_pair(f(v), v); });
  }

  /// Concatenates two datasets' partition lists (no data movement).
  Dataset<T> union_with(const Dataset<T>& other) const {
    std::vector<Partition> parts(*partitions_);
    parts.insert(parts.end(), other.partitions_->begin(),
                 other.partitions_->end());
    return Dataset(*engine_, std::move(parts));
  }

  /// Rebalances into `n` even partitions (materializes once).
  Dataset<T> repartition(std::size_t n) const {
    return parallelize(*engine_, collect(), n);
  }

  // -------------------------------------------------------------- actions

  /// Materializes every partition and concatenates in partition order.
  [[nodiscard]] std::vector<T> collect() const {
    auto per_part = collect_partitions();
    std::size_t total = 0;
    for (const auto& p : per_part) total += p.size();
    std::vector<T> out;
    out.reserve(total);
    for (auto& p : per_part) {
      out.insert(out.end(), std::make_move_iterator(p.begin()),
                 std::make_move_iterator(p.end()));
    }
    return out;
  }

  /// Materializes partitions individually (shuffle input, cache()).
  [[nodiscard]] std::vector<std::vector<T>> collect_partitions() const {
    const auto& parts = *partitions_;
    std::vector<std::vector<T>> results(parts.size());
    engine_->run_stage(parts.size(), preferred_nodes(),
                       [&](const TaskContext& ctx) {
                         results[ctx.task_index] =
                             parts[ctx.task_index].compute(ctx);
                       });
    return results;
  }

  /// Number of elements.
  [[nodiscard]] std::size_t count() const {
    const auto& parts = *partitions_;
    std::vector<std::size_t> counts(parts.size(), 0);
    engine_->run_stage(parts.size(), preferred_nodes(),
                       [&](const TaskContext& ctx) {
                         counts[ctx.task_index] =
                             parts[ctx.task_index].compute(ctx).size();
                       });
    std::size_t total = 0;
    for (auto c : counts) total += c;
    return total;
  }

  /// Folds all elements with an associative combiner, starting from `init`
  /// in each partition and across partitions.
  template <typename F>
  [[nodiscard]] T reduce(F combine, T init) const {
    const auto& parts = *partitions_;
    std::vector<T> partials(parts.size(), init);
    engine_->run_stage(parts.size(), preferred_nodes(),
                       [&](const TaskContext& ctx) {
                         T acc = init;
                         for (auto& v : parts[ctx.task_index].compute(ctx)) {
                           acc = combine(std::move(acc), v);
                         }
                         partials[ctx.task_index] = std::move(acc);
                       });
    T acc = init;
    for (auto& p : partials) acc = combine(std::move(acc), p);
    return acc;
  }

  /// First `n` elements in partition order.
  [[nodiscard]] std::vector<T> take(std::size_t n) const {
    auto all = collect();
    if (all.size() > n) all.resize(n);
    return all;
  }

  /// The `n` largest elements under `cmp` (cmp = "less than"), descending.
  template <typename Cmp>
  [[nodiscard]] std::vector<T> top(std::size_t n, Cmp cmp) const {
    auto all = collect();
    const std::size_t k = std::min(n, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                      all.end(), [&](const T& a, const T& b) { return cmp(b, a); });
    all.resize(k);
    return all;
  }

  /// Materializes the lineage once; the returned dataset serves all future
  /// actions from memory (preserving partitioning and locality hints).
  [[nodiscard]] Dataset<T> cache() const {
    auto data = std::make_shared<const std::vector<std::vector<T>>>(
        collect_partitions());
    std::vector<Partition> parts;
    parts.reserve(data->size());
    for (std::size_t i = 0; i < data->size(); ++i) {
      parts.push_back(Partition{
          [data, i](const TaskContext&) { return (*data)[i]; },
          (*partitions_)[i].preferred_node});
    }
    return Dataset(*engine_, std::move(parts));
  }

  /// Preferred node of each partition (scheduler input).
  [[nodiscard]] std::vector<int> preferred_nodes() const {
    std::vector<int> out;
    out.reserve(partitions_->size());
    for (const auto& p : *partitions_) out.push_back(p.preferred_node);
    return out;
  }

 private:
  template <typename R, typename F>
  Dataset<R> transform_partitions(F f) const {
    std::vector<typename Dataset<R>::Partition> parts;
    parts.reserve(partitions_->size());
    auto upstream = partitions_;  // keep lineage alive
    for (std::size_t i = 0; i < upstream->size(); ++i) {
      parts.push_back(typename Dataset<R>::Partition{
          [upstream, i, f](const TaskContext& ctx) {
            return f((*upstream)[i].compute(ctx), ctx);
          },
          (*upstream)[i].preferred_node});
    }
    return Dataset<R>(*engine_, std::move(parts));
  }

  Engine* engine_;
  std::shared_ptr<const std::vector<Partition>> partitions_;
};

// ------------------------------------------------------------ wide (KV) ops

namespace detail {

/// Hash shuffle: materializes a pair dataset into `num_partitions` buckets
/// keyed by std::hash<K>, optionally pre-combining map-side.
template <typename K, typename V, typename Combine>
std::vector<std::vector<std::pair<K, V>>> shuffle_combine(
    const Dataset<std::pair<K, V>>& ds, std::size_t num_partitions,
    Combine combine) {
  auto per_part = ds.collect_partitions();
  std::vector<std::vector<std::pair<K, V>>> buckets(num_partitions);
  std::uint64_t moved = 0;
  // Map-side combine within each upstream partition, then scatter.
  for (auto& part : per_part) {
    std::unordered_map<K, V> local;
    for (auto& [k, v] : part) {
      auto [it, inserted] = local.try_emplace(k, v);
      if (!inserted) it->second = combine(std::move(it->second), v);
    }
    for (auto& [k, v] : local) {
      buckets[std::hash<K>{}(k) % num_partitions].emplace_back(k, std::move(v));
    }
    moved += local.size();
  }
  ds.engine().record_shuffle(moved);
  return buckets;
}

}  // namespace detail

/// reduceByKey: combines all values sharing a key with an associative op.
/// Output partitions are sorted by key for deterministic results.
template <typename K, typename V, typename Combine>
Dataset<std::pair<K, V>> reduce_by_key(const Dataset<std::pair<K, V>>& ds,
                                       Combine combine,
                                       std::size_t num_partitions = 0) {
  if (num_partitions == 0) num_partitions = std::max<std::size_t>(ds.partition_count(), 1);
  auto buckets = detail::shuffle_combine(ds, num_partitions, combine);
  std::vector<typename Dataset<std::pair<K, V>>::Partition> parts;
  parts.reserve(buckets.size());
  for (auto& bucket : buckets) {
    // Reduce-side combine across upstream partitions.
    std::unordered_map<K, V> merged;
    for (auto& [k, v] : bucket) {
      auto [it, inserted] = merged.try_emplace(k, v);
      if (!inserted) it->second = combine(std::move(it->second), v);
    }
    std::vector<std::pair<K, V>> rows(merged.begin(), merged.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    auto shared = std::make_shared<const std::vector<std::pair<K, V>>>(
        std::move(rows));
    parts.push_back({[shared](const TaskContext&) { return *shared; }, -1});
  }
  return Dataset<std::pair<K, V>>(ds.engine(), std::move(parts));
}

/// groupByKey: gathers all values per key (no combine). Value order follows
/// upstream partition order.
template <typename K, typename V>
Dataset<std::pair<K, std::vector<V>>> group_by_key(
    const Dataset<std::pair<K, V>>& ds, std::size_t num_partitions = 0) {
  auto grouped = ds.map([](const std::pair<K, V>& kv) {
    return std::make_pair(kv.first, std::vector<V>{kv.second});
  });
  return reduce_by_key(
      grouped,
      [](std::vector<V> a, const std::vector<V>& b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
      },
      num_partitions);
}

/// countByKey: occurrences per key — the Spark word-count idiom the paper
/// uses to localize Lustre faults (Fig 7).
template <typename K, typename V>
Dataset<std::pair<K, std::int64_t>> count_by_key(
    const Dataset<std::pair<K, V>>& ds, std::size_t num_partitions = 0) {
  auto ones = ds.map([](const std::pair<K, V>& kv) {
    return std::make_pair(kv.first, std::int64_t{1});
  });
  return reduce_by_key(
      ones, [](std::int64_t a, std::int64_t b) { return a + b; },
      num_partitions);
}

/// Inner hash join on key: (K,V1) ⋈ (K,V2) -> (K, (V1, V2)) per matching
/// value combination.
template <typename K, typename V1, typename V2>
Dataset<std::pair<K, std::pair<V1, V2>>> join(
    const Dataset<std::pair<K, V1>>& left,
    const Dataset<std::pair<K, V2>>& right, std::size_t num_partitions = 0) {
  if (num_partitions == 0) {
    num_partitions = std::max<std::size_t>(left.partition_count(), 1);
  }
  auto lg = group_by_key(left, num_partitions).collect();
  auto rg = group_by_key(right, num_partitions).collect();
  std::unordered_map<K, std::vector<V2>> rmap;
  for (auto& [k, vs] : rg) rmap.emplace(std::move(k), std::move(vs));
  std::vector<std::pair<K, std::pair<V1, V2>>> out;
  for (auto& [k, lvs] : lg) {
    auto it = rmap.find(k);
    if (it == rmap.end()) continue;
    for (auto& lv : lvs) {
      for (auto& rv : it->second) {
        out.emplace_back(k, std::make_pair(lv, rv));
      }
    }
  }
  return Dataset<std::pair<K, std::pair<V1, V2>>>::parallelize(
      left.engine(), std::move(out), num_partitions);
}

/// Total sort by a derived key (materializes once).
template <typename T, typename F>
Dataset<T> sort_by(const Dataset<T>& ds, F key_fn,
                   std::size_t num_partitions = 0) {
  auto all = ds.collect();
  std::stable_sort(all.begin(), all.end(), [&](const T& a, const T& b) {
    return key_fn(a) < key_fn(b);
  });
  return Dataset<T>::parallelize(
      ds.engine(), std::move(all),
      num_partitions ? num_partitions : ds.partition_count());
}

}  // namespace hpcla::sparklite
