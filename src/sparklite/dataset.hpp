// Dataset<T>: sparklite's lazy, partitioned, immutable collection — the RDD
// of this reproduction. Narrow transformations (map/filter/flatMap) compose
// lazily inside a partition; wide transformations (reduceByKey/groupByKey/
// join/sortBy) go through a two-stage parallel shuffle; actions
// (collect/count/reduce) trigger execution on the Engine's worker pool.
//
// The shuffle (DESIGN.md §9, §12) is genuinely parallel on both sides and
// fully lazy. A wide op does no work at call time: it parks its map stage
// as a LazyStage barrier in the output dataset's lineage, and the first
// action to consume the dataset runs it exactly once (std::call_once) on
// the driver thread before the action's own stage. Map side: one pool task
// per upstream partition fuses compute + map-side combine + scatter,
// writing into its own lane of a spill-aware ScatterSink (spill.hpp) —
// lanes are disjoint, so no locks, and lanes over the engine's spill
// budget stream to compressed run files so shuffle residency stays
// bounded. Reduce side: the shuffled dataset's partitions are lazy; each
// one merges its bucket (resident cells + replayed runs, visited in
// upstream order, keeping results deterministic and non-commutative
// combines correct) when an action's stage runs it, so the merge
// parallelizes across buckets and cache()/lineage semantics are preserved.
// Output buckets are sorted by key regardless of thread count, and results
// are byte-identical whether or not the shuffle spilled.
//
// Like an uncached RDD, a Dataset recomputes its lineage on every action;
// cache() pins the partition contents in memory. The deferred map stage,
// by contrast, runs once per wide op no matter how many actions follow —
// the bucket matrix is shared state, not lineage.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sparklite/engine.hpp"

namespace hpcla::sparklite {

/// A deferred barrier stage (the map side of a wide op) parked in a
/// dataset's lineage. The first action to consume the dataset runs it
/// exactly once — on the driver thread, before the action's own pool
/// stage — even when multiple threads race actions on a shared dataset.
/// Shared across the Dataset template so narrow transforms of any element
/// type inherit their upstream barriers.
struct LazyStage {
  std::once_flag once;
  std::function<void()> run;
};
using LazyStagePtr = std::shared_ptr<LazyStage>;

template <typename T>
class Dataset {
 public:
  /// Computes the partition's rows. Invoked once per action (lazy lineage).
  using Compute = std::function<std::vector<T>(const TaskContext&)>;

  struct Partition {
    Compute compute;
    /// Node whose co-located worker should run this task; -1 = anywhere.
    int preferred_node = -1;
  };

  Dataset(Engine& engine, std::vector<Partition> partitions,
          std::vector<LazyStagePtr> deps = {})
      : engine_(&engine),
        partitions_(std::make_shared<const std::vector<Partition>>(
            std::move(partitions))),
        deps_(std::move(deps)) {}

  /// Distributes an in-memory vector over `num_partitions` slices.
  static Dataset parallelize(Engine& engine, std::vector<T> data,
                             std::size_t num_partitions = 0) {
    if (num_partitions == 0) num_partitions = engine.workers();
    num_partitions = std::max<std::size_t>(num_partitions, 1);
    auto shared = std::make_shared<const std::vector<T>>(std::move(data));
    const std::size_t n = shared->size();
    const std::size_t chunks = std::min(num_partitions, std::max<std::size_t>(n, 1));
    std::vector<Partition> parts;
    parts.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = n * c / chunks;
      const std::size_t end = n * (c + 1) / chunks;
      parts.push_back(Partition{
          [shared, begin, end](const TaskContext&) {
            return std::vector<T>(shared->begin() + static_cast<std::ptrdiff_t>(begin),
                                  shared->begin() + static_cast<std::ptrdiff_t>(end));
          },
          -1});
    }
    return Dataset(engine, std::move(parts));
  }

  [[nodiscard]] std::size_t partition_count() const noexcept {
    return partitions_->size();
  }
  [[nodiscard]] Engine& engine() const noexcept { return *engine_; }

  // -------------------------------------------------------------- narrow

  /// Element-wise transform.
  template <typename F>
  auto map(F f) const {
    using R = std::invoke_result_t<F, const T&>;
    return transform_partitions<R>([f](std::vector<T> in, const TaskContext&) {
      std::vector<R> out;
      out.reserve(in.size());
      for (auto& v : in) out.push_back(f(v));
      return out;
    });
  }

  /// Keeps elements where the predicate holds.
  template <typename F>
  Dataset<T> filter(F pred) const {
    return transform_partitions<T>(
        [pred](std::vector<T> in, const TaskContext&) {
          std::vector<T> out;
          for (auto& v : in) {
            if (pred(v)) out.push_back(std::move(v));
          }
          return out;
        });
  }

  /// One-to-many transform; F returns a container of R.
  template <typename F>
  auto flat_map(F f) const {
    using Container = std::invoke_result_t<F, const T&>;
    using R = typename Container::value_type;
    return transform_partitions<R>([f](std::vector<T> in, const TaskContext&) {
      std::vector<R> out;
      for (auto& v : in) {
        auto sub = f(v);
        out.insert(out.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
      }
      return out;
    });
  }

  /// Whole-partition transform: F(vector<T>) -> vector<R>.
  template <typename F>
  auto map_partitions(F f) const {
    using R = typename std::invoke_result_t<F, std::vector<T>>::value_type;
    return transform_partitions<R>(
        [f](std::vector<T> in, const TaskContext&) { return f(std::move(in)); });
  }

  /// Whole-partition transform with task context:
  /// F(vector<T>, const TaskContext&) -> vector<R>. Use when per-partition
  /// output must be salted by the partition index (unique id assignment).
  template <typename F>
  auto map_partitions_indexed(F f) const {
    using R = typename std::invoke_result_t<F, std::vector<T>,
                                            const TaskContext&>::value_type;
    return transform_partitions<R>(
        [f](std::vector<T> in, const TaskContext& ctx) {
          return f(std::move(in), ctx);
        });
  }

  /// Pairs each element with a derived key.
  template <typename F>
  auto key_by(F f) const {
    return map([f](const T& v) { return std::make_pair(f(v), v); });
  }

  /// Concatenates two datasets' partition lists (no data movement).
  Dataset<T> union_with(const Dataset<T>& other) const {
    std::vector<Partition> parts(*partitions_);
    parts.insert(parts.end(), other.partitions_->begin(),
                 other.partitions_->end());
    std::vector<LazyStagePtr> deps(deps_);
    deps.insert(deps.end(), other.deps_.begin(), other.deps_.end());
    return Dataset(*engine_, std::move(parts), std::move(deps));
  }

  /// Rebalances into `n` even partitions (materializes once).
  Dataset<T> repartition(std::size_t n) const {
    return parallelize(*engine_, collect(), n);
  }

  // -------------------------------------------------------------- actions

  /// Runs any pending upstream barrier stages (deferred shuffle map sides),
  /// each exactly once even under concurrent actions. Every action calls
  /// this before its own stage; wide ops call it on their inputs from
  /// inside their own deferred stage, so chained shuffles unwind in
  /// lineage order.
  void ensure_ready() const {
    for (const auto& dep : deps_) std::call_once(dep->once, dep->run);
  }

  /// Materializes every partition and concatenates in partition order.
  [[nodiscard]] std::vector<T> collect() const {
    auto per_part = collect_partitions();
    std::size_t total = 0;
    for (const auto& p : per_part) total += p.size();
    std::vector<T> out;
    out.reserve(total);
    for (auto& p : per_part) {
      out.insert(out.end(), std::make_move_iterator(p.begin()),
                 std::make_move_iterator(p.end()));
    }
    return out;
  }

  /// Materializes partitions individually (shuffle input, cache()).
  [[nodiscard]] std::vector<std::vector<T>> collect_partitions() const {
    ensure_ready();
    const auto& parts = *partitions_;
    std::vector<std::vector<T>> results(parts.size());
    engine_->run_stage(parts.size(), preferred_nodes(),
                       [&](const TaskContext& ctx) {
                         results[ctx.task_index] =
                             parts[ctx.task_index].compute(ctx);
                       });
    return results;
  }

  /// Runs one pool stage applying `fn(ctx, rows)` to each partition's
  /// materialized rows — the map side of shuffles fuses compute +
  /// combine + scatter through this hook instead of staging whole
  /// partition vectors through collect_partitions().
  template <typename Fn>
  void for_each_partition(Fn&& fn) const {
    ensure_ready();
    const auto& parts = *partitions_;
    engine_->run_stage(parts.size(), preferred_nodes(),
                       [&](const TaskContext& ctx) {
                         fn(ctx, parts[ctx.task_index].compute(ctx));
                       });
  }

  /// Number of elements.
  [[nodiscard]] std::size_t count() const {
    ensure_ready();
    const auto& parts = *partitions_;
    std::vector<std::size_t> counts(parts.size(), 0);
    engine_->run_stage(parts.size(), preferred_nodes(),
                       [&](const TaskContext& ctx) {
                         counts[ctx.task_index] =
                             parts[ctx.task_index].compute(ctx).size();
                       });
    std::size_t total = 0;
    for (auto c : counts) total += c;
    return total;
  }

  /// Folds all elements with an associative combiner, starting from `init`
  /// in each partition and across partitions.
  template <typename F>
  [[nodiscard]] T reduce(F combine, T init) const {
    ensure_ready();
    const auto& parts = *partitions_;
    std::vector<T> partials(parts.size(), init);
    engine_->run_stage(parts.size(), preferred_nodes(),
                       [&](const TaskContext& ctx) {
                         T acc = init;
                         for (auto& v : parts[ctx.task_index].compute(ctx)) {
                           acc = combine(std::move(acc), v);
                         }
                         partials[ctx.task_index] = std::move(acc);
                       });
    T acc = init;
    for (auto& p : partials) acc = combine(std::move(acc), p);
    return acc;
  }

  /// First `n` elements in partition order. Computes partitions one at a
  /// time on the calling thread and stops as soon as `n` elements are
  /// gathered — a take(10) over a wide lineage no longer materializes
  /// every partition the way collect() would.
  [[nodiscard]] std::vector<T> take(std::size_t n) const {
    std::vector<T> out;
    if (n == 0) return out;
    ensure_ready();
    const auto& parts = *partitions_;
    for (std::size_t i = 0; i < parts.size() && out.size() < n; ++i) {
      TaskContext ctx;
      ctx.task_index = i;
      auto rows = parts[i].compute(ctx);
      for (auto& v : rows) {
        out.push_back(std::move(v));
        if (out.size() == n) break;
      }
    }
    return out;
  }

  /// The `n` largest elements under `cmp` (cmp = "less than"), descending.
  template <typename Cmp>
  [[nodiscard]] std::vector<T> top(std::size_t n, Cmp cmp) const {
    auto all = collect();
    const std::size_t k = std::min(n, all.size());
    std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                      all.end(), [&](const T& a, const T& b) { return cmp(b, a); });
    all.resize(k);
    return all;
  }

  /// Materializes the lineage once; the returned dataset serves all future
  /// actions from memory (preserving partitioning and locality hints).
  [[nodiscard]] Dataset<T> cache() const {
    auto data = std::make_shared<const std::vector<std::vector<T>>>(
        collect_partitions());
    std::vector<Partition> parts;
    parts.reserve(data->size());
    for (std::size_t i = 0; i < data->size(); ++i) {
      parts.push_back(Partition{
          [data, i](const TaskContext&) { return (*data)[i]; },
          (*partitions_)[i].preferred_node});
    }
    return Dataset(*engine_, std::move(parts));
  }

  /// Preferred node of each partition (scheduler input).
  [[nodiscard]] std::vector<int> preferred_nodes() const {
    std::vector<int> out;
    out.reserve(partitions_->size());
    for (const auto& p : *partitions_) out.push_back(p.preferred_node);
    return out;
  }

 private:
  template <typename U>
  friend class Dataset;

  template <typename R, typename F>
  Dataset<R> transform_partitions(F f) const {
    std::vector<typename Dataset<R>::Partition> parts;
    parts.reserve(partitions_->size());
    auto upstream = partitions_;  // keep lineage alive
    for (std::size_t i = 0; i < upstream->size(); ++i) {
      parts.push_back(typename Dataset<R>::Partition{
          [upstream, i, f](const TaskContext& ctx) {
            return f((*upstream)[i].compute(ctx), ctx);
          },
          (*upstream)[i].preferred_node});
    }
    // Narrow ops inherit the upstream barriers: the deferred shuffle runs
    // when any derived dataset is consumed, not just the shuffled one.
    return Dataset<R>(*engine_, std::move(parts), deps_);
  }

  Engine* engine_;
  std::shared_ptr<const std::vector<Partition>> partitions_;
  std::vector<LazyStagePtr> deps_;
};

// ------------------------------------------------------------ wide (KV) ops

namespace detail {

/// A completed map stage: the scatter sink (in-RAM cells + spilled runs,
/// see spill.hpp) plus the engine's shuffle record (the lazy reduce side
/// adds its merge time to the record).
template <typename Row>
struct ShuffleStage {
  std::shared_ptr<spill::ScatterSink<Row>> sink;
  std::shared_ptr<ShuffleRecord> record;
};

/// The per-lane residency budget for map-side combine/group hash tables:
/// the engine's shuffle spill budget split across the map lanes, same as
/// ScatterSink's lane budget. 0 = unlimited (no budget configured or the
/// row type is not spillable, so partials could not be replayed anyway).
template <typename Row>
std::size_t combine_lane_budget(Engine& engine, std::size_t lanes) {
  if constexpr (spill::is_spillable_v<Row>) {
    if (engine.spill().budget_bytes() > 0) {
      return std::max<std::size_t>(
          engine.spill().budget_bytes() / std::max<std::size_t>(lanes, 1),
          1024);
    }
  }
  return 0;
}

/// Tracks the combine-table flush accounting across a map stage's lanes
/// (relaxed atomics: lanes only ever add / max their own totals).
struct CombineStats {
  std::atomic<std::uint64_t> flushes{0};
  std::atomic<std::uint64_t> peak_bytes{0};

  void note_lane(std::uint64_t lane_flushes, std::uint64_t lane_peak) {
    flushes.fetch_add(lane_flushes, std::memory_order_relaxed);
    std::uint64_t seen = peak_bytes.load(std::memory_order_relaxed);
    while (lane_peak > seen &&
           !peak_bytes.compare_exchange_weak(seen, lane_peak,
                                             std::memory_order_relaxed)) {
    }
  }
};

/// Map stage of a combining hash shuffle: per upstream partition, combine
/// values sharing a key, then scatter the combined entries into the sink
/// by std::hash<K>. Runs as one pool stage; lanes are disjoint. Lanes over
/// the engine's spill budget stream to compressed run files — and the
/// combine hash table itself honors the same per-lane budget: when its
/// approximate footprint crosses it, the partial aggregates flush into the
/// sink early and the table restarts empty. A key may then reach the
/// reduce side as several partials per lane, in flush order; the reduce
/// merge combines them left-to-right, so for the associative combiners
/// reduce_by_key requires the result is byte-identical to the unflushed
/// path (the partials partition the same left fold).
template <typename K, typename V, typename Combine>
ShuffleStage<std::pair<K, V>> shuffle_combine_stage(
    const Dataset<std::pair<K, V>>& ds, std::size_t num_partitions,
    Combine combine, const char* label) {
  using KV = std::pair<K, V>;
  auto sink = std::make_shared<spill::ScatterSink<KV>>(
      ds.engine().spill(), ds.partition_count(), num_partitions);
  const std::size_t budget =
      combine_lane_budget<KV>(ds.engine(), ds.partition_count());
  CombineStats stats;
  Stopwatch map_watch;
  ds.for_each_partition([&](const TaskContext& ctx, std::vector<KV> rows) {
    std::unordered_map<K, V> local;
    std::size_t bytes = 0;
    std::uint64_t peak = 0, flushes = 0;
    const auto flush_local = [&] {
      for (auto& [k, v] : local) {
        sink->emit(ctx.task_index, std::hash<K>{}(k) % num_partitions,
                   KV(k, std::move(v)));
      }
      local.clear();
      bytes = 0;
    };
    for (auto& [k, v] : rows) {
      auto [it, inserted] = local.try_emplace(k, v);
      if (!inserted) {
        it->second = combine(std::move(it->second), v);
      } else if (budget > 0) {
        // Footprint is charged at insertion (combine-grown values are not
        // recharged — scalar aggregates dominate this path).
        if constexpr (spill::is_spillable_v<KV>) {
          bytes += spill::Codec<K>::approx_bytes(it->first) +
                   spill::Codec<V>::approx_bytes(it->second) + sizeof(KV);
        }
        peak = std::max<std::uint64_t>(peak, bytes);
        if (bytes >= budget) {
          flush_local();
          ++flushes;
        }
      }
    }
    flush_local();
    if (budget > 0) stats.note_lane(flushes, peak);
  });
  auto record = ds.engine().record_shuffle_detail(
      label, ds.partition_count(), map_watch.elapsed_seconds(),
      sink->bucket_record_counts(), sink->spilled_bytes(),
      sink->spill_file_count(),
      stats.flushes.load(std::memory_order_relaxed),
      stats.peak_bytes.load(std::memory_order_relaxed));
  return {std::move(sink), std::move(record)};
}

/// Map stage of a grouping shuffle: like shuffle_combine_stage but gathers
/// all values per key into one vector (value order = encounter order within
/// the upstream partition), so group_by_key and join scatter one entry per
/// (partition, key) instead of one vector per element. The local grouping
/// table flushes early under the lane budget like the combining stage;
/// partial vectors reach the reduce side in flush order, and the group
/// merge concatenates per key in arrival order, so encounter order — and
/// therefore the result — is unchanged.
template <typename K, typename V>
ShuffleStage<std::pair<K, std::vector<V>>> shuffle_group_stage(
    const Dataset<std::pair<K, V>>& ds, std::size_t num_partitions,
    const char* label) {
  using Entry = std::pair<K, std::vector<V>>;
  auto sink = std::make_shared<spill::ScatterSink<Entry>>(
      ds.engine().spill(), ds.partition_count(), num_partitions);
  const std::size_t budget =
      combine_lane_budget<Entry>(ds.engine(), ds.partition_count());
  CombineStats stats;
  Stopwatch map_watch;
  ds.for_each_partition(
      [&](const TaskContext& ctx, std::vector<std::pair<K, V>> rows) {
        std::unordered_map<K, std::vector<V>> local;
        std::size_t bytes = 0;
        std::uint64_t peak = 0, flushes = 0;
        const auto flush_local = [&] {
          for (auto& [k, vs] : local) {
            sink->emit(ctx.task_index, std::hash<K>{}(k) % num_partitions,
                       Entry(k, std::move(vs)));
          }
          local.clear();
          bytes = 0;
        };
        for (auto& [k, v] : rows) {
          auto& vs = local[k];
          if (budget > 0) {
            if constexpr (spill::is_spillable_v<Entry>) {
              if (vs.empty()) {
                bytes += spill::Codec<K>::approx_bytes(k) + sizeof(Entry);
              }
              bytes += spill::Codec<V>::approx_bytes(v);
            }
          }
          vs.push_back(std::move(v));
          if (budget > 0) {
            peak = std::max<std::uint64_t>(peak, bytes);
            if (bytes >= budget) {
              flush_local();
              ++flushes;
            }
          }
        }
        flush_local();
        if (budget > 0) stats.note_lane(flushes, peak);
      });
  auto record = ds.engine().record_shuffle_detail(
      label, ds.partition_count(), map_watch.elapsed_seconds(),
      sink->bucket_record_counts(), sink->spilled_bytes(),
      sink->spill_file_count(),
      stats.flushes.load(std::memory_order_relaxed),
      stats.peak_bytes.load(std::memory_order_relaxed));
  return {std::move(sink), std::move(record)};
}

/// Merges one bucket of grouped entries in lane (= upstream) order into
/// key -> concatenated values (the reduce side of grouping shuffles),
/// streaming spilled runs back block-by-block.
template <typename K, typename V>
std::unordered_map<K, std::vector<V>> merge_group_column(
    const spill::ScatterSink<std::pair<K, std::vector<V>>>& sink,
    std::size_t d) {
  std::unordered_map<K, std::vector<V>> merged;
  sink.for_each_row(d, [&](std::pair<K, std::vector<V>> row) {
    auto& dst = merged[row.first];
    dst.insert(dst.end(), std::make_move_iterator(row.second.begin()),
               std::make_move_iterator(row.second.end()));
  });
  return merged;
}

/// Pins the label parked for the *next* stage at wide-op call time.
/// The deferred map stage claims it when it eventually runs; without this
/// the label the caller parks for its own post-shuffle stage (e.g.
/// "heatmap:merge") would clobber the scan label while the shuffle waits.
inline std::shared_ptr<std::string> capture_stage_label(Engine& engine) {
  return std::shared_ptr<std::string>(engine.take_next_label().release());
}

/// Runs `fn` (the deferred map stage) with `captured` — or `fallback`,
/// naming the fused scan+combine+scatter stage — as the next stage's
/// label, then re-parks whatever label the consuming action had set for
/// its own stage.
template <typename Fn>
void run_labeled_stage(Engine& engine,
                       const std::shared_ptr<std::string>& captured,
                       const char* fallback, Fn&& fn) {
  auto pending = engine.take_next_label();
  engine.set_next_stage_label(captured ? *captured : std::string(fallback));
  fn();
  if (pending) engine.set_next_stage_label(std::move(*pending));
}

}  // namespace detail

/// reduceByKey: combines all values sharing a key with an associative op.
/// Fully lazy two-stage parallel shuffle: the map side is deferred into the
/// lineage (the consuming action fuses scan + map + combine + scatter into
/// one pool stage); output partitions merge their bucket column lazily and
/// are sorted by key for deterministic results at any worker count.
template <typename K, typename V, typename Combine>
Dataset<std::pair<K, V>> reduce_by_key(const Dataset<std::pair<K, V>>& ds,
                                       Combine combine,
                                       std::size_t num_partitions = 0) {
  using KV = std::pair<K, V>;
  if (num_partitions == 0) {
    num_partitions = std::max<std::size_t>(ds.partition_count(), 1);
  }
  Engine* engine = &ds.engine();
  auto captured = detail::capture_stage_label(*engine);
  auto staged = std::make_shared<detail::ShuffleStage<KV>>();
  auto barrier = std::make_shared<LazyStage>();
  barrier->run = [ds, staged, engine, combine, num_partitions, captured] {
    detail::run_labeled_stage(*engine, captured, "reduce_by_key:fused", [&] {
      *staged = detail::shuffle_combine_stage<K, V, Combine>(
          ds, num_partitions, combine, "reduce_by_key");
    });
  };
  std::vector<typename Dataset<KV>::Partition> parts;
  parts.reserve(num_partitions);
  for (std::size_t d = 0; d < num_partitions; ++d) {
    parts.push_back(
        {[staged, engine, combine, d](const TaskContext&) {
           Stopwatch watch;
           // Reduce-side combine across upstream sub-buckets, in upstream
           // order (matters for non-commutative combines like group);
           // spilled runs stream back in the same order.
           std::unordered_map<K, V> merged;
           staged->sink->for_each_row(d, [&](KV row) {
             auto [it, inserted] =
                 merged.try_emplace(row.first, std::move(row.second));
             if (!inserted) {
               it->second =
                   combine(std::move(it->second), std::move(row.second));
             }
           });
           std::vector<KV> rows(merged.begin(), merged.end());
           std::sort(rows.begin(), rows.end(), [](const auto& a,
                                                  const auto& b) {
             return a.first < b.first;
           });
           engine->add_shuffle_reduce_us(
               *staged->record,
               static_cast<std::uint64_t>(watch.elapsed_micros()));
           return rows;
         },
         -1});
  }
  return Dataset<KV>(ds.engine(), std::move(parts), {std::move(barrier)});
}

/// groupByKey: gathers all values per key (no combine). Value order follows
/// upstream partition order; within a partition, encounter order.
template <typename K, typename V>
Dataset<std::pair<K, std::vector<V>>> group_by_key(
    const Dataset<std::pair<K, V>>& ds, std::size_t num_partitions = 0) {
  using Entry = std::pair<K, std::vector<V>>;
  if (num_partitions == 0) {
    num_partitions = std::max<std::size_t>(ds.partition_count(), 1);
  }
  Engine* engine = &ds.engine();
  auto captured = detail::capture_stage_label(*engine);
  auto staged = std::make_shared<detail::ShuffleStage<Entry>>();
  auto barrier = std::make_shared<LazyStage>();
  barrier->run = [ds, staged, engine, num_partitions, captured] {
    detail::run_labeled_stage(*engine, captured, "group_by_key:fused", [&] {
      *staged = detail::shuffle_group_stage<K, V>(ds, num_partitions,
                                                  "group_by_key");
    });
  };
  std::vector<typename Dataset<Entry>::Partition> parts;
  parts.reserve(num_partitions);
  for (std::size_t d = 0; d < num_partitions; ++d) {
    parts.push_back(
        {[staged, engine, d](const TaskContext&) {
           Stopwatch watch;
           auto merged = detail::merge_group_column<K, V>(*staged->sink, d);
           std::vector<Entry> rows(std::make_move_iterator(merged.begin()),
                                   std::make_move_iterator(merged.end()));
           std::sort(rows.begin(), rows.end(), [](const auto& a,
                                                  const auto& b) {
             return a.first < b.first;
           });
           engine->add_shuffle_reduce_us(
               *staged->record,
               static_cast<std::uint64_t>(watch.elapsed_micros()));
           return rows;
         },
         -1});
  }
  return Dataset<Entry>(ds.engine(), std::move(parts), {std::move(barrier)});
}

/// countByKey: occurrences per key — the Spark word-count idiom the paper
/// uses to localize Lustre faults (Fig 7).
template <typename K, typename V>
Dataset<std::pair<K, std::int64_t>> count_by_key(
    const Dataset<std::pair<K, V>>& ds, std::size_t num_partitions = 0) {
  auto ones = ds.map([](const std::pair<K, V>& kv) {
    return std::make_pair(kv.first, std::int64_t{1});
  });
  return reduce_by_key(
      ones, [](std::int64_t a, std::int64_t b) { return a + b; },
      num_partitions);
}

/// Inner hash join on key: (K,V1) ⋈ (K,V2) -> (K, (V1, V2)) per matching
/// value combination. Co-partitioned: both sides shuffle into aligned
/// bucket matrices (same hash, same bucket count), and each output
/// partition hash-joins one bucket pair — the per-bucket joins run in
/// parallel on the action's stage, with no driver-side
/// group_by_key().collect() round trip.
template <typename K, typename V1, typename V2>
Dataset<std::pair<K, std::pair<V1, V2>>> join(
    const Dataset<std::pair<K, V1>>& left,
    const Dataset<std::pair<K, V2>>& right, std::size_t num_partitions = 0) {
  using Out = std::pair<K, std::pair<V1, V2>>;
  if (num_partitions == 0) {
    num_partitions = std::max<std::size_t>(left.partition_count(), 1);
  }
  Engine* engine = &left.engine();
  auto captured = detail::capture_stage_label(*engine);
  auto lstaged =
      std::make_shared<detail::ShuffleStage<std::pair<K, std::vector<V1>>>>();
  auto rstaged =
      std::make_shared<detail::ShuffleStage<std::pair<K, std::vector<V2>>>>();
  auto barrier = std::make_shared<LazyStage>();
  barrier->run = [left, right, lstaged, rstaged, engine, num_partitions,
                  captured] {
    detail::run_labeled_stage(*engine, captured, "join:left:fused", [&] {
      *lstaged = detail::shuffle_group_stage<K, V1>(left, num_partitions,
                                                    "join:left");
    });
    detail::run_labeled_stage(*engine, captured, "join:right:fused", [&] {
      *rstaged = detail::shuffle_group_stage<K, V2>(right, num_partitions,
                                                    "join:right");
    });
  };
  std::vector<typename Dataset<Out>::Partition> parts;
  parts.reserve(num_partitions);
  for (std::size_t d = 0; d < num_partitions; ++d) {
    parts.push_back(
        {[lstaged, rstaged, engine, d](const TaskContext&) {
           Stopwatch watch;
           auto rmap =
               detail::merge_group_column<K, V2>(*rstaged->sink, d);
           std::vector<Out> out;
           if (!rmap.empty()) {
             auto lmap =
                 detail::merge_group_column<K, V1>(*lstaged->sink, d);
             // Deterministic output: left keys in sorted order, values in
             // upstream encounter order on both sides.
             std::vector<std::pair<K, std::vector<V1>>> lrows(
                 std::make_move_iterator(lmap.begin()),
                 std::make_move_iterator(lmap.end()));
             std::sort(lrows.begin(), lrows.end(), [](const auto& a,
                                                      const auto& b) {
               return a.first < b.first;
             });
             for (auto& [k, lvs] : lrows) {
               auto it = rmap.find(k);
               if (it == rmap.end()) continue;
               for (auto& lv : lvs) {
                 for (auto& rv : it->second) {
                   out.emplace_back(k, std::make_pair(lv, rv));
                 }
               }
             }
           }
           engine->add_shuffle_reduce_us(
               *lstaged->record,
               static_cast<std::uint64_t>(watch.elapsed_micros()));
           return out;
         },
         -1});
  }
  return Dataset<Out>(left.engine(), std::move(parts), {std::move(barrier)});
}

/// Total sort by a derived key: sample-based range-partitioned parallel
/// sort, external when the spill budget is set. A map stage materializes
/// each upstream partition into a hold sink (lanes over budget stream to
/// compressed runs instead of staying resident) and samples its keys; the
/// driver picks quantile splitters from the pooled sample; a scatter stage
/// replays each held lane and range-partitions it into the output sink,
/// whose over-budget lanes spill *sorted* runs; each lazy output partition
/// then either concatenates + stable_sorts its range (nothing spilled —
/// byte-identical to the old path) or k-way merges its sorted runs and
/// resident cells with a stable ordinal tie-break, which reproduces the
/// same byte-identical output. Concatenating the output partitions yields
/// the totally sorted sequence.
template <typename T, typename F>
Dataset<T> sort_by(const Dataset<T>& ds, F key_fn,
                   std::size_t num_partitions = 0) {
  using Key = std::decay_t<std::invoke_result_t<F, const T&>>;
  const std::size_t buckets =
      num_partitions ? num_partitions
                     : std::max<std::size_t>(ds.partition_count(), 1);
  Engine* engine = &ds.engine();
  auto captured = detail::capture_stage_label(*engine);
  auto staged = std::make_shared<detail::ShuffleStage<T>>();
  auto barrier = std::make_shared<LazyStage>();
  barrier->run = [ds, staged, engine, key_fn, buckets, captured] {
    constexpr std::size_t kSamplesPerPartition = 32;
    const std::size_t upstream = ds.partition_count();
    auto less = [key_fn](const T& a, const T& b) {
      return key_fn(a) < key_fn(b);
    };

    // Stage 1 (fused with the upstream scan): sample evenly spaced keys,
    // then stash the partition in the single-bucket hold sink — rows keep
    // their encounter order whether resident or spilled.
    auto hold = std::make_shared<spill::ScatterSink<T>>(engine->spill(),
                                                        upstream, 1);
    std::vector<std::vector<Key>> samples(upstream);
    Stopwatch map_watch;
    detail::run_labeled_stage(*engine, captured, "sort_by:fused", [&] {
      ds.for_each_partition([&](const TaskContext& ctx, std::vector<T> rows) {
        const std::size_t n = rows.size();
        const std::size_t take = std::min(kSamplesPerPartition, n);
        auto& s = samples[ctx.task_index];
        s.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          s.push_back(key_fn(rows[i * n / take]));
        }
        for (auto& v : rows) hold->emit(ctx.task_index, 0, std::move(v));
      });
    });

    // Driver: splitters at even quantiles of the pooled sorted sample.
    std::vector<Key> pooled;
    for (auto& s : samples) {
      pooled.insert(pooled.end(), std::make_move_iterator(s.begin()),
                    std::make_move_iterator(s.end()));
    }
    std::sort(pooled.begin(), pooled.end());
    std::vector<Key> splitters;
    if (buckets > 1 && !pooled.empty()) {
      splitters.reserve(buckets - 1);
      for (std::size_t b = 1; b < buckets; ++b) {
        splitters.push_back(
            pooled[std::min(pooled.size() - 1, b * pooled.size() / buckets)]);
      }
    }

    // Stage 2: replay each held lane and range-scatter into the output
    // sink (presorted spills). Equal keys always land in the same bucket,
    // so stability is decided within one bucket.
    auto sink = std::make_shared<spill::ScatterSink<T>>(
        engine->spill(), upstream, buckets,
        typename spill::ScatterSink<T>::Less(less));
    detail::run_labeled_stage(*engine, nullptr, "sort_by:scatter", [&] {
      engine->run_stage(upstream, {}, [&](const TaskContext& ctx) {
        hold->for_each_lane_row(ctx.task_index, [&](T v) {
          const auto d = static_cast<std::size_t>(
              std::upper_bound(splitters.begin(), splitters.end(),
                               key_fn(v)) -
              splitters.begin());
          sink->emit(ctx.task_index, d, std::move(v));
        });
      });
    });
    hold.reset();  // free held runs/cells before the reduce side runs
    staged->record = engine->record_shuffle_detail(
        "sort_by", upstream, map_watch.elapsed_seconds(),
        sink->bucket_record_counts(), sink->spilled_bytes(),
        sink->spill_file_count());
    staged->sink = std::move(sink);
  };

  // Lazy output partitions: bucket d holds the d-th key range.
  std::vector<typename Dataset<T>::Partition> parts;
  parts.reserve(buckets);
  for (std::size_t d = 0; d < buckets; ++d) {
    parts.push_back({[staged, engine, key_fn, d](const TaskContext&) {
                       Stopwatch watch;
                       std::uint64_t passes = 0;
                       std::vector<T> rows = staged->sink->merge_sorted(
                           d,
                           [&](const T& a, const T& b) {
                             return key_fn(a) < key_fn(b);
                           },
                           &passes);
                       if (passes > 0) {
                         staged->record->merge_passes.fetch_add(
                             passes, std::memory_order_relaxed);
                       }
                       engine->add_shuffle_reduce_us(
                           *staged->record,
                           static_cast<std::uint64_t>(watch.elapsed_micros()));
                       return rows;
                     },
                     -1});
  }
  return Dataset<T>(ds.engine(), std::move(parts), {std::move(barrier)});
}

}  // namespace hpcla::sparklite
