// Micro-batch streaming: sparklite's Spark-Streaming analogue.
//
// Paper §III-D: "the analytic framework places a subscriber that delivers
// event messages to [the] Spark streaming module ... the time window of the
// Spark streaming is set to one second." We reproduce the semantics
// deterministically: batches are formed on *event time* (message
// timestamps), one batch per whole window, delivered in window order —
// so tests and benches are reproducible regardless of wall-clock jitter.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "buslite/broker.hpp"
#include "common/clock.hpp"

namespace hpcla::sparklite {

/// One event-time window of messages.
struct MicroBatch {
  /// Window start, in milliseconds since epoch (aligned to window size).
  UnixMillis window_start = 0;
  std::vector<buslite::Message> messages;
};

struct StreamOptions {
  /// Window size in milliseconds (paper: 1000).
  std::int64_t window_ms = 1000;
  /// Max messages pulled from the bus per poll round.
  std::size_t max_poll = 4096;
};

/// Pull-driven micro-batch stream over a buslite topic.
class MicroBatchStream {
 public:
  using Handler = std::function<void(const MicroBatch&)>;

  MicroBatchStream(buslite::Broker& broker, std::string group,
                   std::string topic, StreamOptions options = {})
      : MicroBatchStream(broker, std::move(group), std::move(topic), 0, 1,
                         options) {}

  /// Consumer-group member: this stream owns only the member's partitions,
  /// so several streams can drain one topic in parallel without overlap.
  MicroBatchStream(buslite::Broker& broker, std::string group,
                   std::string topic, std::size_t member_index,
                   std::size_t member_count, StreamOptions options = {})
      : consumer_(broker, std::move(group), std::move(topic), member_index,
                  member_count),
        options_(options) {}

  /// Drains everything currently on the topic, groups it into event-time
  /// windows, and invokes the handler once per window in ascending window
  /// order. Commits consumer offsets afterwards. Returns batches delivered.
  std::size_t process_available(const Handler& handler) {
    std::map<UnixMillis, MicroBatch> windows;
    while (true) {
      auto msgs = consumer_.poll(options_.max_poll);
      if (msgs.empty()) break;
      for (auto& m : msgs) {
        const UnixMillis w = align(m.timestamp);
        auto& batch = windows[w];
        batch.window_start = w;
        batch.messages.push_back(std::move(m));
      }
    }
    for (auto& [_, batch] : windows) {
      // Stable order within a window: by timestamp, then key.
      std::stable_sort(batch.messages.begin(), batch.messages.end(),
                       [](const buslite::Message& a, const buslite::Message& b) {
                         if (a.timestamp != b.timestamp) {
                           return a.timestamp < b.timestamp;
                         }
                         return a.key < b.key;
                       });
      handler(batch);
      ++batches_;
      messages_ += batch.messages.size();
    }
    consumer_.commit();
    return windows.size();
  }

  [[nodiscard]] std::uint64_t batches_processed() const noexcept {
    return batches_;
  }
  [[nodiscard]] std::uint64_t messages_processed() const noexcept {
    return messages_;
  }

 private:
  [[nodiscard]] UnixMillis align(UnixMillis ts) const noexcept {
    UnixMillis w = ts / options_.window_ms;
    if (ts % options_.window_ms < 0) --w;
    return w * options_.window_ms;
  }

  buslite::Consumer consumer_;
  StreamOptions options_;
  std::uint64_t batches_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace hpcla::sparklite
