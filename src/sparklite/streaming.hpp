// Micro-batch streaming: sparklite's Spark-Streaming analogue.
//
// Paper §III-D: "the analytic framework places a subscriber that delivers
// event messages to [the] Spark streaming module ... the time window of the
// Spark streaming is set to one second." We reproduce the semantics
// deterministically: batches are formed on *event time* (message
// timestamps), one batch per whole window, delivered in window order —
// so tests and benches are reproducible regardless of wall-clock jitter.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "buslite/broker.hpp"
#include "common/clock.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"

namespace hpcla::sparklite {

/// One event-time window of messages.
struct MicroBatch {
  /// Window start, in milliseconds since epoch (aligned to window size).
  UnixMillis window_start = 0;
  std::vector<buslite::Message> messages;
};

struct StreamOptions {
  /// Window size in milliseconds (paper: 1000).
  std::int64_t window_ms = 1000;
  /// Max messages pulled from the bus per poll round.
  std::size_t max_poll = 4096;
  /// When set, owned partitions are drained in parallel on this pool (one
  /// poll loop per partition). Handlers still run sequentially on the
  /// calling thread, in ascending window order.
  ThreadPool* pool = nullptr;
};

/// Pull-driven micro-batch stream over a buslite topic.
class MicroBatchStream {
 public:
  using Handler = std::function<void(const MicroBatch&)>;

  MicroBatchStream(buslite::Broker& broker, std::string group,
                   std::string topic, StreamOptions options = {})
      : MicroBatchStream(broker, std::move(group), std::move(topic), 0, 1,
                         options) {}

  /// Consumer-group member: this stream owns only the member's partitions,
  /// so several streams can drain one topic in parallel without overlap.
  MicroBatchStream(buslite::Broker& broker, std::string group,
                   std::string topic, std::size_t member_index,
                   std::size_t member_count, StreamOptions options = {})
      : internal_(!topic.empty() && topic.front() == '_'),
        consumer_(broker, std::move(group), std::move(topic), member_index,
                  member_count),
        options_(options) {}

  /// Drains everything currently on the topic, groups it into event-time
  /// windows, and invokes the handler once per window in ascending window
  /// order. Commits consumer offsets afterwards. Returns batches delivered.
  ///
  /// Messages within a window are ordered by (timestamp, key) — ties on
  /// both keep bus-partition offset order, which for non-empty keys is the
  /// produce order (one key always maps to one partition). Each partition
  /// is drained as an independent run and the per-window runs are k-way
  /// merged, so the common case (runs already time-ordered) skips the full
  /// per-window sort.
  std::size_t process_available(const Handler& handler) {
    // Phase 1: drain every owned partition into its own run, preserving
    // the broker's per-partition total order. Runs are independent, so
    // with a pool they drain in parallel.
    const std::size_t n_owned = consumer_.assignment().size();
    std::vector<std::vector<buslite::Message>> runs(n_owned);
    auto drain_one = [this, &runs](std::size_t i) {
      auto& run = runs[i];
      while (true) {
        auto msgs = consumer_.poll_one(i, options_.max_poll);
        if (msgs.empty()) break;
        run.insert(run.end(), std::make_move_iterator(msgs.begin()),
                   std::make_move_iterator(msgs.end()));
      }
    };
    if (options_.pool != nullptr && n_owned > 1) {
      options_.pool->parallel_for(n_owned, drain_one);
    } else {
      for (std::size_t i = 0; i < n_owned; ++i) drain_one(i);
    }

    // Phase 2: split each run into per-window sub-runs, remembering
    // whether the sub-run arrived already (ts, key)-ordered.
    struct SubRun {
      std::vector<buslite::Message> messages;
      bool ordered = true;
    };
    std::map<UnixMillis, std::vector<SubRun>> windows;
    for (auto& run : runs) {
      std::map<UnixMillis, SubRun> by_window;
      for (auto& m : run) {
        SubRun& sub = by_window[align(m.timestamp)];
        if (!sub.messages.empty() && less(m, sub.messages.back())) {
          sub.ordered = false;
        }
        sub.messages.push_back(std::move(m));
      }
      for (auto& [w, sub] : by_window) {
        windows[w].push_back(std::move(sub));
      }
    }

    // Phase 3: per window, k-way merge the (now sorted) sub-runs. Ties
    // across sub-runs go to the lower partition index; ties within a
    // sub-run keep offset order (the sort below is stable).
    for (auto& [w, subs] : windows) {
      for (auto& sub : subs) {
        if (!sub.ordered) {
          std::stable_sort(
              sub.messages.begin(), sub.messages.end(),
              [](const buslite::Message& a, const buslite::Message& b) {
                return less(a, b);
              });
        }
      }
      MicroBatch batch;
      batch.window_start = w;
      std::size_t total = 0;
      for (const auto& sub : subs) total += sub.messages.size();
      batch.messages.reserve(total);
      std::vector<std::size_t> pos(subs.size(), 0);
      for (std::size_t out = 0; out < total; ++out) {
        std::size_t best = subs.size();
        for (std::size_t i = 0; i < subs.size(); ++i) {
          if (pos[i] >= subs[i].messages.size()) continue;
          if (best == subs.size() ||
              less(subs[i].messages[pos[i]], subs[best].messages[pos[best]])) {
            best = i;
          }
        }
        batch.messages.push_back(std::move(subs[best].messages[pos[best]]));
        ++pos[best];
      }
      {
        telemetry::Span span("streaming.window");
        span.tag("window_start", batch.window_start);
        span.tag("messages",
                 static_cast<std::uint64_t>(batch.messages.size()));
        handler(batch);
      }
      ++batches_;
      messages_ += batch.messages.size();
      batches_ctr_.add(1);
      messages_ctr_.add(batch.messages.size());
    }
    consumer_.commit();
    return windows.size();
  }

  [[nodiscard]] std::uint64_t batches_processed() const noexcept {
    return batches_;
  }
  [[nodiscard]] std::uint64_t messages_processed() const noexcept {
    return messages_;
  }

 private:
  /// Window delivery order: by timestamp, then key.
  [[nodiscard]] static bool less(const buslite::Message& a,
                                 const buslite::Message& b) noexcept {
    if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
    return a.key < b.key;
  }

  [[nodiscard]] UnixMillis align(UnixMillis ts) const noexcept {
    UnixMillis w = ts / options_.window_ms;
    if (ts % options_.window_ms < 0) --w;
    return w * options_.window_ms;
  }

  /// Streams over internal (`_`-prefixed) topics — the self-telemetry
  /// drain — count under the excluded-from-export selftel. prefix so the
  /// exported streaming metrics only reflect foreground traffic.
  const bool internal_;
  buslite::Consumer consumer_;
  StreamOptions options_;
  std::uint64_t batches_ = 0;
  std::uint64_t messages_ = 0;
  // Process-wide instruments (the members above are this stream's view;
  // registry lookups are cached once so the loop records lock-free).
  telemetry::Counter& batches_ctr_ = telemetry::registry().counter(
      internal_ ? "selftel.streaming.batches" : "streaming.batches");
  telemetry::Counter& messages_ctr_ = telemetry::registry().counter(
      internal_ ? "selftel.streaming.messages" : "streaming.messages");
};

}  // namespace hpcla::sparklite
