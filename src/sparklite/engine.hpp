// sparklite execution engine: runs stages of partitioned tasks on a worker
// pool with locality-aware placement.
//
// The paper (§III-A) co-locates one Spark worker with each Cassandra node
// "to maximize data locality for the computation performed by the analytic
// algorithms". sparklite reproduces that scheduling decision: every
// partition of a dataset may carry a preferred node; the scheduler assigns
// the task to the co-located worker when locality is enabled, and charges a
// simulated network penalty when a task must fetch its partition from a
// non-local node. Because the simulation is in-process, the penalty is the
// *model* of the network — the counters (local hits / remote fetches) are
// the ground truth the locality benches report.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"

namespace hpcla::sparklite {

/// Per-task information handed to partition compute functions.
struct TaskContext {
  std::size_t task_index = 0;   ///< partition index within the stage
  int assigned_worker = 0;      ///< worker chosen by the scheduler
  bool local = true;            ///< preferred node == assigned worker
};

/// Engine-level counters.
struct EngineMetrics {
  std::uint64_t stages = 0;
  std::uint64_t tasks = 0;
  std::uint64_t local_tasks = 0;
  std::uint64_t remote_fetches = 0;
  std::uint64_t shuffles = 0;
  std::uint64_t shuffle_records = 0;
};

/// One completed stage, as shown by the job-history view (the textual
/// stand-in for the Spark web UI's stage table).
struct StageRecord {
  std::string label;          ///< from set_next_stage_label(), or "stage-N"
  std::size_t tasks = 0;
  std::uint64_t local_tasks = 0;
  std::uint64_t remote_fetches = 0;
  double seconds = 0.0;       ///< wall time of the stage
};

/// Scheduling configuration for an Engine.
struct EngineOptions {
  /// Number of workers (threads); worker w is co-located with node w.
  std::size_t workers = 4;
  /// Schedule tasks onto the worker co-located with their partition's
  /// preferred node (true) or round-robin ignoring locality (false).
  bool locality_aware = true;
  /// Simulated cost of a non-local partition fetch, in microseconds.
  /// 0 disables the sleep; counters are maintained either way.
  int remote_fetch_penalty_us = 0;
};

/// The sparklite "cluster": a pool of workers, each notionally co-located
/// with the same-indexed cassalite node.
class Engine {
 public:
  using Options = EngineOptions;

  explicit Engine(Options options = Options())
      : options_(options), pool_(std::max<std::size_t>(options.workers, 1)) {}

  [[nodiscard]] std::size_t workers() const noexcept { return pool_.size(); }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Runs one stage: `compute(ctx)` for each of n partitions, in parallel.
  /// `preferred` gives each partition's preferred node (-1 = anywhere).
  /// Results are delivered through the callback, indexed by partition.
  template <typename ComputeFn>
  void run_stage(std::size_t n, const std::vector<int>& preferred,
                 ComputeFn&& compute) {
    const std::uint64_t stage_no =
        stages_.fetch_add(1, std::memory_order_relaxed) + 1;
    tasks_.fetch_add(n, std::memory_order_relaxed);
    const std::size_t w = workers();
    std::atomic<std::uint64_t> stage_local{0};
    std::atomic<std::uint64_t> stage_remote{0};
    Stopwatch watch;
    pool_.parallel_for(n, [&](std::size_t i) {
      TaskContext ctx;
      ctx.task_index = i;
      const int pref =
          i < preferred.size() ? preferred[i] : -1;
      if (pref >= 0 && options_.locality_aware) {
        ctx.assigned_worker = static_cast<int>(
            static_cast<std::size_t>(pref) % w);
      } else {
        ctx.assigned_worker = static_cast<int>(i % w);
      }
      ctx.local = pref < 0 || ctx.assigned_worker ==
                                  static_cast<int>(
                                      static_cast<std::size_t>(pref) % w);
      if (ctx.local) {
        local_tasks_.fetch_add(1, std::memory_order_relaxed);
        stage_local.fetch_add(1, std::memory_order_relaxed);
      } else {
        remote_fetches_.fetch_add(1, std::memory_order_relaxed);
        stage_remote.fetch_add(1, std::memory_order_relaxed);
        if (options_.remote_fetch_penalty_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(options_.remote_fetch_penalty_us));
        }
      }
      compute(ctx);
    });
    record_stage(stage_no, n, stage_local.load(), stage_remote.load(),
                 watch.elapsed_seconds());
  }

  /// Labels the *next* stage in the job history (consumed once). Useful
  /// observability: analytics jobs tag their scans and shuffles.
  void set_next_stage_label(std::string label) {
    std::lock_guard lock(history_mu_);
    next_label_ = std::move(label);
  }

  /// Completed stages, oldest first (bounded to the last kHistoryLimit).
  [[nodiscard]] std::vector<StageRecord> stage_history() const {
    std::lock_guard lock(history_mu_);
    return history_;
  }

  /// Text rendering of the stage table (the Spark-UI stand-in).
  [[nodiscard]] std::string render_history() const {
    std::lock_guard lock(history_mu_);
    std::string out =
        "stage                          tasks  local  remote   wall_ms\n";
    for (const auto& s : history_) {
      char line[160];
      std::snprintf(line, sizeof(line), "%-30s %5zu  %5llu  %6llu  %8.3f\n",
                    s.label.c_str(), s.tasks,
                    static_cast<unsigned long long>(s.local_tasks),
                    static_cast<unsigned long long>(s.remote_fetches),
                    s.seconds * 1e3);
      out += line;
    }
    return out;
  }

  /// Bookkeeping hook for wide (shuffle) operations.
  void record_shuffle(std::uint64_t records) noexcept {
    shuffles_.fetch_add(1, std::memory_order_relaxed);
    shuffle_records_.fetch_add(records, std::memory_order_relaxed);
  }

  [[nodiscard]] EngineMetrics metrics() const {
    EngineMetrics m;
    m.stages = stages_.load(std::memory_order_relaxed);
    m.tasks = tasks_.load(std::memory_order_relaxed);
    m.local_tasks = local_tasks_.load(std::memory_order_relaxed);
    m.remote_fetches = remote_fetches_.load(std::memory_order_relaxed);
    m.shuffles = shuffles_.load(std::memory_order_relaxed);
    m.shuffle_records = shuffle_records_.load(std::memory_order_relaxed);
    return m;
  }

  /// Direct pool access (streaming and tests).
  ThreadPool& pool() noexcept { return pool_; }

 private:
  static constexpr std::size_t kHistoryLimit = 256;

  void record_stage(std::uint64_t stage_no, std::size_t tasks,
                    std::uint64_t local, std::uint64_t remote,
                    double seconds) {
    std::lock_guard lock(history_mu_);
    StageRecord rec;
    rec.label = next_label_.empty() ? "stage-" + std::to_string(stage_no)
                                    : std::move(next_label_);
    next_label_.clear();
    rec.tasks = tasks;
    rec.local_tasks = local;
    rec.remote_fetches = remote;
    rec.seconds = seconds;
    history_.push_back(std::move(rec));
    if (history_.size() > kHistoryLimit) {
      history_.erase(history_.begin(),
                     history_.begin() +
                         static_cast<std::ptrdiff_t>(history_.size() -
                                                     kHistoryLimit));
    }
  }

  Options options_;
  ThreadPool pool_;
  mutable std::mutex history_mu_;
  std::string next_label_;
  std::vector<StageRecord> history_;
  std::atomic<std::uint64_t> stages_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> local_tasks_{0};
  std::atomic<std::uint64_t> remote_fetches_{0};
  std::atomic<std::uint64_t> shuffles_{0};
  std::atomic<std::uint64_t> shuffle_records_{0};
};

}  // namespace hpcla::sparklite
