// sparklite execution engine: runs stages of partitioned tasks on a worker
// pool with locality-aware placement.
//
// The paper (§III-A) co-locates one Spark worker with each Cassandra node
// "to maximize data locality for the computation performed by the analytic
// algorithms". sparklite reproduces that scheduling decision: every
// partition of a dataset may carry a preferred node; the scheduler assigns
// the task to the co-located worker when locality is enabled, and charges a
// simulated network penalty when a task must fetch its partition from a
// non-local node. Because the simulation is in-process, the penalty is the
// *model* of the network — the counters (local hits / remote fetches) are
// the ground truth the locality benches report.
//
// Observability is off the hot path (DESIGN.md §9): the next-stage label is
// an atomic pointer slot and completed stages publish into a fixed ring of
// per-slot spinlocked records, so concurrent jobs sharing one Engine never
// serialize on a history mutex. Wide operations additionally record a
// ShuffleRecord (map wall time, per-bucket record counts, skew) through
// record_shuffle_detail; the lazy reduce side accumulates its merge time
// into the same record as actions execute.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "sparklite/spill.hpp"

namespace hpcla::sparklite {

/// Per-task information handed to partition compute functions.
struct TaskContext {
  std::size_t task_index = 0;   ///< partition index within the stage
  int assigned_worker = 0;      ///< worker chosen by the scheduler
  bool local = true;            ///< preferred node == assigned worker
};

/// Engine-level counters.
struct EngineMetrics {
  std::uint64_t stages = 0;
  std::uint64_t tasks = 0;
  std::uint64_t local_tasks = 0;
  std::uint64_t remote_fetches = 0;
  std::uint64_t shuffles = 0;
  std::uint64_t shuffle_records = 0;
  std::uint64_t shuffle_map_us = 0;     ///< wall time of map-side stages
  std::uint64_t shuffle_reduce_us = 0;  ///< accumulated lazy merge time
  std::uint64_t bytes_spilled = 0;      ///< compressed bytes written to runs
  std::uint64_t spill_files = 0;        ///< run files created
  std::uint64_t merge_passes = 0;       ///< intermediate external-merge passes
};

/// One completed stage, as shown by the job-history view (the textual
/// stand-in for the Spark web UI's stage table).
struct StageRecord {
  std::string label;          ///< from set_next_stage_label(), or "stage-N"
  std::size_t tasks = 0;
  std::uint64_t local_tasks = 0;
  std::uint64_t remote_fetches = 0;
  double seconds = 0.0;       ///< wall time of the stage
};

/// One wide operation's shuffle, recorded by the dataset layer: where the
/// records went (per-bucket counts, skew) and where the time went (map
/// stage wall time vs reduce-side merge time).
struct ShuffleRecord {
  std::string label;            ///< operation name (reduce_by_key, join, ...)
  std::size_t map_tasks = 0;    ///< upstream partitions combined+scattered
  std::size_t buckets = 0;      ///< downstream partitions
  std::uint64_t records = 0;    ///< rows scattered after map-side combine
  std::uint64_t max_bucket = 0; ///< largest bucket's record count
  double mean_bucket = 0.0;
  double skew = 1.0;            ///< max/mean bucket records; 1.0 = balanced
  double map_seconds = 0.0;
  std::uint64_t bytes_spilled = 0;  ///< compressed run bytes this shuffle wrote
  std::uint64_t spill_files = 0;    ///< run files this shuffle created
  /// Early flushes of map-side combine/group tables that crossed the lane
  /// budget (0 = every table stayed resident, the pre-spill behavior).
  std::uint64_t combine_flushes = 0;
  /// Largest approximate footprint any lane's combine table reached — the
  /// residency bound the spill tests assert against the lane budget.
  std::uint64_t combine_peak_bytes = 0;
  /// Reduce-side merge wall time, summed over lazy bucket evaluations
  /// (recomputation of an uncached shuffled dataset adds to it).
  std::atomic<std::uint64_t> reduce_us{0};
  /// Intermediate external-merge passes run by lazy sorted buckets.
  std::atomic<std::uint64_t> merge_passes{0};
};

/// Scheduling configuration for an Engine.
struct EngineOptions {
  /// Number of workers (threads); worker w is co-located with node w.
  std::size_t workers = 4;
  /// Schedule tasks onto the worker co-located with their partition's
  /// preferred node (true) or round-robin ignoring locality (false).
  bool locality_aware = true;
  /// Simulated cost of a non-local partition fetch, in microseconds.
  /// 0 disables the sleep; counters are maintained either way.
  int remote_fetch_penalty_us = 0;
  /// Shuffle spill budget in bytes, split evenly across a shuffle's map
  /// lanes. nullopt inherits HPCLA_SPILL_BUDGET_BYTES (unset/0 = spilling
  /// off); an explicit value overrides the env — 0 forces the pure
  /// in-memory shuffle regardless of environment.
  std::optional<std::size_t> shuffle_spill_bytes;
  /// Directory for spill run files; empty = HPCLA_SPILL_DIR, else the
  /// system temp dir. Created lazily, removed with the engine.
  std::string spill_dir;
  /// Max run files merged per external-merge pass in spilled sort_by.
  std::size_t spill_merge_fan_in = 16;
};

/// The sparklite "cluster": a pool of workers, each notionally co-located
/// with the same-indexed cassalite node.
class Engine {
 public:
  using Options = EngineOptions;

  explicit Engine(Options options = Options())
      : options_(options),
        pool_(std::max<std::size_t>(options.workers, 1)),
        spill_(options.shuffle_spill_bytes, options.spill_dir,
               options.spill_merge_fan_in) {
    telemetry_ = telemetry::registry().register_collector(
        [this](telemetry::MetricSink& sink) { collect(sink); });
  }

  ~Engine() { delete next_label_.load(std::memory_order_acquire); }

  [[nodiscard]] std::size_t workers() const noexcept { return pool_.size(); }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Runs one stage: `compute(ctx)` for each of n partitions, in parallel.
  /// `preferred` gives each partition's preferred node (-1 = anywhere).
  /// Results are delivered through the callback, indexed by partition.
  /// Safe to call from multiple driver threads concurrently.
  template <typename ComputeFn>
  void run_stage(std::size_t n, const std::vector<int>& preferred,
                 ComputeFn&& compute) {
    const std::uint64_t stage_no =
        stages_.fetch_add(1, std::memory_order_acq_rel) + 1;
    tasks_.fetch_add(n, std::memory_order_relaxed);
    // Consume the pending label at stage start: the stage that begins next
    // owns it, even if a longer concurrent stage finishes after us.
    std::unique_ptr<std::string> label(
        next_label_.exchange(nullptr, std::memory_order_acq_rel));
    telemetry::Span stage_span("sparklite.stage");
    if (label) stage_span.tag("label", *label);
    stage_span.tag("tasks", static_cast<std::uint64_t>(n));
    // Tasks run on pool threads: hand them the stage span's context so
    // spans opened inside compute() (e.g. cassalite.scan) parent here.
    const telemetry::TraceContext tctx = telemetry::current();
    const std::size_t w = workers();
    std::atomic<std::uint64_t> stage_local{0};
    std::atomic<std::uint64_t> stage_remote{0};
    Stopwatch watch;
    pool_.parallel_for(n, [&](std::size_t i) {
      const telemetry::ScopedContext tguard(tctx);
      TaskContext ctx;
      ctx.task_index = i;
      const int pref =
          i < preferred.size() ? preferred[i] : -1;
      if (pref >= 0 && options_.locality_aware) {
        ctx.assigned_worker = static_cast<int>(
            static_cast<std::size_t>(pref) % w);
      } else {
        ctx.assigned_worker = static_cast<int>(i % w);
      }
      ctx.local = pref < 0 || ctx.assigned_worker ==
                                  static_cast<int>(
                                      static_cast<std::size_t>(pref) % w);
      if (ctx.local) {
        local_tasks_.fetch_add(1, std::memory_order_relaxed);
        stage_local.fetch_add(1, std::memory_order_relaxed);
      } else {
        remote_fetches_.fetch_add(1, std::memory_order_relaxed);
        stage_remote.fetch_add(1, std::memory_order_relaxed);
        if (options_.remote_fetch_penalty_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(options_.remote_fetch_penalty_us));
        }
      }
      compute(ctx);
    });
    const double seconds = watch.elapsed_seconds();
    stage_hist_.record(static_cast<std::uint64_t>(seconds * 1e6));
    record_stage(stage_no, label ? std::move(*label) : std::string(), n,
                 stage_local.load(), stage_remote.load(), seconds);
  }

  /// Labels the *next* stage in the job history (consumed once). Useful
  /// observability: analytics jobs tag their scans and shuffles. Lock-free:
  /// the label parks in an atomic pointer slot until a stage claims it.
  void set_next_stage_label(std::string label) {
    delete next_label_.exchange(new std::string(std::move(label)),
                                std::memory_order_acq_rel);
  }

  /// Claims the parked next-stage label without running a stage. Wide ops
  /// pin the caller's label at call time so the deferred (lazy) map stage
  /// can claim it when an action eventually runs it — otherwise the label
  /// the caller parks for its *own* post-shuffle stage would clobber it.
  [[nodiscard]] std::unique_ptr<std::string> take_next_label() {
    return std::unique_ptr<std::string>(
        next_label_.exchange(nullptr, std::memory_order_acq_rel));
  }

  /// Completed stages, oldest first (bounded to the last kHistoryLimit).
  /// Concurrent with running stages; stages still in flight (or overwritten
  /// mid-read) are simply absent from the snapshot.
  [[nodiscard]] std::vector<StageRecord> stage_history() const {
    const std::uint64_t end = stages_.load(std::memory_order_acquire);
    const std::uint64_t start = end > kHistoryLimit ? end - kHistoryLimit : 0;
    std::vector<StageRecord> out;
    out.reserve(static_cast<std::size_t>(end - start));
    for (std::uint64_t i = start; i < end; ++i) {
      auto& slot = history_[i % kHistoryLimit];
      slot.acquire();
      std::shared_ptr<const SeqRecord> rec = slot.rec;
      slot.release();
      if (rec && rec->seq == i) out.push_back(rec->rec);
    }
    return out;
  }

  /// Text rendering of the stage + shuffle tables (the Spark-UI stand-in).
  [[nodiscard]] std::string render_history() const {
    std::string out =
        "stage                          tasks  local  remote   wall_ms\n";
    for (const auto& s : stage_history()) {
      char line[160];
      std::snprintf(line, sizeof(line), "%-30s %5zu  %5llu  %6llu  %8.3f\n",
                    s.label.c_str(), s.tasks,
                    static_cast<unsigned long long>(s.local_tasks),
                    static_cast<unsigned long long>(s.remote_fetches),
                    s.seconds * 1e3);
      out += line;
    }
    const auto shuffles = shuffle_history();
    if (!shuffles.empty()) {
      out +=
          "shuffle                count  maps  buckets     records   skew"
          "    map_ms  reduce_ms  spill_kb  runs  merges  cflush\n";
      for (const auto& sh : shuffles) {
        char line[240];
        std::snprintf(
            line, sizeof(line),
            "%-28s %5zu  %7zu  %10llu  %5.2f  %8.3f  %9.3f  %8llu  %4llu"
            "  %6llu  %6llu\n",
            sh->label.c_str(), sh->map_tasks, sh->buckets,
            static_cast<unsigned long long>(sh->records), sh->skew,
            sh->map_seconds * 1e3,
            static_cast<double>(
                sh->reduce_us.load(std::memory_order_relaxed)) /
                1e3,
            static_cast<unsigned long long>(sh->bytes_spilled / 1024),
            static_cast<unsigned long long>(sh->spill_files),
            static_cast<unsigned long long>(
                sh->merge_passes.load(std::memory_order_relaxed)),
            static_cast<unsigned long long>(sh->combine_flushes));
        out += line;
      }
    }
    return out;
  }

  /// Bookkeeping hook for wide (shuffle) operations (counters only).
  void record_shuffle(std::uint64_t records) noexcept {
    shuffles_.fetch_add(1, std::memory_order_relaxed);
    shuffle_records_.fetch_add(records, std::memory_order_relaxed);
  }

  /// Full shuffle bookkeeping: counters plus a ShuffleRecord carrying the
  /// map-stage wall time, per-bucket record counts (skew = max/mean), and
  /// the map side's spill volume. Returns the record so the lazy reduce
  /// side can add its merge time and external-merge passes.
  std::shared_ptr<ShuffleRecord> record_shuffle_detail(
      std::string label, std::size_t map_tasks, double map_seconds,
      const std::vector<std::uint64_t>& bucket_records,
      std::uint64_t bytes_spilled = 0, std::uint64_t spill_files = 0,
      std::uint64_t combine_flushes = 0,
      std::uint64_t combine_peak_bytes = 0) {
    auto rec = std::make_shared<ShuffleRecord>();
    rec->label = std::move(label);
    rec->map_tasks = map_tasks;
    rec->buckets = bucket_records.size();
    for (auto c : bucket_records) {
      rec->records += c;
      rec->max_bucket = std::max(rec->max_bucket, c);
    }
    rec->mean_bucket =
        rec->buckets ? static_cast<double>(rec->records) /
                           static_cast<double>(rec->buckets)
                     : 0.0;
    rec->skew = rec->mean_bucket > 0.0
                    ? static_cast<double>(rec->max_bucket) / rec->mean_bucket
                    : 1.0;
    rec->map_seconds = map_seconds;
    rec->bytes_spilled = bytes_spilled;
    rec->spill_files = spill_files;
    rec->combine_flushes = combine_flushes;
    rec->combine_peak_bytes = combine_peak_bytes;
    record_shuffle(rec->records);
    const auto map_us = static_cast<std::int64_t>(map_seconds * 1e6);
    // The map stage just finished: back-date the shuffle span over it.
    telemetry::emit_span(telemetry::current(), "sparklite.shuffle",
                         telemetry::tracer().now_us() - map_us, map_us,
                         {{"label", rec->label},
                          {"records", std::to_string(rec->records)},
                          {"buckets", std::to_string(rec->buckets)},
                          {"skew", std::to_string(rec->skew)},
                          {"bytes_spilled", std::to_string(bytes_spilled)},
                          {"spill_files", std::to_string(spill_files)}});
    shuffle_map_us_.fetch_add(
        static_cast<std::uint64_t>(map_seconds * 1e6),
        std::memory_order_relaxed);
    std::lock_guard lock(shuffle_mu_);
    shuffle_history_.push_back(rec);
    if (shuffle_history_.size() > kShuffleHistoryLimit) {
      shuffle_history_.erase(
          shuffle_history_.begin(),
          shuffle_history_.begin() +
              static_cast<std::ptrdiff_t>(shuffle_history_.size() -
                                          kShuffleHistoryLimit));
    }
    return rec;
  }

  /// Adds reduce-side merge time to `rec` and the engine totals.
  void add_shuffle_reduce_us(ShuffleRecord& rec, std::uint64_t us) noexcept {
    rec.reduce_us.fetch_add(us, std::memory_order_relaxed);
    shuffle_reduce_us_.fetch_add(us, std::memory_order_relaxed);
  }

  /// Recorded shuffles, oldest first (bounded to kShuffleHistoryLimit).
  [[nodiscard]] std::vector<std::shared_ptr<const ShuffleRecord>>
  shuffle_history() const {
    std::lock_guard lock(shuffle_mu_);
    return {shuffle_history_.begin(), shuffle_history_.end()};
  }

  [[nodiscard]] EngineMetrics metrics() const {
    EngineMetrics m;
    m.stages = stages_.load(std::memory_order_relaxed);
    m.tasks = tasks_.load(std::memory_order_relaxed);
    m.local_tasks = local_tasks_.load(std::memory_order_relaxed);
    m.remote_fetches = remote_fetches_.load(std::memory_order_relaxed);
    m.shuffles = shuffles_.load(std::memory_order_relaxed);
    m.shuffle_records = shuffle_records_.load(std::memory_order_relaxed);
    m.shuffle_map_us = shuffle_map_us_.load(std::memory_order_relaxed);
    m.shuffle_reduce_us = shuffle_reduce_us_.load(std::memory_order_relaxed);
    m.bytes_spilled = spill_.bytes_spilled();
    m.spill_files = spill_.spill_files();
    m.merge_passes = spill_.merge_passes();
    return m;
  }

  /// Direct pool access (streaming and tests).
  ThreadPool& pool() noexcept { return pool_; }

  /// Spill configuration + accounting for this engine's shuffles. (The
  /// manager mirrors its counters onto the global `sparklite.spill.*`
  /// registry counters itself, so collect() below must not re-report them.)
  spill::SpillManager& spill() noexcept { return spill_; }

 private:
  /// Registry collector body: engine counters plus the most recent
  /// shuffle's skew as a gauge (DESIGN.md §11 naming).
  void collect(telemetry::MetricSink& sink) const {
    const EngineMetrics m = metrics();
    sink.counter("sparklite.stages", m.stages);
    sink.counter("sparklite.tasks", m.tasks);
    sink.counter("sparklite.tasks.local", m.local_tasks);
    sink.counter("sparklite.remote_fetches", m.remote_fetches);
    sink.counter("sparklite.shuffles", m.shuffles);
    sink.counter("sparklite.shuffle.records", m.shuffle_records);
    sink.counter("sparklite.shuffle.map_us", m.shuffle_map_us);
    sink.counter("sparklite.shuffle.reduce_us", m.shuffle_reduce_us);
    const auto history = shuffle_history();
    if (!history.empty()) {
      sink.gauge("sparklite.shuffle.skew", history.back()->skew);
    }
  }

  static constexpr std::size_t kHistoryLimit = 256;
  static constexpr std::size_t kShuffleHistoryLimit = 64;

  /// A stage record stamped with its ring sequence so readers can tell a
  /// slot's current occupant from a lagging or newer overwrite.
  struct SeqRecord {
    std::uint64_t seq = 0;  ///< stage_no - 1
    StageRecord rec;
  };

  /// One ring slot: a spinlock guarding only a shared_ptr swap/copy, so
  /// concurrent stages contend per slot (different stages -> different
  /// slots), never on a whole-history mutex.
  struct HistorySlot {
    void acquire() const noexcept {
      while (lock.test_and_set(std::memory_order_acquire)) {}
    }
    void release() const noexcept { lock.clear(std::memory_order_release); }
    mutable std::atomic_flag lock;  // default-constructed clear (C++20)
    std::shared_ptr<const SeqRecord> rec;
  };

  void record_stage(std::uint64_t stage_no, std::string label,
                    std::size_t tasks, std::uint64_t local,
                    std::uint64_t remote, double seconds) {
    // Build the record (string formatting, allocation) before touching the
    // slot; the critical section is a pointer swap.
    auto rec = std::make_shared<SeqRecord>();
    rec->seq = stage_no - 1;
    rec->rec.label =
        label.empty() ? "stage-" + std::to_string(stage_no) : std::move(label);
    rec->rec.tasks = tasks;
    rec->rec.local_tasks = local;
    rec->rec.remote_fetches = remote;
    rec->rec.seconds = seconds;
    auto& slot = history_[rec->seq % kHistoryLimit];
    slot.acquire();
    // Only move forward: a slow stage must not clobber a newer lap's record.
    if (!slot.rec || slot.rec->seq <= rec->seq) slot.rec = std::move(rec);
    slot.release();
  }

  Options options_;
  ThreadPool pool_;
  spill::SpillManager spill_;
  std::atomic<std::string*> next_label_{nullptr};
  mutable std::array<HistorySlot, kHistoryLimit> history_;
  mutable std::mutex shuffle_mu_;  ///< shuffle list only; one lock per wide op
  std::vector<std::shared_ptr<ShuffleRecord>> shuffle_history_;
  std::atomic<std::uint64_t> stages_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> local_tasks_{0};
  std::atomic<std::uint64_t> remote_fetches_{0};
  std::atomic<std::uint64_t> shuffles_{0};
  std::atomic<std::uint64_t> shuffle_records_{0};
  std::atomic<std::uint64_t> shuffle_map_us_{0};
  std::atomic<std::uint64_t> shuffle_reduce_us_{0};
  telemetry::LatencyHistogram& stage_hist_ =
      telemetry::registry().histogram("sparklite.stage.us");
  // Last member: the collector captures `this` and must deregister first.
  telemetry::CollectorHandle telemetry_;
};

}  // namespace hpcla::sparklite
