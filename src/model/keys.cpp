#include "model/keys.hpp"

#include "common/strings.hpp"

namespace hpcla::model {

std::string event_time_key(std::int64_t hour, titanlog::EventType type) {
  return std::to_string(hour) + "|" + std::string(titanlog::event_id(type));
}

std::string event_location_key(std::int64_t hour, topo::NodeId node) {
  return std::to_string(hour) + "|" + std::to_string(node);
}

std::string synopsis_key(std::int64_t hour) { return std::to_string(hour); }

std::string app_time_key(std::int64_t hour) { return std::to_string(hour); }

std::string app_user_key(std::string_view user) { return std::string(user); }

std::string app_app_key(std::string_view app) { return std::string(app); }

std::string app_location_key(std::int64_t hour, topo::NodeId node) {
  return std::to_string(hour) + "|" + std::to_string(node);
}

std::string nodeinfo_key(topo::NodeId node) { return std::to_string(node); }

std::string eventtype_key(titanlog::EventType type) {
  return std::string(titanlog::event_id(type));
}

Result<EventTimeKey> parse_event_time_key(std::string_view key) {
  const auto bar = key.find('|');
  if (bar == std::string_view::npos) {
    return invalid_argument("bad event_by_time key '" + std::string(key) + "'");
  }
  long long hour = 0;
  if (!parse_int(key.substr(0, bar), hour)) {
    return invalid_argument("bad hour in key '" + std::string(key) + "'");
  }
  auto type = titanlog::event_type_from_id(key.substr(bar + 1));
  if (!type.is_ok()) return type.status();
  return EventTimeKey{hour, type.value()};
}

Result<EventLocationKey> parse_event_location_key(std::string_view key) {
  const auto bar = key.find('|');
  if (bar == std::string_view::npos) {
    return invalid_argument("bad event_by_location key '" + std::string(key) +
                            "'");
  }
  long long hour = 0;
  long long node = 0;
  if (!parse_int(key.substr(0, bar), hour) ||
      !parse_int(key.substr(bar + 1), node) || node < 0 ||
      node >= topo::TitanGeometry::kTotalNodes) {
    return invalid_argument("bad event_by_location key '" + std::string(key) +
                            "'");
  }
  return EventLocationKey{hour, static_cast<topo::NodeId>(node)};
}

}  // namespace hpcla::model
