// Incrementally-maintained materialized views over the ingest path
// (DESIGN.md §12). Generalizes the eventsynopsis mechanism: where the
// synopsis table keeps per-(hour, type) totals for the *simple* query
// path, the ViewCatalog keeps per-(hour, type) heatmap tiles — sparse
// node -> count maps — from which the server can answer the repeated
// complex queries (heat map, per-hour counts, top-K event types,
// hour-binned time series) without a scan->shuffle->reduce pipeline.
//
// Maintenance is incremental: BatchIngestor::write_event() applies every
// fully-written event to the covering tile, so the batch ETL and the
// streaming micro-batch path (which funnels its coalesced deltas through
// write_event) both keep the views current with no extra pass.
// Invalidation is epoch-based: every write into an hour bumps that hour's
// epoch counter (even a partially-failed write, which may have left one
// event table updated), and window_epoch() folds the per-hour epochs of a
// query window into a fingerprint the server's result cache stores with
// each entry — if ingest has touched any covered hour since the entry was
// computed, the fingerprints differ and the entry is invalidated instead
// of served. Epochs only grow, so a stale fingerprint can never collide
// with a fresh one.
//
// Like the synopsis table, the views assume the event stream is
// append-only with unique (ts, seq) per partition: re-upserting an
// identical row is counted again, exactly as apply_synopsis()'s
// read-modify-write would count it again.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/quantile_sketch.hpp"
#include "common/telemetry.hpp"
#include "titanlog/events.hpp"
#include "titanlog/record.hpp"
#include "topo/cname.hpp"

namespace hpcla::model::views {

/// The view-servable slice of an analytics context: the dimensions the
/// event tables filter on (users/apps never reach the event scan).
/// Defined here so the model layer does not depend on analytics.
struct ViewQuery {
  TimeRange window;
  std::vector<titanlog::EventType> types;  ///< empty = all types
  std::optional<topo::Coord> location;     ///< nullopt = whole system
};

struct ViewStats {
  std::uint64_t applied = 0;   ///< events folded into tiles
  std::uint64_t partial = 0;   ///< epoch-only bumps (partial writes)
  std::uint64_t hours = 0;     ///< distinct hours with a view
  std::uint64_t tiles = 0;     ///< (hour, type) tiles
  std::uint64_t sketch_tuples = 0;  ///< GK tuples resident across all tiles
};

/// One row of the view-served burst-size distribution: shaped like
/// analytics::BurstPercentiles so the server can share one serializer.
struct BurstSummary {
  std::string label;
  std::uint64_t events = 0;  ///< records folded into the sketch
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class ViewCatalog {
 public:
  ViewCatalog() {
    telemetry_ = telemetry::registry().register_collector(
        [this](telemetry::MetricSink& sink) {
          const ViewStats s = stats();
          sink.counter("model.views.applied", s.applied);
          sink.counter("model.views.partial", s.partial);
          sink.gauge("model.views.hours", static_cast<double>(s.hours));
          sink.gauge("model.views.tiles", static_cast<double>(s.tiles));
          sink.gauge("model.views.sketch_tuples",
                     static_cast<double>(s.sketch_tuples));
          sink.counter("model.views.epoch",
                       global_epoch_.load(std::memory_order_relaxed));
        });
  }

  /// True when the window fits the hourly tile grid: non-empty and
  /// hour-aligned on both ends, so every covered hour lies wholly inside
  /// the window and tile sums equal the engine's per-event filtering.
  [[nodiscard]] static bool aligned(const TimeRange& w) noexcept {
    return w.begin < w.end && w.begin % kHourSeconds == 0 &&
           w.end % kHourSeconds == 0;
  }

  /// Folds one ingested event into its (hour, type) tile and bumps the
  /// hour's epoch. `counted = false` (partial write: only one event table
  /// took the row) bumps the epoch without touching the counts, so caches
  /// over the window still invalidate.
  void apply(const titanlog::EventRecord& e, bool counted = true);

  /// Fingerprint of the window's ingest state: the sum of the covered
  /// hours' epoch counters (monotonic — any later write into any covered
  /// hour yields a strictly larger value). Windows spanning more than
  /// kMaxEpochHours fall back to the global epoch, which any write bumps.
  [[nodiscard]] std::uint64_t window_epoch(const TimeRange& w) const;

  /// Epoch over all hours (bumped by every apply()).
  [[nodiscard]] std::uint64_t global_epoch() const noexcept {
    return global_epoch_.load(std::memory_order_acquire);
  }

  // ------------------------------------------------------------ readers
  //
  // All readers filter exactly like the engine path (type membership,
  // topo::contains for location) and require an aligned() window for
  // results to match a cold recompute.

  /// Dense per-node occurrence counts (size = topo kTotalNodes), summing
  /// EventRecord::count — the heat map's input vector.
  [[nodiscard]] std::vector<std::int64_t> heatmap_counts(
      const ViewQuery& q) const;

  /// (hour, count) pairs ascending by hour; hours with no matching events
  /// are omitted (matching the engine's reduce-by-key output).
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>>
  hourly_counts(const ViewQuery& q) const;

  /// Per-type totals, descending by count then ascending by type label —
  /// the top-K event types of the window (k = 0 keeps all), shaped like
  /// distribution(group_by = type).
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> type_counts(
      const ViewQuery& q, std::size_t k = 0) const;

  /// Dense hour-binned series across the window (one bin per covered
  /// hour), the timeseries op's shape for bin_seconds = 3600.
  [[nodiscard]] std::vector<double> hour_series(const ViewQuery& q) const;

  /// Per-type burst-size percentiles, merged from the per-tile
  /// QuantileSketch summaries — the sketch-backed equivalent of
  /// analytics::burst_percentiles(group_by = type). Sketches are
  /// whole-system (tiles do not keep per-node sketches), so this reader
  /// ignores q.location; callers must only route location-free queries
  /// here. Percentiles carry GK rank error <= 2 * kBurstEpsilon and may
  /// differ from the engine path by merge order within that bound;
  /// labels, ordering, and event counts match exactly. Ordered
  /// descending by events then ascending by label.
  [[nodiscard]] std::vector<BurstSummary> burst_percentiles(
      const ViewQuery& q) const;

  [[nodiscard]] ViewStats stats() const;

  static constexpr std::int64_t kHourSeconds = 3600;
  /// Rank-error budget of the per-tile burst sketches. Matches the
  /// analytics::burst_percentiles default so the view path substitutes
  /// for the engine path at the server's default precision.
  static constexpr double kBurstEpsilon = 0.02;
  /// Above this many covered hours window_epoch() degrades to the global
  /// epoch (correct, coarser invalidation) instead of walking the span.
  static constexpr std::int64_t kMaxEpochHours = 4096;

 private:
  /// One (hour, type) tile: sparse node -> count, the tile total, and a
  /// mergeable burst-size sketch (one sample per record, value =
  /// EventRecord::count) in place of any exact percentile buffer —
  /// per-tile residency is O(1/epsilon), independent of record count.
  struct Tile {
    std::unordered_map<topo::NodeId, std::int64_t> node_counts;
    std::int64_t total = 0;
    QuantileSketch burst{kBurstEpsilon};
  };
  /// All tiles of one hour plus the hour's invalidation epoch.
  struct HourView {
    std::uint64_t epoch = 0;
    std::map<titanlog::EventType, Tile> tiles;
  };
  /// Hours are striped over shards so parallel ingest partitions rarely
  /// contend (they touch different hours or different stripes).
  struct Shard {
    mutable std::mutex mu;
    std::map<std::int64_t, HourView> hours;
  };
  static constexpr std::size_t kShards = 16;

  [[nodiscard]] Shard& shard_of(std::int64_t hour) const noexcept {
    return shards_[static_cast<std::size_t>(hour) % kShards];
  }

  /// Calls fn(hour, HourView) under the shard lock for each covered hour
  /// that has a view.
  template <typename Fn>
  void for_each_hour(const TimeRange& w, Fn&& fn) const {
    const std::int64_t h0 = w.first_hour();
    const std::int64_t h1 = w.last_hour();
    for (std::int64_t h = h0; h <= h1; ++h) {
      Shard& shard = shard_of(h);
      std::lock_guard lock(shard.mu);
      const auto it = shard.hours.find(h);
      if (it != shard.hours.end()) fn(h, it->second);
    }
  }

  mutable std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> partial_{0};
  std::atomic<std::uint64_t> global_epoch_{0};
  /// Last member: the collector captures `this` and must deregister first.
  telemetry::CollectorHandle telemetry_;
};

}  // namespace hpcla::model::views
