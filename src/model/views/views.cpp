#include "model/views/views.hpp"

#include <algorithm>

#include "topo/machine.hpp"

namespace hpcla::model::views {

using titanlog::EventRecord;

void ViewCatalog::apply(const EventRecord& e, bool counted) {
  const std::int64_t hour = hour_bucket(e.ts);
  {
    Shard& shard = shard_of(hour);
    std::lock_guard lock(shard.mu);
    HourView& hv = shard.hours[hour];
    ++hv.epoch;
    if (counted) {
      Tile& tile = hv.tiles[e.type];
      tile.node_counts[e.node] += e.count;
      tile.total += e.count;
      tile.burst.add(static_cast<double>(e.count));
    }
  }
  (counted ? applied_ : partial_).fetch_add(1, std::memory_order_relaxed);
  global_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

std::uint64_t ViewCatalog::window_epoch(const TimeRange& w) const {
  if (w.begin >= w.end) return 0;
  const std::int64_t span = w.last_hour() - w.first_hour() + 1;
  if (span > kMaxEpochHours) return global_epoch();
  std::uint64_t sum = 0;
  for_each_hour(w, [&sum](std::int64_t, const HourView& hv) {
    sum += hv.epoch;
  });
  return sum;
}

namespace {

bool wants_type(const ViewQuery& q, titanlog::EventType t) noexcept {
  if (q.types.empty()) return true;
  for (auto x : q.types) {
    if (x == t) return true;
  }
  return false;
}

bool wants_node(const ViewQuery& q, topo::NodeId node) {
  if (!q.location) return true;
  return topo::contains(*q.location, topo::coord_of(node));
}

}  // namespace

std::vector<std::int64_t> ViewCatalog::heatmap_counts(
    const ViewQuery& q) const {
  std::vector<std::int64_t> per_node(
      static_cast<std::size_t>(topo::TitanGeometry::kTotalNodes), 0);
  for_each_hour(q.window, [&](std::int64_t, const HourView& hv) {
    for (const auto& [type, tile] : hv.tiles) {
      if (!wants_type(q, type)) continue;
      for (const auto& [node, count] : tile.node_counts) {
        if (!wants_node(q, node)) continue;
        per_node[static_cast<std::size_t>(node)] += count;
      }
    }
  });
  return per_node;
}

std::vector<std::pair<std::int64_t, std::int64_t>> ViewCatalog::hourly_counts(
    const ViewQuery& q) const {
  std::vector<std::pair<std::int64_t, std::int64_t>> out;
  for_each_hour(q.window, [&](std::int64_t hour, const HourView& hv) {
    std::int64_t sum = 0;
    for (const auto& [type, tile] : hv.tiles) {
      if (!wants_type(q, type)) continue;
      if (!q.location) {
        sum += tile.total;
        continue;
      }
      for (const auto& [node, count] : tile.node_counts) {
        if (wants_node(q, node)) sum += count;
      }
    }
    if (sum != 0) out.emplace_back(hour, sum);
  });
  // for_each_hour walks hours ascending, so `out` is already sorted.
  return out;
}

std::vector<std::pair<std::string, std::int64_t>> ViewCatalog::type_counts(
    const ViewQuery& q, std::size_t k) const {
  std::map<titanlog::EventType, std::int64_t> totals;
  for_each_hour(q.window, [&](std::int64_t, const HourView& hv) {
    for (const auto& [type, tile] : hv.tiles) {
      if (!wants_type(q, type)) continue;
      if (!q.location) {
        totals[type] += tile.total;
        continue;
      }
      for (const auto& [node, count] : tile.node_counts) {
        if (wants_node(q, node)) totals[type] += count;
      }
    }
  });
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(totals.size());
  for (const auto& [type, count] : totals) {
    if (count != 0) {
      out.emplace_back(std::string(titanlog::event_id(type)), count);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (k != 0 && out.size() > k) out.resize(k);
  return out;
}

std::vector<BurstSummary> ViewCatalog::burst_percentiles(
    const ViewQuery& q) const {
  // Merge the per-tile sketches per type. for_each_hour walks hours
  // ascending and tiles are type-ordered within an hour, so the merge
  // order — and therefore the exact GK summary — is deterministic for a
  // given catalog state (cache entries stay self-consistent).
  std::map<titanlog::EventType, QuantileSketch> merged;
  for_each_hour(q.window, [&](std::int64_t, const HourView& hv) {
    for (const auto& [type, tile] : hv.tiles) {
      if (!wants_type(q, type)) continue;
      if (tile.burst.count() == 0) continue;
      auto [it, inserted] =
          merged.try_emplace(type, QuantileSketch(kBurstEpsilon));
      it->second.merge(tile.burst);
      (void)inserted;
    }
  });
  std::vector<BurstSummary> out;
  out.reserve(merged.size());
  for (auto& [type, sketch] : merged) {
    BurstSummary row;
    row.label = std::string(titanlog::event_id(type));
    row.events = sketch.count();
    row.p50 = sketch.quantile(0.50);
    row.p95 = sketch.quantile(0.95);
    row.p99 = sketch.quantile(0.99);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const BurstSummary& a, const BurstSummary& b) {
              if (a.events != b.events) return a.events > b.events;
              return a.label < b.label;
            });
  return out;
}

std::vector<double> ViewCatalog::hour_series(const ViewQuery& q) const {
  const std::int64_t h0 = q.window.first_hour();
  const std::int64_t h1 = q.window.last_hour();
  std::vector<double> out(static_cast<std::size_t>(h1 - h0 + 1), 0.0);
  for (const auto& [hour, count] : hourly_counts(q)) {
    out[static_cast<std::size_t>(hour - h0)] =
        static_cast<double>(count);
  }
  return out;
}

ViewStats ViewCatalog::stats() const {
  ViewStats s;
  s.applied = applied_.load(std::memory_order_relaxed);
  s.partial = partial_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    s.hours += shard.hours.size();
    for (const auto& [hour, hv] : shard.hours) {
      s.tiles += hv.tiles.size();
      for (const auto& [type, tile] : hv.tiles) {
        s.sketch_tuples += tile.burst.tuple_count();
      }
    }
  }
  return s;
}

}  // namespace hpcla::model::views
