// DDL for the data model and reference-data loading (nodeinfos,
// eventtypes). Also the row codecs: EventRecord/JobRecord <-> cassalite
// rows for every table that stores them.
#pragma once

#include <string>
#include <vector>

#include "cassalite/cluster.hpp"
#include "model/keys.hpp"
#include "titanlog/record.hpp"
#include "topo/machine.hpp"

namespace hpcla::model {

/// Creates all tables of the data model on the cluster.
Status create_data_model(cassalite::Cluster& cluster);

/// Loads one row per node slot into `nodeinfos` (19,200 rows).
Status load_nodeinfos(cassalite::Cluster& cluster,
                      cassalite::Consistency consistency =
                          cassalite::Consistency::kQuorum);

/// Loads the event catalog into `eventtypes`.
Status load_eventtypes(cassalite::Cluster& cluster);

// ---------------------------------------------------------------- codecs

/// Row stored in event_by_time: clustering (ts, seq); cells node/message/
/// count. (The type is implicit in the partition key.)
cassalite::Row event_time_row(const titanlog::EventRecord& e);

/// Row stored in event_by_location: clustering (ts, seq); cells type/
/// message/count. (The node is implicit in the partition key.)
cassalite::Row event_location_row(const titanlog::EventRecord& e);

/// Decodes an event from either event table; `key` tells the codec which
/// fields are implicit in the partition key.
Result<titanlog::EventRecord> decode_event_time_row(
    const std::string& partition_key, const cassalite::Row& row);
Result<titanlog::EventRecord> decode_event_location_row(
    const std::string& partition_key, const cassalite::Row& row);

/// Full application row: clustering (start, apid); cells app/user/nids/
/// end/exit. Used by application_by_time/_by_user/_by_app.
cassalite::Row app_row(const titanlog::JobRecord& job);

/// Decodes a JobRecord from a full application row.
Result<titanlog::JobRecord> decode_app_row(const cassalite::Row& row);

/// Slim placement row for application_by_location: clustering (start,
/// apid); cells app/user/end/exit (node implicit in the key, no nid list).
cassalite::Row app_location_row(const titanlog::JobRecord& job);

}  // namespace hpcla::model
