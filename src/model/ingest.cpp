#include "model/ingest.hpp"

#include <atomic>
#include <mutex>

namespace hpcla::model {

using cassalite::Consistency;
using cassalite::ReadQuery;
using cassalite::Row;
using cassalite::Value;
using titanlog::EventRecord;
using titanlog::JobRecord;
using titanlog::LogLine;

BatchIngestor::BatchIngestor(cassalite::Cluster& cluster,
                             sparklite::Engine& engine, IngestOptions options)
    : cluster_(&cluster), engine_(&engine), options_(options) {
  if (options_.partitions == 0) {
    options_.partitions = engine.workers() * 2;
  }
}

void accumulate_synopsis(
    std::map<std::pair<std::int64_t, titanlog::EventType>, SynopsisDelta>&
        deltas,
    const EventRecord& e) {
  auto& d = deltas[{hour_bucket(e.ts), e.type}];
  if (d.count == 0) {
    d.first_ts = e.ts;
    d.last_ts = e.ts;
  } else {
    d.first_ts = std::min(d.first_ts, e.ts);
    d.last_ts = std::max(d.last_ts, e.ts);
  }
  d.count += e.count;
}

std::size_t BatchIngestor::write_event(const EventRecord& e,
                                       IngestReport& report) {
  const std::int64_t hour = hour_bucket(e.ts);
  std::size_t written = 0;
  if (cluster_
          ->insert(std::string(kEventByTime), event_time_key(hour, e.type),
                   event_time_row(e), options_.consistency)
          .is_ok()) {
    ++written;
  } else {
    ++report.write_failures;
  }
  if (cluster_
          ->insert(std::string(kEventByLocation),
                   event_location_key(hour, e.node), event_location_row(e),
                   options_.consistency)
          .is_ok()) {
    ++written;
  } else {
    ++report.write_failures;
  }
  if (written == 2) ++report.event_rows;
  // Incremental view maintenance at the write choke point (batch and
  // streaming both funnel through here): count fully-written events,
  // epoch-bump-only for partial writes so covering caches invalidate.
  if (views_ != nullptr && written > 0) views_->apply(e, written == 2);
  return written;
}

void BatchIngestor::write_job(const JobRecord& job, IngestReport& report) {
  const std::int64_t start_hour = hour_bucket(job.start);
  const auto insert = [&](std::string_view table, const std::string& key,
                          Row row) {
    if (cluster_->insert(std::string(table), key, std::move(row),
                         options_.consistency).is_ok()) {
      return true;
    }
    ++report.write_failures;
    return false;
  };
  bool ok = insert(kAppByTime, app_time_key(start_hour), app_row(job));
  ok &= insert(kAppByUser, app_user_key(job.user), app_row(job));
  ok &= insert(kAppByApp, app_app_key(job.app_name), app_row(job));
  if (ok) ++report.app_rows;

  // Placement fan-out: one row per (overlapped hour, node).
  const std::int64_t first_hour = hour_bucket(job.start);
  const std::int64_t last_hour = hour_bucket(std::max(job.start, job.end - 1));
  for (std::int64_t h = first_hour; h <= last_hour; ++h) {
    for (const auto node : job.nodes) {
      if (insert(kAppByLocation, app_location_key(h, node),
                 app_location_row(job))) {
        ++report.app_location_rows;
      }
    }
  }
}

void BatchIngestor::apply_synopsis(
    const std::map<std::pair<std::int64_t, titanlog::EventType>,
                   SynopsisDelta>& deltas,
    IngestReport& report) {
  for (const auto& [key, delta] : deltas) {
    const auto& [hour, type] = key;
    // Read-modify-write: merge with any synopsis row a previous ingest
    // batch already stored for this (hour, type).
    ReadQuery q;
    q.table = std::string(kEventSynopsis);
    q.partition_key = synopsis_key(hour);
    cassalite::ClusteringSlice slice;
    const std::string type_id(titanlog::event_id(type));
    slice.lower = cassalite::ClusteringKey::of({Value(type_id)});
    slice.upper = cassalite::ClusteringKey::of({Value(type_id + "\x01")});
    q.slice = slice;
    SynopsisDelta merged = delta;
    auto existing = cluster_->select(q, options_.consistency);
    if (existing.is_ok() && !existing->rows.empty()) {
      const Row& row = existing->rows.front();
      const Value* count = row.find(kColCount);
      const Value* first = row.find(kColFirstTs);
      const Value* last = row.find(kColLastTs);
      if (count && count->is_int()) merged.count += count->as_int();
      if (first && first->is_int()) {
        merged.first_ts = std::min(merged.first_ts, first->as_int());
      }
      if (last && last->is_int()) {
        merged.last_ts = std::max(merged.last_ts, last->as_int());
      }
    }
    Row row;
    row.key = cassalite::ClusteringKey::of({Value(type_id)});
    row.set(std::string(kColCount), Value(merged.count));
    row.set(std::string(kColFirstTs), Value(merged.first_ts));
    row.set(std::string(kColLastTs), Value(merged.last_ts));
    if (cluster_->insert(std::string(kEventSynopsis), synopsis_key(hour),
                         std::move(row), options_.consistency).is_ok()) {
      ++report.synopsis_rows;
    } else {
      ++report.write_failures;
    }
  }
}

IngestReport BatchIngestor::ingest_lines(const std::vector<LogLine>& lines) {
  using titanlog::LogParser;
  using titanlog::ParseStats;

  // Per-partition result, merged on the driver.
  struct Slice {
    ParseStats stats;
    IngestReport report;
    std::map<std::pair<std::int64_t, titanlog::EventType>, SynopsisDelta>
        synopsis;
  };

  auto ds = sparklite::Dataset<LogLine>::parallelize(*engine_, lines,
                                                     options_.partitions);
  // Parse + upload inside each partition task (the Spark foreachPartition
  // idiom); collect per-partition accounting. Parsed events carry no seq
  // (the raw line has none), so each task assigns one salted by its
  // partition index — clustering keys (ts, seq) stay unique even for
  // same-second events.
  auto slices =
      ds.map_partitions_indexed(
            [this](std::vector<LogLine> part,
                   const sparklite::TaskContext& ctx) {
              LogParser parser;
              Slice slice;
              std::vector<EventRecord> events;
              std::vector<JobRecord> jobs;
              parser.parse_batch(part, events, jobs, slice.stats);
              std::int64_t next_seq =
                  static_cast<std::int64_t>(ctx.task_index) << 40;
              for (auto& e : events) {
                e.seq = next_seq++;
                write_event(e, slice.report);
                accumulate_synopsis(slice.synopsis, e);
              }
              for (const auto& job : jobs) {
                write_job(job, slice.report);
              }
              return std::vector<Slice>{std::move(slice)};
            })
          .collect();

  IngestReport report;
  std::map<std::pair<std::int64_t, titanlog::EventType>, SynopsisDelta> deltas;
  for (const auto& slice : slices) {
    report.parse.lines += slice.stats.lines;
    report.parse.events += slice.stats.events;
    report.parse.jobs += slice.stats.jobs;
    report.parse.unmatched += slice.stats.unmatched;
    report.parse.malformed += slice.stats.malformed;
    report.event_rows += slice.report.event_rows;
    report.app_rows += slice.report.app_rows;
    report.app_location_rows += slice.report.app_location_rows;
    report.write_failures += slice.report.write_failures;
    for (const auto& [key, d] : slice.synopsis) {
      auto& agg = deltas[key];
      if (agg.count == 0) {
        agg = d;
      } else {
        agg.count += d.count;
        agg.first_ts = std::min(agg.first_ts, d.first_ts);
        agg.last_ts = std::max(agg.last_ts, d.last_ts);
      }
    }
  }
  apply_synopsis(deltas, report);
  return report;
}

IngestReport BatchIngestor::ingest_records(
    const std::vector<EventRecord>& events,
    const std::vector<JobRecord>& jobs) {
  IngestReport report;
  std::mutex mu;
  std::map<std::pair<std::int64_t, titanlog::EventType>, SynopsisDelta> deltas;

  auto eds = sparklite::Dataset<EventRecord>::parallelize(*engine_, events,
                                                          options_.partitions);
  auto slices = eds.map_partitions([this](std::vector<EventRecord> part) {
                     IngestReport r;
                     std::map<std::pair<std::int64_t, titanlog::EventType>,
                              SynopsisDelta>
                         syn;
                     for (const auto& e : part) {
                       write_event(e, r);
                       accumulate_synopsis(syn, e);
                     }
                     return std::vector<std::pair<
                         IngestReport,
                         std::map<std::pair<std::int64_t, titanlog::EventType>,
                                  SynopsisDelta>>>{{r, std::move(syn)}};
                   }).collect();
  for (auto& [r, syn] : slices) {
    report.event_rows += r.event_rows;
    report.write_failures += r.write_failures;
    std::lock_guard lock(mu);
    for (const auto& [key, d] : syn) {
      auto& agg = deltas[key];
      if (agg.count == 0) {
        agg = d;
      } else {
        agg.count += d.count;
        agg.first_ts = std::min(agg.first_ts, d.first_ts);
        agg.last_ts = std::max(agg.last_ts, d.last_ts);
      }
    }
  }
  for (const auto& job : jobs) write_job(job, report);
  apply_synopsis(deltas, report);
  return report;
}

}  // namespace hpcla::model
