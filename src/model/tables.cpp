#include "model/tables.hpp"

namespace hpcla::model {

using cassalite::ClusteringKey;
using cassalite::Row;
using cassalite::TableSchema;
using cassalite::Value;
using titanlog::EventRecord;
using titanlog::JobRecord;

Status create_data_model(cassalite::Cluster& cluster) {
  const auto make = [](std::string_view name,
                       std::vector<std::string> pk,
                       std::vector<std::string> ck,
                       std::string comment) {
    TableSchema s;
    s.name = std::string(name);
    s.partition_key_columns = std::move(pk);
    s.clustering_key_columns = std::move(ck);
    s.comment = std::move(comment);
    return s;
  };

  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kNodeInfos, {"nid"}, {},
      "static machine description: position, routing, hardware")));
  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kEventTypes, {"type"}, {},
      "catalog of monitored event types")));
  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kEventSynopsis, {"hour"}, {"type"},
      "per-hour per-type occurrence summary")));
  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kEventByTime, {"hour", "type"}, {"ts", "seq"},
      "events of one type in one hour, time ordered (Fig 1 top)")));
  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kEventByLocation, {"hour", "node"}, {"ts", "seq"},
      "events on one component in one hour, time ordered (Fig 1 bottom)")));
  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kAppByTime, {"hour"}, {"start", "apid"},
      "application runs by start hour (Fig 2 top)")));
  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kAppByUser, {"user"}, {"start", "apid"},
      "application runs by user (Fig 2 bottom)")));
  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kAppByApp, {"app"}, {"start", "apid"},
      "application runs by application name (Fig 2 middle)")));
  HPCLA_RETURN_IF_ERROR(cluster.create_table(make(
      kAppByLocation, {"hour", "node"}, {"start", "apid"},
      "application placements per node-hour")));
  return Status::ok();
}

Status load_nodeinfos(cassalite::Cluster& cluster,
                      cassalite::Consistency consistency) {
  for (const auto& info : topo::titan().nodes()) {
    Row row;
    row.key = ClusteringKey{};  // single row per partition
    row.set("cname", Value(info.cname));
    row.set("row", Value(info.coord.row));
    row.set("col", Value(info.coord.col));
    row.set("cage", Value(info.coord.cage));
    row.set("slot", Value(info.coord.slot));
    row.set("node", Value(info.coord.node));
    row.set("cabinet", Value(info.cabinet));
    row.set("blade", Value(info.blade));
    row.set("gemini", Value(info.gemini));
    row.set("torus_x", Value(info.torus.x));
    row.set("torus_y", Value(info.torus.y));
    row.set("torus_z", Value(info.torus.z));
    row.set("cpu", Value(info.cpu_model));
    row.set("cpu_cores", Value(info.cpu_cores));
    row.set("cpu_memory_gb", Value(info.cpu_memory_gb));
    row.set("gpu", Value(info.gpu_model));
    row.set("gpu_memory_gb", Value(info.gpu_memory_gb));
    HPCLA_RETURN_IF_ERROR(cluster.insert(std::string(kNodeInfos),
                                         nodeinfo_key(info.id), std::move(row),
                                         consistency));
  }
  return Status::ok();
}

Status load_eventtypes(cassalite::Cluster& cluster) {
  for (const auto& info : titanlog::event_catalog()) {
    Row row;
    row.set("description", Value(std::string(info.description)));
    row.set("source", Value(std::string(titanlog::log_source_name(info.source))));
    row.set("severity", Value(std::string(titanlog::severity_name(info.severity))));
    row.set("base_rate_per_node_hour", Value(info.base_rate_per_node_hour));
    HPCLA_RETURN_IF_ERROR(cluster.insert(std::string(kEventTypes),
                                         eventtype_key(info.type),
                                         std::move(row)));
  }
  return Status::ok();
}

Row event_time_row(const EventRecord& e) {
  Row row;
  row.key = ClusteringKey::of({Value(e.ts), Value(e.seq)});
  row.set(std::string(kColNode), Value(static_cast<std::int64_t>(e.node)));
  row.set(std::string(kColMessage), Value(e.message));
  row.set(std::string(kColCount), Value(e.count));
  return row;
}

Row event_location_row(const EventRecord& e) {
  Row row;
  row.key = ClusteringKey::of({Value(e.ts), Value(e.seq)});
  row.set(std::string(kColType),
          Value(std::string(titanlog::event_id(e.type))));
  row.set(std::string(kColMessage), Value(e.message));
  row.set(std::string(kColCount), Value(e.count));
  return row;
}

namespace {

Result<EventRecord> decode_common(const cassalite::Row& row, EventRecord& e) {
  if (row.key.parts.size() < 2 || !row.key.parts[0].is_int() ||
      !row.key.parts[1].is_int()) {
    return corruption("event row clustering key must be (ts, seq)");
  }
  e.ts = row.key.parts[0].as_int();
  e.seq = row.key.parts[1].as_int();
  const Value* msg = row.find(kColMessage);
  if (!msg || !msg->is_text()) return corruption("event row missing message");
  e.message = msg->as_text();
  const Value* count = row.find(kColCount);
  e.count = count && count->is_int() ? count->as_int() : 1;
  return e;
}

}  // namespace

Result<EventRecord> decode_event_time_row(const std::string& partition_key,
                                          const cassalite::Row& row) {
  auto key = parse_event_time_key(partition_key);
  if (!key.is_ok()) return key.status();
  EventRecord e;
  e.type = key->type;
  const Value* node = row.find(kColNode);
  if (!node || !node->is_int()) return corruption("event row missing node");
  e.node = static_cast<topo::NodeId>(node->as_int());
  return decode_common(row, e);
}

Result<EventRecord> decode_event_location_row(const std::string& partition_key,
                                              const cassalite::Row& row) {
  auto key = parse_event_location_key(partition_key);
  if (!key.is_ok()) return key.status();
  EventRecord e;
  e.node = key->node;
  const Value* type = row.find(kColType);
  if (!type || !type->is_text()) return corruption("event row missing type");
  auto parsed = titanlog::event_type_from_id(type->as_text());
  if (!parsed.is_ok()) return parsed.status();
  e.type = parsed.value();
  return decode_common(row, e);
}

Row app_row(const JobRecord& job) {
  Row row;
  row.key = ClusteringKey::of({Value(job.start), Value(job.apid)});
  row.set(std::string(kColApp), Value(job.app_name));
  row.set(std::string(kColUser), Value(job.user));
  row.set(std::string(kColNids), Value(titanlog::format_nid_ranges(job.nodes)));
  row.set(std::string(kColEnd), Value(job.end));
  row.set(std::string(kColExit), Value(job.exit_code));
  return row;
}

Result<JobRecord> decode_app_row(const cassalite::Row& row) {
  if (row.key.parts.size() < 2 || !row.key.parts[0].is_int() ||
      !row.key.parts[1].is_int()) {
    return corruption("app row clustering key must be (start, apid)");
  }
  JobRecord job;
  job.start = row.key.parts[0].as_int();
  job.apid = row.key.parts[1].as_int();
  const Value* app = row.find(kColApp);
  const Value* user = row.find(kColUser);
  const Value* nids = row.find(kColNids);
  const Value* end = row.find(kColEnd);
  const Value* exit_code = row.find(kColExit);
  if (!app || !user || !nids || !end || !exit_code) {
    return corruption("app row missing cells");
  }
  job.app_name = app->as_text();
  job.user = user->as_text();
  auto nodes = titanlog::parse_nid_ranges(nids->as_text());
  if (!nodes.is_ok()) return nodes.status();
  job.nodes = std::move(nodes.value());
  job.end = end->as_int();
  job.exit_code = static_cast<int>(exit_code->as_int());
  return job;
}

Row app_location_row(const JobRecord& job) {
  Row row;
  row.key = ClusteringKey::of({Value(job.start), Value(job.apid)});
  row.set(std::string(kColApp), Value(job.app_name));
  row.set(std::string(kColUser), Value(job.user));
  row.set(std::string(kColEnd), Value(job.end));
  row.set(std::string(kColExit), Value(job.exit_code));
  return row;
}

}  // namespace hpcla::model
