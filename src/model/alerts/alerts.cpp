#include "model/alerts/alerts.hpp"

#include <cmath>
#include <cstdio>
#include <string_view>
#include <utility>

#include "common/telemetry.hpp"

namespace hpcla::model::alerts {

namespace {

/// Alert-pipeline instruments; selftel. prefix keeps them out of exports.
struct AlertCounters {
  telemetry::Counter& observed =
      telemetry::registry().counter("selftel.alerts.observed");
  telemetry::Counter& evaluations =
      telemetry::registry().counter("selftel.alerts.evaluations");
  telemetry::Counter& fired =
      telemetry::registry().counter("selftel.alerts.fired");
};

AlertCounters& counters() {
  static AlertCounters c;
  return c;
}

double field_of(const titanlog::MetricSample& s, const std::string& field) {
  if (field == "p50_us") return s.p50_us;
  if (field == "p95_us") return s.p95_us;
  if (field == "p99_us") return s.p99_us;
  if (field == "sum_us") return s.sum_us;
  if (field == "max_us") return s.max_us;
  return s.value;
}

void fnv_fold(std::uint64_t& h, std::string_view bytes) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
}

void fnv_fold(std::uint64_t& h, std::int64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint64_t>(v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += '+';
    out += n;
  }
  return out;
}

}  // namespace

Json Alert::to_json() const {
  Json j = Json::object();
  j["rule"] = rule;
  j["metric"] = metric;
  j["ts"] = ts;
  j["seq"] = seq;
  j["value"] = value;
  j["threshold"] = threshold;
  j["message"] = message;
  return j;
}

void AlertEngine::install_default_rules() {
  add_rule(ZScoreRule{.name = "complex-query-p99",
                      .metric = "server.query.complex.us",
                      .field = "p99_us",
                      .alpha = 0.3,
                      .z_threshold = 3.0,
                      .min_samples = 5,
                      .abs_floor = 1000.0,  // ignore sub-millisecond wiggle
                      .cooldown_s = 60});
  add_rule(BurnRateRule{.name = "replica-timeout-burn",
                        .numerator = {"cassalite.replica.timeouts"},
                        .denominator = {"cassalite.read.ok"},
                        .budget = 0.01,
                        .burn_threshold = 10.0,
                        .window_s = 300,
                        .min_denominator = 10.0,
                        .cooldown_s = 60});
  add_rule(BurnRateRule{.name = "blockcache-hit-rate",
                        .numerator = {"blockcache.misses"},
                        .denominator = {"blockcache.hits",
                                        "blockcache.misses"},
                        .budget = 0.5,  // hit-rate floor of 50%
                        .burn_threshold = 1.0,
                        .window_s = 300,
                        .min_denominator = 100.0,
                        .cooldown_s = 60});
}

void AlertEngine::add_rule(ZScoreRule rule) {
  std::lock_guard lock(mu_);
  zscore_.push_back(ZScoreState{.rule = std::move(rule)});
}

void AlertEngine::add_rule(BurnRateRule rule) {
  std::lock_guard lock(mu_);
  BurnState st;
  st.rule = std::move(rule);
  burn_.push_back(std::move(st));
}

void AlertEngine::observe(const titanlog::MetricSample& sample) {
  std::lock_guard lock(mu_);
  counters().observed.add(1);
  for (ZScoreState& st : zscore_) {
    if (st.rule.metric != sample.name) continue;
    const double x = field_of(sample, st.rule.field);
    // Test against the baseline *before* absorbing the sample, so a step
    // change is judged by the pre-step estimate.
    const double sigma = std::sqrt(st.var);
    const double dev = std::abs(x - st.mean);
    if (st.samples >= st.rule.min_samples && dev >= st.rule.abs_floor &&
        dev > st.rule.z_threshold * sigma) {
      fire(st, sample, x, sigma);
    } else if (st.firing &&
               (st.last_fired_ts < 0 ||
                sample.ts - st.last_fired_ts >= st.rule.cooldown_s)) {
      st.firing = false;
    }
    const double diff = x - st.mean;
    const double incr = st.rule.alpha * diff;
    st.mean += incr;
    st.var = (1.0 - st.rule.alpha) * (st.var + diff * incr);
    ++st.samples;
  }
  for (BurnState& st : burn_) {
    // Windows are keyed by metric name, so append once even when the
    // metric sits in both the numerator and the denominator (hit-rate
    // rules) — sum_of reads the same window from both sides.
    const auto contains = [&](const std::vector<std::string>& names) {
      for (const std::string& name : names) {
        if (name == sample.name) return true;
      }
      return false;
    };
    if (contains(st.rule.numerator) || contains(st.rule.denominator)) {
      st.deltas[sample.name].emplace_back(sample.ts, sample.value);
    }
  }
}

void AlertEngine::evaluate(UnixSeconds now) {
  std::lock_guard lock(mu_);
  counters().evaluations.add(1);
  for (BurnState& st : burn_) {
    // Sliding window (now - window_s, now]: prune, then sum.
    const UnixSeconds horizon = now - st.rule.window_s;
    auto sum_of = [&](const std::vector<std::string>& names) {
      double total = 0.0;
      for (const std::string& name : names) {
        auto it = st.deltas.find(name);
        if (it == st.deltas.end()) continue;
        auto& window = it->second;
        while (!window.empty() && window.front().first <= horizon) {
          window.pop_front();
        }
        for (const auto& [ts, delta] : window) total += delta;
      }
      return total;
    };
    const double num = sum_of(st.rule.numerator);
    const double den = sum_of(st.rule.denominator);
    if (den < st.rule.min_denominator) continue;
    const double rate = num / den;
    const double burn = rate / st.rule.budget;
    if (burn >= st.rule.burn_threshold) {
      fire(st, now, rate, burn);
    } else if (st.firing &&
               (st.last_fired_ts < 0 ||
                now - st.last_fired_ts >= st.rule.cooldown_s)) {
      st.firing = false;
    }
  }
}

void AlertEngine::fire(ZScoreState& st, const titanlog::MetricSample& s,
                       double x, double sigma) {
  st.firing = true;
  if (st.last_fired_ts >= 0 &&
      s.ts - st.last_fired_ts < st.rule.cooldown_s) {
    return;  // refreshed but suppressed by cooldown
  }
  st.last_fired_ts = s.ts;
  Alert alert;
  alert.rule = st.rule.name;
  alert.metric = st.rule.metric;
  alert.ts = s.ts;
  alert.seq = s.seq;
  alert.value = x;
  alert.threshold = st.rule.z_threshold;
  alert.message = st.rule.metric + "." + st.rule.field + " deviates from " +
                  std::to_string(st.mean) + " by more than " +
                  std::to_string(st.rule.z_threshold) + " sigma (sigma=" +
                  std::to_string(sigma) + ")";
  record_alert(std::move(alert));
}

void AlertEngine::fire(BurnState& st, UnixSeconds now, double rate,
                       double burn) {
  st.firing = true;
  if (st.last_fired_ts >= 0 && now - st.last_fired_ts < st.rule.cooldown_s) {
    return;
  }
  st.last_fired_ts = now;
  Alert alert;
  alert.rule = st.rule.name;
  alert.metric = joined(st.rule.numerator) + "/" + joined(st.rule.denominator);
  alert.ts = now;
  alert.seq = 0;
  alert.value = burn;
  alert.threshold = st.rule.burn_threshold;
  alert.message = "error rate " + std::to_string(rate) + " burns budget " +
                  std::to_string(st.rule.budget) + " at " +
                  std::to_string(burn) + "x over " +
                  std::to_string(st.rule.window_s) + "s";
  record_alert(std::move(alert));
}

void AlertEngine::record_alert(Alert alert) {
  ++fired_;
  counters().fired.add(1);
  fnv_fold(fingerprint_, alert.rule);
  fnv_fold(fingerprint_, alert.metric);
  fnv_fold(fingerprint_, alert.ts);
  fnv_fold(fingerprint_, alert.seq);
  history_.push_back(std::move(alert));
  while (history_.size() > kHistoryCap) history_.pop_front();
}

std::vector<Alert> AlertEngine::active() const {
  std::lock_guard lock(mu_);
  std::vector<Alert> out;
  auto newest_for = [&](const std::string& rule) {
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
      if (it->rule == rule) {
        out.push_back(*it);
        return;
      }
    }
  };
  for (const ZScoreState& st : zscore_) {
    if (st.firing) newest_for(st.rule.name);
  }
  for (const BurnState& st : burn_) {
    if (st.firing) newest_for(st.rule.name);
  }
  return out;
}

std::vector<Alert> AlertEngine::history() const {
  std::lock_guard lock(mu_);
  return {history_.begin(), history_.end()};
}

std::uint64_t AlertEngine::fired_count() const {
  std::lock_guard lock(mu_);
  return fired_;
}

std::uint64_t AlertEngine::fingerprint() const {
  std::lock_guard lock(mu_);
  return fingerprint_;
}

Json AlertEngine::to_json() const {
  Json j = Json::object();
  {
    std::lock_guard lock(mu_);
    j["fired"] = static_cast<std::int64_t>(fired_);
    char buf[19];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fingerprint_));
    j["fingerprint"] = std::string(buf);
  }
  Json hist = Json::array();
  for (const Alert& a : history()) hist.push_back(a.to_json());
  j["history"] = std::move(hist);
  Json act = Json::array();
  for (const Alert& a : active()) act.push_back(a.to_json());
  j["active"] = std::move(act);
  return j;
}

void AlertEngine::clear() {
  std::lock_guard lock(mu_);
  for (ZScoreState& st : zscore_) {
    st.mean = 0.0;
    st.var = 0.0;
    st.samples = 0;
    st.last_fired_ts = -1;
    st.firing = false;
  }
  for (BurnState& st : burn_) {
    st.deltas.clear();
    st.last_fired_ts = -1;
    st.firing = false;
  }
  history_.clear();
  fired_ = 0;
  fingerprint_ = 1469598103934665603ull;
}

}  // namespace hpcla::model::alerts
