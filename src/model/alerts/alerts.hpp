// Online anomaly detection and SLO alerting over the self-telemetry
// stream (DESIGN.md §16). The AlertEngine consumes the MetricSamples the
// TelemetryIngestor drains from `_telemetry.metrics` and evaluates two
// detector families per micro-batch:
//
//   * ZScoreRule — per-metric sliding EWMA mean/variance; a sample whose
//     deviation exceeds `z_threshold` standard deviations (and an
//     absolute floor, so a quiet metric's tiny variance can't page) fires
//     an anomaly. Test-then-update: the firing sample is excluded from
//     the baseline it is judged against, so a step change is detected
//     before it poisons the estimate.
//   * BurnRateRule — SLO error-budget burn over a sliding window of
//     counter deltas: rate = sum(numerator) / sum(denominator); the rule
//     fires when rate / budget >= burn_threshold (multi-metric numerator
//     and denominator sum, so hit-rate style SLOs are expressible).
//
// Everything is deterministic: state advances only on observed samples
// and their embedded timestamps (SimClock under chaos runs), so two
// replays of a seeded run fire bit-identical alert sequences —
// fingerprint() folds the fired history into one comparable hash.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "titanlog/selftel.hpp"

namespace hpcla::model::alerts {

/// EWMA z-score anomaly rule over one exported metric field.
struct ZScoreRule {
  std::string name;    ///< rule id, unique within the engine
  std::string metric;  ///< MetricSample::name to watch
  /// MetricSample field fed to the detector: "value" (counter delta /
  /// gauge level / hist count) or a histogram percentile field
  /// ("p50_us" | "p95_us" | "p99_us" | "sum_us" | "max_us").
  std::string field = "value";
  double alpha = 0.3;        ///< EWMA smoothing factor
  double z_threshold = 3.0;  ///< fire above this many sigmas
  /// Samples the baseline must absorb before the rule may fire.
  std::uint64_t min_samples = 5;
  /// Absolute minimum deviation to fire — guards near-zero variance.
  double abs_floor = 0.0;
  std::int64_t cooldown_s = 60;  ///< min seconds between firings
};

/// SLO burn-rate rule over sliding windows of counter deltas.
struct BurnRateRule {
  std::string name;
  std::vector<std::string> numerator;    ///< bad-event counters (summed)
  std::vector<std::string> denominator;  ///< total-event counters (summed)
  double budget = 0.01;          ///< SLO error budget (bad / total)
  double burn_threshold = 1.0;   ///< fire when rate/budget >= this
  std::int64_t window_s = 300;   ///< sliding-window span
  /// Minimum denominator volume in the window before evaluating — a
  /// handful of requests cannot meaningfully burn a budget.
  double min_denominator = 10.0;
  std::int64_t cooldown_s = 60;
};

/// One fired alert.
struct Alert {
  std::string rule;
  std::string metric;  ///< watched metric (zscore) or "num/den" (burn)
  UnixSeconds ts = 0;  ///< sample timestamp that fired the rule
  std::int64_t seq = 0;      ///< export cycle of the firing sample
  double value = 0.0;        ///< observed value (zscore) or burn rate
  double threshold = 0.0;    ///< z_threshold or burn_threshold
  std::string message;

  [[nodiscard]] Json to_json() const;
};

/// Deterministic online alert evaluator. Thread-safe; all methods take
/// the engine mutex. Instrumented under the export-excluded `selftel.`
/// prefix so alert evaluation never feeds back into the telemetry loop.
class AlertEngine {
 public:
  AlertEngine() = default;

  /// Installs the stock rule pack (see DESIGN.md §16):
  ///   * complex-query-p99 — z-score on server.query.complex.us p99;
  ///   * replica-timeout-burn — cassalite.replica.timeouts burning the
  ///     read-error budget against cassalite.read.ok;
  ///   * blockcache-hit-rate — blockcache.misses burning the miss budget
  ///     against total block-cache lookups.
  void install_default_rules();

  void add_rule(ZScoreRule rule);
  void add_rule(BurnRateRule rule);

  /// Feeds one drained metric sample: updates z-score detectors keyed on
  /// the sample's metric (test-then-update) and appends counter deltas to
  /// burn-rule windows. Fires z-score alerts inline.
  void observe(const titanlog::MetricSample& sample);

  /// Evaluates burn-rate rules at `now` (the newest drained sample's
  /// timestamp) and expires window entries older than each rule's span.
  /// Call once per drained micro-batch.
  void evaluate(UnixSeconds now);

  /// Alerts currently firing (within cooldown of their last trigger).
  [[nodiscard]] std::vector<Alert> active() const;

  /// Most recent firings, oldest first (bounded ring of kHistoryCap).
  [[nodiscard]] std::vector<Alert> history() const;

  /// Total alerts ever fired.
  [[nodiscard]] std::uint64_t fired_count() const;

  /// FNV-1a fold of every fired alert (rule, metric, ts, seq) in firing
  /// order — bit-identical across replays of the same seeded run.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// {"fired": n, "fingerprint": "...", "active": [...], "history": [...]}
  [[nodiscard]] Json to_json() const;

  void clear();

  static constexpr std::size_t kHistoryCap = 128;

 private:
  struct ZScoreState {
    ZScoreRule rule;
    double mean = 0.0;
    double var = 0.0;
    std::uint64_t samples = 0;
    std::int64_t last_fired_ts = -1;  ///< -1 = never
    bool firing = false;
  };
  struct BurnState {
    BurnRateRule rule;
    /// (sample ts, delta) per watched counter, pruned to the window.
    std::map<std::string, std::deque<std::pair<UnixSeconds, double>>> deltas;
    std::int64_t last_fired_ts = -1;
    bool firing = false;
  };

  void fire(ZScoreState& st, const titanlog::MetricSample& s, double x,
            double sigma);
  void fire(BurnState& st, UnixSeconds now, double rate, double burn);
  void record_alert(Alert alert);

  mutable std::mutex mu_;
  std::vector<ZScoreState> zscore_;
  std::vector<BurnState> burn_;
  std::deque<Alert> history_;
  std::uint64_t fired_ = 0;
  std::uint64_t fingerprint_ = 1469598103934665603ull;  ///< FNV-1a basis
};

}  // namespace hpcla::model::alerts
