#include "model/streaming_ingest.hpp"

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "common/logging.hpp"
#include "common/telemetry.hpp"

namespace hpcla::model {

using titanlog::EventRecord;

namespace {

/// Windows at least this large decode their JSON payloads on the engine
/// pool; smaller ones aren't worth the fan-out overhead.
constexpr std::size_t kParallelDecodeThreshold = 512;

/// Process-wide ingest instruments, resolved once. StreamingReport stays
/// the caller-visible per-run view; these are the registry's totals.
struct IngestCounters {
  telemetry::Counter& batches =
      telemetry::registry().counter("ingest.batches");
  telemetry::Counter& messages =
      telemetry::registry().counter("ingest.messages");
  telemetry::Counter& decode_failures =
      telemetry::registry().counter("ingest.decode_failures");
  telemetry::Counter& quarantined =
      telemetry::registry().counter("ingest.quarantined");
  telemetry::Counter& events_written =
      telemetry::registry().counter("ingest.events_written");
};

IngestCounters& counters() {
  static IngestCounters c;
  return c;
}

std::optional<EventRecord> decode_message(const buslite::Message& msg) {
  auto json = Json::parse(msg.value);
  if (!json.is_ok()) return std::nullopt;
  auto event = EventRecord::from_json(json.value());
  if (!event.is_ok()) return std::nullopt;
  return std::move(event).value();
}

}  // namespace

bool quarantine_message(buslite::Broker& broker, const std::string& dlq_topic,
                        const buslite::Message& msg) {
  const auto produced =
      broker.produce(dlq_topic, msg.key, msg.value, msg.timestamp);
  if (!produced.is_ok()) return false;
  HPCLA_LOG(kInfo) << "quarantined undecodable record: topic=" << dlq_topic
                   << " partition=" << produced->first
                   << " offset=" << produced->second
                   << " source_offset=" << msg.offset
                   << " trace_id=" << telemetry::current().trace_id;
  return true;
}

StreamingIngestor::StreamingIngestor(cassalite::Cluster& cluster,
                                     sparklite::Engine& engine,
                                     buslite::Broker& broker,
                                     const std::string& topic,
                                     const std::string& group,
                                     IngestOptions options)
    : StreamingIngestor(cluster, engine, broker, topic, 0, 1, group,
                        options) {}

StreamingIngestor::StreamingIngestor(cassalite::Cluster& cluster,
                                     sparklite::Engine& engine,
                                     buslite::Broker& broker,
                                     const std::string& topic,
                                     std::size_t member_index,
                                     std::size_t member_count,
                                     const std::string& group,
                                     IngestOptions options)
    : writer_(cluster, engine, options),
      engine_(&engine),
      broker_(&broker),
      dlq_topic_(dead_letter_topic(topic)),
      stream_(broker, group, topic, member_index, member_count,
              sparklite::StreamOptions{.window_ms = 1000,
                                       .max_poll = 4096,
                                       .pool = &engine.pool()}) {
  // Several group members share one DLQ; whoever constructs first wins.
  auto created = broker_->create_topic(dlq_topic_);
  HPCLA_CHECK_MSG(
      created.is_ok() || created.code() == StatusCode::kAlreadyExists,
      "failed to create dead-letter topic");
}

void StreamingIngestor::handle_batch(const sparklite::MicroBatch& batch,
                                     StreamingReport& report) {
  telemetry::Span span("ingest.batch");
  span.tag("window_start", batch.window_start);
  span.tag("messages", static_cast<std::uint64_t>(batch.messages.size()));
  ++report.batches;
  const std::size_t n = batch.messages.size();
  report.messages_in += n;
  counters().batches.add(1);
  counters().messages.add(n);
  // Decode every payload first — the regex/JSON cost dominates, and the
  // messages are independent, so large windows decode on the engine pool.
  // Coalescing below stays sequential in batch order, preserving the
  // "first message's payload wins" contract.
  std::vector<std::optional<EventRecord>> decoded(n);
  auto decode_at = [&](std::size_t i) {
    decoded[i] = decode_message(batch.messages[i]);
  };
  if (n >= kParallelDecodeThreshold) {
    engine_->pool().parallel_for(n, decode_at, /*grain=*/64);
  } else {
    for (std::size_t i = 0; i < n; ++i) decode_at(i);
  }
  // Coalesce within the window: same (type, node, second) -> one event with
  // summed count. The first message's payload and lowest seq are kept.
  std::map<std::tuple<titanlog::EventType, topo::NodeId, UnixSeconds>,
           EventRecord>
      coalesced;
  for (std::size_t i = 0; i < n; ++i) {
    auto& slot = decoded[i];
    if (!slot) {
      ++report.decode_failures;
      counters().decode_failures.add(1);
      if (quarantine_message(*broker_, dlq_topic_, batch.messages[i])) {
        ++report.quarantined;
        counters().quarantined.add(1);
      }
      continue;
    }
    EventRecord e = std::move(*slot);
    const auto key = std::make_tuple(e.type, e.node, e.ts);
    auto [it, inserted] = coalesced.try_emplace(key, e);
    if (!inserted) {
      it->second.count += e.count;
      it->second.seq = std::min(it->second.seq, e.seq);
    }
  }
  std::map<std::pair<std::int64_t, titanlog::EventType>, SynopsisDelta> deltas;
  IngestReport ingest;
  for (const auto& [_, e] : coalesced) {
    if (writer_.write_event(e, ingest) == 2) {
      ++report.events_written;
      counters().events_written.add(1);
    }
    accumulate_synopsis(deltas, e);
  }
  writer_.apply_synopsis(deltas, ingest);
  report.write_failures += ingest.write_failures;
  report.synopsis_rows += ingest.synopsis_rows;
}

StreamingReport StreamingIngestor::process_available() {
  StreamingReport report;
  stream_.process_available([this, &report](const sparklite::MicroBatch& b) {
    handle_batch(b, report);
  });
  totals_.batches += report.batches;
  totals_.messages_in += report.messages_in;
  totals_.decode_failures += report.decode_failures;
  totals_.quarantined += report.quarantined;
  totals_.events_written += report.events_written;
  totals_.write_failures += report.write_failures;
  totals_.synopsis_rows += report.synopsis_rows;
  return report;
}

}  // namespace hpcla::model
