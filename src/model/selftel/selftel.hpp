// Self-telemetry landing zone (DESIGN.md §16): the drain half of the
// closed loop. telemetry::Exporter publishes the system's own metric
// deltas and tail-sampled traces on `_telemetry.*`; TelemetryIngestor
// drains them through the same micro-batch streaming machinery as the
// log-event path and lands them in cassalite tables shaped exactly like
// the data model's event tables:
//
//   sys_metrics  pk (hour, name)  ck (ts, seq)   — one partition per
//                metric-hour, time ordered (the event_by_time of metrics)
//   sys_spans    pk (hour, op)    ck (ts, span_id) — one partition per
//                op-hour of tail-sampled spans
//
// so parallel_read / paging / the burst machinery work on the system's
// own history unchanged. SysViews mirrors views::ViewCatalog for spans:
// per-(hour, op) tiles with slow/error counts and a GK duration sketch,
// feeding the server's `selfquery` op without a table scan. Drained
// metric samples also feed the online alerts::AlertEngine.
//
// Everything in this module runs under telemetry::SuppressScope and
// counts its own work under the export-excluded `selftel.` prefix; the
// SelfTelemetryLoop's rebaseline-after-drain protocol absorbs the metric
// movement the drain itself causes (cassalite writes into sys_* tables,
// consumer commits), so an idle loop converges to zero events per cycle.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "buslite/broker.hpp"
#include "cassalite/cluster.hpp"
#include "common/clock.hpp"
#include "common/quantile_sketch.hpp"
#include "model/alerts/alerts.hpp"
#include "sparklite/streaming.hpp"
#include "telemetry/exporter.hpp"
#include "titanlog/selftel.hpp"

namespace hpcla::model::selftel {

// Table names (the "sys" prefix marks self-describing system tables).
inline constexpr std::string_view kSysMetrics = "sys_metrics";
inline constexpr std::string_view kSysSpans = "sys_spans";

/// Creates sys_metrics and sys_spans (tolerates pre-existing tables).
Status create_self_telemetry_tables(cassalite::Cluster& cluster);

/// sys_metrics partition: "<hour>|<metric-name>".
std::string sys_metric_key(std::int64_t hour, std::string_view name);

/// sys_spans partition: "<hour>|<op>" (op = root span name of the trace).
std::string sys_span_key(std::int64_t hour, std::string_view op);

/// Row for one exported metric sample; clustering key (ts, seq).
cassalite::Row sys_metric_row(const titanlog::MetricSample& s);

/// Row for one exported span sample; clustering key (ts, span_id).
cassalite::Row sys_span_row(const titanlog::SpanSample& s);

/// Inverse of sys_metric_row given the partition key it was stored under.
Result<titanlog::MetricSample> decode_sys_metric_row(
    const std::string& partition_key, const cassalite::Row& row);

/// Inverse of sys_span_row given the partition key it was stored under.
Result<titanlog::SpanSample> decode_sys_span_row(
    const std::string& partition_key, const cassalite::Row& row);

/// Merged per-op span summary over a span of hours.
struct OpSummary {
  std::string op;
  std::uint64_t spans = 0;
  std::uint64_t slow = 0;
  std::uint64_t errored = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;

  [[nodiscard]] Json to_json() const;
};

/// Hourly span-summary tiles, the self-telemetry ViewCatalog analogue:
/// per (hour, op) a span count, slow/error counts, and a GK duration
/// sketch, so `selfquery` answers op-latency questions without scanning
/// sys_spans. Thread-safe.
class SysViews {
 public:
  void apply(const titanlog::SpanSample& s);

  /// Per-op summaries merged across [first_hour, last_hour], descending
  /// by span count then ascending by op. Percentiles carry GK rank error
  /// <= 2 * kEpsilon.
  [[nodiscard]] std::vector<OpSummary> summaries(std::int64_t first_hour,
                                                 std::int64_t last_hour) const;

  [[nodiscard]] std::uint64_t applied() const;

  static constexpr double kEpsilon = 0.02;

 private:
  struct Tile {
    std::uint64_t spans = 0;
    std::uint64_t slow = 0;
    std::uint64_t errored = 0;
    QuantileSketch durations{kEpsilon};
  };

  mutable std::mutex mu_;
  std::map<std::int64_t, std::map<std::string, Tile>> hours_;
  std::uint64_t applied_ = 0;
};

/// One drain's worth of work (and the running totals' shape).
struct DrainReport {
  std::uint64_t metric_batches = 0;
  std::uint64_t span_batches = 0;
  std::uint64_t metrics_in = 0;
  std::uint64_t spans_in = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t rows_written = 0;
  std::uint64_t write_failures = 0;
  std::uint64_t alerts_fired = 0;  ///< alerts fired during this drain
};

struct IngestorOptions {
  std::string group = "hpcla-selftel";
  cassalite::Consistency consistency = cassalite::Consistency::kQuorum;
};

/// Subscriber draining `_telemetry.*` into the sys_* tables, the span
/// views, and the alert engine. The whole drain runs under
/// telemetry::SuppressScope so it never generates spans of its own;
/// undecodable payloads quarantine on `<topic>.dlq` like any other
/// ingest stream.
class TelemetryIngestor {
 public:
  TelemetryIngestor(cassalite::Cluster& cluster, buslite::Broker& broker,
                    const std::string& metrics_topic,
                    const std::string& spans_topic,
                    IngestorOptions options = {});

  /// Attaches the online alert engine; drained metric samples feed
  /// observe() and each drain ends with one evaluate() at the newest
  /// drained timestamp. Pass nullptr to detach.
  void set_alert_engine(alerts::AlertEngine* engine) { alerts_ = engine; }

  /// Drains everything currently on both telemetry topics. Safe to call
  /// repeatedly (offsets are committed).
  DrainReport drain();

  [[nodiscard]] const DrainReport& totals() const noexcept { return totals_; }
  [[nodiscard]] const SysViews& views() const noexcept { return views_; }

 private:
  void handle_metrics(const sparklite::MicroBatch& batch, DrainReport& report,
                      UnixSeconds& newest_ts);
  void handle_spans(const sparklite::MicroBatch& batch, DrainReport& report);

  cassalite::Cluster* cluster_;
  buslite::Broker* broker_;
  IngestorOptions options_;
  std::string metrics_dlq_;
  std::string spans_dlq_;
  sparklite::MicroBatchStream metrics_stream_;
  sparklite::MicroBatchStream spans_stream_;
  SysViews views_;
  alerts::AlertEngine* alerts_ = nullptr;  ///< not owned
  DrainReport totals_;
};

/// The closed loop: Exporter (publish) + TelemetryIngestor (drain) + the
/// stock AlertEngine, wired so each pump cycle is
///   export_now() -> drain() -> rebaseline()
/// — the rebaseline absorbs every metric the drain itself moved, which
/// (with the SuppressScope and selftel.-prefix layers) guarantees an
/// idle loop publishes zero events.
class SelfTelemetryLoop {
 public:
  struct PumpReport {
    std::size_t published = 0;
    DrainReport drained;
  };

  /// Creates the sys_* tables and telemetry topics on first use.
  SelfTelemetryLoop(cassalite::Cluster& cluster, buslite::Broker& broker,
                    telemetry::ExporterOptions exporter_options = {},
                    IngestorOptions ingestor_options = {});

  /// One full cycle, unconditionally.
  PumpReport pump();

  /// Periodic driver: pumps when the exporter's period has elapsed on
  /// its clock (first call always pumps).
  PumpReport tick();

  [[nodiscard]] telemetry::Exporter& exporter() noexcept { return exporter_; }
  [[nodiscard]] TelemetryIngestor& ingestor() noexcept { return ingestor_; }
  [[nodiscard]] alerts::AlertEngine& alerts() noexcept { return alerts_; }
  [[nodiscard]] const alerts::AlertEngine& alerts() const noexcept {
    return alerts_;
  }

 private:
  alerts::AlertEngine alerts_;
  telemetry::Exporter exporter_;
  TelemetryIngestor ingestor_;
};

}  // namespace hpcla::model::selftel
