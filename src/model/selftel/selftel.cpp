#include "model/selftel/selftel.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/telemetry.hpp"
#include "model/streaming_ingest.hpp"

namespace hpcla::model::selftel {

using cassalite::ClusteringKey;
using cassalite::Row;
using cassalite::TableSchema;
using cassalite::Value;
using titanlog::MetricSample;
using titanlog::SpanSample;

namespace {

/// Drain-pipeline instruments; selftel. prefix keeps them out of exports.
struct SelftelCounters {
  telemetry::Counter& drains =
      telemetry::registry().counter("selftel.ingest.drains");
  telemetry::Counter& metrics =
      telemetry::registry().counter("selftel.ingest.metrics");
  telemetry::Counter& spans =
      telemetry::registry().counter("selftel.ingest.spans");
  telemetry::Counter& decode_failures =
      telemetry::registry().counter("selftel.ingest.decode_failures");
  telemetry::Counter& quarantined =
      telemetry::registry().counter("selftel.ingest.quarantined");
  telemetry::Counter& rows_written =
      telemetry::registry().counter("selftel.ingest.rows_written");
  telemetry::Counter& write_failures =
      telemetry::registry().counter("selftel.ingest.write_failures");
};

SelftelCounters& counters() {
  static SelftelCounters c;
  return c;
}

double cell_double(const Row& row, std::string_view name) {
  const Value* v = row.find(name);
  return v != nullptr && (v->is_double() || v->is_int()) ? v->as_double()
                                                         : 0.0;
}

bool cell_bool(const Row& row, std::string_view name) {
  const Value* v = row.find(name);
  return v != nullptr && v->is_bool() && v->as_bool();
}

/// "<hour>|<rest>" -> hour; rest is returned via `suffix`.
Status split_hour_key(std::string_view key, std::int64_t& hour,
                      std::string_view& suffix) {
  const auto bar = key.find('|');
  if (bar == std::string_view::npos) {
    return invalid_argument("bad sys key '" + std::string(key) + "'");
  }
  const std::string_view head = key.substr(0, bar);
  if (head.empty()) {
    return invalid_argument("bad hour in sys key '" + std::string(key) + "'");
  }
  std::int64_t h = 0;
  for (const char c : head) {
    if (c < '0' || c > '9') {
      return invalid_argument("bad hour in sys key '" + std::string(key) +
                              "'");
    }
    h = h * 10 + (c - '0');
  }
  hour = h;
  suffix = key.substr(bar + 1);
  return Status::ok();
}

}  // namespace

Status create_self_telemetry_tables(cassalite::Cluster& cluster) {
  const auto make = [](std::string_view name, std::vector<std::string> pk,
                       std::vector<std::string> ck, std::string comment) {
    TableSchema s;
    s.name = std::string(name);
    s.partition_key_columns = std::move(pk);
    s.clustering_key_columns = std::move(ck);
    s.comment = std::move(comment);
    return s;
  };
  // The loop may be rebuilt over a live cluster — existing tables are fine.
  auto metrics = cluster.create_table(
      make(kSysMetrics, {"hour", "name"}, {"ts", "seq"},
           "the system's own metric stream, one partition per metric-hour"));
  if (!metrics.is_ok() && metrics.code() != StatusCode::kAlreadyExists) {
    return metrics;
  }
  auto spans = cluster.create_table(
      make(kSysSpans, {"hour", "op"}, {"ts", "span_id"},
           "tail-sampled spans of the system's own traces, per op-hour"));
  if (!spans.is_ok() && spans.code() != StatusCode::kAlreadyExists) {
    return spans;
  }
  return Status::ok();
}

std::string sys_metric_key(std::int64_t hour, std::string_view name) {
  return std::to_string(hour) + "|" + std::string(name);
}

std::string sys_span_key(std::int64_t hour, std::string_view op) {
  return std::to_string(hour) + "|" + std::string(op);
}

Row sys_metric_row(const MetricSample& s) {
  Row row;
  row.key = ClusteringKey::of({Value(s.ts), Value(s.seq)});
  row.set("kind", Value(s.kind));
  row.set("value", Value(s.value));
  if (s.kind == "hist") {
    row.set("sum_us", Value(s.sum_us));
    row.set("p50_us", Value(s.p50_us));
    row.set("p95_us", Value(s.p95_us));
    row.set("p99_us", Value(s.p99_us));
    row.set("max_us", Value(s.max_us));
  }
  return row;
}

Row sys_span_row(const SpanSample& s) {
  Row row;
  row.key = ClusteringKey::of(
      {Value(s.ts), Value(static_cast<std::int64_t>(s.span_id))});
  row.set("name", Value(s.name));
  row.set("trace_id", Value(static_cast<std::int64_t>(s.trace_id)));
  row.set("parent_id", Value(static_cast<std::int64_t>(s.parent_id)));
  row.set("start_us", Value(s.start_us));
  row.set("duration_us", Value(s.duration_us));
  row.set("slow", Value(s.slow));
  row.set("errored", Value(s.errored));
  return row;
}

Result<MetricSample> decode_sys_metric_row(const std::string& partition_key,
                                           const cassalite::Row& row) {
  std::int64_t hour = 0;
  std::string_view name;
  HPCLA_RETURN_IF_ERROR(split_hour_key(partition_key, hour, name));
  if (row.key.parts.size() < 2 || !row.key.parts[0].is_int() ||
      !row.key.parts[1].is_int()) {
    return corruption("sys_metrics clustering key must be (ts, seq)");
  }
  MetricSample s;
  s.name = std::string(name);
  s.ts = row.key.parts[0].as_int();
  s.seq = row.key.parts[1].as_int();
  const Value* kind = row.find("kind");
  if (kind == nullptr || !kind->is_text()) {
    return corruption("sys_metrics row missing kind");
  }
  s.kind = kind->as_text();
  s.value = cell_double(row, "value");
  s.sum_us = cell_double(row, "sum_us");
  s.p50_us = cell_double(row, "p50_us");
  s.p95_us = cell_double(row, "p95_us");
  s.p99_us = cell_double(row, "p99_us");
  s.max_us = cell_double(row, "max_us");
  return s;
}

Result<SpanSample> decode_sys_span_row(const std::string& partition_key,
                                       const cassalite::Row& row) {
  std::int64_t hour = 0;
  std::string_view op;
  HPCLA_RETURN_IF_ERROR(split_hour_key(partition_key, hour, op));
  if (row.key.parts.size() < 2 || !row.key.parts[0].is_int() ||
      !row.key.parts[1].is_int()) {
    return corruption("sys_spans clustering key must be (ts, span_id)");
  }
  SpanSample s;
  s.op = std::string(op);
  s.ts = row.key.parts[0].as_int();
  s.span_id = static_cast<std::uint64_t>(row.key.parts[1].as_int());
  const Value* name = row.find("name");
  if (name == nullptr || !name->is_text()) {
    return corruption("sys_spans row missing name");
  }
  s.name = name->as_text();
  const Value* trace = row.find("trace_id");
  s.trace_id = trace != nullptr && trace->is_int()
                   ? static_cast<std::uint64_t>(trace->as_int())
                   : 0;
  const Value* parent = row.find("parent_id");
  s.parent_id = parent != nullptr && parent->is_int()
                    ? static_cast<std::uint64_t>(parent->as_int())
                    : 0;
  s.start_us = static_cast<std::int64_t>(cell_double(row, "start_us"));
  s.duration_us = static_cast<std::int64_t>(cell_double(row, "duration_us"));
  s.slow = cell_bool(row, "slow");
  s.errored = cell_bool(row, "errored");
  return s;
}

// ------------------------------------------------------------- SysViews

Json OpSummary::to_json() const {
  Json j = Json::object();
  j["op"] = op;
  j["spans"] = static_cast<std::int64_t>(spans);
  j["slow"] = static_cast<std::int64_t>(slow);
  j["errored"] = static_cast<std::int64_t>(errored);
  j["p50_us"] = p50_us;
  j["p95_us"] = p95_us;
  j["p99_us"] = p99_us;
  return j;
}

void SysViews::apply(const SpanSample& s) {
  // Only root spans feed the op summaries: one trace = one op sample, so
  // counts match "requests", not "spans per request".
  if (s.parent_id != 0) return;
  const std::int64_t hour = hour_bucket(s.ts);
  std::lock_guard lock(mu_);
  Tile& tile = hours_[hour][s.op];
  ++tile.spans;
  if (s.slow) ++tile.slow;
  if (s.errored) ++tile.errored;
  tile.durations.add(static_cast<double>(s.duration_us));
  ++applied_;
}

std::vector<OpSummary> SysViews::summaries(std::int64_t first_hour,
                                           std::int64_t last_hour) const {
  std::lock_guard lock(mu_);
  std::map<std::string, std::pair<Tile, QuantileSketch>> merged;
  for (const auto& [hour, ops] : hours_) {
    if (hour < first_hour || hour > last_hour) continue;
    for (const auto& [op, tile] : ops) {
      auto [it, inserted] =
          merged.try_emplace(op, Tile{}, QuantileSketch(kEpsilon));
      it->second.first.spans += tile.spans;
      it->second.first.slow += tile.slow;
      it->second.first.errored += tile.errored;
      it->second.second.merge(tile.durations);
    }
  }
  std::vector<OpSummary> out;
  out.reserve(merged.size());
  for (const auto& [op, entry] : merged) {
    OpSummary s;
    s.op = op;
    s.spans = entry.first.spans;
    s.slow = entry.first.slow;
    s.errored = entry.first.errored;
    if (entry.second.count() > 0) {
      s.p50_us = entry.second.quantile(0.50);
      s.p95_us = entry.second.quantile(0.95);
      s.p99_us = entry.second.quantile(0.99);
    }
    out.push_back(std::move(s));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const OpSummary& a, const OpSummary& b) {
                     if (a.spans != b.spans) return a.spans > b.spans;
                     return a.op < b.op;
                   });
  return out;
}

std::uint64_t SysViews::applied() const {
  std::lock_guard lock(mu_);
  return applied_;
}

// ---------------------------------------------------- TelemetryIngestor

TelemetryIngestor::TelemetryIngestor(cassalite::Cluster& cluster,
                                     buslite::Broker& broker,
                                     const std::string& metrics_topic,
                                     const std::string& spans_topic,
                                     IngestorOptions options)
    : cluster_(&cluster),
      broker_(&broker),
      options_(std::move(options)),
      metrics_dlq_(dead_letter_topic(metrics_topic)),
      spans_dlq_(dead_letter_topic(spans_topic)),
      metrics_stream_(broker, options_.group, metrics_topic),
      spans_stream_(broker, options_.group, spans_topic) {
  for (const std::string* dlq : {&metrics_dlq_, &spans_dlq_}) {
    auto created = broker_->create_topic(*dlq);
    HPCLA_CHECK_MSG(
        created.is_ok() || created.code() == StatusCode::kAlreadyExists,
        "failed to create telemetry dead-letter topic");
  }
}

void TelemetryIngestor::handle_metrics(const sparklite::MicroBatch& batch,
                                       DrainReport& report,
                                       UnixSeconds& newest_ts) {
  ++report.metric_batches;
  for (const buslite::Message& msg : batch.messages) {
    ++report.metrics_in;
    counters().metrics.add(1);
    auto json = Json::parse(msg.value);
    auto sample = json.is_ok() ? MetricSample::from_json(json.value())
                               : Result<MetricSample>(json.status());
    if (!sample.is_ok()) {
      ++report.decode_failures;
      counters().decode_failures.add(1);
      if (quarantine_message(*broker_, metrics_dlq_, msg)) {
        ++report.quarantined;
        counters().quarantined.add(1);
      }
      continue;
    }
    const MetricSample& s = sample.value();
    newest_ts = std::max(newest_ts, s.ts);
    auto written = cluster_->insert(std::string(kSysMetrics),
                                    sys_metric_key(hour_bucket(s.ts), s.name),
                                    sys_metric_row(s), options_.consistency);
    if (written.is_ok()) {
      ++report.rows_written;
      counters().rows_written.add(1);
    } else {
      ++report.write_failures;
      counters().write_failures.add(1);
    }
    if (alerts_ != nullptr) alerts_->observe(s);
  }
}

void TelemetryIngestor::handle_spans(const sparklite::MicroBatch& batch,
                                     DrainReport& report) {
  ++report.span_batches;
  for (const buslite::Message& msg : batch.messages) {
    ++report.spans_in;
    counters().spans.add(1);
    auto json = Json::parse(msg.value);
    auto sample = json.is_ok() ? SpanSample::from_json(json.value())
                               : Result<SpanSample>(json.status());
    if (!sample.is_ok()) {
      ++report.decode_failures;
      counters().decode_failures.add(1);
      if (quarantine_message(*broker_, spans_dlq_, msg)) {
        ++report.quarantined;
        counters().quarantined.add(1);
      }
      continue;
    }
    const SpanSample& s = sample.value();
    auto written = cluster_->insert(std::string(kSysSpans),
                                    sys_span_key(hour_bucket(s.ts), s.op),
                                    sys_span_row(s), options_.consistency);
    if (written.is_ok()) {
      ++report.rows_written;
      counters().rows_written.add(1);
    } else {
      ++report.write_failures;
      counters().write_failures.add(1);
    }
    views_.apply(s);
  }
}

DrainReport TelemetryIngestor::drain() {
  // The whole drain is self-telemetry plumbing: no spans, and every
  // instrument sits under the excluded selftel. prefix. The cassalite
  // and bus metric movement it causes is absorbed by the loop's
  // rebaseline-after-drain.
  telemetry::SuppressScope suppress;
  counters().drains.add(1);
  DrainReport report;
  UnixSeconds newest_ts = 0;
  const std::uint64_t fired_before =
      alerts_ != nullptr ? alerts_->fired_count() : 0;
  metrics_stream_.process_available(
      [this, &report, &newest_ts](const sparklite::MicroBatch& b) {
        handle_metrics(b, report, newest_ts);
      });
  spans_stream_.process_available(
      [this, &report](const sparklite::MicroBatch& b) {
        handle_spans(b, report);
      });
  if (alerts_ != nullptr && newest_ts > 0) {
    alerts_->evaluate(newest_ts);
    report.alerts_fired = alerts_->fired_count() - fired_before;
  }
  totals_.metric_batches += report.metric_batches;
  totals_.span_batches += report.span_batches;
  totals_.metrics_in += report.metrics_in;
  totals_.spans_in += report.spans_in;
  totals_.decode_failures += report.decode_failures;
  totals_.quarantined += report.quarantined;
  totals_.rows_written += report.rows_written;
  totals_.write_failures += report.write_failures;
  totals_.alerts_fired += report.alerts_fired;
  return report;
}

// ---------------------------------------------------- SelfTelemetryLoop

SelfTelemetryLoop::SelfTelemetryLoop(cassalite::Cluster& cluster,
                                     buslite::Broker& broker,
                                     telemetry::ExporterOptions exporter_opts,
                                     IngestorOptions ingestor_opts)
    : exporter_(broker, exporter_opts),
      ingestor_(cluster, broker, exporter_.options().metrics_topic,
                exporter_.options().spans_topic, std::move(ingestor_opts)) {
  HPCLA_CHECK_MSG(create_self_telemetry_tables(cluster).is_ok(),
                  "failed to create self-telemetry tables");
  alerts_.install_default_rules();
  ingestor_.set_alert_engine(&alerts_);
}

SelfTelemetryLoop::PumpReport SelfTelemetryLoop::pump() {
  PumpReport report;
  report.published = exporter_.export_now();
  report.drained = ingestor_.drain();
  // Absorb the drain's own metric movement so the next cycle only
  // exports foreground work.
  exporter_.rebaseline();
  return report;
}

SelfTelemetryLoop::PumpReport SelfTelemetryLoop::tick() {
  const std::uint64_t before = exporter_.cycles();
  PumpReport report;
  report.published = exporter_.tick();
  if (exporter_.cycles() == before) return report;  // period not elapsed
  report.drained = ingestor_.drain();
  exporter_.rebaseline();
  return report;
}

}  // namespace hpcla::model::selftel
