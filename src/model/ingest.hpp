// Batch ETL: raw log lines -> parsed records -> data-model rows.
//
// Paper §III-D: "The batch import is a traditional ETL procedure that
// involves 1) collocation of all data, 2) parsing the data in search for
// known patterns for each event type, and 3) batch upload into the backend
// database. ... the analytic framework implements parsing and uploading
// using Apache Spark." The BatchIngestor does exactly that: the line set
// is split into sparklite partitions, each worker parses and uploads its
// slice, and per-hour synopsis rows are reconciled at the end.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cassalite/cluster.hpp"
#include "model/tables.hpp"
#include "model/views/views.hpp"
#include "sparklite/dataset.hpp"
#include "titanlog/parser.hpp"

namespace hpcla::model {

struct IngestOptions {
  cassalite::Consistency consistency = cassalite::Consistency::kQuorum;
  /// Parse/upload parallelism; 0 = 2x engine workers.
  std::size_t partitions = 0;
};

struct IngestReport {
  titanlog::ParseStats parse;
  std::uint64_t event_rows = 0;         ///< rows into event_by_time (+ mirror)
  std::uint64_t app_rows = 0;           ///< rows into application_by_time (+ mirrors)
  std::uint64_t app_location_rows = 0;  ///< placement fan-out rows
  std::uint64_t synopsis_rows = 0;
  std::uint64_t write_failures = 0;     ///< coordinator-level UNAVAILABLE etc.
};

/// Per-(hour, type) synopsis aggregate, merged across ingest batches.
struct SynopsisDelta {
  std::int64_t count = 0;
  UnixSeconds first_ts = 0;
  UnixSeconds last_ts = 0;
};

class BatchIngestor {
 public:
  BatchIngestor(cassalite::Cluster& cluster, sparklite::Engine& engine,
                IngestOptions options = IngestOptions());

  /// Full pipeline: parallel parse of raw lines, upload, synopsis update.
  IngestReport ingest_lines(const std::vector<titanlog::LogLine>& lines);

  /// Upload-only pipeline for pre-parsed records (bench isolation and
  /// ground-truth loading in tests).
  IngestReport ingest_records(const std::vector<titanlog::EventRecord>& events,
                              const std::vector<titanlog::JobRecord>& jobs);

  /// Writes one event into both event tables. Returns rows written (2) or 0
  /// on failure. Exposed for the streaming ingester.
  std::size_t write_event(const titanlog::EventRecord& e,
                          IngestReport& report);

  /// Writes one job into the four application tables.
  void write_job(const titanlog::JobRecord& job, IngestReport& report);

  /// Read-modify-write of eventsynopsis rows for the given deltas.
  void apply_synopsis(
      const std::map<std::pair<std::int64_t, titanlog::EventType>,
                     SynopsisDelta>& deltas,
      IngestReport& report);

  /// Attaches a materialized-view catalog (not owned): every event write
  /// folds into the covering view tile and bumps its hour epoch (partial
  /// writes bump the epoch only). Attach before the first ingest — views
  /// only see events written while attached. Pass nullptr to detach.
  void set_view_catalog(views::ViewCatalog* views) { views_ = views; }

 private:
  cassalite::Cluster* cluster_;
  sparklite::Engine* engine_;
  IngestOptions options_;
  views::ViewCatalog* views_ = nullptr;  ///< not owned
};

/// Accumulates an event into a synopsis delta map (helper shared with the
/// streaming path).
void accumulate_synopsis(
    std::map<std::pair<std::int64_t, titanlog::EventType>, SynopsisDelta>&
        deltas,
    const titanlog::EventRecord& e);

}  // namespace hpcla::model
