// Partition-key and column-name conventions of the data model.
//
// Paper Fig 1/Fig 4: event partitions are keyed by (hour, event type) in
// event_by_time and by (hour, location) in event_by_location, so that one
// hour of one type (or one component) is a single time-ordered partition —
// a spatio-temporal slice is a handful of sequential partition reads.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "titanlog/events.hpp"
#include "topo/cname.hpp"

namespace hpcla::model {

// Table names (paper §II-B bullet list; application_by_app covers the
// "by name of application" perspective of Fig 2 — see DESIGN.md).
inline constexpr std::string_view kNodeInfos = "nodeinfos";
inline constexpr std::string_view kEventTypes = "eventtypes";
inline constexpr std::string_view kEventSynopsis = "eventsynopsis";
inline constexpr std::string_view kEventByTime = "event_by_time";
inline constexpr std::string_view kEventByLocation = "event_by_location";
inline constexpr std::string_view kAppByTime = "application_by_time";
inline constexpr std::string_view kAppByUser = "application_by_user";
inline constexpr std::string_view kAppByApp = "application_by_app";
inline constexpr std::string_view kAppByLocation = "application_by_location";

// Column names shared across tables.
inline constexpr std::string_view kColNode = "node";
inline constexpr std::string_view kColType = "type";
inline constexpr std::string_view kColMessage = "message";
inline constexpr std::string_view kColCount = "count";
inline constexpr std::string_view kColFirstTs = "first_ts";
inline constexpr std::string_view kColLastTs = "last_ts";
inline constexpr std::string_view kColApid = "apid";
inline constexpr std::string_view kColApp = "app";
inline constexpr std::string_view kColUser = "user";
inline constexpr std::string_view kColNids = "nids";
inline constexpr std::string_view kColStart = "start";
inline constexpr std::string_view kColEnd = "end";
inline constexpr std::string_view kColExit = "exit";

/// event_by_time partition: "<hour>|<type-id>", e.g. "413185|MCE".
std::string event_time_key(std::int64_t hour, titanlog::EventType type);

/// event_by_location partition: "<hour>|<node-id>", e.g. "413185|1234".
std::string event_location_key(std::int64_t hour, topo::NodeId node);

/// eventsynopsis partition: "<hour>".
std::string synopsis_key(std::int64_t hour);

/// application_by_time partition: "<hour-of-start>".
std::string app_time_key(std::int64_t hour);

/// application_by_user partition: "<user>".
std::string app_user_key(std::string_view user);

/// application_by_app partition: "<app-name>".
std::string app_app_key(std::string_view app);

/// application_by_location partition: "<hour>|<node-id>".
std::string app_location_key(std::int64_t hour, topo::NodeId node);

/// nodeinfos partition: "<node-id>".
std::string nodeinfo_key(topo::NodeId node);

/// eventtypes partition: "<type-id>".
std::string eventtype_key(titanlog::EventType type);

/// Decoded event_by_time key.
struct EventTimeKey {
  std::int64_t hour = 0;
  titanlog::EventType type = titanlog::EventType::kMachineCheck;
};
Result<EventTimeKey> parse_event_time_key(std::string_view key);

/// Decoded event_by_location key.
struct EventLocationKey {
  std::int64_t hour = 0;
  topo::NodeId node = topo::kInvalidNode;
};
Result<EventLocationKey> parse_event_location_key(std::string_view key);

}  // namespace hpcla::model
