// Real-time streaming ingestion (paper §III-D).
//
// "The OLCF is developing event producers that not only parse real-time
//  streams from log sources but also publish each event occurrence ... to
//  an Apache Kafka message bus. ... the analytic framework places a
//  subscriber that delivers event messages to [the] Spark streaming module
//  that in turn converts and places all event occurrences into the right
//  partitions. Event occurrences of the same type and same location are
//  coalesced into a single event if they are timestamped the same. For
//  this, the time window of the Spark streaming is set to one second."
//
// EventPublisher is the producer side (already-parsed event occurrences as
// JSON on a buslite topic); StreamingIngestor is the subscriber + 1 s
// micro-batch pipeline with same-second coalescing.
#pragma once

#include <cstdint>
#include <string>

#include "buslite/broker.hpp"
#include "common/faultsim.hpp"
#include "model/ingest.hpp"
#include "sparklite/streaming.hpp"
#include "titanlog/record.hpp"

namespace hpcla::model {

/// Dead-letter topic for `topic`: undecodable messages are quarantined
/// there instead of being silently dropped.
inline std::string dead_letter_topic(const std::string& topic) {
  return topic + ".dlq";
}

/// Quarantines one undecodable message on `dlq_topic`, preserving the
/// payload byte-for-byte for offline inspection and replay. Returns true
/// when the DLQ publish succeeded. Shared by the event ingest path and
/// the self-telemetry drain (model::selftel::TelemetryIngestor).
bool quarantine_message(buslite::Broker& broker, const std::string& dlq_topic,
                        const buslite::Message& msg);

/// Publishes parsed event occurrences to the bus. Message key is the
/// source cname so per-component order is preserved across partitions.
class EventPublisher {
 public:
  EventPublisher(buslite::Broker& broker, std::string topic)
      : broker_(&broker), topic_(std::move(topic)) {}

  /// Attaches a fault injector: records flagged by `poison_record()` are
  /// published with a corrupted payload (truncated JSON), modelling a
  /// buggy or garbled upstream producer. Pass nullptr to detach.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  Status publish(const titanlog::EventRecord& e) {
    std::string payload = e.to_json().dump();
    if (injector_ != nullptr && injector_->poison_record()) {
      // Chop mid-way: guaranteed-unparseable JSON, still plausible bytes.
      payload.resize(payload.size() / 2);
    }
    auto r = broker_->produce(topic_, topo::cname_of(e.node),
                              std::move(payload),
                              static_cast<UnixMillis>(e.ts) * 1000);
    return r.status();
  }

 private:
  buslite::Broker* broker_;
  std::string topic_;
  FaultInjector* injector_ = nullptr;  ///< not owned
};

struct StreamingReport {
  std::uint64_t batches = 0;
  std::uint64_t messages_in = 0;
  std::uint64_t decode_failures = 0;
  /// Undecodable messages forwarded to the dead-letter topic (a subset of
  /// decode_failures; smaller only if the DLQ publish itself failed).
  std::uint64_t quarantined = 0;
  std::uint64_t events_written = 0;  ///< after coalescing
  std::uint64_t write_failures = 0;
  std::uint64_t synopsis_rows = 0;

  /// Input messages per stored event — the dedup win of §III-D coalescing.
  [[nodiscard]] double coalesce_ratio() const noexcept {
    return events_written
               ? static_cast<double>(messages_in - decode_failures) /
                     static_cast<double>(events_written)
               : 0.0;
  }
};

/// Subscriber + micro-batch pipeline writing into the data model.
class StreamingIngestor {
 public:
  StreamingIngestor(cassalite::Cluster& cluster, sparklite::Engine& engine,
                    buslite::Broker& broker, const std::string& topic,
                    const std::string& group = "hpcla-ingest",
                    IngestOptions options = IngestOptions());

  /// Consumer-group member variant: several ingestors in the same group
  /// split the topic's partitions and ingest in parallel. Because the bus
  /// partitions by source cname, all duplicates of one (type, node,
  /// second) land in the same member — coalescing stays exact.
  StreamingIngestor(cassalite::Cluster& cluster, sparklite::Engine& engine,
                    buslite::Broker& broker, const std::string& topic,
                    std::size_t member_index, std::size_t member_count,
                    const std::string& group = "hpcla-ingest",
                    IngestOptions options = IngestOptions());

  /// Processes every message currently on the topic as 1-second
  /// micro-batches. Safe to call repeatedly (offsets are committed).
  StreamingReport process_available();

  /// Cumulative totals across all process_available() calls.
  [[nodiscard]] const StreamingReport& totals() const noexcept {
    return totals_;
  }

  /// Attaches a materialized-view catalog: the micro-batch writer folds
  /// each coalesced event delta into the views as it lands.
  void set_view_catalog(views::ViewCatalog* views) {
    writer_.set_view_catalog(views);
  }

 private:
  void handle_batch(const sparklite::MicroBatch& batch,
                    StreamingReport& report);

  BatchIngestor writer_;
  sparklite::Engine* engine_;  ///< for chunk-parallel message decoding
  buslite::Broker* broker_;    ///< for dead-letter publishing
  std::string dlq_topic_;
  sparklite::MicroBatchStream stream_;
  StreamingReport totals_;
};

}  // namespace hpcla::model
