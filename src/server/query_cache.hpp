// Bounded, sharded LRU result cache for the analytics server's repeated
// complex queries (DESIGN.md §12).
//
// Entries are keyed by the *normalized* query JSON (objects re-serialized
// with sorted keys, so field order in the client request doesn't fragment
// the cache) and carry the view-epoch fingerprint of the query's window
// at compute time. A lookup whose stored fingerprint no longer matches
// the current one is a detected invalidation: the entry is dropped and
// the query recomputes — the cache can serve a result computed before an
// ingest only until that ingest touches a covered hour.
//
// Sharding: keys hash onto independently locked LRU shards, so concurrent
// queries contend only when they land on the same stripe. Each shard is
// capacity-bounded; inserts evict from the cold end.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"

namespace hpcla::server {

struct QueryCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  ///< stale entries dropped on lookup
  /// Sum of (current - stored) epoch gaps over invalidations: how stale
  /// the dropped entries were, in ingest events on covered hours.
  std::uint64_t staleness_epochs = 0;
  std::uint64_t evictions = 0;      ///< capacity evictions on insert
};

class QueryCache {
 public:
  struct Options {
    std::size_t shards = 8;
    std::size_t capacity_per_shard = 64;
  };

  QueryCache() : QueryCache(Options()) {}
  explicit QueryCache(Options options);

  /// Returns the cached result if present and its epoch fingerprint still
  /// matches; refreshes LRU order. A fingerprint mismatch drops the entry
  /// (counted as an invalidation AND a miss) and returns nullopt.
  [[nodiscard]] std::optional<Json> lookup(const std::string& key,
                                           std::uint64_t epoch);

  /// Inserts (or overwrites) the result computed under `epoch`.
  void insert(const std::string& key, std::uint64_t epoch, Json result);

  void clear();
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] QueryCacheStats stats() const;
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  struct Entry {
    std::string key;
    std::uint64_t epoch = 0;
    Json result;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = hottest
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  [[nodiscard]] Shard& shard_of(const std::string& key) const noexcept {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  Options options_;
  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> staleness_epochs_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// Canonical cache key: the request re-serialized with object keys sorted
/// at every depth (arrays keep order; scalars render as Json::dump()).
[[nodiscard]] std::string normalized_cache_key(const Json& request);

}  // namespace hpcla::server
