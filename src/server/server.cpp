#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "analytics/app_profile.hpp"
#include "analytics/assoc.hpp"
#include "analytics/composite.hpp"
#include "analytics/distribution.hpp"
#include "analytics/heatmap.hpp"
#include "analytics/prediction.hpp"
#include "analytics/queries.hpp"
#include "analytics/reliability.hpp"
#include "cassalite/cql.hpp"
#include "analytics/text.hpp"
#include "analytics/timeseries.hpp"
#include "analytics/transfer_entropy.hpp"
#include "common/clock.hpp"
#include "model/keys.hpp"
#include "server/render.hpp"
#include "titanlog/events.hpp"
#include "topo/machine.hpp"

namespace hpcla::server {

using analytics::Context;

Result<QueryPath> classify_query(std::string_view op) {
  static const std::map<std::string_view, QueryPath> kOps = {
      {"cql", QueryPath::kSimple},
      {"nodeinfo", QueryPath::kSimple},
      {"eventtypes", QueryPath::kSimple},
      {"synopsis", QueryPath::kSimple},
      {"events", QueryPath::kSimple},
      {"jobs", QueryPath::kSimple},
      {"metrics", QueryPath::kSimple},
      {"trace", QueryPath::kSimple},
      {"slowlog", QueryPath::kSimple},
      {"topology", QueryPath::kSimple},
      {"repair", QueryPath::kSimple},
      {"alerts", QueryPath::kSimple},
      {"selfquery", QueryPath::kSimple},
      {"heatmap", QueryPath::kComplex},
      {"distribution", QueryPath::kComplex},
      {"hourly", QueryPath::kComplex},
      {"timeseries", QueryPath::kComplex},
      {"burst", QueryPath::kComplex},
      {"cross_correlation", QueryPath::kComplex},
      {"transfer_entropy", QueryPath::kComplex},
      {"word_count", QueryPath::kComplex},
      {"storm_signature", QueryPath::kComplex},
      {"apps_running", QueryPath::kComplex},
      {"reliability", QueryPath::kComplex},
      {"app_impact", QueryPath::kComplex},
      {"render_heatmap", QueryPath::kComplex},
      {"render_placement", QueryPath::kComplex},
      {"association_rules", QueryPath::kComplex},
      {"composite_events", QueryPath::kComplex},
      {"app_profiles", QueryPath::kComplex},
      {"predict_failures", QueryPath::kComplex},
  };
  const auto it = kOps.find(op);
  if (it == kOps.end()) {
    return not_found("unknown op '" + std::string(op) + "'");
  }
  return it->second;
}

Json AnalyticsServer::handle(const Json& request) {
  Json response = Json::object();
  auto op = request.get_string("op");
  if (!op.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    response["status"] = "error";
    response["error"] = op.status().to_string();
    return response;
  }
  auto path = classify_query(op.value());
  if (!path.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    response["status"] = "error";
    response["error"] = path.status().to_string();
    return response;
  }
  const bool simple = path.value() == QueryPath::kSimple;
  // Root span: everything the query touches downstream (coordinator reads,
  // sparklite stages, replica tries) becomes a child of this trace.
  telemetry::Span span = telemetry::Span::root("server." + op.value());
  span.tag("op", op.value());
  span.tag("path", simple ? "simple" : "complex");
  const Stopwatch watch;
  // Result cache / materialized views (DESIGN.md §12): cacheable complex
  // ops consult the LRU keyed by normalized request + view epoch, then the
  // views, before falling back to the engine. The epoch fingerprint is
  // read BEFORE any compute, so an ingest that completes during the query
  // bumps the current epoch past what we store — the entry invalidates on
  // its next lookup instead of being served stale.
  const char* cache_state = nullptr;
  std::string cache_key;
  std::uint64_t epoch = 0;
  bool store = false;
  std::optional<Result<Json>> result;
  if (views_ != nullptr && cacheable_op(op.value())) {
    auto ctx = context_of(request);
    if (ctx.is_ok()) {
      cache_key = normalized_cache_key(request);
      epoch = views_->window_epoch(ctx->window);
      if (auto cached = cache_.lookup(cache_key, epoch)) {
        cache_state = "hit";
        result.emplace(std::move(*cached));
      } else if (auto viewed = try_view(op.value(), request, ctx.value())) {
        cache_state = "view";
        store = true;
        view_served_.fetch_add(1, std::memory_order_relaxed);
        result.emplace(std::move(*viewed));
      } else {
        cache_state = "miss";
        store = true;
      }
    }
  }
  if (!result.has_value()) result.emplace(dispatch(op.value(), request));
  if (store && result->is_ok()) {
    cache_.insert(cache_key, epoch, result->value());
  }
  if (cache_state != nullptr) span.tag("cache", cache_state);
  (simple ? simple_hist_ : complex_hist_)
      .record(static_cast<std::uint64_t>(watch.elapsed_micros()));
  if (span.active()) {
    response["trace_id"] = static_cast<std::int64_t>(span.trace_id());
  }
  if (!result->is_ok()) {
    span.tag("status", "error");
    errors_.fetch_add(1, std::memory_order_relaxed);
    response["status"] = "error";
    response["error"] = result->status().to_string();
    return response;
  }
  span.tag("status", "ok");
  (simple ? simple_ : complex_).fetch_add(1, std::memory_order_relaxed);
  response["status"] = "ok";
  response["path"] = simple ? "simple" : "complex";
  if (cache_state != nullptr) response["cache"] = cache_state;
  response["result"] = std::move(result->value());
  return response;
}

bool AnalyticsServer::cacheable_op(std::string_view op) noexcept {
  return op == "heatmap" || op == "distribution" || op == "hourly" ||
         op == "timeseries" || op == "burst";
}

std::string AnalyticsServer::handle_text(std::string_view request) {
  auto parsed = Json::parse(request);
  if (!parsed.is_ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Json response = Json::object();
    response["status"] = "error";
    response["error"] = parsed.status().to_string();
    return response.dump();
  }
  return handle(parsed.value()).dump();
}

ServerMetrics AnalyticsServer::metrics() const {
  ServerMetrics m;
  m.simple_queries = simple_.load(std::memory_order_relaxed);
  m.complex_queries = complex_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  return m;
}

Result<Json> AnalyticsServer::dispatch(std::string_view op,
                                       const Json& request) {
  if (op == "cql") return op_cql(request);
  if (op == "nodeinfo") return op_nodeinfo(request);
  if (op == "eventtypes") return op_eventtypes(request);
  if (op == "synopsis") return op_synopsis(request);
  if (op == "events") return op_events(request);
  if (op == "jobs") return op_jobs(request);
  if (op == "metrics") return op_metrics(request);
  if (op == "trace") return op_trace(request);
  if (op == "slowlog") return op_slowlog(request);
  if (op == "topology") return op_topology(request);
  if (op == "repair") return op_repair(request);
  if (op == "alerts") return op_alerts(request);
  if (op == "selfquery") return op_selfquery(request);
  if (op == "heatmap") return op_heatmap(request);
  if (op == "distribution") return op_distribution(request);
  if (op == "hourly") return op_hourly(request);
  if (op == "timeseries") return op_timeseries(request);
  if (op == "burst") return op_burst(request);
  if (op == "cross_correlation") return op_cross_correlation(request);
  if (op == "transfer_entropy") return op_transfer_entropy(request);
  if (op == "word_count") return op_word_count(request);
  if (op == "storm_signature") return op_storm_signature(request);
  if (op == "apps_running") return op_apps_running(request);
  if (op == "reliability") return op_reliability(request);
  if (op == "app_impact") return op_app_impact(request);
  if (op == "render_heatmap") return op_render_heatmap(request);
  if (op == "render_placement") return op_render_placement(request);
  if (op == "association_rules") return op_association_rules(request);
  if (op == "composite_events") return op_composite_events(request);
  if (op == "app_profiles") return op_app_profiles(request);
  if (op == "predict_failures") return op_predict_failures(request);
  return not_found("unhandled op '" + std::string(op) + "'");
}

Result<Context> AnalyticsServer::context_of(const Json& request) const {
  const Json& ctx = request["context"];
  if (ctx.is_null()) return invalid_argument("missing 'context'");
  return Context::from_json(ctx);
}

// ------------------------------------------------------------- simple ops

Result<Json> AnalyticsServer::op_cql(const Json& request) {
  auto query = request.get_string("query");
  if (!query.is_ok()) return query.status();
  auto result = cassalite::execute_cql(*cluster_, query.value());
  if (!result.is_ok()) return result.status();
  return result->to_json();
}

Result<Json> AnalyticsServer::op_metrics(const Json&) {
  const ServerMetrics sm = metrics();
  const cassalite::ClusterMetrics cm = cluster_->metrics();
  Json server = Json::object();
  server["simple_queries"] = Json(static_cast<std::int64_t>(sm.simple_queries));
  server["complex_queries"] =
      Json(static_cast<std::int64_t>(sm.complex_queries));
  server["errors"] = Json(static_cast<std::int64_t>(sm.errors));
  Json cluster = Json::object();
  const auto put = [&cluster](const char* k, std::uint64_t v) {
    cluster[k] = Json(static_cast<std::int64_t>(v));
  };
  put("writes_ok", cm.writes_ok);
  put("writes_unavailable", cm.writes_unavailable);
  put("reads_ok", cm.reads_ok);
  put("reads_unavailable", cm.reads_unavailable);
  put("hints_stored", cm.hints_stored);
  put("hints_replayed", cm.hints_replayed);
  put("hints_expired", cm.hints_expired);
  put("hints_overflowed", cm.hints_overflowed);
  put("read_repairs", cm.read_repairs);
  put("read_retries", cm.read_retries);
  put("write_retries", cm.write_retries);
  put("speculative_reads", cm.speculative_reads);
  put("replica_timeouts", cm.replica_timeouts);
  put("digest_mismatches", cm.digest_mismatches);
  put("topology_changes", cm.topology_changes);
  put("pending_range_writes", cm.pending_range_writes);
  put("stream_rows_sent", cm.stream_rows_sent);
  put("repairs_scheduled", cm.repairs_scheduled);
  put("ranges_streamed", cm.ranges_streamed);
  put("repair_rows_sent", cm.repair_rows_sent);
  Json j = Json::object();
  j["server"] = std::move(server);
  j["cluster"] = std::move(cluster);
  j["rendered"] = Json(render_cluster_metrics(cm));
  // Registry-wide view: every live module's instruments under their stable
  // names (see README "Telemetry"), plus Prometheus text exposition.
  const telemetry::RegistrySnapshot snap = telemetry::registry().snapshot();
  Json reg = Json::object();
  Json counters = Json::object();
  for (const auto& [name, v] : snap.counters) {
    counters[name] = Json(static_cast<std::int64_t>(v));
  }
  reg["counters"] = std::move(counters);
  Json gauges = Json::object();
  for (const auto& [name, v] : snap.gauges) gauges[name] = Json(v);
  reg["gauges"] = std::move(gauges);
  Json hists = Json::object();
  for (const auto& [name, h] : snap.histograms) {
    Json row = Json::object();
    row["count"] = Json(static_cast<std::int64_t>(h.count));
    row["sum_us"] = Json(static_cast<std::int64_t>(h.sum_us));
    row["min_us"] = Json(static_cast<std::int64_t>(h.min_us));
    row["max_us"] = Json(static_cast<std::int64_t>(h.max_us));
    row["p50_us"] = Json(h.p50_us);
    row["p95_us"] = Json(h.p95_us);
    row["p99_us"] = Json(h.p99_us);
    row["mean_us"] = Json(h.mean_us());
    hists[name] = std::move(row);
  }
  reg["histograms"] = std::move(hists);
  j["registry"] = std::move(reg);
  j["prometheus"] = Json(telemetry::prometheus_text(snap));
  return j;
}

namespace {

Json span_json(const telemetry::SpanRecord& s) {
  Json row = Json::object();
  row["span_id"] = Json(static_cast<std::int64_t>(s.span_id));
  row["parent_id"] = Json(static_cast<std::int64_t>(s.parent_id));
  row["name"] = Json(s.name);
  row["start_us"] = Json(s.start_us);
  row["duration_us"] = Json(s.duration_us);
  Json tags = Json::object();
  for (const auto& [k, v] : s.tags) tags[k] = Json(v);
  row["tags"] = std::move(tags);
  return row;
}

}  // namespace

Result<Json> AnalyticsServer::op_trace(const Json& request) {
  auto id = request.get_int("trace_id");
  if (!id.is_ok()) return id.status();
  if (id.value() <= 0) return invalid_argument("'trace_id' must be positive");
  auto spans =
      telemetry::tracer().trace(static_cast<std::uint64_t>(id.value()));
  if (spans.empty()) {
    return not_found("no spans for trace " + std::to_string(id.value()) +
                     " (evicted or never recorded)");
  }
  Json out = Json::object();
  out["trace_id"] = id.value();
  Json arr = Json::array();
  for (const auto& s : spans) arr.push_back(span_json(s));
  out["spans"] = std::move(arr);
  out["rendered"] = Json(render_trace(spans));
  return out;
}

Result<Json> AnalyticsServer::op_slowlog(const Json&) {
  const auto spans = telemetry::tracer().slow_ops();
  Json out = Json::object();
  out["threshold_us"] = telemetry::tracer().slow_threshold_us();
  Json arr = Json::array();
  for (const auto& s : spans) {
    Json row = span_json(s);
    row["trace_id"] = Json(static_cast<std::int64_t>(s.trace_id));
    arr.push_back(std::move(row));
  }
  out["spans"] = std::move(arr);
  return out;
}

Result<Json> AnalyticsServer::op_topology(const Json& request) {
  // Optional mutation first (nodetool-style admin verbs), then the
  // post-action view of the ring — so the response always describes the
  // topology the action produced.
  const auto action = request.get_string("action");
  if (action.is_ok()) {
    const std::string& verb = action.value();
    if (verb == "add_node") {
      const std::int64_t vnodes = request.get_int("vnodes").value_or(0);
      const std::int64_t rack = request.get_int("rack").value_or(-1);
      if (vnodes < 0) return invalid_argument("'vnodes' must be >= 0");
      auto added = request.as_object().contains("token_seed")
                       ? cluster_->add_node(
                             static_cast<std::size_t>(vnodes),
                             static_cast<int>(rack),
                             static_cast<std::uint64_t>(
                                 request.get_int("token_seed").value_or(0)))
                       : cluster_->add_node(static_cast<std::size_t>(vnodes),
                                            static_cast<int>(rack));
      if (!added.is_ok()) return added.status();
    } else if (verb == "remove_node") {
      auto node = request.get_int("node");
      if (!node.is_ok()) return node.status();
      if (node.value() < 0) return invalid_argument("'node' must be >= 0");
      HPCLA_RETURN_IF_ERROR(cluster_->remove_node(
          static_cast<cassalite::NodeIndex>(node.value())));
    } else if (verb == "rebalance") {
      auto seed = request.get_int("token_seed");
      if (!seed.is_ok()) return seed.status();
      HPCLA_RETURN_IF_ERROR(
          cluster_->rebalance(static_cast<std::uint64_t>(seed.value())));
    } else {
      return invalid_argument("unknown topology action '" + verb + "'");
    }
  }
  const cassalite::TokenRing& ring = cluster_->ring();
  Json out = Json::object();
  out["epoch"] = static_cast<std::int64_t>(cluster_->ring_epoch());
  out["node_slots"] = static_cast<std::int64_t>(cluster_->node_count());
  out["members"] = static_cast<std::int64_t>(cluster_->member_count());
  out["replication_factor"] =
      static_cast<std::int64_t>(cluster_->replication_factor());
  out["movement_in_progress"] = cluster_->movement_in_progress();
  Json members = Json::array();
  for (cassalite::NodeIndex n : ring.members()) {
    Json row = Json::object();
    row["node"] = static_cast<std::int64_t>(n);
    row["vnodes"] = static_cast<std::int64_t>(ring.tokens_of(n).size());
    row["alive"] = cluster_->is_alive(n);
    const int rack = cluster_->rack_of(n);
    if (rack >= 0) row["rack"] = static_cast<std::int64_t>(rack);
    members.push_back(std::move(row));
  }
  out["ring"] = std::move(members);
  return out;
}

Result<Json> AnalyticsServer::op_repair(const Json& request) {
  const auto table = request.get_string("table");
  auto report = table.is_ok() ? cluster_->repair(table.value())
                              : cluster_->repair_all();
  if (!report.is_ok()) return report.status();
  Json out = Json::object();
  out["tables"] = static_cast<std::int64_t>(report->tables);
  out["ranges_checked"] = static_cast<std::int64_t>(report->ranges_checked);
  out["ranges_diverged"] = static_cast<std::int64_t>(report->ranges_diverged);
  out["rows_streamed"] = static_cast<std::int64_t>(report->rows_streamed);
  out["replicas_repaired"] =
      static_cast<std::int64_t>(report->replicas_repaired);
  return out;
}

Result<Json> AnalyticsServer::op_alerts(const Json&) {
  if (selftel_ == nullptr) {
    return failed_precondition("self-telemetry loop not attached");
  }
  return selftel_->alerts().to_json();
}

namespace {

/// Hour span a selfquery may fan over; beyond this the partition-key list
/// (and the parallel_read behind it) stops being a sane online query.
constexpr std::int64_t kMaxSelfQueryHours = 1024;

}  // namespace

Result<Json> AnalyticsServer::op_selfquery(const Json& request) {
  if (selftel_ == nullptr) {
    return failed_precondition("self-telemetry loop not attached");
  }
  auto what = request.get_string("what");
  if (!what.is_ok()) return what.status();
  auto begin = request.get_int("begin");
  auto end = request.get_int("end");
  if (!begin.is_ok() || !end.is_ok()) {
    return invalid_argument("'begin' and 'end' (unix seconds) are required");
  }
  if (end.value() < begin.value()) {
    return invalid_argument("'end' must be >= 'begin'");
  }
  const std::int64_t h0 = hour_bucket(begin.value());
  const std::int64_t h1 = hour_bucket(end.value());
  if (h1 - h0 + 1 > kMaxSelfQueryHours) {
    return invalid_argument("window spans more than " +
                            std::to_string(kMaxSelfQueryHours) + " hours");
  }
  const std::size_t limit = static_cast<std::size_t>(
      std::max<std::int64_t>(request.get_int("limit").value_or(1000), 1));

  // Per-op span summaries come from the in-memory hourly tiles; metric
  // and span history reads fan partition keys across the cluster — the
  // sys_* tables are shaped like the event tables precisely so the same
  // parallel_read path serves them.
  if (what.value() == "ops") {
    const auto filter = request.get_string("spanop");
    Json arr = Json::array();
    for (const auto& s :
         selftel_->ingestor().views().summaries(h0, h1)) {
      if (filter.is_ok() && s.op != filter.value()) continue;
      arr.push_back(s.to_json());
    }
    Json out = Json::object();
    out["ops"] = std::move(arr);
    return out;
  }

  if (what.value() == "latency_p99" || what.value() == "metric_series") {
    auto metric = request.get_string("metric");
    if (!metric.is_ok()) return metric.status();
    std::vector<std::string> keys;
    keys.reserve(static_cast<std::size_t>(h1 - h0 + 1));
    for (std::int64_t h = h0; h <= h1; ++h) {
      keys.push_back(model::selftel::sys_metric_key(h, metric.value()));
    }
    auto results = cluster_->parallel_read(
        engine_->pool(), std::string(model::selftel::kSysMetrics), keys);
    std::vector<titanlog::MetricSample> samples;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].is_ok()) return results[i].status();
      for (const auto& row : results[i]->rows) {
        auto s = model::selftel::decode_sys_metric_row(keys[i], row);
        if (!s.is_ok()) return s.status();
        if (s->ts < begin.value() || s->ts > end.value()) continue;
        samples.push_back(std::move(s).value());
      }
    }
    // parallel_read returns hours in order and rows clustering-ordered
    // within each partition, so `samples` is already (ts, seq) ascending.
    Json out = Json::object();
    out["metric"] = metric.value();
    out["rows"] = static_cast<std::int64_t>(samples.size());
    if (what.value() == "latency_p99") {
      if (samples.empty()) {
        return not_found("no sys_metrics rows for '" + metric.value() +
                         "' in window");
      }
      out["latest"] = samples.back().to_json();
      return out;
    }
    Json arr = Json::array();
    const std::size_t first =
        samples.size() > limit ? samples.size() - limit : 0;
    for (std::size_t i = first; i < samples.size(); ++i) {
      arr.push_back(samples[i].to_json());
    }
    out["truncated"] = first > 0;
    out["series"] = std::move(arr);
    return out;
  }

  if (what.value() == "slow_spans") {
    auto op = request.get_string("spanop");
    if (!op.is_ok()) return op.status();
    std::vector<std::string> keys;
    keys.reserve(static_cast<std::size_t>(h1 - h0 + 1));
    for (std::int64_t h = h0; h <= h1; ++h) {
      keys.push_back(model::selftel::sys_span_key(h, op.value()));
    }
    auto results = cluster_->parallel_read(
        engine_->pool(), std::string(model::selftel::kSysSpans), keys);
    std::vector<titanlog::SpanSample> spans;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].is_ok()) return results[i].status();
      for (const auto& row : results[i]->rows) {
        auto s = model::selftel::decode_sys_span_row(keys[i], row);
        if (!s.is_ok()) return s.status();
        if (s->ts < begin.value() || s->ts > end.value()) continue;
        if (!s->slow) continue;
        spans.push_back(std::move(s).value());
      }
    }
    std::stable_sort(spans.begin(), spans.end(),
                     [](const titanlog::SpanSample& a,
                        const titanlog::SpanSample& b) {
                       return a.duration_us > b.duration_us;
                     });
    if (spans.size() > limit) spans.resize(limit);
    Json arr = Json::array();
    for (const auto& s : spans) arr.push_back(s.to_json());
    Json out = Json::object();
    out["op"] = op.value();
    out["spans"] = std::move(arr);
    return out;
  }

  return invalid_argument(
      "unknown 'what' (expected latency_p99|metric_series|ops|slow_spans)");
}

Result<Json> AnalyticsServer::op_nodeinfo(const Json& request) {
  topo::NodeId node = topo::kInvalidNode;
  if (request.as_object().contains("node")) {
    auto nid = request.get_int("node");
    if (!nid.is_ok()) return nid.status();
    if (nid.value() < 0 || nid.value() >= topo::TitanGeometry::kTotalNodes) {
      return invalid_argument("node id out of range");
    }
    node = static_cast<topo::NodeId>(nid.value());
  } else {
    auto cname = request.get_string("cname");
    if (!cname.is_ok()) return invalid_argument("need 'node' or 'cname'");
    auto coord = topo::parse_cname(cname.value());
    if (!coord.is_ok()) return coord.status();
    if (coord->level() != topo::LocationLevel::kNode) {
      return invalid_argument("'cname' must be node-level");
    }
    node = topo::node_id(coord.value());
  }
  // Served from the nodeinfos table (falling back to the in-memory machine
  // would hide ingestion gaps from operators).
  cassalite::ReadQuery q;
  q.table = std::string(model::kNodeInfos);
  q.partition_key = model::nodeinfo_key(node);
  auto r = cluster_->select(q);
  if (!r.is_ok()) return r.status();
  if (r->rows.empty()) {
    return not_found("nodeinfos row for nid " + std::to_string(node) +
                     " not loaded");
  }
  Json row = Json::object();
  row["nid"] = node;
  for (const auto& cell : r->rows.front().cells) {
    row[cell.name] = cell.value.to_json();
  }
  return row;
}

Result<Json> AnalyticsServer::op_eventtypes(const Json&) {
  Json arr = Json::array();
  for (const auto& info : titanlog::event_catalog()) {
    arr.push_back(info.to_json());
  }
  return arr;
}

Result<Json> AnalyticsServer::op_synopsis(const Json& request) {
  auto begin = request["window"].get_int("begin");
  if (!begin.is_ok()) return begin.status();
  auto end = request["window"].get_int("end");
  if (!end.is_ok()) return end.status();
  auto entries =
      analytics::fetch_synopsis(*cluster_, TimeRange{begin.value(), end.value()});
  Json arr = Json::array();
  for (const auto& e : entries) {
    Json row = Json::object();
    row["hour"] = e.hour;
    row["type"] = std::string(titanlog::event_id(e.type));
    row["count"] = e.count;
    row["first_ts"] = e.first_ts;
    row["last_ts"] = e.last_ts;
    arr.push_back(std::move(row));
  }
  return arr;
}

Result<Json> AnalyticsServer::op_events(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  const std::int64_t limit = request.get_int("limit").value_or(1000);
  if (limit <= 0) return invalid_argument("'limit' must be positive");
  auto events = analytics::raw_log_view(*engine_, *cluster_, ctx.value(),
                                        static_cast<std::size_t>(limit));
  Json arr = Json::array();
  for (const auto& e : events) arr.push_back(e.to_json());
  return arr;
}

Result<Json> AnalyticsServer::op_jobs(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto jobs = analytics::fetch_jobs(*engine_, *cluster_, ctx.value());
  Json arr = Json::array();
  for (const auto& j : jobs) arr.push_back(j.to_json());
  return arr;
}

// ------------------------------------------------------------ complex ops

namespace {

// Shared serializers for the cacheable ops: the engine path and the
// materialized-view path funnel through the same formatter, so a
// view-served response is byte-identical to a cold recompute.

Json heatmap_json(const analytics::HeatMap& hm, double k_sigma) {
  Json out = Json::object();
  out["total"] = hm.total;
  out["peak"] = hm.peak;
  out["peak_node"] = hm.peak_node;
  if (hm.peak_node != topo::kInvalidNode) {
    out["peak_cname"] = topo::cname_of(hm.peak_node);
  }
  Json cabinets = Json::array();
  for (auto c : hm.cabinet_counts()) cabinets.push_back(c);
  out["cabinets"] = std::move(cabinets);
  Json anomalous = Json::array();
  for (const auto& [node, count] : hm.anomalous_nodes(k_sigma)) {
    Json row = Json::object();
    row["node"] = node;
    row["cname"] = topo::cname_of(node);
    row["count"] = count;
    anomalous.push_back(std::move(row));
  }
  out["anomalous_nodes"] = std::move(anomalous);
  // Nonzero node counts (sparse form — 19,200 dense entries would bloat
  // every response).
  Json nodes = Json::array();
  for (std::size_t n = 0; n < hm.node_counts.size(); ++n) {
    if (hm.node_counts[n] != 0) {
      Json row = Json::object();
      row["node"] = n;
      row["count"] = hm.node_counts[n];
      nodes.push_back(std::move(row));
    }
  }
  out["nonzero_nodes"] = std::move(nodes);
  return out;
}

Json label_count_json(
    const std::vector<std::pair<std::string, std::int64_t>>& rows) {
  Json arr = Json::array();
  for (const auto& [label, count] : rows) {
    Json row = Json::object();
    row["label"] = label;
    row["count"] = count;
    arr.push_back(std::move(row));
  }
  return arr;
}

Json hourly_json(
    const std::vector<std::pair<std::int64_t, std::int64_t>>& hourly) {
  Json arr = Json::array();
  for (const auto& [hour, count] : hourly) {
    Json row = Json::object();
    row["hour"] = hour;
    row["count"] = count;
    arr.push_back(std::move(row));
  }
  return arr;
}

Result<titanlog::EventType> type_field(const Json& request, const char* key) {
  auto id = request.get_string(key);
  if (!id.is_ok()) return id.status();
  return titanlog::event_type_from_id(id.value());
}

Json series_json(const std::vector<double>& series) {
  Json arr = Json::array();
  for (double v : series) arr.push_back(v);
  return arr;
}

// Works for both analytics::BurstPercentiles (engine path) and
// model::views::BurstSummary (view path) — same field names by design,
// so both paths serialize identically. Responses carry only the sketch
// summaries (events + three percentiles), never raw sample buffers.
template <typename Rows>
Json burst_json(const Rows& rows) {
  Json arr = Json::array();
  for (const auto& r : rows) {
    Json row = Json::object();
    row["label"] = r.label;
    row["events"] = static_cast<std::int64_t>(r.events);
    row["p50"] = r.p50;
    row["p95"] = r.p95;
    row["p99"] = r.p99;
    arr.push_back(std::move(row));
  }
  return arr;
}

Json timeseries_json(std::int64_t bin, const std::vector<double>& series) {
  Json out = Json::object();
  out["bin_seconds"] = bin;
  out["series"] = series_json(series);
  return out;
}

}  // namespace

Result<Json> AnalyticsServer::op_heatmap(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto hm = analytics::build_heatmap(*engine_, *cluster_, ctx.value());
  return heatmap_json(hm, request.get_double("k_sigma").value_or(3.0));
}

Result<Json> AnalyticsServer::op_distribution(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto group_name = request.get_string("group_by");
  if (!group_name.is_ok()) return group_name.status();
  auto group = analytics::group_by_from_string(group_name.value());
  if (!group.is_ok()) return group.status();
  auto dist =
      analytics::distribution(*engine_, *cluster_, ctx.value(), group.value());
  std::vector<std::pair<std::string, std::int64_t>> rows;
  rows.reserve(dist.size());
  for (const auto& entry : dist) rows.emplace_back(entry.label, entry.count);
  return label_count_json(rows);
}

Result<Json> AnalyticsServer::op_burst(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto group = analytics::group_by_from_string(
      request.get_string("group_by").value_or("type"));
  if (!group.is_ok()) return group.status();
  const double eps = request.get_double("epsilon").value_or(
      model::views::ViewCatalog::kBurstEpsilon);
  if (!(eps > 0.0 && eps < 0.5)) {
    return invalid_argument("'epsilon' must be in (0, 0.5)");
  }
  return burst_json(analytics::burst_percentiles(*engine_, *cluster_,
                                                 ctx.value(), group.value(),
                                                 eps));
}

Result<Json> AnalyticsServer::op_hourly(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  return hourly_json(
      analytics::hourly_distribution(*engine_, *cluster_, ctx.value()));
}

Result<Json> AnalyticsServer::op_timeseries(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto type = type_field(request, "type");
  if (!type.is_ok()) return type.status();
  const std::int64_t bin = request.get_int("bin_seconds").value_or(60);
  if (bin <= 0) return invalid_argument("'bin_seconds' must be positive");
  return timeseries_json(bin,
                         analytics::event_series(*engine_, *cluster_,
                                                 ctx.value(), type.value(),
                                                 bin));
}

std::optional<Json> AnalyticsServer::try_view(std::string_view op,
                                              const Json& request,
                                              const Context& ctx) {
  using model::views::ViewCatalog;
  // Views only cover the dimensions the event tables filter on: an
  // hour-aligned window with no user/app restriction. Anything else falls
  // through to the engine (and still populates the result cache).
  if (!ViewCatalog::aligned(ctx.window)) return std::nullopt;
  if (!ctx.users.empty() || !ctx.apps.empty()) return std::nullopt;
  model::views::ViewQuery q{ctx.window, ctx.types, ctx.location};
  if (op == "heatmap") {
    const auto hm = analytics::heatmap_from_counts(views_->heatmap_counts(q));
    return heatmap_json(hm, request.get_double("k_sigma").value_or(3.0));
  }
  if (op == "hourly") return hourly_json(views_->hourly_counts(q));
  if (op == "distribution") {
    // Only the per-type grouping is materialized.
    if (request.get_string("group_by").value_or("") != "type") {
      return std::nullopt;
    }
    return label_count_json(views_->type_counts(q));
  }
  if (op == "burst") {
    // Tile sketches are whole-system and per-type at the catalog's fixed
    // epsilon: a location filter, a non-type grouping, or a custom
    // epsilon all need the engine's per-event pass.
    if (ctx.location) return std::nullopt;
    if (request.get_string("group_by").value_or("type") != "type") {
      return std::nullopt;
    }
    if (request.get_double("epsilon")
            .value_or(ViewCatalog::kBurstEpsilon) !=
        ViewCatalog::kBurstEpsilon) {
      return std::nullopt;
    }
    return burst_json(views_->burst_percentiles(q));
  }
  if (op == "timeseries") {
    // Only the hourly bin matches the tile grid; event_series replaces the
    // context's type list with the requested type.
    if (request.get_int("bin_seconds").value_or(60) !=
        ViewCatalog::kHourSeconds) {
      return std::nullopt;
    }
    auto type = type_field(request, "type");
    if (!type.is_ok()) return std::nullopt;  // engine path reports the error
    model::views::ViewQuery tq = q;
    tq.types = {type.value()};
    return timeseries_json(ViewCatalog::kHourSeconds,
                           views_->hour_series(tq));
  }
  return std::nullopt;
}

Result<Json> AnalyticsServer::op_cross_correlation(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto type_a = type_field(request, "type_a");
  if (!type_a.is_ok()) return type_a.status();
  auto type_b = type_field(request, "type_b");
  if (!type_b.is_ok()) return type_b.status();
  const std::int64_t bin = request.get_int("bin_seconds").value_or(60);
  const std::int64_t max_lag = request.get_int("max_lag").value_or(10);
  if (bin <= 0 || max_lag < 0) return invalid_argument("bad bin/max_lag");
  auto a = analytics::event_series(*engine_, *cluster_, ctx.value(),
                                   type_a.value(), bin);
  auto b = analytics::event_series(*engine_, *cluster_, ctx.value(),
                                   type_b.value(), bin);
  auto corr = analytics::cross_correlation(
      a, b, static_cast<std::size_t>(max_lag));
  Json out = Json::object();
  out["bin_seconds"] = bin;
  out["max_lag"] = max_lag;
  out["correlation"] = series_json(corr);
  out["peak_lag"] =
      analytics::peak_lag(corr, static_cast<std::size_t>(max_lag));
  return out;
}

Result<Json> AnalyticsServer::op_transfer_entropy(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto type_a = type_field(request, "type_a");
  if (!type_a.is_ok()) return type_a.status();
  auto type_b = type_field(request, "type_b");
  if (!type_b.is_ok()) return type_b.status();
  const std::int64_t bin = request.get_int("bin_seconds").value_or(60);
  const std::int64_t levels = request.get_int("levels").value_or(2);
  const std::int64_t max_shift = request.get_int("max_shift").value_or(0);
  if (bin <= 0 || levels < 2 || max_shift < 0) {
    return invalid_argument("bad bin/levels/max_shift");
  }
  auto a = analytics::event_series(*engine_, *cluster_, ctx.value(),
                                   type_a.value(), bin);
  auto b = analytics::event_series(*engine_, *cluster_, ctx.value(),
                                   type_b.value(), bin);
  auto pair = analytics::transfer_entropy_pair(a, b, static_cast<int>(levels));
  Json out = Json::object();
  out["bin_seconds"] = bin;
  out["levels"] = levels;
  out["te_xy"] = pair.te_xy;
  out["te_yx"] = pair.te_yx;
  out["net"] = pair.net();
  if (max_shift > 0) {
    out["profile_xy"] = series_json(analytics::transfer_entropy_profile(
        a, b, static_cast<std::size_t>(max_shift), static_cast<int>(levels)));
  }
  return out;
}

Result<Json> AnalyticsServer::op_word_count(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  const std::int64_t top_k = request.get_int("top_k").value_or(20);
  if (top_k <= 0) return invalid_argument("'top_k' must be positive");
  auto terms = analytics::word_count(*engine_, *cluster_, ctx.value(),
                                     static_cast<std::size_t>(top_k));
  Json arr = Json::array();
  for (const auto& t : terms) {
    Json row = Json::object();
    row["term"] = t.term;
    row["count"] = t.count;
    arr.push_back(std::move(row));
  }
  return arr;
}

Result<Json> AnalyticsServer::op_storm_signature(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  const std::int64_t bucket = request.get_int("bucket_seconds").value_or(60);
  const std::int64_t top_k = request.get_int("top_k").value_or(10);
  if (bucket <= 0 || top_k <= 0) return invalid_argument("bad bucket/top_k");
  auto terms = analytics::storm_signature(*engine_, *cluster_, ctx.value(),
                                          bucket,
                                          static_cast<std::size_t>(top_k));
  Json arr = Json::array();
  for (const auto& t : terms) {
    Json row = Json::object();
    row["term"] = t.term;
    row["score"] = t.score;
    arr.push_back(std::move(row));
  }
  return arr;
}

Result<Json> AnalyticsServer::op_apps_running(const Json& request) {
  auto t = request.get_int("t");
  if (!t.is_ok()) return t.status();
  auto jobs = analytics::apps_running_at(*engine_, *cluster_, t.value());
  Json arr = Json::array();
  for (const auto& j : jobs) arr.push_back(j.to_json());
  return arr;
}

Result<Json> AnalyticsServer::op_reliability(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto report = analytics::reliability_report(*engine_, *cluster_, ctx.value());
  Json out = Json::object();
  Json counts = Json::object();
  for (const auto& [type, count] : report.counts_by_type) {
    counts[std::string(titanlog::event_id(type))] = count;
  }
  out["counts_by_type"] = std::move(counts);
  out["fatal_events"] = report.fatal_events;
  out["mtbf_seconds"] = report.mtbf_seconds;
  out["events_per_node_hour"] = report.events_per_node_hour;
  out["affected_nodes"] = report.affected_nodes;
  return out;
}

Result<Json> AnalyticsServer::op_app_impact(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto report = analytics::app_impact(*engine_, *cluster_, ctx.value());
  Json out = Json::object();
  out["jobs"] = report.jobs;
  out["failed_jobs"] = report.failed_jobs;
  out["failed_with_event"] = report.failed_with_event;
  out["ok_with_event"] = report.ok_with_event;
  out["failure_rate"] = report.failure_rate();
  return out;
}

Result<Json> AnalyticsServer::op_render_heatmap(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto hm = analytics::build_heatmap(*engine_, *cluster_, ctx.value());
  Json out = Json::object();
  out["map"] = render_cabinet_heatmap(hm);
  if (request.as_object().contains("cabinet")) {
    auto cab = request.get_int("cabinet");
    if (!cab.is_ok()) return cab.status();
    if (cab.value() < 0 || cab.value() >= topo::TitanGeometry::kCabinets) {
      return invalid_argument("cabinet index out of range");
    }
    out["cabinet_detail"] =
        render_cabinet_detail(hm, static_cast<int>(cab.value()));
  }
  if (request.as_object().contains("ppm_path")) {
    auto path = request.get_string("ppm_path");
    if (!path.is_ok()) return path.status();
    HPCLA_RETURN_IF_ERROR(write_heatmap_ppm(hm, path.value()));
    out["ppm_path"] = path.value();
  }
  return out;
}

Result<Json> AnalyticsServer::op_render_placement(const Json& request) {
  auto t = request.get_int("t");
  if (!t.is_ok()) return t.status();
  auto jobs = analytics::apps_running_at(*engine_, *cluster_, t.value());
  Json out = Json::object();
  out["map"] = render_placement_map(jobs);
  out["jobs"] = static_cast<std::int64_t>(jobs.size());
  return out;
}

Result<Json> AnalyticsServer::op_association_rules(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  analytics::AssocConfig config;
  config.bucket_seconds = request.get_int("bucket_seconds").value_or(600);
  config.min_support = request.get_double("min_support").value_or(0.001);
  config.min_confidence = request.get_double("min_confidence").value_or(0.3);
  if (config.bucket_seconds <= 0 || config.min_support < 0.0 ||
      config.min_confidence < 0.0) {
    return invalid_argument("bad association-rule thresholds");
  }
  auto rules =
      analytics::mine_association_rules(*engine_, *cluster_, ctx.value(),
                                        config);
  Json arr = Json::array();
  for (const auto& r : rules) arr.push_back(r.to_json());
  return arr;
}

Result<Json> AnalyticsServer::op_composite_events(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  // Rules: the named defaults, or inline definitions.
  std::vector<analytics::CompositeRule> rules;
  const Json& spec = request["rules"];
  if (spec.is_null()) {
    rules = analytics::default_composite_rules();
  } else {
    if (!spec.is_array()) return invalid_argument("'rules' must be an array");
    for (const auto& r : spec.as_array()) {
      analytics::CompositeRule rule;
      auto name = r.get_string("name");
      if (!name.is_ok()) return name.status();
      rule.name = name.value();
      auto scope = r.get_string("scope");
      if (scope.is_ok()) {
        auto parsed = analytics::match_scope_from_string(scope.value());
        if (!parsed.is_ok()) return parsed.status();
        rule.scope = parsed.value();
      }
      const Json& steps = r["steps"];
      if (!steps.is_array() || steps.as_array().size() < 2) {
        return invalid_argument("rule '" + rule.name +
                                "' needs >= 2 steps");
      }
      for (const auto& s : steps.as_array()) {
        analytics::CompositeStep step;
        auto type = type_field(s, "type");
        if (!type.is_ok()) return type.status();
        step.type = type.value();
        step.max_gap_seconds = s.get_int("max_gap_seconds").value_or(600);
        rule.steps.push_back(step);
      }
      rules.push_back(std::move(rule));
    }
  }
  auto matches = analytics::detect_composites(*engine_, *cluster_,
                                              ctx.value(), rules);
  Json arr = Json::array();
  for (const auto& m : matches) {
    Json row = Json::object();
    row["rule"] = m.rule;
    row["scope_key"] = m.scope_key;
    row["last_node"] = m.last_node;
    row["cname"] = topo::cname_of(m.last_node);
    row["start_ts"] = m.start_ts;
    row["end_ts"] = m.end_ts;
    row["steps"] = static_cast<std::int64_t>(m.step_events.size());
    arr.push_back(std::move(row));
  }
  return arr;
}

Result<Json> AnalyticsServer::op_app_profiles(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  auto profiles = analytics::build_app_profiles(*engine_, *cluster_,
                                                ctx.value());
  Json arr = Json::array();
  for (const auto& p : profiles) arr.push_back(p.to_json());
  return arr;
}

Result<Json> AnalyticsServer::op_predict_failures(const Json& request) {
  auto ctx = context_of(request);
  if (!ctx.is_ok()) return ctx.status();
  analytics::PredictorConfig config;
  config.window_seconds = request.get_int("window_seconds").value_or(1800);
  config.threshold = request.get_int("threshold").value_or(3);
  config.lead_seconds = request.get_int("lead_seconds").value_or(1800);
  if (config.window_seconds <= 0 || config.threshold <= 0 ||
      config.lead_seconds <= 0) {
    return invalid_argument("window/threshold/lead must be positive");
  }
  const Json& precursors = request["precursors"];
  if (precursors.is_array()) {
    for (const auto& t : precursors.as_array()) {
      if (!t.is_string()) return invalid_argument("precursor must be string");
      auto parsed = titanlog::event_type_from_id(t.as_string());
      if (!parsed.is_ok()) return parsed.status();
      config.precursors.push_back(parsed.value());
    }
  }
  const Json& targets = request["targets"];
  if (targets.is_array()) {
    for (const auto& t : targets.as_array()) {
      if (!t.is_string()) return invalid_argument("target must be string");
      auto parsed = titanlog::event_type_from_id(t.as_string());
      if (!parsed.is_ok()) return parsed.status();
      config.targets.push_back(parsed.value());
    }
  }
  auto report = analytics::evaluate_predictor(*engine_, *cluster_,
                                              ctx.value(), config);
  Json out = Json::object();
  out["alarms"] = static_cast<std::int64_t>(report.alarms.size());
  out["failures"] = report.failures;
  out["failures_predicted"] = report.failures_predicted;
  out["true_positives"] = report.true_positives;
  out["false_positives"] = report.false_positives;
  out["precision"] = report.precision();
  out["recall"] = report.recall();
  out["mean_lead_seconds"] = report.mean_lead_seconds();
  return out;
}

// ------------------------------------------------------------ AsyncSession

std::uint64_t AsyncSession::submit(Json request) {
  std::lock_guard lock(mu_);
  const std::uint64_t ticket = next_ticket_++;
  auto server = server_;
  pending_.emplace(ticket, pool_.submit([server, request = std::move(request)] {
                     return server->handle(request);
                   }));
  return ticket;
}

Result<Json> AsyncSession::poll(std::uint64_t ticket) {
  std::lock_guard lock(mu_);
  const auto it = pending_.find(ticket);
  if (it == pending_.end()) {
    return not_found("unknown ticket " + std::to_string(ticket));
  }
  if (it->second.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    return unavailable("ticket " + std::to_string(ticket) + " still running");
  }
  Json response = it->second.get();
  pending_.erase(it);
  return response;
}

Result<Json> AsyncSession::wait(std::uint64_t ticket) {
  std::future<Json> fut;
  {
    std::lock_guard lock(mu_);
    const auto it = pending_.find(ticket);
    if (it == pending_.end()) {
      return not_found("unknown ticket " + std::to_string(ticket));
    }
    fut = std::move(it->second);
    pending_.erase(it);
  }
  return fut.get();
}

}  // namespace hpcla::server
