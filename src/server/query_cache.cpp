#include "server/query_cache.hpp"

#include <algorithm>

namespace hpcla::server {

QueryCache::QueryCache(Options options) : options_(options) {
  options_.shards = std::max<std::size_t>(options_.shards, 1);
  options_.capacity_per_shard =
      std::max<std::size_t>(options_.capacity_per_shard, 1);
  shards_ = std::vector<Shard>(options_.shards);
}

std::optional<Json> QueryCache::lookup(const std::string& key,
                                       std::uint64_t epoch) {
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  if (it->second->epoch != epoch) {
    // Ingest touched a covered hour since this entry was computed: drop
    // it rather than serve a stale result.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    staleness_epochs_.fetch_add(
        epoch > it->second->epoch ? epoch - it->second->epoch : 0,
        std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void QueryCache::insert(const std::string& key, std::uint64_t epoch,
                        Json result) {
  Shard& shard = shard_of(key);
  std::lock_guard lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->epoch = epoch;
    it->second->result = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, epoch, std::move(result)});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > options_.capacity_per_shard) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

std::size_t QueryCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

QueryCacheStats QueryCache::stats() const {
  QueryCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.staleness_epochs = staleness_epochs_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

namespace {

void normalize_to(const Json& j, std::string& out) {
  if (j.is_object()) {
    const auto& obj = j.as_object();
    std::vector<const JsonObject::Entry*> entries;
    entries.reserve(obj.size());
    for (const auto& e : obj) entries.push_back(&e);
    std::sort(entries.begin(), entries.end(),
              [](const JsonObject::Entry* a, const JsonObject::Entry* b) {
                return a->first < b->first;
              });
    out += '{';
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (i) out += ',';
      out += json_escape(entries[i]->first);
      out += ':';
      normalize_to(entries[i]->second, out);
    }
    out += '}';
  } else if (j.is_array()) {
    out += '[';
    const auto& arr = j.as_array();
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      normalize_to(arr[i], out);
    }
    out += ']';
  } else {
    out += j.dump();
  }
}

}  // namespace

std::string normalized_cache_key(const Json& request) {
  std::string out;
  normalize_to(request, out);
  return out;
}

}  // namespace hpcla::server
