// The analytics server (paper §III, Fig 3).
//
// "The analytics server consists of a web server, a query processing
//  engine, and a big data processing engine. The user queries are received
//  by the web server, translated by the query engine, and either forwarded
//  to the backend database, or the big data processing unit depending on
//  the type of a user query. Simple queries are directly handled by the
//  query engine, and complex queries are passed to the big data processing
//  unit."
//
// AnalyticsServer::handle() is the request entry point: a JSON query in,
// a JSON response out. The classifier routes lookups/slices (simple) to
// direct cassalite reads and analytics (complex) to sparklite jobs.
// With a ViewCatalog attached (set_view_catalog), the repeated complex
// aggregations (heatmap/distribution/hourly/timeseries) are answered from
// a bounded result cache or the materialized views when possible
// (DESIGN.md §12); the response carries a "cache":"hit|view|miss" field.
// AsyncSession reproduces the Tornado long-polling shape: submit returns a
// ticket, poll retrieves the response when ready.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "analytics/context.hpp"
#include "cassalite/cluster.hpp"
#include "common/json.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "model/selftel/selftel.hpp"
#include "model/views/views.hpp"
#include "server/query_cache.hpp"
#include "sparklite/engine.hpp"

namespace hpcla::server {

/// Routing decision for a query op.
enum class QueryPath { kSimple, kComplex };

/// Classifies an op name; kNotFound for unknown ops.
Result<QueryPath> classify_query(std::string_view op);

struct ServerMetrics {
  std::uint64_t simple_queries = 0;
  std::uint64_t complex_queries = 0;
  std::uint64_t errors = 0;
};

class AnalyticsServer {
 public:
  AnalyticsServer(cassalite::Cluster& cluster, sparklite::Engine& engine,
                  QueryCache::Options cache_options = QueryCache::Options())
      : cluster_(&cluster), engine_(&engine), cache_(cache_options) {
    telemetry_ = telemetry::registry().register_collector(
        [this](telemetry::MetricSink& sink) {
          sink.counter("server.queries.simple",
                       simple_.load(std::memory_order_relaxed));
          sink.counter("server.queries.complex",
                       complex_.load(std::memory_order_relaxed));
          sink.counter("server.queries.errors",
                       errors_.load(std::memory_order_relaxed));
          sink.counter("server.queries.view_served",
                       view_served_.load(std::memory_order_relaxed));
          const QueryCacheStats cs = cache_.stats();
          sink.counter("server.cache.hits", cs.hits);
          sink.counter("server.cache.misses", cs.misses);
          sink.counter("server.cache.invalidations", cs.invalidations);
          sink.counter("server.cache.staleness_epochs", cs.staleness_epochs);
          sink.counter("server.cache.evictions", cs.evictions);
          sink.gauge("server.cache.entries",
                     static_cast<double>(cache_.size()));
        });
  }

  /// Attaches the materialized-view catalog maintained by the ingestors
  /// (not owned). Enables the result cache + view serving for the
  /// cacheable complex ops; pass nullptr to fall back to engine-only.
  void set_view_catalog(model::views::ViewCatalog* views) { views_ = views; }

  /// The server-side result cache (for inspection in tests/benchmarks).
  [[nodiscard]] QueryCache& query_cache() noexcept { return cache_; }

  /// Attaches the self-telemetry loop (not owned): enables the `alerts`
  /// op (online anomaly/SLO state) and the `selfquery` op (the system's
  /// own metric/span history out of the sys_* tables and span views).
  /// Pass nullptr to detach.
  void set_self_telemetry(model::selftel::SelfTelemetryLoop* loop) {
    selftel_ = loop;
  }

  /// Handles one frontend query synchronously.
  ///
  /// Request envelope:  {"op": "<name>", ...op-specific fields}
  /// Response envelope: {"status":"ok","path":"simple|complex",
  ///                     "result":...} or {"status":"error","error":"..."}
  ///
  /// Ops (see README for the full schema):
  ///   simple:  nodeinfo, eventtypes, synopsis, events, jobs, topology,
  ///            repair
  ///   complex: heatmap, distribution, hourly, timeseries, burst,
  ///            cross_correlation, transfer_entropy, word_count,
  ///            storm_signature, apps_running, reliability, app_impact,
  ///            render_heatmap, render_placement, composite_events,
  ///            app_profiles, predict_failures, association_rules
  [[nodiscard]] Json handle(const Json& request);

  /// Convenience: parse a JSON request string, handle, serialize response.
  [[nodiscard]] std::string handle_text(std::string_view request);

  [[nodiscard]] ServerMetrics metrics() const;

 private:
  Result<Json> dispatch(std::string_view op, const Json& request);

  // simple path
  Result<Json> op_cql(const Json& request);
  Result<Json> op_nodeinfo(const Json& request);
  Result<Json> op_eventtypes(const Json& request);
  Result<Json> op_synopsis(const Json& request);
  Result<Json> op_events(const Json& request);
  Result<Json> op_jobs(const Json& request);
  Result<Json> op_metrics(const Json& request);
  Result<Json> op_trace(const Json& request);
  Result<Json> op_slowlog(const Json& request);
  Result<Json> op_topology(const Json& request);
  Result<Json> op_repair(const Json& request);
  Result<Json> op_alerts(const Json& request);
  Result<Json> op_selfquery(const Json& request);

  // complex path (big data processing unit)
  Result<Json> op_heatmap(const Json& request);
  Result<Json> op_distribution(const Json& request);
  Result<Json> op_hourly(const Json& request);
  Result<Json> op_timeseries(const Json& request);
  Result<Json> op_burst(const Json& request);
  Result<Json> op_cross_correlation(const Json& request);
  Result<Json> op_transfer_entropy(const Json& request);
  Result<Json> op_word_count(const Json& request);
  Result<Json> op_storm_signature(const Json& request);
  Result<Json> op_apps_running(const Json& request);
  Result<Json> op_reliability(const Json& request);
  Result<Json> op_app_impact(const Json& request);
  Result<Json> op_render_heatmap(const Json& request);
  Result<Json> op_render_placement(const Json& request);
  Result<Json> op_association_rules(const Json& request);
  Result<Json> op_composite_events(const Json& request);
  Result<Json> op_app_profiles(const Json& request);
  Result<Json> op_predict_failures(const Json& request);

  Result<analytics::Context> context_of(const Json& request) const;

  /// Ops whose results are view-servable and cache-eligible.
  [[nodiscard]] static bool cacheable_op(std::string_view op) noexcept;

  /// Answers `op` from the materialized views when the context is
  /// view-covered (aligned window, no user/app dimension, op arguments
  /// on the hourly grid); nullopt falls through to the engine.
  [[nodiscard]] std::optional<Json> try_view(std::string_view op,
                                             const Json& request,
                                             const analytics::Context& ctx);

  cassalite::Cluster* cluster_;
  sparklite::Engine* engine_;
  model::views::ViewCatalog* views_ = nullptr;           ///< not owned
  model::selftel::SelfTelemetryLoop* selftel_ = nullptr;  ///< not owned
  QueryCache cache_;
  mutable std::atomic<std::uint64_t> simple_{0};
  mutable std::atomic<std::uint64_t> complex_{0};
  mutable std::atomic<std::uint64_t> errors_{0};
  mutable std::atomic<std::uint64_t> view_served_{0};
  // Per-path end-to-end latency (registry references cached once; record
  // is lock-free).
  telemetry::LatencyHistogram& simple_hist_ =
      telemetry::registry().histogram("server.query.simple.us");
  telemetry::LatencyHistogram& complex_hist_ =
      telemetry::registry().histogram("server.query.complex.us");
  /// Registry collector (captures `this`); last member so it deregisters
  /// before the counters it reads.
  telemetry::CollectorHandle telemetry_;
};

/// Long-poll session: queries run on a small worker pool; the client
/// polls with the ticket until the response is ready (paper §III-A:
/// Tornado non-blocking long polling).
class AsyncSession {
 public:
  explicit AsyncSession(AnalyticsServer& server, std::size_t workers = 2)
      : server_(&server), pool_(workers) {}

  /// Enqueues a query; returns a ticket.
  std::uint64_t submit(Json request);

  /// Non-blocking poll: response if ready, kUnavailable if still running,
  /// kNotFound for unknown tickets. A delivered ticket is forgotten.
  Result<Json> poll(std::uint64_t ticket);

  /// Blocking wait for a ticket.
  Result<Json> wait(std::uint64_t ticket);

 private:
  AnalyticsServer* server_;
  ThreadPool pool_;
  std::mutex mu_;
  std::map<std::uint64_t, std::future<Json>> pending_;
  std::uint64_t next_ticket_ = 1;
};

}  // namespace hpcla::server
