// Textual/image renderers standing in for the D3/HTML5 frontend.
//
// The paper's frontend draws the physical system map (25×8 cabinet grid),
// heat maps over it, application placements (Fig 5/6), and the temporal
// map. We reproduce each view as deterministic ASCII art (for terminals
// and tests) and the heat map additionally as a PPM image.
#pragma once

#include <string>
#include <vector>

#include "analytics/heatmap.hpp"
#include "analytics/text.hpp"
#include "cassalite/cluster.hpp"
#include "common/status.hpp"
#include "common/telemetry.hpp"
#include "titanlog/record.hpp"

namespace hpcla::server {

/// ASCII physical system map at cabinet granularity: 25 rows × 8 columns,
/// one glyph per cabinet scaled by its share of the peak count
/// (" .:-=+*#%@"). Includes row/column rulers.
std::string render_cabinet_heatmap(const analytics::HeatMap& hm);

/// ASCII drill-down of one cabinet: 3 cages × 8 slots × 4 nodes, one glyph
/// per node.
std::string render_cabinet_detail(const analytics::HeatMap& hm, int cabinet);

/// Application placement map (Fig 6 bottom): each cabinet shows the letter
/// of the job occupying the most of its nodes at the queried instant
/// ('.' = idle). Returns the map plus a legend line per letter.
std::string render_placement_map(const std::vector<titanlog::JobRecord>& jobs);

/// Temporal map (Fig 5 top): counts per time bin as a one-line spark bar
/// plus labelled axis.
std::string render_temporal_map(const std::vector<double>& series,
                                UnixSeconds window_begin,
                                std::int64_t bin_seconds);

/// Writes the node-level heat map as a binary PPM (P6) image. Each node is
/// one pixel; cabinets are separated by 1-pixel gutters. Black -> red ->
/// yellow -> white color ramp.
Status write_heatmap_ppm(const analytics::HeatMap& hm,
                         const std::string& path);

/// Word-bubble stand-in (Fig 7 bottom): terms sized by count, one per line.
std::string render_word_bubbles(
    const std::vector<analytics::TermCount>& terms);

/// Coordinator health panel: write/read outcomes, hint lifecycle, and the
/// resilience counters (retries, speculation, timeouts, digest mismatches)
/// as labelled rows — the ops view next to the storage/broker metrics.
std::string render_cluster_metrics(const cassalite::ClusterMetrics& m);

/// Flame-style text rendering of one trace: spans as an indented tree
/// (children under their parent, siblings in start order), each row showing
/// the span name, compact tags, a right-aligned duration, and a bar scaled
/// to the root span's duration. Orphaned spans (parent evicted or capped)
/// render as extra roots.
std::string render_trace(const std::vector<telemetry::SpanRecord>& spans);

}  // namespace hpcla::server
