#include "server/render.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <set>

namespace hpcla::server {

using topo::TitanGeometry;

namespace {

constexpr std::string_view kRamp = " .:-=+*#%@";

char intensity_glyph(std::int64_t count, std::int64_t peak) {
  if (count <= 0 || peak <= 0) return kRamp[0];
  const auto idx = 1 + static_cast<std::size_t>(
                           static_cast<double>(count) /
                           static_cast<double>(peak) *
                           static_cast<double>(kRamp.size() - 2));
  return kRamp[std::min(idx, kRamp.size() - 1)];
}

}  // namespace

std::string render_cabinet_heatmap(const analytics::HeatMap& hm) {
  const auto cabinets = hm.cabinet_counts();
  std::int64_t peak = 0;
  for (auto c : cabinets) peak = std::max(peak, c);

  std::string out = "     c0 c1 c2 c3 c4 c5 c6 c7   (columns)\n";
  for (int row = 0; row < TitanGeometry::kRows; ++row) {
    char head[16];
    std::snprintf(head, sizeof(head), "r%02d | ", row);
    out += head;
    for (int col = 0; col < TitanGeometry::kCols; ++col) {
      const auto idx =
          static_cast<std::size_t>(row * TitanGeometry::kCols + col);
      out.push_back(intensity_glyph(cabinets[idx], peak));
      out += "  ";
    }
    out.push_back('\n');
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "total=%lld peak_cabinet_count=%lld scale=\"%s\"\n",
                static_cast<long long>(hm.total),
                static_cast<long long>(peak), std::string(kRamp).c_str());
  out += tail;
  return out;
}

std::string render_cabinet_detail(const analytics::HeatMap& hm, int cabinet) {
  HPCLA_CHECK_MSG(cabinet >= 0 && cabinet < TitanGeometry::kCabinets,
                  "cabinet index out of range");
  const topo::NodeId first =
      static_cast<topo::NodeId>(cabinet) * TitanGeometry::kNodesPerCabinet;
  std::int64_t peak = 0;
  for (int i = 0; i < TitanGeometry::kNodesPerCabinet; ++i) {
    peak = std::max(peak,
                    hm.node_counts[static_cast<std::size_t>(first + i)]);
  }
  const topo::Coord cab = topo::coord_of(first);
  std::string out = "cabinet " +
                    topo::format_cname(topo::Coord{cab.row, cab.col, -1, -1, -1}) +
                    "  (rows: cage/node, cols: slot)\n";
  for (int cage = 0; cage < TitanGeometry::kCagesPerCabinet; ++cage) {
    for (int node = 0; node < TitanGeometry::kNodesPerBlade; ++node) {
      char head[16];
      std::snprintf(head, sizeof(head), "c%dn%d | ", cage, node);
      out += head;
      for (int slot = 0; slot < TitanGeometry::kSlotsPerCage; ++slot) {
        const topo::NodeId id = topo::node_id(
            topo::Coord{cab.row, cab.col, cage, slot, node});
        out.push_back(
            intensity_glyph(hm.node_counts[static_cast<std::size_t>(id)],
                            peak));
        out.push_back(' ');
      }
      out.push_back('\n');
    }
  }
  return out;
}

std::string render_placement_map(
    const std::vector<titanlog::JobRecord>& jobs) {
  // Dominant job per cabinet; letters assigned by allocation size.
  std::vector<const titanlog::JobRecord*> ordered;
  ordered.reserve(jobs.size());
  for (const auto& j : jobs) ordered.push_back(&j);
  std::sort(ordered.begin(), ordered.end(),
            [](const titanlog::JobRecord* a, const titanlog::JobRecord* b) {
              if (a->nodes.size() != b->nodes.size()) {
                return a->nodes.size() > b->nodes.size();
              }
              return a->apid < b->apid;
            });
  std::map<std::int64_t, char> letters;
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    letters[ordered[i]->apid] =
        i < 26 ? static_cast<char>('A' + i) : '+';
  }
  // Per-cabinet occupancy.
  std::vector<std::map<std::int64_t, int>> per_cabinet(
      static_cast<std::size_t>(TitanGeometry::kCabinets));
  for (const auto& j : jobs) {
    for (const auto n : j.nodes) {
      per_cabinet[static_cast<std::size_t>(topo::cabinet_of(n))][j.apid]++;
    }
  }

  std::string out = "     c0 c1 c2 c3 c4 c5 c6 c7   (columns)\n";
  for (int row = 0; row < TitanGeometry::kRows; ++row) {
    char head[16];
    std::snprintf(head, sizeof(head), "r%02d | ", row);
    out += head;
    for (int col = 0; col < TitanGeometry::kCols; ++col) {
      const auto& occ =
          per_cabinet[static_cast<std::size_t>(row * TitanGeometry::kCols + col)];
      char glyph = '.';
      int best = 0;
      for (const auto& [apid, count] : occ) {
        if (count > best) {
          best = count;
          glyph = letters[apid];
        }
      }
      out.push_back(glyph);
      out += "  ";
    }
    out.push_back('\n');
  }
  // Legend: at most 26 lettered jobs.
  for (std::size_t i = 0; i < ordered.size() && i < 26; ++i) {
    char line[160];
    std::snprintf(line, sizeof(line), "%c: apid=%lld app=%s user=%s nodes=%zu\n",
                  static_cast<char>('A' + i),
                  static_cast<long long>(ordered[i]->apid),
                  ordered[i]->app_name.c_str(), ordered[i]->user.c_str(),
                  ordered[i]->nodes.size());
    out += line;
  }
  return out;
}

std::string render_temporal_map(const std::vector<double>& series,
                                UnixSeconds window_begin,
                                std::int64_t bin_seconds) {
  double peak = 0.0;
  for (double v : series) peak = std::max(peak, v);
  std::string out = "temporal map (bin=" + std::to_string(bin_seconds) +
                    "s, start=" + format_timestamp(window_begin) + ")\n|";
  for (double v : series) {
    out.push_back(intensity_glyph(static_cast<std::int64_t>(v),
                                  static_cast<std::int64_t>(peak)));
  }
  out += "|\npeak_bin_count=" + std::to_string(static_cast<long long>(peak)) +
         "\n";
  return out;
}

Status write_heatmap_ppm(const analytics::HeatMap& hm,
                         const std::string& path) {
  // Layout: one pixel per node. Cabinet cell = 8 (slots) x 12 (cage*node),
  // plus a 1px gutter between cabinets.
  constexpr int kCellW = TitanGeometry::kSlotsPerCage;       // 8
  constexpr int kCellH = TitanGeometry::kCagesPerCabinet *
                         TitanGeometry::kNodesPerBlade;      // 12
  constexpr int kW = TitanGeometry::kCols * (kCellW + 1) - 1;   // 71
  constexpr int kH = TitanGeometry::kRows * (kCellH + 1) - 1;   // 324
  std::vector<unsigned char> pixels(static_cast<std::size_t>(kW * kH * 3), 20);

  const double peak = static_cast<double>(std::max<std::int64_t>(hm.peak, 1));
  for (topo::NodeId id = 0; id < TitanGeometry::kTotalNodes; ++id) {
    const topo::Coord c = topo::coord_of(id);
    const int x = c.col * (kCellW + 1) + c.slot;
    const int y = c.row * (kCellH + 1) + c.cage * TitanGeometry::kNodesPerBlade +
                  c.node;
    const double v =
        static_cast<double>(hm.node_counts[static_cast<std::size_t>(id)]) /
        peak;
    // Black -> red -> yellow -> white ramp.
    const double r = std::min(1.0, v * 3.0);
    const double g = std::clamp(v * 3.0 - 1.0, 0.0, 1.0);
    const double b = std::clamp(v * 3.0 - 2.0, 0.0, 1.0);
    const std::size_t off = (static_cast<std::size_t>(y) * kW +
                             static_cast<std::size_t>(x)) * 3;
    pixels[off] = static_cast<unsigned char>(40 + r * 215);
    pixels[off + 1] = static_cast<unsigned char>(40 + g * 215);
    pixels[off + 2] = static_cast<unsigned char>(40 + b * 215);
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) return invalid_argument("cannot open '" + path + "' for writing");
  out << "P6\n" << kW << " " << kH << "\n255\n";
  out.write(reinterpret_cast<const char*>(pixels.data()),
            static_cast<std::streamsize>(pixels.size()));
  if (!out) return internal_error("short write to '" + path + "'");
  return Status::ok();
}

std::string render_word_bubbles(
    const std::vector<analytics::TermCount>& terms) {
  std::int64_t peak = 0;
  for (const auto& t : terms) peak = std::max(peak, t.count);
  std::string out;
  for (const auto& t : terms) {
    const auto width = peak > 0
                           ? static_cast<std::size_t>(
                                 static_cast<double>(t.count) /
                                 static_cast<double>(peak) * 40.0)
                           : 0;
    char head[64];
    std::snprintf(head, sizeof(head), "%-16s %8lld  ", t.term.c_str(),
                  static_cast<long long>(t.count));
    out += head;
    out.append(std::max<std::size_t>(width, 1), 'o');
    out.push_back('\n');
  }
  return out;
}

std::string render_cluster_metrics(const cassalite::ClusterMetrics& m) {
  std::string out = "coordinator\n";
  const auto line = [&out](const char* label, std::uint64_t v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %-20s %12llu\n", label,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  line("writes_ok", m.writes_ok);
  line("writes_unavailable", m.writes_unavailable);
  line("reads_ok", m.reads_ok);
  line("reads_unavailable", m.reads_unavailable);
  line("read_repairs", m.read_repairs);
  line("read_retries", m.read_retries);
  line("write_retries", m.write_retries);
  line("speculative_reads", m.speculative_reads);
  line("replica_timeouts", m.replica_timeouts);
  line("digest_mismatches", m.digest_mismatches);
  out += "hinted handoff\n";
  line("hints_stored", m.hints_stored);
  line("hints_replayed", m.hints_replayed);
  line("hints_expired", m.hints_expired);
  line("hints_overflowed", m.hints_overflowed);
  out += "topology + repair\n";
  line("topology_changes", m.topology_changes);
  line("pending_range_writes", m.pending_range_writes);
  line("stream_rows_sent", m.stream_rows_sent);
  line("repairs_scheduled", m.repairs_scheduled);
  line("ranges_streamed", m.ranges_streamed);
  line("repair_rows_sent", m.repair_rows_sent);
  return out;
}

std::string render_trace(const std::vector<telemetry::SpanRecord>& spans) {
  if (spans.empty()) return "(empty trace)\n";
  // Index children by parent, siblings ordered by (start, span_id) — span
  // ids are allocated monotonically, so ties (virtual-time replica tries
  // starting at the same instant) keep creation order.
  std::map<std::uint64_t, std::vector<const telemetry::SpanRecord*>> children;
  std::map<std::uint64_t, const telemetry::SpanRecord*> by_id;
  for (const auto& s : spans) by_id[s.span_id] = &s;
  std::vector<const telemetry::SpanRecord*> roots;
  for (const auto& s : spans) {
    if (s.parent_id != 0 && by_id.count(s.parent_id) != 0) {
      children[s.parent_id].push_back(&s);
    } else {
      roots.push_back(&s);
    }
  }
  const auto order = [](const telemetry::SpanRecord* a,
                        const telemetry::SpanRecord* b) {
    if (a->start_us != b->start_us) return a->start_us < b->start_us;
    return a->span_id < b->span_id;
  };
  for (auto& [_, kids] : children) std::sort(kids.begin(), kids.end(), order);
  std::sort(roots.begin(), roots.end(), order);

  std::int64_t scale = 1;
  for (const auto* r : roots) scale = std::max(scale, r->duration_us);

  std::string out;
  constexpr std::size_t kLabelWidth = 56;
  constexpr std::size_t kBarWidth = 20;
  // Nesting beyond this is elided (one marker line per branch): traces
  // from runaway recursion stay renderable with bounded stack and output.
  constexpr int kMaxDepth = 32;
  // Indentation stops growing before it would swallow the whole label
  // column; deeper rows share the maximum indent.
  constexpr int kMaxIndentDepth = 20;
  std::set<std::uint64_t> visited;
  // Marks a whole subtree visited without emitting it — the tail of an
  // over-deep branch, so the flat unreachable-span pass below doesn't
  // resurrect rows the depth limit elided.
  const std::function<void(const telemetry::SpanRecord*)> mark_elided =
      [&](const telemetry::SpanRecord* s) {
        if (!visited.insert(s->span_id).second) return;
        for (const auto* kid : children[s->span_id]) mark_elided(kid);
      };
  const std::function<void(const telemetry::SpanRecord*, int)> emit =
      [&](const telemetry::SpanRecord* s, int depth) {
        // Cycle / duplicate-id guard: corrupted records whose parent chain
        // loops would otherwise recurse forever.
        if (!visited.insert(s->span_id).second) return;
        std::string label(
            static_cast<std::size_t>(std::min(depth, kMaxIndentDepth)) * 2,
            ' ');
        label += s->name;
        for (const auto& [k, v] : s->tags) {
          label += ' ';
          label += k;
          label += '=';
          label += v;
        }
        if (label.size() > kLabelWidth) {
          label.resize(kLabelWidth - 3);
          label += "...";
        }
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %10lld us  ",
                      static_cast<long long>(s->duration_us));
        const auto filled = static_cast<std::size_t>(
            static_cast<double>(std::max<std::int64_t>(s->duration_us, 0)) /
            static_cast<double>(scale) * static_cast<double>(kBarWidth));
        out += label;
        out.append(kLabelWidth - label.size(), ' ');
        out += buf;
        out.append(std::min(filled, kBarWidth), '#');
        out.push_back('\n');
        if (depth >= kMaxDepth) {
          if (!children[s->span_id].empty()) {
            out.append(
                static_cast<std::size_t>(std::min(depth, kMaxIndentDepth) + 1) *
                    2,
                ' ');
            out += "... (deeper spans elided)\n";
            for (const auto* kid : children[s->span_id]) mark_elided(kid);
          }
          return;
        }
        for (const auto* kid : children[s->span_id]) emit(kid, depth + 1);
      };
  for (const auto* r : roots) emit(r, 0);
  // Spans unreachable from any root (their parent chain forms a cycle)
  // render flat at the end so no recorded span silently disappears.
  for (const auto& s : spans) {
    if (visited.count(s.span_id) == 0) emit(&s, 0);
  }
  return out;
}

}  // namespace hpcla::server
