#include "titanlog/parser.hpp"

#include "common/strings.hpp"
#include "topo/cname.hpp"

namespace hpcla::titanlog {

const std::vector<EventPattern>& default_patterns() {
  static const std::vector<EventPattern> kPatterns = [] {
    std::vector<EventPattern> p;
    const auto add = [&p](EventType t, std::string prefilter,
                          const char* regex) {
      p.push_back(EventPattern{t, std::move(prefilter),
                               std::regex(regex, std::regex::optimize)});
    };
    // Order matters where prefilters overlap: GPU DBE (Xid 48) must be
    // tried before the generic GPU Xid pattern.
    add(EventType::kGpuMemoryError, "Xid 48",
        R"(GPU Xid 48: double-bit ECC error)");
    add(EventType::kGpuFailure, "Xid", R"(GPU Xid \d+:)");
    add(EventType::kMachineCheck, "MCE",
        R"(MCE: Machine Check Exception bank \d+)");
    add(EventType::kMemoryEcc, "EDAC", R"(EDAC MC\d+: \d+ CE error)");
    add(EventType::kLustreError, "LustreError", R"(LustreError:)");
    add(EventType::kDvsError, "DVS", R"(DVS: \w+:)");
    add(EventType::kNetworkError, "HWERR", R"(HWERR: Gemini)");
    add(EventType::kKernelPanic, "Kernel panic",
        R"(Kernel panic - not syncing)");
    add(EventType::kAppAbort, "apsched: apid",
        R"(apsched: apid \d+ killed)");
    return p;
  }();
  return kPatterns;
}

Result<ParsedLine> LogParser::parse_line(std::string_view line) const {
  // Layout: 19-char timestamp, space, location token, space, payload.
  if (line.size() < 21) return invalid_argument("line too short");
  const auto ts = parse_timestamp(line.substr(0, 19));
  if (!ts.is_ok()) return ts.status();
  if (line[19] != ' ') return invalid_argument("missing separator after ts");
  std::string_view rest = line.substr(20);
  const auto space = rest.find(' ');
  if (space == std::string_view::npos) {
    return invalid_argument("missing payload");
  }
  const std::string_view location = rest.substr(0, space);
  const std::string_view payload = rest.substr(space + 1);

  if (location == "apsched:") {
    auto job = parse_job(payload);
    if (!job.is_ok()) return job.status();
    return ParsedLine{std::move(job.value())};
  }
  auto event = parse_event(ts.value(), location, payload);
  if (!event.is_ok()) return event.status();
  return ParsedLine{std::move(event.value())};
}

Result<EventRecord> LogParser::parse_event(UnixSeconds ts,
                                           std::string_view cname,
                                           std::string_view payload) const {
  const auto coord = topo::parse_cname(cname);
  if (!coord.is_ok()) return coord.status();
  if (coord->level() != topo::LocationLevel::kNode) {
    return invalid_argument("event location must be node-level: '" +
                            std::string(cname) + "'");
  }
  for (const auto& pat : *patterns_) {
    if (payload.find(pat.prefilter) == std::string_view::npos) continue;
    if (!std::regex_search(payload.begin(), payload.end(), pat.pattern)) {
      continue;
    }
    EventRecord e;
    e.ts = ts;
    e.type = pat.type;
    e.node = topo::node_id(coord.value());
    e.message = std::string(payload);
    return e;
  }
  return not_found("no pattern matched payload");
}

Result<JobRecord> LogParser::parse_job(std::string_view payload) const {
  // key=value tokens: apid user app nids start end exit.
  JobRecord job;
  bool have_apid = false;
  bool have_user = false;
  bool have_app = false;
  bool have_nids = false;
  bool have_start = false;
  bool have_end = false;
  bool have_exit = false;
  for (const auto token : split_whitespace(payload)) {
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    long long num = 0;
    if (key == "apid" && parse_int(value, num)) {
      job.apid = num;
      have_apid = true;
    } else if (key == "user") {
      job.user = std::string(value);
      have_user = !value.empty();
    } else if (key == "app") {
      job.app_name = std::string(value);
      have_app = !value.empty();
    } else if (key == "nids") {
      auto nodes = parse_nid_ranges(value);
      if (!nodes.is_ok()) return nodes.status();
      job.nodes = std::move(nodes.value());
      have_nids = true;
    } else if (key == "start" && parse_int(value, num)) {
      job.start = num;
      have_start = true;
    } else if (key == "end" && parse_int(value, num)) {
      job.end = num;
      have_end = true;
    } else if (key == "exit" && parse_int(value, num)) {
      job.exit_code = static_cast<int>(num);
      have_exit = true;
    }
  }
  if (!(have_apid && have_user && have_app && have_nids && have_start &&
        have_end && have_exit)) {
    return invalid_argument("incomplete apsched record");
  }
  if (job.end < job.start) {
    return invalid_argument("apsched record with end < start");
  }
  return job;
}

void LogParser::parse_batch(const std::vector<LogLine>& lines,
                            std::vector<EventRecord>& events,
                            std::vector<JobRecord>& jobs,
                            ParseStats& stats) const {
  for (const auto& line : lines) {
    ++stats.lines;
    auto parsed = parse_line(line.text);
    if (!parsed.is_ok()) {
      if (parsed.status().code() == StatusCode::kNotFound) {
        ++stats.unmatched;
      } else {
        ++stats.malformed;
      }
      continue;
    }
    if (parsed->is_event()) {
      events.push_back(parsed->event());
      ++stats.events;
    } else {
      jobs.push_back(parsed->job());
      ++stats.jobs;
    }
  }
}

}  // namespace hpcla::titanlog
