// Synthetic Titan log generator.
//
// The paper's experiments run on production Titan logs, which are not
// publicly available. This generator produces the closest synthetic
// equivalent: raw console/netwatch/job log lines with the statistical
// structure every analytic in the paper depends on —
//
//   * skewed background rates per event type (memory ECC >> kernel panic),
//   * spatial hotspots: a cabinet/blade with an elevated rate of one type
//     (the Fig 5 "MCE abnormally high in some compute nodes" heat map),
//   * system-wide Lustre storms: tens of thousands of messages over a few
//     minutes, all implicating one faulty OST (the Fig 7 word-count
//     root-cause scenario),
//   * causal event pairs: type A at a node triggers type B after a fixed
//     lag (the Fig 7 transfer-entropy scenario),
//   * an application workload: Zipf app/user popularity, heavy-tailed
//     durations, contiguous placements, and failures correlated with
//     fatal events on allocated nodes (app-impact analytics, Fig 6).
//
// Everything is seeded and deterministic: the same ScenarioConfig yields
// byte-identical logs, so experiments are exactly reproducible.
#pragma once

#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "titanlog/events.hpp"
#include "titanlog/record.hpp"
#include "topo/machine.hpp"

namespace hpcla::titanlog {

/// Elevated rate of one event type in one part of the machine.
struct HotspotSpec {
  EventType type = EventType::kMachineCheck;
  topo::Coord location;  ///< cabinet/cage/blade/node-level coordinate
  TimeRange window;
  double rate_per_node_hour = 1.0;
  /// Zipf exponent skewing events onto a few nodes within the location
  /// (0 = uniform).
  double node_skew = 1.0;
};

/// System-wide Lustre error storm implicating one object storage target.
struct LustreStormSpec {
  UnixSeconds start = 0;
  std::int64_t duration_seconds = 300;
  int ost_index = 0x42;          ///< the faulty OST every message names
  double messages_per_second = 200.0;
  double affected_node_fraction = 0.8;
};

/// Causal pair: each `cause` event triggers an `effect` event on the same
/// node `lag_seconds` later with probability `probability`.
struct CausalPairSpec {
  EventType cause = EventType::kNetworkError;
  EventType effect = EventType::kLustreError;
  std::int64_t lag_seconds = 30;
  double probability = 0.8;
  std::int64_t lag_jitter_seconds = 2;
};

/// Application workload mix.
struct JobMixSpec {
  int users = 40;
  int apps = 12;
  double jobs_per_hour = 120.0;
  /// Job sizes are 2^k nodes, k zipf-weighted toward small jobs.
  int max_size_log2 = 12;         ///< up to 4096 nodes
  double mean_duration_hours = 1.0;
  double base_failure_prob = 0.04;
  /// Probability a job fails when a fatal event hits one of its nodes.
  double failure_prob_on_fatal_event = 0.9;
};

/// Complete scenario description.
struct ScenarioConfig {
  std::uint64_t seed = 42;
  TimeRange window;               ///< simulation period
  /// Scales all catalog background rates (0 disables background noise).
  double background_scale = 1.0;
  std::vector<HotspotSpec> hotspots;
  std::vector<LustreStormSpec> storms;
  std::vector<CausalPairSpec> causal_pairs;
  std::optional<JobMixSpec> jobs;
};

/// Generator output: ground-truth records, sorted by (ts, seq).
struct GeneratedLogs {
  std::vector<EventRecord> events;
  std::vector<JobRecord> jobs;

  [[nodiscard]] std::size_t total_event_count() const noexcept {
    return events.size();
  }
};

/// Renders an event record as the raw log line the parsers consume:
/// "YYYY-MM-DD HH:MM:SS <cname> <message>".
LogLine render_event(const EventRecord& record);

/// Renders a job record as an ALPS-style accounting line.
LogLine render_job(const JobRecord& record);

/// Renders the full raw log stream (events + job lines), sorted by ts.
std::vector<LogLine> render_all(const GeneratedLogs& logs);

class Generator {
 public:
  explicit Generator(ScenarioConfig config);

  /// Runs the scenario. Deterministic in the config (including seed).
  [[nodiscard]] GeneratedLogs generate();

 private:
  void generate_background(GeneratedLogs& out);
  void generate_hotspots(GeneratedLogs& out);
  void generate_storms(GeneratedLogs& out);
  void generate_causal_effects(GeneratedLogs& out);
  void generate_jobs(GeneratedLogs& out);
  void finalize(GeneratedLogs& out);

  /// Fabricates a realistic message payload for a type.
  std::string make_message(EventType type);
  std::string make_storm_message(int ost_index);

  ScenarioConfig config_;
  Rng rng_;
};

}  // namespace hpcla::titanlog
