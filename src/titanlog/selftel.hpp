// Self-telemetry record vocabulary: the shapes telemetry::Exporter
// publishes on the `_telemetry.*` bus topics. They mirror EventRecord's
// JSON idiom (flat objects, to_json/from_json with Result-typed decode
// errors) so the streaming-ingest machinery treats the system's own
// observability data exactly like any other log stream (DESIGN.md §16).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.hpp"
#include "common/json.hpp"

namespace hpcla::titanlog {

/// Bus topics the exporter publishes on. The leading underscore marks
/// them internal: buslite accounts their traffic separately so exported
/// broker metrics never reflect telemetry traffic itself.
inline constexpr const char* kTelemetryMetricsTopic = "_telemetry.metrics";
inline constexpr const char* kTelemetrySpansTopic = "_telemetry.spans";

/// One exported metric observation: a counter delta since the previous
/// export cycle, a gauge level, or a histogram window (count/sum deltas
/// plus point-in-time percentiles).
struct MetricSample {
  UnixSeconds ts = 0;    ///< export time (wall or SimClock)
  std::string name;      ///< registry metric name (dotted)
  std::string kind;      ///< "counter" | "gauge" | "hist"
  double value = 0.0;    ///< counter delta / gauge level / hist count delta
  double sum_us = 0.0;   ///< hist only: sum-of-latencies delta
  double p50_us = 0.0;   ///< hist only: cumulative percentile at export
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  std::int64_t seq = 0;  ///< export cycle number (uniquifier within ts)

  [[nodiscard]] Json to_json() const;
  static Result<MetricSample> from_json(const Json& j);

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

/// One exported completed span (tail-sampled: its trace was slow,
/// errored, or reservoir-kept).
struct SpanSample {
  UnixSeconds ts = 0;  ///< export time (wall or SimClock)
  std::string op;      ///< root span name of the owning trace
  std::string name;    ///< this span's name
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::int64_t start_us = 0;    ///< tracer-clock start (relative)
  std::int64_t duration_us = 0;
  bool slow = false;     ///< owning trace had a span over the threshold
  bool errored = false;  ///< owning trace carried an error tag

  [[nodiscard]] Json to_json() const;
  static Result<SpanSample> from_json(const Json& j);

  friend bool operator==(const SpanSample&, const SpanSample&) = default;
};

}  // namespace hpcla::titanlog
