#include "titanlog/events.hpp"

namespace hpcla::titanlog {

std::string_view severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "?";
}

std::string_view log_source_name(LogSource s) noexcept {
  switch (s) {
    case LogSource::kConsole: return "console";
    case LogSource::kNetwatch: return "netwatch";
    case LogSource::kJob: return "job";
  }
  return "?";
}

Json EventTypeInfo::to_json() const {
  Json j = Json::object();
  j["id"] = std::string(id);
  j["description"] = std::string(description);
  j["source"] = std::string(log_source_name(source));
  j["severity"] = std::string(severity_name(severity));
  j["base_rate_per_node_hour"] = base_rate_per_node_hour;
  return j;
}

const std::array<EventTypeInfo, kEventTypeCount>& event_catalog() {
  static const std::array<EventTypeInfo, kEventTypeCount> kCatalog = {{
      {EventType::kMachineCheck, "MCE",
       "CPU machine check exception", LogSource::kConsole, Severity::kError,
       0.004},
      {EventType::kMemoryEcc, "MemEcc",
       "correctable DRAM ECC error", LogSource::kConsole, Severity::kWarning,
       0.02},
      {EventType::kGpuFailure, "GPUXid",
       "GPU XID fault", LogSource::kConsole, Severity::kError, 0.002},
      {EventType::kGpuMemoryError, "GPUDbe",
       "GPU double-bit GDDR5 ECC error", LogSource::kConsole, Severity::kError,
       0.001},
      {EventType::kLustreError, "LustreError",
       "Lustre filesystem error", LogSource::kConsole, Severity::kError,
       0.01},
      {EventType::kDvsError, "DVS",
       "Cray DVS service error", LogSource::kConsole, Severity::kWarning,
       0.003},
      {EventType::kNetworkError, "HWERR",
       "Gemini HSN link/lane failure", LogSource::kNetwatch, Severity::kError,
       0.0015},
      {EventType::kKernelPanic, "KernelPanic",
       "node kernel panic", LogSource::kConsole, Severity::kFatal, 0.0002},
      {EventType::kAppAbort, "AppAbort",
       "application abort reported by ALPS", LogSource::kJob, Severity::kError,
       0.0},  // derived from the job workload, not a background process
  }};
  return kCatalog;
}

const EventTypeInfo& event_info(EventType type) {
  return event_catalog()[static_cast<std::size_t>(type)];
}

std::string_view event_id(EventType type) { return event_info(type).id; }

Result<EventType> event_type_from_id(std::string_view id) {
  for (const auto& info : event_catalog()) {
    if (info.id == id) return info.type;
  }
  return not_found("unknown event type id '" + std::string(id) + "'");
}

}  // namespace hpcla::titanlog
