// ETL parsers: raw log lines -> normalized records.
//
// Paper §III-D: batch import "involves ... parsing the data in search for
// known patterns for each event type (typically defined as regular
// expressions)". The pattern table below is exactly that: one regex per
// event type, with a cheap substring pre-filter so the regex only runs on
// candidate lines (the standard trick for regex ETL at volume).
//
// Console/netwatch lines: "YYYY-MM-DD HH:MM:SS <cname> <message>"
// Job lines: "YYYY-MM-DD HH:MM:SS apsched: apid=... user=... app=...
//             nids=... start=... end=... exit=..."
#pragma once

#include <cstdint>
#include <regex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "titanlog/record.hpp"

namespace hpcla::titanlog {

/// One entry of the pattern table: matches a message payload to a type.
struct EventPattern {
  EventType type;
  /// Fast rejection: the payload must contain this substring before the
  /// regex is attempted.
  std::string prefilter;
  std::regex pattern;
};

/// The default pattern table covering the full event catalog.
const std::vector<EventPattern>& default_patterns();

/// Outcome of parsing one line.
struct ParsedLine {
  std::variant<EventRecord, JobRecord> record;

  [[nodiscard]] bool is_event() const noexcept {
    return std::holds_alternative<EventRecord>(record);
  }
  [[nodiscard]] const EventRecord& event() const {
    return std::get<EventRecord>(record);
  }
  [[nodiscard]] const JobRecord& job() const {
    return std::get<JobRecord>(record);
  }
};

/// Parser statistics — malformed-line accounting matters operationally.
struct ParseStats {
  std::uint64_t lines = 0;
  std::uint64_t events = 0;
  std::uint64_t jobs = 0;
  std::uint64_t unmatched = 0;   ///< well-formed line, no pattern matched
  std::uint64_t malformed = 0;   ///< bad timestamp/location/structure
};

/// Stateless (thread-compatible) line parser. Each worker thread owns one
/// instance (std::regex matching is const but cheap to replicate).
class LogParser {
 public:
  LogParser() : patterns_(&default_patterns()) {}

  /// Parses one raw line into an event or job record.
  /// kNotFound = no pattern matched; kInvalidArgument = malformed line.
  [[nodiscard]] Result<ParsedLine> parse_line(std::string_view line) const;

  /// Parses a batch, collecting records and statistics; malformed and
  /// unmatched lines are counted, not fatal.
  void parse_batch(const std::vector<LogLine>& lines,
                   std::vector<EventRecord>& events,
                   std::vector<JobRecord>& jobs, ParseStats& stats) const;

 private:
  [[nodiscard]] Result<EventRecord> parse_event(UnixSeconds ts,
                                                std::string_view cname,
                                                std::string_view payload) const;
  [[nodiscard]] Result<JobRecord> parse_job(std::string_view payload) const;

  const std::vector<EventPattern>* patterns_;
};

}  // namespace hpcla::titanlog
