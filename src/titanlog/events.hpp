// Event taxonomy for Titan system logs.
//
// Paper §II-B: "The data model is designed to capture various system events
// including machine check exceptions, memory errors, GPU failures, GPU
// memory errors, Lustre file system errors, data virtualization service
// errors, network errors, application aborts, kernel panics, etc."
//
// Each type carries the metadata the `eventtypes` table stores: a stable
// id string (used in partition keys), the log stream it appears in, a
// severity, and a default background rate used by the synthetic generator.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "common/status.hpp"

namespace hpcla::titanlog {

enum class EventType : std::uint8_t {
  kMachineCheck = 0,   ///< CPU machine check exception (MCE)
  kMemoryEcc,          ///< correctable DRAM ECC error
  kGpuFailure,         ///< GPU XID fault (off the bus, hang, ...)
  kGpuMemoryError,     ///< GPU GDDR5 double-bit ECC error
  kLustreError,        ///< Lustre filesystem client/server error
  kDvsError,           ///< Cray Data Virtualization Service error
  kNetworkError,       ///< Gemini HSN link/lane failure
  kKernelPanic,        ///< node kernel panic
  kAppAbort,           ///< application abort reported by ALPS
};

constexpr std::size_t kEventTypeCount = 9;

/// All event types, in enum order.
constexpr std::array<EventType, kEventTypeCount> all_event_types() {
  return {EventType::kMachineCheck, EventType::kMemoryEcc,
          EventType::kGpuFailure,   EventType::kGpuMemoryError,
          EventType::kLustreError,  EventType::kDvsError,
          EventType::kNetworkError, EventType::kKernelPanic,
          EventType::kAppAbort};
}

enum class Severity : std::uint8_t { kInfo = 0, kWarning, kError, kFatal };

std::string_view severity_name(Severity s) noexcept;

/// The log stream an event type is reported on.
enum class LogSource : std::uint8_t { kConsole = 0, kNetwatch, kJob };

std::string_view log_source_name(LogSource s) noexcept;

/// One row of the `eventtypes` table.
struct EventTypeInfo {
  EventType type;
  std::string_view id;           ///< stable id used in partition keys, e.g. "MCE"
  std::string_view description;
  LogSource source;
  Severity severity;
  /// Default background rate for the synthetic generator, events per
  /// node-hour. Calibrated to make a Titan-day produce a realistic skew:
  /// correctable memory errors dominate, panics are rare.
  double base_rate_per_node_hour;

  [[nodiscard]] Json to_json() const;
};

/// Static catalog of all event types.
const std::array<EventTypeInfo, kEventTypeCount>& event_catalog();

/// Metadata for one type.
const EventTypeInfo& event_info(EventType type);

/// Stable id string, e.g. "MCE", "LustreError".
std::string_view event_id(EventType type);

/// Reverse lookup by id string.
Result<EventType> event_type_from_id(std::string_view id);

}  // namespace hpcla::titanlog
