// Normalized records produced by the ETL layer: event occurrences and
// application runs. These are the units the data model stores and the
// analytics layer consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "titanlog/events.hpp"
#include "topo/cname.hpp"

namespace hpcla::titanlog {

/// One raw log line as collected from a source stream.
struct LogLine {
  UnixSeconds ts = 0;
  LogSource source = LogSource::kConsole;
  std::string text;  ///< full line including timestamp and location
};

/// A parsed event occurrence (paper §II-B: "occurrence(s) of a certain type
/// reported at a particular timestamp ... associated with the location
/// where it is reported").
struct EventRecord {
  UnixSeconds ts = 0;
  EventType type = EventType::kMachineCheck;
  topo::NodeId node = topo::kInvalidNode;
  /// Free-text payload after timestamp/location extraction. For Lustre
  /// events this carries the message mined by the Fig 7 text analytics.
  std::string message;
  /// Same-second occurrences coalesced into this record (streaming §III-D).
  std::int64_t count = 1;
  /// Uniquifier within (ts, node, type) before coalescing.
  std::int64_t seq = 0;

  [[nodiscard]] Json to_json() const;
  static Result<EventRecord> from_json(const Json& j);

  friend bool operator==(const EventRecord&, const EventRecord&) = default;
};

/// A parsed application run (one row of the application tables).
struct JobRecord {
  std::int64_t apid = 0;       ///< ALPS application id
  std::string app_name;
  std::string user;
  UnixSeconds start = 0;
  UnixSeconds end = 0;
  /// Allocated compute nodes (contiguous NID ranges in practice).
  std::vector<topo::NodeId> nodes;
  int exit_code = 0;           ///< 0 = success

  [[nodiscard]] bool failed() const noexcept { return exit_code != 0; }
  [[nodiscard]] std::int64_t duration() const noexcept { return end - start; }

  [[nodiscard]] Json to_json() const;
  static Result<JobRecord> from_json(const Json& j);

  friend bool operator==(const JobRecord&, const JobRecord&) = default;
};

/// Compresses a sorted node list into NID ranges: "100-227,300,302-303".
std::string format_nid_ranges(const std::vector<topo::NodeId>& nodes);

/// Inverse of format_nid_ranges. Rejects malformed or out-of-range input.
Result<std::vector<topo::NodeId>> parse_nid_ranges(std::string_view text);

}  // namespace hpcla::titanlog
