#include "titanlog/selftel.hpp"

namespace hpcla::titanlog {

Json MetricSample::to_json() const {
  Json j = Json::object();
  j["ts"] = ts;
  j["name"] = name;
  j["kind"] = kind;
  j["value"] = value;
  if (kind == "hist") {
    j["sum_us"] = sum_us;
    j["p50_us"] = p50_us;
    j["p95_us"] = p95_us;
    j["p99_us"] = p99_us;
    j["max_us"] = max_us;
  }
  j["seq"] = seq;
  return j;
}

Result<MetricSample> MetricSample::from_json(const Json& j) {
  MetricSample s;
  auto ts = j.get_int("ts");
  if (!ts.is_ok()) return ts.status();
  s.ts = ts.value();
  auto name = j.get_string("name");
  if (!name.is_ok()) return name.status();
  s.name = std::move(name.value());
  auto kind = j.get_string("kind");
  if (!kind.is_ok()) return kind.status();
  s.kind = std::move(kind.value());
  if (s.kind != "counter" && s.kind != "gauge" && s.kind != "hist") {
    return invalid_argument("bad metric sample kind '" + s.kind + "'");
  }
  auto value = j.get_double("value");
  if (!value.is_ok()) return value.status();
  s.value = value.value();
  if (s.kind == "hist") {
    s.sum_us = j.get_double("sum_us").value_or(0.0);
    s.p50_us = j.get_double("p50_us").value_or(0.0);
    s.p95_us = j.get_double("p95_us").value_or(0.0);
    s.p99_us = j.get_double("p99_us").value_or(0.0);
    s.max_us = j.get_double("max_us").value_or(0.0);
  }
  s.seq = j.get_int("seq").value_or(0);
  return s;
}

Json SpanSample::to_json() const {
  Json j = Json::object();
  j["ts"] = ts;
  j["op"] = op;
  j["name"] = name;
  j["trace_id"] = static_cast<std::int64_t>(trace_id);
  j["span_id"] = static_cast<std::int64_t>(span_id);
  j["parent_id"] = static_cast<std::int64_t>(parent_id);
  j["start_us"] = start_us;
  j["duration_us"] = duration_us;
  j["slow"] = slow;
  j["errored"] = errored;
  return j;
}

Result<SpanSample> SpanSample::from_json(const Json& j) {
  SpanSample s;
  auto ts = j.get_int("ts");
  if (!ts.is_ok()) return ts.status();
  s.ts = ts.value();
  auto op = j.get_string("op");
  if (!op.is_ok()) return op.status();
  s.op = std::move(op.value());
  auto name = j.get_string("name");
  if (!name.is_ok()) return name.status();
  s.name = std::move(name.value());
  auto trace_id = j.get_int("trace_id");
  if (!trace_id.is_ok()) return trace_id.status();
  s.trace_id = static_cast<std::uint64_t>(trace_id.value());
  auto span_id = j.get_int("span_id");
  if (!span_id.is_ok()) return span_id.status();
  s.span_id = static_cast<std::uint64_t>(span_id.value());
  s.parent_id =
      static_cast<std::uint64_t>(j.get_int("parent_id").value_or(0));
  auto duration = j.get_int("duration_us");
  if (!duration.is_ok()) return duration.status();
  s.duration_us = duration.value();
  s.start_us = j.get_int("start_us").value_or(0);
  s.slow = j.get_bool("slow").value_or(false);
  s.errored = j.get_bool("errored").value_or(false);
  return s;
}

}  // namespace hpcla::titanlog
