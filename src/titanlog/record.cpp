#include "titanlog/record.hpp"

#include "common/strings.hpp"

namespace hpcla::titanlog {

Json EventRecord::to_json() const {
  Json j = Json::object();
  j["ts"] = ts;
  j["type"] = std::string(event_id(type));
  j["node"] = node;
  j["cname"] = topo::cname_of(node);
  j["message"] = message;
  j["count"] = count;
  j["seq"] = seq;
  return j;
}

Result<EventRecord> EventRecord::from_json(const Json& j) {
  EventRecord r;
  auto ts = j.get_int("ts");
  if (!ts.is_ok()) return ts.status();
  r.ts = ts.value();
  auto type_id = j.get_string("type");
  if (!type_id.is_ok()) return type_id.status();
  auto type = event_type_from_id(type_id.value());
  if (!type.is_ok()) return type.status();
  r.type = type.value();
  auto node = j.get_int("node");
  if (!node.is_ok()) return node.status();
  if (node.value() < 0 || node.value() >= topo::TitanGeometry::kTotalNodes) {
    return invalid_argument("node id out of range in event JSON");
  }
  r.node = static_cast<topo::NodeId>(node.value());
  auto msg = j.get_string("message");
  if (!msg.is_ok()) return msg.status();
  r.message = std::move(msg.value());
  r.count = j.get_int("count").value_or(1);
  r.seq = j.get_int("seq").value_or(0);
  return r;
}

Json JobRecord::to_json() const {
  Json j = Json::object();
  j["apid"] = apid;
  j["app"] = app_name;
  j["user"] = user;
  j["start"] = start;
  j["end"] = end;
  j["nids"] = format_nid_ranges(nodes);
  j["exit_code"] = exit_code;
  return j;
}

Result<JobRecord> JobRecord::from_json(const Json& j) {
  JobRecord r;
  auto apid = j.get_int("apid");
  if (!apid.is_ok()) return apid.status();
  r.apid = apid.value();
  auto app = j.get_string("app");
  if (!app.is_ok()) return app.status();
  r.app_name = std::move(app.value());
  auto user = j.get_string("user");
  if (!user.is_ok()) return user.status();
  r.user = std::move(user.value());
  auto start = j.get_int("start");
  if (!start.is_ok()) return start.status();
  r.start = start.value();
  auto end = j.get_int("end");
  if (!end.is_ok()) return end.status();
  r.end = end.value();
  auto nids = j.get_string("nids");
  if (!nids.is_ok()) return nids.status();
  auto nodes = parse_nid_ranges(nids.value());
  if (!nodes.is_ok()) return nodes.status();
  r.nodes = std::move(nodes.value());
  auto exit_code = j.get_int("exit_code");
  if (!exit_code.is_ok()) return exit_code.status();
  r.exit_code = static_cast<int>(exit_code.value());
  return r;
}

std::string format_nid_ranges(const std::vector<topo::NodeId>& nodes) {
  std::string out;
  std::size_t i = 0;
  while (i < nodes.size()) {
    std::size_t j = i;
    while (j + 1 < nodes.size() && nodes[j + 1] == nodes[j] + 1) ++j;
    if (!out.empty()) out.push_back(',');
    out += std::to_string(nodes[i]);
    if (j > i) {
      out.push_back('-');
      out += std::to_string(nodes[j]);
    }
    i = j + 1;
  }
  return out;
}

Result<std::vector<topo::NodeId>> parse_nid_ranges(std::string_view text) {
  std::vector<topo::NodeId> out;
  if (trim(text).empty()) return out;
  for (const auto part : split(text, ',')) {
    const auto dash = part.find('-');
    long long lo = 0;
    long long hi = 0;
    if (dash == std::string_view::npos) {
      if (!parse_int(part, lo)) {
        return invalid_argument("bad nid '" + std::string(part) + "'");
      }
      hi = lo;
    } else {
      if (!parse_int(part.substr(0, dash), lo) ||
          !parse_int(part.substr(dash + 1), hi)) {
        return invalid_argument("bad nid range '" + std::string(part) + "'");
      }
    }
    if (lo > hi || lo < 0 || hi >= topo::TitanGeometry::kTotalNodes) {
      return invalid_argument("nid range out of bounds '" + std::string(part) +
                              "'");
    }
    for (long long n = lo; n <= hi; ++n) {
      out.push_back(static_cast<topo::NodeId>(n));
    }
  }
  return out;
}

}  // namespace hpcla::titanlog
