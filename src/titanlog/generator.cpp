#include "titanlog/generator.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>

namespace hpcla::titanlog {

namespace {

using topo::TitanGeometry;

constexpr std::array<const char*, 12> kAppNames = {
    "LAMMPS", "NAMD",   "VASP", "GROMACS", "S3D",    "CAM",
    "GTC",    "XGC",    "Chroma", "AMBER", "QMCPACK", "HACC"};

std::string hexfmt(const char* fmt, unsigned v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

bool is_fatal_for_jobs(EventType t) {
  return t == EventType::kKernelPanic || t == EventType::kGpuFailure ||
         t == EventType::kMachineCheck;
}

}  // namespace

LogLine render_event(const EventRecord& record) {
  LogLine line;
  line.ts = record.ts;
  line.source = event_info(record.type).source;
  line.text = format_timestamp(record.ts) + " " + topo::cname_of(record.node) +
              " " + record.message;
  return line;
}

LogLine render_job(const JobRecord& record) {
  LogLine line;
  line.ts = record.end;
  line.source = LogSource::kJob;
  char head[256];
  std::snprintf(head, sizeof(head),
                "%s apsched: apid=%lld user=%s app=%s nids=%s start=%lld "
                "end=%lld exit=%d",
                format_timestamp(record.end).c_str(),
                static_cast<long long>(record.apid), record.user.c_str(),
                record.app_name.c_str(),
                format_nid_ranges(record.nodes).c_str(),
                static_cast<long long>(record.start),
                static_cast<long long>(record.end), record.exit_code);
  line.text = head;
  return line;
}

std::vector<LogLine> render_all(const GeneratedLogs& logs) {
  std::vector<LogLine> out;
  out.reserve(logs.events.size() + logs.jobs.size());
  for (const auto& e : logs.events) out.push_back(render_event(e));
  for (const auto& j : logs.jobs) out.push_back(render_job(j));
  std::stable_sort(out.begin(), out.end(),
                   [](const LogLine& a, const LogLine& b) { return a.ts < b.ts; });
  return out;
}

Generator::Generator(ScenarioConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

std::string Generator::make_message(EventType type) {
  switch (type) {
    case EventType::kMachineCheck:
      return "MCE: Machine Check Exception bank " +
             std::to_string(rng_.uniform_int(0, 5)) + " status 0x" +
             rng_.hex_string(16) + " misc 0x" + rng_.hex_string(8);
    case EventType::kMemoryEcc:
      return "EDAC MC" + std::to_string(rng_.uniform_int(0, 3)) +
             ": 1 CE error on DIMM" + std::to_string(rng_.uniform_int(0, 7)) +
             " (addr 0x" + rng_.hex_string(10) + " syndrome 0x" +
             rng_.hex_string(2) + ")";
    case EventType::kGpuFailure: {
      static constexpr std::array<const char*, 3> kXids = {
          "Xid 79: GPU has fallen off the bus",
          "Xid 62: internal micro-controller halt",
          "Xid 13: graphics engine exception"};
      return std::string("GPU ") + kXids[rng_.next_below(kXids.size())];
    }
    case EventType::kGpuMemoryError:
      return "GPU Xid 48: double-bit ECC error detected at address 0x" +
             rng_.hex_string(8);
    case EventType::kLustreError: {
      const unsigned ost = static_cast<unsigned>(rng_.uniform_int(0, 199));
      switch (rng_.next_below(3)) {
        case 0:
          return "LustreError: 11-0: atlas-" + hexfmt("OST%04x", ost) +
                 "-osc-ffff" + rng_.hex_string(8) +
                 ": operation ost_write to node 10.36." +
                 std::to_string(rng_.uniform_int(0, 255)) + "." +
                 std::to_string(rng_.uniform_int(1, 254)) +
                 "@o2ib failed: rc = -110";
        case 1:
          return "LustreError: 166-1: atlas-MDT0000: Connection to MDS was "
                 "lost; in progress operations will wait for recovery";
        default:
          return "LustreError: atlas-" + hexfmt("OST%04x", ost) +
                 ": slow reply to ping, " +
                 std::to_string(rng_.uniform_int(5, 120)) + "s late";
      }
    }
    case EventType::kDvsError:
      return rng_.chance(0.5)
                 ? "DVS: verify_filesystem: file system /lus/atlas failed to "
                   "respond"
                 : "DVS: file_node_down: removing server from list of "
                   "available servers";
    case EventType::kNetworkError:
      return "HWERR: Gemini LCB lane failure lcb 0" +
             std::to_string(rng_.uniform_int(0, 7)) +
             (rng_.chance(0.7) ? ", recovered" : ", link inactive");
    case EventType::kKernelPanic:
      return "Kernel panic - not syncing: Fatal exception in interrupt";
    case EventType::kAppAbort:
      return "apsched: application abort: node failure detected";
  }
  return "unknown event";
}

std::string Generator::make_storm_message(int ost_index) {
  const unsigned ost = static_cast<unsigned>(ost_index);
  switch (rng_.next_below(3)) {
    case 0:
      return "LustreError: 137-5: atlas-" + hexfmt("OST%04x", ost) +
             ": not responding to connection request from client; the ost "
             "is not available";
    case 1:
      return "LustreError: 11-0: atlas-" + hexfmt("OST%04x", ost) +
             "-osc-ffff" + rng_.hex_string(8) +
             ": operation ost_read failed: rc = -107";
    default:
      return "LustreError: atlas-" + hexfmt("OST%04x", ost) +
             ": Connection to " + hexfmt("OST%04x", ost) +
             " was lost; in progress operations will wait for recovery";
  }
}

void Generator::generate_background(GeneratedLogs& out) {
  if (config_.background_scale <= 0.0) return;
  const double hours =
      static_cast<double>(config_.window.duration()) / kSecondsPerHour;
  const auto nodes = static_cast<double>(TitanGeometry::kTotalNodes);
  for (const auto& info : event_catalog()) {
    const double rate =
        info.base_rate_per_node_hour * config_.background_scale;
    if (rate <= 0.0) continue;
    const std::uint64_t n = rng_.poisson(rate * nodes * hours);
    for (std::uint64_t i = 0; i < n; ++i) {
      EventRecord e;
      e.ts = config_.window.begin +
             static_cast<UnixSeconds>(
                 rng_.next_below(static_cast<std::uint64_t>(
                     std::max<std::int64_t>(config_.window.duration(), 1))));
      e.type = info.type;
      e.node = static_cast<topo::NodeId>(
          rng_.next_below(TitanGeometry::kTotalNodes));
      e.message = make_message(info.type);
      out.events.push_back(std::move(e));
    }
  }
}

void Generator::generate_hotspots(GeneratedLogs& out) {
  for (const auto& spec : config_.hotspots) {
    const auto nodes = topo::titan().nodes_in(spec.location);
    if (nodes.empty() || spec.window.empty()) continue;
    const double hours =
        static_cast<double>(spec.window.duration()) / kSecondsPerHour;
    const std::uint64_t n = rng_.poisson(spec.rate_per_node_hour *
                                         static_cast<double>(nodes.size()) *
                                         hours);
    for (std::uint64_t i = 0; i < n; ++i) {
      EventRecord e;
      e.ts = spec.window.begin +
             static_cast<UnixSeconds>(rng_.next_below(
                 static_cast<std::uint64_t>(spec.window.duration())));
      e.type = spec.type;
      e.node = spec.node_skew > 0.0
                   ? nodes[rng_.zipf(nodes.size(), spec.node_skew)]
                   : nodes[rng_.next_below(nodes.size())];
      e.message = make_message(spec.type);
      out.events.push_back(std::move(e));
    }
  }
}

void Generator::generate_storms(GeneratedLogs& out) {
  for (const auto& spec : config_.storms) {
    // Pick the affected node subset once per storm.
    const auto total = TitanGeometry::kTotalNodes;
    std::vector<topo::NodeId> affected;
    for (topo::NodeId n = 0; n < total; ++n) {
      if (rng_.chance(spec.affected_node_fraction)) affected.push_back(n);
    }
    if (affected.empty()) affected.push_back(0);
    const std::uint64_t n = rng_.poisson(
        spec.messages_per_second * static_cast<double>(spec.duration_seconds));
    for (std::uint64_t i = 0; i < n; ++i) {
      EventRecord e;
      e.ts = spec.start + static_cast<UnixSeconds>(rng_.next_below(
                              static_cast<std::uint64_t>(
                                  std::max<std::int64_t>(spec.duration_seconds, 1))));
      e.type = EventType::kLustreError;
      e.node = affected[rng_.next_below(affected.size())];
      e.message = make_storm_message(spec.ost_index);
      out.events.push_back(std::move(e));
    }
  }
}

void Generator::generate_causal_effects(GeneratedLogs& out) {
  if (config_.causal_pairs.empty()) return;
  // Pairs are processed in order, each seeing everything generated so far —
  // including effects of earlier pairs, so chains like ECC -> MCE -> panic
  // compose. A pair never sees its own effects (snapshot taken per pair),
  // which keeps self-referential specs finite.
  for (const auto& spec : config_.causal_pairs) {
    const std::size_t snapshot = out.events.size();
    for (std::size_t i = 0; i < snapshot; ++i) {
      const EventRecord& cause = out.events[i];
      if (cause.type != spec.cause) continue;
      if (!rng_.chance(spec.probability)) continue;
      EventRecord effect;
      const std::int64_t jitter =
          spec.lag_jitter_seconds > 0
              ? rng_.uniform_int(-spec.lag_jitter_seconds,
                                 spec.lag_jitter_seconds)
              : 0;
      effect.ts = cause.ts + spec.lag_seconds + jitter;
      if (!config_.window.contains(effect.ts)) continue;
      effect.type = spec.effect;
      effect.node = cause.node;
      effect.message = make_message(spec.effect);
      out.events.push_back(std::move(effect));
    }
  }
}

void Generator::generate_jobs(GeneratedLogs& out) {
  if (!config_.jobs) return;
  const JobMixSpec& mix = *config_.jobs;

  // Index fatal events per node for failure correlation.
  std::map<topo::NodeId, std::vector<UnixSeconds>> fatal_by_node;
  for (const auto& e : out.events) {
    if (is_fatal_for_jobs(e.type)) fatal_by_node[e.node].push_back(e.ts);
  }
  for (auto& [_, v] : fatal_by_node) std::sort(v.begin(), v.end());

  const double hours =
      static_cast<double>(config_.window.duration()) / kSecondsPerHour;
  const std::uint64_t job_count = rng_.poisson(mix.jobs_per_hour * hours);
  std::int64_t apid = 5000000;

  for (std::uint64_t j = 0; j < job_count; ++j) {
    JobRecord job;
    job.apid = apid++;
    job.app_name = kAppNames[rng_.zipf(
        std::min<std::size_t>(kAppNames.size(),
                              static_cast<std::size_t>(mix.apps)),
        1.1)];
    job.user = "usr" + std::to_string(1 + rng_.zipf(
                                              static_cast<std::size_t>(mix.users),
                                              1.05));
    job.start = config_.window.begin +
                static_cast<UnixSeconds>(rng_.next_below(
                    static_cast<std::uint64_t>(config_.window.duration())));
    const double duration_s = std::min(
        rng_.pareto(mix.mean_duration_hours * 1800.0, 1.5), 86400.0 * 2);
    job.end = job.start + static_cast<UnixSeconds>(std::max(duration_s, 60.0));
    if (job.end > config_.window.end) job.end = config_.window.end;

    // Size: 2^k nodes, zipf-skewed toward small.
    const int k = static_cast<int>(
        rng_.zipf(static_cast<std::size_t>(mix.max_size_log2) + 1, 1.3));
    const int size = 1 << k;
    const int max_start = TitanGeometry::kTotalNodes - size;
    const auto first = static_cast<topo::NodeId>(
        rng_.next_below(static_cast<std::uint64_t>(max_start + 1)));
    job.nodes.reserve(static_cast<std::size_t>(size));
    for (int n = 0; n < size; ++n) {
      job.nodes.push_back(first + n);
    }

    // Failure: does a fatal event land on an allocated node mid-run?
    UnixSeconds hit_ts = 0;
    bool hit = false;
    for (const auto node : job.nodes) {
      const auto it = fatal_by_node.find(node);
      if (it == fatal_by_node.end()) continue;
      const auto lo = std::lower_bound(it->second.begin(), it->second.end(),
                                       job.start);
      if (lo != it->second.end() && *lo < job.end) {
        if (!hit || *lo < hit_ts) hit_ts = *lo;
        hit = true;
      }
    }
    if (hit && rng_.chance(mix.failure_prob_on_fatal_event)) {
      job.end = std::max(hit_ts, job.start + 1);
      job.exit_code = 137;  // SIGKILL'd by ALPS after node failure
      EventRecord abort;
      abort.ts = job.end;
      abort.type = EventType::kAppAbort;
      abort.node = job.nodes[rng_.next_below(job.nodes.size())];
      abort.message = "apsched: apid " + std::to_string(job.apid) +
                      " killed: node failure";
      out.events.push_back(std::move(abort));
    } else if (rng_.chance(mix.base_failure_prob)) {
      job.exit_code = static_cast<int>(rng_.uniform_int(1, 2));
    }
    out.jobs.push_back(std::move(job));
  }
}

void Generator::finalize(GeneratedLogs& out) {
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.ts < b.ts;
                   });
  std::int64_t seq = 0;
  for (auto& e : out.events) e.seq = seq++;
  std::stable_sort(out.jobs.begin(), out.jobs.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.start < b.start;
                   });
}

GeneratedLogs Generator::generate() {
  HPCLA_CHECK_MSG(!config_.window.empty(), "scenario window must be non-empty");
  GeneratedLogs out;
  generate_background(out);
  generate_hotspots(out);
  generate_storms(out);
  generate_causal_effects(out);
  generate_jobs(out);
  finalize(out);
  return out;
}

}  // namespace hpcla::titanlog
