// Small string utilities shared by log parsing and the query layer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hpcla {

/// Splits on a single-character delimiter. Empty fields are preserved:
/// split("a,,b", ',') -> {"a", "", "b"}. Views alias `text`.
std::vector<std::string_view> split(std::string_view text, char delim);

/// Splits on any run of whitespace; empty tokens are dropped.
std::vector<std::string_view> split_whitespace(std::string_view text);

/// Removes leading and trailing whitespace (space, tab, CR, LF).
std::string_view trim(std::string_view text) noexcept;

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True if `text` begins with / ends with the given prefix/suffix.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// Joins the elements with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

/// Parses a base-10 signed integer from the whole of `text`.
/// Returns false on any non-digit content or overflow.
bool parse_int(std::string_view text, long long& out) noexcept;

/// Formats a double with `digits` significant digits (for report tables).
std::string format_double(double v, int digits = 4);

/// Formats counts with thousands separators: 1234567 -> "1,234,567".
std::string format_count(long long v);

}  // namespace hpcla
