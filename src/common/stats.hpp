// Descriptive statistics used throughout the analytics layer and benches:
// running moments, percentiles, fixed-width histograms, and the coefficient
// of variation used to score partition balance (Fig 4 experiments).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace hpcla {

/// Single-pass running mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(o.n_);
    const double nt = na + nb;
    m2_ += o.m2_ + delta * delta * na * nb / nt;
    mean_ = (na * mean_ + nb * o.mean_) / nt;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  /// Coefficient of variation (stddev/mean); 0 when the mean is 0.
  [[nodiscard]] double cv() const noexcept {
    return mean() != 0.0 ? stddev() / std::abs(mean()) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over retained samples. Fine for bench-scale data
/// (≤ millions of points); not a streaming sketch — use QuantileSketch
/// (quantile_sketch.hpp) when the input is unbounded.
class PercentileTracker {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = samples_.size() == 1;  // a 1-element vector is trivially sorted
  }
  /// q in [0,1]; nearest-rank. Returns 0 with no samples. Sorts lazily:
  /// repeated queries with no intervening add() reuse the sorted state.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  /// Number of sort passes performed so far (regression guard: querying
  /// k percentiles back-to-back must cost one sort, not k).
  [[nodiscard]] std::size_t sort_passes() const noexcept {
    return sort_passes_;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  mutable std::size_t sort_passes_ = 0;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp into the
/// edge bins. Backs the frontend's per-hour event histograms (Fig 5).
class Histogram {
 public:
  /// Creates `bins` equal-width buckets spanning [lo, hi). Requires
  /// bins >= 1 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// [inclusive lower, exclusive upper) bounds of bin i.
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t i) const;

  /// Index of the bin holding x (after clamping).
  [[nodiscard]] std::size_t bin_index(double x) const noexcept;

  /// Renders a fixed-width ASCII bar chart (one row per bin) — the textual
  /// stand-in for the frontend's histogram widget.
  [[nodiscard]] std::string render_ascii(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Pearson correlation of two equal-length series; 0 if either is constant.
double pearson_correlation(const std::vector<double>& a,
                           const std::vector<double>& b);

}  // namespace hpcla
