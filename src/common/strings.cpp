#include "common/strings.hpp"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hpcla {

std::vector<std::string_view> split(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (i < text.size()) {
    while (i < text.size() && is_ws(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && !is_ws(text[i])) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && is_ws(text[b])) ++b;
  while (e > b && is_ws(text[e - 1])) --e;
  return text.substr(b, e - b);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

namespace {
template <typename Vec>
std::string join_impl(const Vec& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out += sep;
    first = false;
    out += p;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}

bool parse_int(std::string_view text, long long& out) noexcept {
  if (text.empty()) return false;
  std::size_t i = 0;
  bool neg = false;
  if (text[0] == '-' || text[0] == '+') {
    neg = text[0] == '-';
    i = 1;
    if (text.size() == 1) return false;
  }
  unsigned long long acc = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    const unsigned long long next = acc * 10 + static_cast<unsigned>(c - '0');
    if (next < acc) return false;  // overflow
    acc = next;
  }
  const unsigned long long limit =
      neg ? 9223372036854775808ull : 9223372036854775807ull;
  if (acc > limit) return false;
  out = neg ? -static_cast<long long>(acc) : static_cast<long long>(acc);
  return true;
}

std::string format_double(double v, int digits) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*g", digits, v);
  return buf.data();
}

std::string format_count(long long v) {
  std::string raw = std::to_string(v < 0 ? -v : v);
  std::string out;
  const std::size_t first = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(raw[i]);
  }
  return v < 0 ? "-" + out : out;
}

}  // namespace hpcla
