// Lightweight error-handling vocabulary used across all hpcla modules.
//
// We deliberately avoid exceptions on hot paths (ingest, query execution):
// fallible operations return a Status or a Result<T>, following the
// "what cannot be checked at compile time should be checkable at run time"
// guideline. Exceptions are still used for programmer errors (CHECK-style
// invariant violations) where unwinding is never expected.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hpcla {

/// Error category, loosely modeled after gRPC/absl canonical codes but
/// trimmed to what a log-analytics pipeline actually produces.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< malformed query, bad schema, unparsable input
  kNotFound,          ///< unknown table, key, topic, node, ...
  kAlreadyExists,     ///< DDL collision, duplicate registration
  kFailedPrecondition,///< operation not valid in current state
  kUnavailable,       ///< not enough live replicas for the consistency level
  kTimeout,           ///< operation exceeded its deadline
  kResourceExhausted, ///< queue/capacity limits hit
  kCorruption,        ///< storage-layer integrity violation
  kInternal,          ///< bug: invariant broken
};

/// Human-readable name of a status code ("OK", "NOT_FOUND", ...).
std::string_view status_code_name(StatusCode code) noexcept;

/// Value-semantic status: either OK or a (code, message) pair.
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "CODE_NAME: message" for diagnostics.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Convenience factories mirroring the canonical codes.
inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status timeout(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status corruption(std::string msg) {
  return {StatusCode::kCorruption, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

/// Thrown only by CHECK-style macros and Result::value() on misuse;
/// never part of the normal control flow.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const std::string& what) : std::logic_error(what) {}
};

/// Result<T>: either a value or an error Status. A minimal `expected`
/// (we target C++20, std::expected is C++23).
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;`
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit from an error status: `return not_found("x");`
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).is_ok()) {
      throw BadResultAccess("Result constructed from OK status without value");
    }
  }

  [[nodiscard]] bool is_ok() const noexcept {
    return std::holds_alternative<T>(rep_);
  }
  explicit operator bool() const noexcept { return is_ok(); }

  /// The contained status; OK when a value is present.
  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(rep_);
  }

  /// Access the value; throws BadResultAccess if this holds an error.
  [[nodiscard]] T& value() & {
    ensure_ok();
    return std::get<T>(rep_);
  }
  [[nodiscard]] const T& value() const& {
    ensure_ok();
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& value() && {
    ensure_ok();
    return std::get<T>(std::move(rep_));
  }

  /// Value if present, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void ensure_ok() const {
    if (!is_ok()) {
      throw BadResultAccess("Result accessed while holding error: " +
                            std::get<Status>(rep_).to_string());
    }
  }

  std::variant<T, Status> rep_;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& extra);
}  // namespace detail

}  // namespace hpcla

/// Invariant check: aborts the operation with an exception carrying
/// file:line. For programmer errors only, not data-dependent failures.
#define HPCLA_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::hpcla::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                  \
  } while (0)

#define HPCLA_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::hpcla::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (0)

/// Propagates a non-OK Status from an expression producing a Status.
#define HPCLA_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::hpcla::Status _s = (expr);               \
    if (!_s.is_ok()) return _s;                \
  } while (0)
