#include "common/rng.hpp"

#include <algorithm>

namespace hpcla {

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction.
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

double Rng::normal(double mu, double sigma) noexcept {
  double u1;
  do { u1 = uniform(); } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mu + sigma * z;
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n == 0) return 0;
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (auto& v : zipf_cdf_) v /= acc;
  }
  const double u = uniform();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::size_t>(it - zipf_cdf_.begin());
}

std::size_t Rng::weighted_pick(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return 0;
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::string Rng::hex_string(std::size_t len) noexcept {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(len, '0');
  for (auto& c : out) c = kDigits[next_below(16)];
  return out;
}

}  // namespace hpcla
