#include "common/hash.hpp"

#include <cstring>

namespace hpcla {
namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

std::uint64_t load64(const char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // little-endian assumed (x86/ARM targets)
}

}  // namespace

std::uint64_t murmur3_64(std::string_view data, std::uint64_t seed) noexcept {
  const char* p = data.data();
  const std::size_t len = data.size();
  const std::size_t nblocks = len / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;
  const std::uint64_t c1 = 0x87c37b91114253d5ull;
  const std::uint64_t c2 = 0x4cf5ad432745937full;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load64(p + i * 16);
    std::uint64_t k2 = load64(p + i * 16 + 8);

    k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
    h1 = rotl64(h1, 27); h1 += h2; h1 = h1 * 5 + 0x52dce729;
    k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2;
    h2 = rotl64(h2, 31); h2 += h1; h2 = h2 * 5 + 0x38495ab5;
  }

  const char* tail = p + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[14])) << 48; [[fallthrough]];
    case 14: k2 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[13])) << 40; [[fallthrough]];
    case 13: k2 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[12])) << 32; [[fallthrough]];
    case 12: k2 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[11])) << 24; [[fallthrough]];
    case 11: k2 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[10])) << 16; [[fallthrough]];
    case 10: k2 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[9])) << 8; [[fallthrough]];
    case 9:  k2 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[8]));
             k2 *= c2; k2 = rotl64(k2, 33); k2 *= c1; h2 ^= k2; [[fallthrough]];
    case 8:  k1 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[7])) << 56; [[fallthrough]];
    case 7:  k1 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[6])) << 48; [[fallthrough]];
    case 6:  k1 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[5])) << 40; [[fallthrough]];
    case 5:  k1 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[4])) << 32; [[fallthrough]];
    case 4:  k1 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[3])) << 24; [[fallthrough]];
    case 3:  k1 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[2])) << 16; [[fallthrough]];
    case 2:  k1 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[1])) << 8; [[fallthrough]];
    case 1:  k1 ^= static_cast<std::uint64_t>(static_cast<unsigned char>(tail[0]));
             k1 *= c1; k1 = rotl64(k1, 31); k1 *= c2; h1 ^= k1;
  }

  h1 ^= len;
  h2 ^= len;
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  return h1;
}

}  // namespace hpcla
