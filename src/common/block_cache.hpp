// Process-wide sharded LRU cache over *decoded* column blocks
// (DESIGN.md §14). Out-of-core cassalite keeps SSTable extents on disk;
// the only RAM a cold read spends is the blocks it touches, and this
// cache is where those decoded blocks live between reads.
//
// Design:
//   * Keyed by (owner, block): `owner` is a process-unique id per extent
//     (see new_owner_id()); `block` is the row-group index inside it. An
//     owner that dies calls erase_owner() so superseded SSTables cannot be
//     resurrected from cache.
//   * Values are type-erased shared_ptrs with an explicit byte charge; the
//     caller keeps using its block straight from the returned pointer, so
//     an eviction never invalidates an in-flight read.
//   * Sharded by key hash: each shard has its own mutex, LRU list, and
//     slice of the byte budget, so 8 reader threads hitting different
//     blocks do not serialize on one lock.
//   * Capacity 0 (the default) disables the cache entirely — lookups miss
//     without touching a lock, inserts drop — so the in-memory extent path
//     keeps its PR 7 behavior unless `StorageOptions::block_cache_bytes`
//     or HPCLA_BLOCK_CACHE_BYTES turns the cache on.
//
// Hit/miss/eviction counters and a resident-bytes gauge are mirrored into
// the process MetricRegistry under blockcache.* at snapshot time.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/telemetry.hpp"

namespace hpcla {

class BlockCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;
    std::uint64_t entries = 0;
  };

  /// The process-wide cache (leaked singleton; capacity starts from
  /// HPCLA_BLOCK_CACHE_BYTES, default 0 = disabled).
  static BlockCache& instance();

  /// A fresh owner id (never 0). Extents take one at construction and key
  /// their blocks under it.
  static std::uint64_t new_owner_id() noexcept;

  explicit BlockCache(std::size_t capacity_bytes = 0);

  /// Resets the byte budget; shrinking evicts LRU entries immediately.
  /// 0 disables the cache and drops everything resident.
  void set_capacity(std::size_t bytes);
  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool enabled() const noexcept { return capacity() > 0; }

  /// Returns the cached block (promoting it to MRU) or nullptr.
  [[nodiscard]] std::shared_ptr<const void> lookup(std::uint64_t owner,
                                                   std::uint64_t block);

  /// Inserts (or replaces) a block under `charge` bytes, evicting LRU
  /// entries in the same shard as needed. Oversized blocks (charge beyond
  /// the shard budget) are not admitted. No-op when disabled.
  void insert(std::uint64_t owner, std::uint64_t block,
              std::shared_ptr<const void> value, std::size_t charge);

  /// Drops every block of one owner (extent/SSTable teardown).
  void erase_owner(std::uint64_t owner);

  [[nodiscard]] Stats stats() const;

 private:
  struct Key {
    std::uint64_t owner = 0;
    std::uint64_t block = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // splitmix-style scramble; owner ids are sequential.
      std::uint64_t x = k.owner * 0x9e3779b97f4a7c15ull ^ (k.block + 0x7f4a7c15ull);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const void> value;
    std::size_t charge = 0;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = MRU
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    std::size_t resident = 0;
  };

  static constexpr std::size_t kShards = 16;

  Shard& shard_of(const Key& k) noexcept {
    return shards_[KeyHash{}(k) % kShards];
  }
  [[nodiscard]] std::size_t shard_budget() const noexcept {
    return capacity() / kShards;
  }
  /// Evicts from `s` until resident <= budget. Caller holds s.mu; evicted
  /// values are moved into `graveyard` so their destructors run outside
  /// the shard lock.
  void evict_to_budget(Shard& s, std::size_t budget,
                       std::list<Entry>& graveyard);

  std::atomic<std::size_t> capacity_;
  Shard shards_[kShards];

  telemetry::Counter hits_;
  telemetry::Counter misses_;
  telemetry::Counter inserts_;
  telemetry::Counter evictions_;
  telemetry::CollectorHandle telemetry_;  // keep last
};

}  // namespace hpcla
