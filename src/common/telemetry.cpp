#include "common/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

#include "common/faultsim.hpp"

namespace hpcla::telemetry {

// ---------------------------------------------------------- LatencyHistogram

namespace {

/// Stable per-thread stripe assignment (round-robin over thread creation
/// order, so up to kStripes concurrent recorders never share a stripe).
std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t s =
      next.fetch_add(1, std::memory_order_relaxed);
  return s;
}

}  // namespace

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) noexcept {
  if (v < 4) return static_cast<std::size_t>(v);
  // Log-linear: power-of-two range [2^k, 2^(k+1)) splits into 4 linear
  // sub-buckets keyed by the two bits below the leading one.
  const int k = 63 - std::countl_zero(v);
  const std::uint64_t sub = (v >> (k - 2)) & 3;
  return 4 + static_cast<std::size_t>(k - 2) * 4 +
         static_cast<std::size_t>(sub);
}

double LatencyHistogram::bucket_midpoint(std::size_t idx) noexcept {
  if (idx < 4) return static_cast<double>(idx);
  const std::size_t k = 2 + (idx - 4) / 4;
  const std::uint64_t sub = (idx - 4) % 4;
  const std::uint64_t width = 1ull << (k - 2);
  const std::uint64_t lo = (1ull << k) + sub * width;
  return static_cast<double>(lo) + static_cast<double>(width - 1) * 0.5;
}

void LatencyHistogram::record(std::uint64_t value_us) noexcept {
  Stripe& stripe = stripes_[thread_stripe() % kStripes];
  stripe.counts[bucket_index(value_us)].fetch_add(1,
                                                  std::memory_order_relaxed);
  stripe.sum.fetch_add(value_us, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value_us < seen &&
         !min_.compare_exchange_weak(seen, value_us,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value_us > seen &&
         !max_.compare_exchange_weak(seen, value_us,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  std::array<std::uint64_t, kBuckets> counts{};
  HistogramSnapshot snap;
  for (const Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      counts[b] += stripe.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum_us += stripe.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : counts) snap.count += c;
  if (snap.count == 0) return snap;
  snap.min_us = min_.load(std::memory_order_relaxed);
  snap.max_us = max_.load(std::memory_order_relaxed);
  const auto percentile = [&](double q) {
    // Nearest-rank on the merged bucket counts, estimated at the bucket
    // midpoint, clamped to the observed range.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(snap.count) +
                                      0.5));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cum += counts[b];
      if (cum >= rank) {
        return std::clamp(bucket_midpoint(b),
                          static_cast<double>(snap.min_us),
                          static_cast<double>(snap.max_us));
      }
    }
    return static_cast<double>(snap.max_us);
  };
  snap.p50_us = percentile(0.50);
  snap.p95_us = percentile(0.95);
  snap.p99_us = percentile(0.99);
  return snap;
}

// ------------------------------------------------------------ MetricRegistry

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

CollectorHandle MetricRegistry::register_collector(CollectorFn fn) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return CollectorHandle(this, id);
}

void MetricRegistry::deregister_collector(std::uint64_t id) noexcept {
  std::lock_guard lock(mu_);
  collectors_.erase(id);
}

namespace {

class SnapshotSink final : public MetricSink {
 public:
  explicit SnapshotSink(RegistrySnapshot& snap) : snap_(&snap) {}
  void counter(std::string_view name, std::uint64_t value) override {
    (*snap_).counters[std::string(name)] += value;
  }
  void gauge(std::string_view name, double value) override {
    (*snap_).gauges[std::string(name)] += value;
  }

 private:
  RegistrySnapshot* snap_;
};

}  // namespace

RegistrySnapshot MetricRegistry::snapshot() const {
  RegistrySnapshot snap;
  SnapshotSink sink(snap);
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] += c->value();
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] += static_cast<double>(g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  // Collectors run under mu_, so they must not call back into the registry
  // — they only read their module's own atomics.
  for (const auto& [id, fn] : collectors_) fn(sink);
  return snap;
}

CollectorHandle::CollectorHandle(CollectorHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

CollectorHandle& CollectorHandle::operator=(CollectorHandle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CollectorHandle::~CollectorHandle() { reset(); }

void CollectorHandle::reset() noexcept {
  if (registry_ != nullptr) registry_->deregister_collector(id_);
  registry_ = nullptr;
  id_ = 0;
}

MetricRegistry& registry() {
  // Leaked: module collectors deregister during static destruction and
  // must always find a live registry.
  static MetricRegistry* r = new MetricRegistry();
  return *r;
}

std::string prometheus_text(const RegistrySnapshot& snap) {
  std::string out;
  const auto sanitized = [](const std::string& name) {
    std::string s = name;
    for (char& c : s) {
      if (c == '.' || c == '-') c = '_';
    }
    return s;
  };
  const auto number = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return std::string(buf);
  };
  for (const auto& [name, value] : snap.counters) {
    const std::string n = sanitized(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = sanitized(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + number(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = sanitized(name);
    out += "# TYPE " + n + " summary\n";
    out += n + "{quantile=\"0.5\"} " + number(h.p50_us) + "\n";
    out += n + "{quantile=\"0.95\"} " + number(h.p95_us) + "\n";
    out += n + "{quantile=\"0.99\"} " + number(h.p99_us) + "\n";
    out += n + "_sum " + std::to_string(h.sum_us) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

// ------------------------------------------------------------------- Tracer

namespace {

thread_local TraceContext tls_context;

}  // namespace

TraceContext current() noexcept { return tls_context; }

std::int64_t Tracer::now_us() const noexcept {
  if (SimClock* clock = sim_clock_.load(std::memory_order_acquire)) {
    return clock->now_ms() * 1000;
  }
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void Tracer::record(SpanRecord rec) {
  const std::int64_t threshold = slow_threshold_us();
  std::lock_guard lock(mu_);
  auto it = traces_.find(rec.trace_id);
  if (it == traces_.end()) {
    if (trace_order_.size() >= kMaxTraces) {
      traces_.erase(trace_order_.front());
      trace_order_.erase(trace_order_.begin());
    }
    trace_order_.push_back(rec.trace_id);
    it = traces_.emplace(rec.trace_id, std::vector<SpanRecord>{}).first;
  }
  auto& spans = it->second;
  const bool slow = threshold > 0 && rec.duration_us >= threshold;
  if (spans.size() < kMaxSpansPerTrace) {
    if (slow) {
      spans.push_back(rec);
    } else {
      spans.push_back(std::move(rec));
      return;
    }
  }
  if (slow) {
    slow_.push_back(std::move(rec));
    std::stable_sort(slow_.begin(), slow_.end(),
                     [](const SpanRecord& a, const SpanRecord& b) {
                       return a.duration_us > b.duration_us;
                     });
    if (slow_.size() > kSlowLogCapacity) slow_.resize(kSlowLogCapacity);
  }
}

std::vector<SpanRecord> Tracer::trace(std::uint64_t trace_id) const {
  std::lock_guard lock(mu_);
  const auto it = traces_.find(trace_id);
  return it == traces_.end() ? std::vector<SpanRecord>{} : it->second;
}

std::vector<SpanRecord> Tracer::slow_ops() const {
  std::lock_guard lock(mu_);
  return slow_;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  traces_.clear();
  trace_order_.clear();
  slow_.clear();
}

Tracer& tracer() {
  static Tracer* t = new Tracer();
  return *t;
}

// --------------------------------------------------------------------- spans

ScopedContext::ScopedContext(TraceContext ctx) noexcept
    : saved_(tls_context) {
  tls_context = ctx;
}

ScopedContext::~ScopedContext() { tls_context = saved_; }

Span::Span(std::string_view name, bool root) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  const TraceContext parent = tls_context;
  if (!root && !parent.active()) return;
  rec_.name.assign(name);
  rec_.trace_id = root ? t.next_trace_id() : parent.trace_id;
  rec_.parent_id = root ? 0 : parent.span_id;
  rec_.span_id = t.next_span_id();
  rec_.start_us = t.now_us();
  saved_ = parent;
  tls_context = TraceContext{rec_.trace_id, rec_.span_id};
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  rec_.duration_us = explicit_duration_ >= 0
                         ? explicit_duration_
                         : tracer().now_us() - rec_.start_us;
  tls_context = saved_;
  tracer().record(std::move(rec_));
}

void Span::tag(std::string_view key, std::string_view value) {
  if (!active_) return;
  rec_.tags.emplace_back(std::string(key), std::string(value));
}

void Span::tag(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  rec_.tags.emplace_back(std::string(key), std::to_string(value));
}

void Span::tag(std::string_view key, std::int64_t value) {
  if (!active_) return;
  rec_.tags.emplace_back(std::string(key), std::to_string(value));
}

void Span::tag(std::string_view key, bool value) {
  if (!active_) return;
  rec_.tags.emplace_back(std::string(key), value ? "true" : "false");
}

void emit_span(const TraceContext& parent, std::string_view name,
               std::int64_t start_us, std::int64_t duration_us,
               std::vector<std::pair<std::string, std::string>> tags) {
  Tracer& t = tracer();
  if (!t.enabled() || !parent.active()) return;
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.parent_id = parent.span_id;
  rec.span_id = t.next_span_id();
  rec.name.assign(name);
  rec.start_us = start_us;
  rec.duration_us = duration_us;
  rec.tags = std::move(tags);
  t.record(std::move(rec));
}

}  // namespace hpcla::telemetry
