#include "common/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/faultsim.hpp"

namespace hpcla::telemetry {

// ---------------------------------------------------------- LatencyHistogram

namespace {

/// Stable per-thread stripe assignment (round-robin over thread creation
/// order, so up to kStripes concurrent recorders never share a stripe).
std::size_t thread_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t s =
      next.fetch_add(1, std::memory_order_relaxed);
  return s;
}

}  // namespace

std::size_t LatencyHistogram::bucket_index(std::uint64_t v) noexcept {
  if (v < 4) return static_cast<std::size_t>(v);
  // Log-linear: power-of-two range [2^k, 2^(k+1)) splits into 4 linear
  // sub-buckets keyed by the two bits below the leading one.
  const int k = 63 - std::countl_zero(v);
  const std::uint64_t sub = (v >> (k - 2)) & 3;
  return 4 + static_cast<std::size_t>(k - 2) * 4 +
         static_cast<std::size_t>(sub);
}

std::uint64_t LatencyHistogram::bucket_upper(std::size_t idx) noexcept {
  if (idx < 4) return idx;
  const std::size_t k = 2 + (idx - 4) / 4;
  const std::uint64_t sub = (idx - 4) % 4;
  const std::uint64_t width = 1ull << (k - 2);
  return (1ull << k) + (sub + 1) * width - 1;
}

double LatencyHistogram::bucket_midpoint(std::size_t idx) noexcept {
  if (idx < 4) return static_cast<double>(idx);
  const std::size_t k = 2 + (idx - 4) / 4;
  const std::uint64_t sub = (idx - 4) % 4;
  const std::uint64_t width = 1ull << (k - 2);
  const std::uint64_t lo = (1ull << k) + sub * width;
  return static_cast<double>(lo) + static_cast<double>(width - 1) * 0.5;
}

void LatencyHistogram::record(std::uint64_t value_us) noexcept {
  Stripe& stripe = stripes_[thread_stripe() % kStripes];
  stripe.counts[bucket_index(value_us)].fetch_add(1,
                                                  std::memory_order_relaxed);
  stripe.sum.fetch_add(value_us, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value_us < seen &&
         !min_.compare_exchange_weak(seen, value_us,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value_us > seen &&
         !max_.compare_exchange_weak(seen, value_us,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  std::array<std::uint64_t, kBuckets> counts{};
  HistogramSnapshot snap;
  for (const Stripe& stripe : stripes_) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      counts[b] += stripe.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum_us += stripe.sum.load(std::memory_order_relaxed);
  }
  for (std::uint64_t c : counts) snap.count += c;
  if (snap.count == 0) return snap;
  snap.min_us = min_.load(std::memory_order_relaxed);
  snap.max_us = max_.load(std::memory_order_relaxed);
  const auto percentile = [&](double q) {
    // Nearest-rank on the merged bucket counts, estimated at the bucket
    // midpoint, clamped to the observed range.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(snap.count) +
                                      0.5));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cum += counts[b];
      if (cum >= rank) {
        return std::clamp(bucket_midpoint(b),
                          static_cast<double>(snap.min_us),
                          static_cast<double>(snap.max_us));
      }
    }
    return static_cast<double>(snap.max_us);
  };
  snap.p50_us = percentile(0.50);
  snap.p95_us = percentile(0.95);
  snap.p99_us = percentile(0.99);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    cum += counts[b];
    snap.cumulative_buckets.emplace_back(
        static_cast<double>(bucket_upper(b)), cum);
  }
  return snap;
}

// ------------------------------------------------------------ MetricRegistry

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

CollectorHandle MetricRegistry::register_collector(CollectorFn fn) {
  std::lock_guard lock(mu_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace(id, std::move(fn));
  return CollectorHandle(this, id);
}

void MetricRegistry::deregister_collector(std::uint64_t id) noexcept {
  std::lock_guard lock(mu_);
  collectors_.erase(id);
}

namespace {

class SnapshotSink final : public MetricSink {
 public:
  explicit SnapshotSink(RegistrySnapshot& snap) : snap_(&snap) {}
  void counter(std::string_view name, std::uint64_t value) override {
    (*snap_).counters[std::string(name)] += value;
  }
  void gauge(std::string_view name, double value) override {
    (*snap_).gauges[std::string(name)] += value;
  }

 private:
  RegistrySnapshot* snap_;
};

}  // namespace

RegistrySnapshot MetricRegistry::snapshot() const {
  RegistrySnapshot snap;
  SnapshotSink sink(snap);
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] += c->value();
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] += static_cast<double>(g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  // Collectors run under mu_, so they must not call back into the registry
  // — they only read their module's own atomics.
  for (const auto& [id, fn] : collectors_) fn(sink);
  return snap;
}

CollectorHandle::CollectorHandle(CollectorHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

CollectorHandle& CollectorHandle::operator=(CollectorHandle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

CollectorHandle::~CollectorHandle() { reset(); }

void CollectorHandle::reset() noexcept {
  if (registry_ != nullptr) registry_->deregister_collector(id_);
  registry_ = nullptr;
  id_ = 0;
}

MetricRegistry& registry() {
  // Leaked: module collectors deregister during static destruction and
  // must always find a live registry.
  static MetricRegistry* r = new MetricRegistry();
  return *r;
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_text(const RegistrySnapshot& snap) {
  std::string out;
  const auto sanitized = [](const std::string& name) {
    std::string s = name;
    for (char& c : s) {
      if (c == '.' || c == '-') c = '_';
    }
    return s;
  };
  const auto number = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return std::string(buf);
  };
  const auto header = [&out](const std::string& n, const std::string& orig,
                             const char* type, const char* what) {
    out += "# HELP " + n + " " + orig + " " + what + "\n";
    out += "# TYPE " + n + " " + type + "\n";
  };
  for (const auto& [name, value] : snap.counters) {
    const std::string n = sanitized(name);
    header(n, name, "counter", "(monotonic)");
    out += n + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string n = sanitized(name);
    header(n, name, "gauge", "(last value)");
    out += n + " " + number(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = sanitized(name);
    header(n, name, "histogram", "latency (microseconds)");
    for (const auto& [le, cum] : h.cumulative_buckets) {
      out += n + "_bucket{le=\"" + prometheus_escape_label(number(le)) +
             "\"} " + std::to_string(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + std::to_string(h.sum_us) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

// ------------------------------------------------------------------- Tracer

namespace {

thread_local TraceContext tls_context;
thread_local int tls_suppress = 0;

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::int64_t env_int64(const char* name, std::int64_t fallback) noexcept {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  return (end == raw || v < 0) ? fallback : static_cast<std::int64_t>(v);
}

}  // namespace

TraceContext current() noexcept { return tls_context; }

bool suppressed() noexcept { return tls_suppress > 0; }

SuppressScope::SuppressScope() noexcept { ++tls_suppress; }

SuppressScope::~SuppressScope() { --tls_suppress; }

TracerOptions TracerOptions::from_env() {
  TracerOptions opts;
  opts.slow_threshold_us =
      env_int64("HPCLA_SLOW_OP_US", opts.slow_threshold_us);
  opts.slowlog_capacity = static_cast<std::size_t>(env_int64(
      "HPCLA_SLOWLOG_CAP", static_cast<std::int64_t>(opts.slowlog_capacity)));
  return opts;
}

std::int64_t Tracer::now_us() const noexcept {
  if (SimClock* clock = sim_clock_.load(std::memory_order_acquire)) {
    return clock->now_ms() * 1000;
  }
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Tracer::Tracer() { configure(TracerOptions::from_env()); }

void Tracer::configure(TracerOptions opts) {
  std::lock_guard lock(mu_);
  opts_ = opts;
  slow_threshold_us_.store(opts.slow_threshold_us, std::memory_order_release);
  if (slow_.size() > opts_.slowlog_capacity) {
    slow_.resize(opts_.slowlog_capacity);
  }
  while (completed_.size() > opts_.completed_queue_capacity) {
    completed_.pop_front();
  }
}

TracerOptions Tracer::options() const {
  std::lock_guard lock(mu_);
  return opts_;
}

void Tracer::set_slow_threshold_us(std::int64_t us) noexcept {
  std::lock_guard lock(mu_);
  opts_.slow_threshold_us = us;
  slow_threshold_us_.store(us, std::memory_order_release);
}

void Tracer::enter_slowlog(const SpanRecord& span,
                           const std::string& root_name) {
  SpanRecord entry = span;
  entry.tags.emplace_back("op", root_name);
  slow_.push_back(std::move(entry));
  std::stable_sort(slow_.begin(), slow_.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.duration_us > b.duration_us;
                   });
  if (slow_.size() > opts_.slowlog_capacity) {
    slow_.resize(opts_.slowlog_capacity);
  }
}

void Tracer::record(SpanRecord rec) {
  std::lock_guard lock(mu_);
  const std::int64_t threshold = opts_.slow_threshold_us;
  if (rec.parent_id != 0) {
    // Child span: its trace is normally still open — buffer it. A child
    // finishing after its root already closed (detached pool task) lands
    // directly in the kept trace when sampling kept it, and is dropped
    // otherwise — the keep decision is not reopened.
    if (auto kept = traces_.find(rec.trace_id); kept != traces_.end()) {
      auto& kt = kept->second;
      const std::string root_name =
          kt.spans.empty() ? std::string() : kt.spans.back().name;
      if (threshold > 0 && rec.duration_us >= threshold) {
        enter_slowlog(rec, root_name);
      }
      if (kt.spans.size() < opts_.max_spans_per_trace) {
        kt.spans.push_back(std::move(rec));
      }
      return;
    }
    auto it = pending_.find(rec.trace_id);
    if (it == pending_.end()) {
      if (pending_order_.size() >= opts_.max_traces) {
        // A trace whose root never closes must not pin memory forever.
        pending_.erase(pending_order_.front());
        pending_order_.erase(pending_order_.begin());
      }
      pending_order_.push_back(rec.trace_id);
      it = pending_.emplace(rec.trace_id, std::vector<SpanRecord>{}).first;
    }
    if (it->second.size() < opts_.max_spans_per_trace) {
      it->second.push_back(std::move(rec));
    }
    return;
  }

  // Root closed: the trace is complete.
  const std::uint64_t trace_id = rec.trace_id;
  const std::string root_name = rec.name;
  std::vector<SpanRecord> spans;
  if (auto it = pending_.find(trace_id); it != pending_.end()) {
    spans = std::move(it->second);
    pending_.erase(it);
    pending_order_.erase(
        std::find(pending_order_.begin(), pending_order_.end(), trace_id));
  }
  if (spans.size() < opts_.max_spans_per_trace) {
    spans.push_back(std::move(rec));
  }

  bool slow = false;
  bool errored = false;
  for (const SpanRecord& s : spans) {
    if (threshold > 0 && s.duration_us >= threshold) slow = true;
    for (const auto& [k, v] : s.tags) {
      if (k == "error" || (k == "status" && v == "error")) errored = true;
    }
  }
  if (slow) {
    for (const SpanRecord& s : spans) {
      if (s.duration_us >= threshold) enter_slowlog(s, root_name);
    }
  }

  // Tail-sampling keep decision: slow and errored traces always survive;
  // normal traces fill the reservoir, then replace the oldest resident
  // normal trace with probability reservoir/seen (deterministic hash in
  // place of randomness, so seeded replays keep identical traces).
  bool keep = slow || errored;
  const bool normal = !keep;
  if (normal && opts_.normal_reservoir > 0) {
    ++normal_seen_;
    if (normal_resident_ < opts_.normal_reservoir) {
      keep = true;
    } else if (mix64(opts_.sample_seed ^ normal_seen_) % normal_seen_ <
               opts_.normal_reservoir) {
      for (auto it = trace_order_.begin(); it != trace_order_.end(); ++it) {
        const auto victim = traces_.find(*it);
        if (victim != traces_.end() && victim->second.normal) {
          traces_.erase(victim);
          trace_order_.erase(it);
          --normal_resident_;
          break;
        }
      }
      keep = true;
    }
  }
  if (!keep) return;

  if (trace_order_.size() >= opts_.max_traces) {
    const auto victim = traces_.find(trace_order_.front());
    if (victim != traces_.end()) {
      if (victim->second.normal) --normal_resident_;
      traces_.erase(victim);
    }
    trace_order_.erase(trace_order_.begin());
  }
  trace_order_.push_back(trace_id);
  traces_.emplace(trace_id, KeptTrace{spans, normal});
  if (normal) ++normal_resident_;

  if (opts_.completed_queue_capacity > 0) {
    if (completed_.size() >= opts_.completed_queue_capacity) {
      completed_.pop_front();
    }
    completed_.push_back(
        CompletedTrace{trace_id, root_name, slow, errored, std::move(spans)});
  }
}

std::vector<SpanRecord> Tracer::trace(std::uint64_t trace_id) const {
  std::lock_guard lock(mu_);
  const auto it = traces_.find(trace_id);
  return it == traces_.end() ? std::vector<SpanRecord>{} : it->second.spans;
}

std::vector<SpanRecord> Tracer::slow_ops() const {
  std::lock_guard lock(mu_);
  return slow_;
}

std::vector<CompletedTrace> Tracer::drain_completed(std::size_t max) {
  std::lock_guard lock(mu_);
  const std::size_t n =
      (max == 0) ? completed_.size() : std::min(max, completed_.size());
  std::vector<CompletedTrace> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(std::move(completed_.front()));
    completed_.pop_front();
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  pending_.clear();
  pending_order_.clear();
  traces_.clear();
  trace_order_.clear();
  slow_.clear();
  completed_.clear();
  normal_seen_ = 0;
  normal_resident_ = 0;
}

Tracer& tracer() {
  static Tracer* t = new Tracer();
  return *t;
}

// --------------------------------------------------------------------- spans

ScopedContext::ScopedContext(TraceContext ctx) noexcept
    : saved_(tls_context) {
  tls_context = ctx;
}

ScopedContext::~ScopedContext() { tls_context = saved_; }

Span::Span(std::string_view name, bool root) {
  Tracer& t = tracer();
  if (!t.enabled() || tls_suppress > 0) return;
  const TraceContext parent = tls_context;
  if (!root && !parent.active()) return;
  rec_.name.assign(name);
  rec_.trace_id = root ? t.next_trace_id() : parent.trace_id;
  rec_.parent_id = root ? 0 : parent.span_id;
  rec_.span_id = t.next_span_id();
  rec_.start_us = t.now_us();
  saved_ = parent;
  tls_context = TraceContext{rec_.trace_id, rec_.span_id};
  active_ = true;
}

Span::~Span() {
  if (!active_) return;
  rec_.duration_us = explicit_duration_ >= 0
                         ? explicit_duration_
                         : tracer().now_us() - rec_.start_us;
  tls_context = saved_;
  tracer().record(std::move(rec_));
}

void Span::tag(std::string_view key, std::string_view value) {
  if (!active_) return;
  rec_.tags.emplace_back(std::string(key), std::string(value));
}

void Span::tag(std::string_view key, std::uint64_t value) {
  if (!active_) return;
  rec_.tags.emplace_back(std::string(key), std::to_string(value));
}

void Span::tag(std::string_view key, std::int64_t value) {
  if (!active_) return;
  rec_.tags.emplace_back(std::string(key), std::to_string(value));
}

void Span::tag(std::string_view key, bool value) {
  if (!active_) return;
  rec_.tags.emplace_back(std::string(key), value ? "true" : "false");
}

void emit_span(const TraceContext& parent, std::string_view name,
               std::int64_t start_us, std::int64_t duration_us,
               std::vector<std::pair<std::string, std::string>> tags) {
  Tracer& t = tracer();
  if (!t.enabled() || tls_suppress > 0 || !parent.active()) return;
  SpanRecord rec;
  rec.trace_id = parent.trace_id;
  rec.parent_id = parent.span_id;
  rec.span_id = t.next_span_id();
  rec.name.assign(name);
  rec.start_us = start_us;
  rec.duration_us = duration_us;
  rec.tags = std::move(tags);
  t.record(std::move(rec));
}

}  // namespace hpcla::telemetry
