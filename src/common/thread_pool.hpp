// Fixed-size worker pool used by the sparklite executor and the cassalite
// cluster's per-node I/O threads.
//
// Design per CP.* guidelines: the pool owns its threads (RAII join on
// destruction), tasks are type-erased move-only callables, and waiting is
// expressed through futures or the bulk parallel_for helper — callers never
// touch the mutex/cv machinery.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace hpcla {

/// A bounded team of worker threads draining a shared FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueues a task; returns a future for its result. Exceptions thrown by
  /// the task are delivered through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task]() mutable { (*task)(); });
    return fut;
  }

  /// Enqueues fire-and-forget work (used for async replication writes).
  void post(std::function<void()> fn) { enqueue(std::move(fn)); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// The calling thread participates, so this is safe to invoke from within
  /// a pooled task without deadlock as long as indices are independent.
  /// `grain` > 1 hands out indices in contiguous chunks of that size,
  /// amortizing the claim overhead when the body is cheap (multi-partition
  /// read fan-out claims dozens of keys per chunk).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace hpcla
