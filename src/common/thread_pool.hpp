// Fixed-size worker pool used by the sparklite executor and the cassalite
// cluster's per-node I/O threads.
//
// Design per CP.* guidelines: the pool owns its threads (RAII join on
// destruction), tasks are type-erased move-only callables, and waiting is
// expressed through futures or the bulk parallel_for helper — callers never
// touch the mutex/cv machinery.
//
// Scheduling is work-stealing (DESIGN.md §8): each worker owns a deque.
// Tasks enqueued from a pool thread go to that worker's own deque; external
// submissions round-robin across deques. A worker drains its own deque
// FIFO from the front and, when empty, steals from the back of a sibling's
// deque — so one worker stuck on a long task never strands the work queued
// behind it, and concurrent submitters don't contend on one queue mutex.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace hpcla {

/// A bounded team of worker threads over per-worker task deques with work
/// stealing.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size(); }

  /// Enqueues a task; returns a future for its result. Exceptions thrown by
  /// the task are delivered through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task]() mutable { (*task)(); });
    return fut;
  }

  /// Enqueues fire-and-forget work (used for async replication writes).
  void post(std::function<void()> fn) { enqueue(std::move(fn)); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// The calling thread participates, so this is safe to invoke from within
  /// a pooled task without deadlock as long as indices are independent.
  /// `grain` > 1 hands out indices in contiguous chunks of that size,
  /// amortizing the claim overhead when the body is cheap (multi-partition
  /// read fan-out claims dozens of keys per chunk).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  /// Tasks executed by a worker other than the one whose deque they were
  /// queued on (observability; asserted by the steal tests).
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker;  // per-worker deque + its mutex (defined in the .cpp)

  void enqueue(std::function<void()> fn);
  void worker_loop(std::size_t index);
  /// Pops from our own deque front, else steals from a sibling's back.
  bool take_task(std::size_t index, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> queues_;
  /// Guards only the sleep/wake transitions (and stop_); tasks never move
  /// through it. pending_/sleepers_ are seq_cst so an enqueuer and a
  /// worker about to sleep cannot miss each other.
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> pending_{0};   ///< queued, not yet claimed
  std::atomic<std::size_t> active_{0};    ///< claimed, still running
  std::atomic<std::size_t> sleepers_{0};  ///< workers blocked on cv_
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> next_queue_{0};  ///< external round-robin
  std::atomic<bool> stopping_{false};
  bool stop_ = false;  ///< guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace hpcla
