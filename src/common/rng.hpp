// Deterministic random-number generation for the synthetic workload
// generators. Every experiment is seeded so tables/figures reproduce
// bit-identically run to run.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace hpcla {

/// xoshiro256** PRNG with SplitMix64 seeding. Small, fast, and — unlike
/// std::mt19937 — cheap to fork per partition for parallel generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // SplitMix64 expansion of the seed into the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection-free-enough bound for simulation use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Exponential with rate lambda (mean 1/lambda). Used for inter-arrival
  /// times of background log events.
  double exponential(double lambda) noexcept {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -std::log(u) / lambda;
  }

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64 — fine for workload synthesis).
  std::uint64_t poisson(double mean) noexcept;

  /// Standard normal via Box–Muller.
  double normal(double mu = 0.0, double sigma = 1.0) noexcept;

  /// Zipf-distributed rank in [0, n) with exponent s: models the heavy skew
  /// of event types and application popularity in real HPC logs.
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Pareto-distributed value with scale xm and shape alpha; used for job
  /// durations (heavy-tailed in production traces).
  double pareto(double xm, double alpha) noexcept {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Picks an index according to a weight vector (weights need not sum to 1).
  std::size_t weighted_pick(const std::vector<double>& weights) noexcept;

  /// Derives an independent child generator; `salt` distinguishes children.
  Rng fork(std::uint64_t salt) noexcept {
    return Rng(next_u64() ^ (salt * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull));
  }

  /// Random lowercase hex string of `len` chars (for fabricated NIDs,
  /// addresses, and Lustre object ids in log text).
  std::string hex_string(std::size_t len) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  // Zipf sampling caches the harmonic normalizer per (n, s).
  std::size_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace hpcla
