// Bounded-memory approximate quantiles (Greenwald-Khanna 2001, with the
// batched-insert and merge refinements used by Manku-style multi-level
// summaries). Replaces PercentileTracker's buffer-everything-and-sort in
// the percentile analytics paths: memory is O(1/eps * log(eps*n)) tuples
// regardless of input size, every quantile(q) answer is within eps*n of the
// true rank, and sketches merge — so per-partition sketches can be combined
// through reduce_by_key without shipping raw samples (DESIGN.md §13.3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hpcla {

class QuantileSketch {
 public:
  /// eps is the rank-error bound: quantile(q) returns a value whose true
  /// rank is within eps*count() of q*count(). Smaller eps = more tuples.
  explicit QuantileSketch(double epsilon = 0.01);

  void add(double x);

  /// q in [0,1]; returns 0 with no samples. Flushes the insert buffer
  /// (hence mutable internals) but performs no O(n) work.
  [[nodiscard]] double quantile(double q) const;

  /// Merges another sketch. The merged rank error is bounded by the sum of
  /// the two sketches' epsilons; merging sketches built with the same eps
  /// stays within 2*eps (compress() keeps it from compounding further).
  void merge(const QuantileSketch& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  /// Retained summary size after flushing — the bounded-memory guarantee
  /// tests assert on this.
  [[nodiscard]] std::size_t tuple_count() const;

 private:
  // One GK tuple: value v covers g ranks ending at rmin(i) = sum of g's up
  // to i; del bounds the rank uncertainty (rmax = rmin + del).
  struct Tuple {
    double v;
    std::uint64_t g;
    std::uint64_t del;
  };

  void flush_buffer() const;
  void compress() const;

  double epsilon_;
  std::uint64_t count_ = 0;
  mutable std::vector<Tuple> tuples_;
  mutable std::vector<double> buffer_;  // bounded: flushed at capacity
  std::size_t buffer_capacity_;
};

}  // namespace hpcla
