#include "common/status.hpp"

namespace hpcla {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(status_code_name(code_));
  out += ": ";
  out += message_;
  return out;
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& extra) {
  std::string msg = "HPCLA_CHECK failed: ";
  msg += expr;
  msg += " at ";
  msg += file;
  msg += ":";
  msg += std::to_string(line);
  if (!extra.empty()) {
    msg += " — ";
    msg += extra;
  }
  throw BadResultAccess(msg);
}

}  // namespace detail
}  // namespace hpcla
