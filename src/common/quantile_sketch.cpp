#include "common/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>

#include "common/status.hpp"

namespace hpcla {

QuantileSketch::QuantileSketch(double epsilon) : epsilon_(epsilon) {
  HPCLA_CHECK_MSG(epsilon > 0.0 && epsilon < 1.0,
                  "QuantileSketch epsilon must be in (0, 1)");
  // Buffering ~1/(2eps) inserts amortizes the flush merge without raising
  // the memory bound's order: the buffer is the same O(1/eps) as the
  // summary itself.
  buffer_capacity_ = std::max<std::size_t>(
      16, static_cast<std::size_t>(std::ceil(1.0 / (2.0 * epsilon))));
}

void QuantileSketch::add(double x) {
  buffer_.push_back(x);
  ++count_;
  if (buffer_.size() >= buffer_capacity_) {
    flush_buffer();
    compress();
  }
}

void QuantileSketch::flush_buffer() const {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  std::size_t ti = 0;
  std::size_t bi = 0;
  while (ti < tuples_.size() || bi < buffer_.size()) {
    if (bi >= buffer_.size() ||
        (ti < tuples_.size() && tuples_[ti].v <= buffer_[bi])) {
      merged.push_back(tuples_[ti++]);
      continue;
    }
    // New element inserted before tuples_[ti]: it covers one rank (g=1).
    // At the extremes its rank is exact (del=0); in the interior its
    // uncertainty is that of the successor's band, g_next + del_next - 1.
    const double v = buffer_[bi++];
    std::uint64_t del = 0;
    if (!merged.empty() && ti < tuples_.size()) {
      del = tuples_[ti].g + tuples_[ti].del - 1;
    }
    merged.push_back(Tuple{v, 1, del});
  }
  tuples_ = std::move(merged);
  buffer_.clear();
}

void QuantileSketch::compress() const {
  if (tuples_.size() < 3) return;
  const auto threshold = static_cast<std::uint64_t>(
      2.0 * epsilon_ * static_cast<double>(count_));
  if (threshold == 0) return;
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_.front());  // min is always retained exactly
  // Fold tuple i into its successor when the successor's resulting band
  // (g_i + g_{i+1} + del_{i+1}) stays within 2*eps*n. `pending` carries the
  // g of already-folded predecessors.
  std::uint64_t pending = 0;
  for (std::size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& t = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (pending + t.g + next.g + next.del <= threshold) {
      pending += t.g;
    } else {
      Tuple kept = t;
      kept.g += pending;
      pending = 0;
      out.push_back(kept);
    }
  }
  Tuple last = tuples_.back();  // max is always retained exactly
  last.g += pending;
  out.push_back(last);
  tuples_ = std::move(out);
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  flush_buffer();
  q = std::clamp(q, 0.0, 1.0);
  // Min and max are always retained exactly (flush and compress both pin
  // the boundary tuples), so the extremes need no rank search.
  if (q == 0.0) return tuples_.front().v;
  if (q == 1.0) return tuples_.back().v;
  // Target rank in [1, n], matching PercentileTracker's nearest-rank
  // convention (q over n-1 intervals).
  const double target =
      1.0 + q * static_cast<double>(count_ - 1);
  const double slack = epsilon_ * static_cast<double>(count_);
  std::uint64_t rmin = 0;
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    rmin += tuples_[i].g;
    const std::uint64_t rmax = rmin + tuples_[i].del;
    if (static_cast<double>(rmin) >= target - slack &&
        static_cast<double>(rmax) <= target + slack) {
      return tuples_[i].v;
    }
    if (static_cast<double>(rmin) > target) {
      // Passed the target without satisfying both bounds (possible right
      // after merge when uncertainties add): the previous tuple is closest.
      return tuples_[i > 0 ? i - 1 : 0].v;
    }
  }
  return tuples_.back().v;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  flush_buffer();
  other.flush_buffer();
  if (count_ == 0) {
    tuples_ = other.tuples_;
    count_ = other.count_;
    return;
  }
  // Standard GK merge (as in Spark's ApproximatePercentile): interleave by
  // value; each tuple keeps its g, and gains the uncertainty of the other
  // summary at its position — the other side's next tuple's g + del - 1.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < tuples_.size() || b < other.tuples_.size()) {
    bool take_a;
    if (a >= tuples_.size()) {
      take_a = false;
    } else if (b >= other.tuples_.size()) {
      take_a = true;
    } else {
      take_a = tuples_[a].v <= other.tuples_[b].v;
    }
    const std::vector<Tuple>& src = take_a ? tuples_ : other.tuples_;
    const std::vector<Tuple>& oth = take_a ? other.tuples_ : tuples_;
    const std::size_t si = take_a ? a : b;
    const std::size_t oi = take_a ? b : a;
    Tuple t = src[si];
    if (oi < oth.size()) {
      t.del += oth[oi].g + oth[oi].del - 1;
    }
    merged.push_back(t);
    (take_a ? a : b) = si + 1;
  }
  tuples_ = std::move(merged);
  count_ += other.count_;
  compress();
}

std::size_t QuantileSketch::tuple_count() const {
  flush_buffer();
  return tuples_.size();
}

}  // namespace hpcla
