// Minimal JSON value / parser / serializer.
//
// The paper's frontend↔server protocol is JSON ("Every interaction with the
// frontend is translated into a query in JSON format"; "Query results are
// sent in JSON object format to avoid data format conversion at the
// frontend"), so JSON is a first-class substrate here, not a convenience.
//
// Object member order is preserved (insertion order) so serialized query
// results are deterministic and diffable in tests.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace hpcla {

class Json;

/// Insertion-ordered string→Json map used for JSON objects.
class JsonObject {
 public:
  using Entry = std::pair<std::string, Json>;

  /// Inserts or overwrites a member. Returns a reference to the value.
  Json& set(std::string key, Json value);
  /// Pointer to the member value or nullptr.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  [[nodiscard]] Json* find(std::string_view key) noexcept;
  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() const noexcept { return entries_.end(); }
  [[nodiscard]] auto begin() noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() noexcept { return entries_.end(); }

  friend bool operator==(const JsonObject&, const JsonObject&);

 private:
  std::vector<Entry> entries_;
};

/// A JSON document node: null, bool, integer, double, string, array, object.
/// Integers are kept distinct from doubles so 64-bit timestamps and counts
/// round-trip exactly.
class Json {
 public:
  using Array = std::vector<Json>;

  Json() noexcept : rep_(nullptr) {}
  Json(std::nullptr_t) noexcept : rep_(nullptr) {}           // NOLINT
  Json(bool b) noexcept : rep_(b) {}                          // NOLINT
  Json(int v) noexcept : rep_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(unsigned v) noexcept : rep_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(std::int64_t v) noexcept : rep_(v) {}                  // NOLINT
  Json(std::uint64_t v) noexcept : rep_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(long long v) noexcept : rep_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(unsigned long long v) noexcept : rep_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(double v) noexcept : rep_(v) {}                        // NOLINT
  Json(const char* s) : rep_(std::string(s)) {}               // NOLINT
  Json(std::string s) noexcept : rep_(std::move(s)) {}        // NOLINT
  Json(std::string_view s) : rep_(std::string(s)) {}          // NOLINT
  Json(Array a) noexcept : rep_(std::move(a)) {}              // NOLINT
  Json(JsonObject o) noexcept : rep_(std::move(o)) {}         // NOLINT

  /// Factory for an empty object / array (reads better than Json(JsonObject{})).
  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(rep_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(rep_); }
  [[nodiscard]] bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(rep_); }
  [[nodiscard]] bool is_double() const noexcept { return std::holds_alternative<double>(rep_); }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(rep_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(rep_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<JsonObject>(rep_); }

  /// Typed accessors; HPCLA_CHECK on type mismatch (programmer error —
  /// use the `get_*` lookups below for data-dependent access).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Numeric value as double (works for both int and double nodes).
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const JsonObject& as_object() const;
  [[nodiscard]] JsonObject& as_object();

  /// Object member access; converts this node to an object if null.
  Json& operator[](std::string_view key);
  /// Const lookup: member value or a shared null node.
  const Json& operator[](std::string_view key) const;

  /// Appends to an array node (converts from null).
  void push_back(Json v);

  /// Fallible field lookups for query parsing: missing/mistyped fields
  /// return a Status rather than asserting.
  [[nodiscard]] Result<std::int64_t> get_int(std::string_view key) const;
  [[nodiscard]] Result<double> get_double(std::string_view key) const;
  [[nodiscard]] Result<std::string> get_string(std::string_view key) const;
  [[nodiscard]] Result<bool> get_bool(std::string_view key) const;

  /// Serializes to a compact single-line document.
  [[nodiscard]] std::string dump() const;
  /// Serializes with 2-space indentation.
  [[nodiscard]] std::string pretty() const;

  /// Parses a complete JSON document; trailing garbage is an error.
  static Result<Json> parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b) { return a.rep_ == b.rep_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               JsonObject>
      rep_;
};

/// Escapes a string for embedding in a JSON document (adds quotes).
std::string json_escape(std::string_view s);

}  // namespace hpcla
