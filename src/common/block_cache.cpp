#include "common/block_cache.hpp"

#include <cstdlib>

namespace hpcla {
namespace {

std::size_t capacity_from_env() {
  if (const char* env = std::getenv("HPCLA_BLOCK_CACHE_BYTES");
      env != nullptr && env[0] != '\0') {
    return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  return 0;
}

}  // namespace

BlockCache& BlockCache::instance() {
  static BlockCache* cache = new BlockCache(capacity_from_env());
  return *cache;
}

std::uint64_t BlockCache::new_owner_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

BlockCache::BlockCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {
  telemetry_ = telemetry::registry().register_collector(
      [this](telemetry::MetricSink& sink) {
        const auto s = stats();
        sink.counter("blockcache.hits", s.hits);
        sink.counter("blockcache.misses", s.misses);
        sink.counter("blockcache.inserts", s.inserts);
        sink.counter("blockcache.evictions", s.evictions);
        sink.gauge("blockcache.resident_bytes",
                   static_cast<double>(s.resident_bytes));
        sink.gauge("blockcache.capacity_bytes",
                   static_cast<double>(capacity()));
      });
}

void BlockCache::set_capacity(std::size_t bytes) {
  capacity_.store(bytes, std::memory_order_release);
  const std::size_t budget = bytes / kShards;
  std::list<Entry> graveyard;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    evict_to_budget(s, budget, graveyard);
  }
}

std::shared_ptr<const void> BlockCache::lookup(std::uint64_t owner,
                                               std::uint64_t block) {
  if (!enabled()) {
    misses_.add();
    return nullptr;
  }
  const Key key{owner, block};
  Shard& s = shard_of(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.index.find(key);
  if (it == s.index.end()) {
    misses_.add();
    return nullptr;
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // promote to MRU
  hits_.add();
  return it->second->value;
}

void BlockCache::insert(std::uint64_t owner, std::uint64_t block,
                        std::shared_ptr<const void> value,
                        std::size_t charge) {
  const std::size_t budget = shard_budget();
  if (budget == 0 || charge > budget || value == nullptr) return;
  const Key key{owner, block};
  Shard& s = shard_of(key);
  std::list<Entry> graveyard;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (auto it = s.index.find(key); it != s.index.end()) {
      s.resident -= it->second->charge;
      graveyard.splice(graveyard.begin(), s.lru, it->second);
      s.index.erase(it);
    }
    evict_to_budget(s, budget - charge, graveyard);
    s.lru.push_front(Entry{key, std::move(value), charge});
    s.index[key] = s.lru.begin();
    s.resident += charge;
    inserts_.add();
  }
}

void BlockCache::erase_owner(std::uint64_t owner) {
  std::list<Entry> graveyard;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.lru.begin(); it != s.lru.end();) {
      if (it->key.owner == owner) {
        s.resident -= it->charge;
        s.index.erase(it->key);
        auto dead = it++;
        graveyard.splice(graveyard.begin(), s.lru, dead);
      } else {
        ++it;
      }
    }
  }
}

BlockCache::Stats BlockCache::stats() const {
  Stats out;
  out.hits = hits_.value();
  out.misses = misses_.value();
  out.inserts = inserts_.value();
  out.evictions = evictions_.value();
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(s.mu));
    out.resident_bytes += s.resident;
    out.entries += s.lru.size();
  }
  return out;
}

void BlockCache::evict_to_budget(Shard& s, std::size_t budget,
                                 std::list<Entry>& graveyard) {
  while (s.resident > budget && !s.lru.empty()) {
    auto victim = std::prev(s.lru.end());
    s.resident -= victim->charge;
    s.index.erase(victim->key);
    graveyard.splice(graveyard.begin(), s.lru, victim);
    evictions_.add();
  }
}

}  // namespace hpcla
