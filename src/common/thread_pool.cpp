#include "common/thread_pool.hpp"

#include <atomic>
#include <deque>

namespace hpcla {

namespace {
/// Which pool (if any) the current thread is a worker of, and its index.
/// Lets enqueue() route a worker's own submissions to its own deque.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_index = 0;
}  // namespace

struct ThreadPool::Worker {
  std::mutex mu;
  std::deque<std::function<void()>> tasks;
};

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  HPCLA_CHECK_MSG(!stopping_.load(std::memory_order_acquire),
                  "ThreadPool::enqueue after shutdown");
  const std::size_t target =
      tl_pool == this
          ? tl_index
          : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                queues_.size();
  {
    std::lock_guard lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  pending_.fetch_add(1);  // seq_cst: pairs with the sleeper's pending_ check
  if (sleepers_.load() > 0) {
    // Touch mu_ so a worker between its predicate check and the actual
    // sleep cannot miss this notification.
    { std::lock_guard lock(mu_); }
    cv_.notify_one();
  }
}

bool ThreadPool::take_task(std::size_t me, std::function<void()>& out) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t q = (me + k) % n;
    Worker& w = *queues_[q];
    {
      std::lock_guard lock(w.mu);
      if (w.tasks.empty()) continue;
      if (q == me) {
        // Own deque drains FIFO from the front (submission order).
        out = std::move(w.tasks.front());
        w.tasks.pop_front();
      } else {
        // Thieves take from the back: no contention with the owner's end,
        // and the freshest task is the least likely to be cache-hot on
        // the victim.
        out = std::move(w.tasks.back());
        w.tasks.pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Order matters for wait_idle: the task must be counted active before
    // it stops being counted pending, so (pending, active) never reads
    // (0, 0) while it is in flight.
    active_.fetch_add(1);
    pending_.fetch_sub(1);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t me) {
  tl_pool = this;
  tl_index = me;
  std::function<void()> task;
  while (true) {
    if (take_task(me, task)) {
      task();
      task = nullptr;
      if (active_.fetch_sub(1) == 1 && pending_.load() == 0) {
        std::lock_guard lock(mu_);
        idle_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock lock(mu_);
    sleepers_.fetch_add(1);
    cv_.wait(lock, [this] { return stop_ || pending_.load() > 0; });
    sleepers_.fetch_sub(1);
    if (stop_ && pending_.load() == 0) return;
    // pending_ > 0: some deque has work (a racing sibling may still beat
    // us to it — then we just come back around).
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (n <= grain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared by value-captured shared_ptr: pooled helpers may briefly outlive
  // this call's stack frame after the last index completes.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n;
    std::size_t grain;
    const std::function<void(std::size_t)>* fn;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::mutex error_mu;
    std::exception_ptr first_error;
  };
  auto st = std::make_shared<State>();
  st->n = n;
  st->grain = grain;
  st->fn = &fn;  // `fn` outlives all uses: wait below covers every call

  auto body = [st] {
    while (true) {
      const std::size_t begin =
          st->next.fetch_add(st->grain, std::memory_order_relaxed);
      if (begin >= st->n) break;
      const std::size_t end = std::min(begin + st->grain, st->n);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*st->fn)(i);
        } catch (...) {
          std::lock_guard lock(st->error_mu);
          if (!st->first_error) st->first_error = std::current_exception();
        }
      }
      const std::size_t batch = end - begin;
      if (st->done.fetch_add(batch, std::memory_order_acq_rel) + batch ==
          st->n) {
        std::lock_guard lock(st->done_mu);
        st->done_cv.notify_all();
      }
    }
  };

  // One pooled helper per worker; the caller runs the same loop so progress
  // is guaranteed even when every pool thread is busy elsewhere. Helpers
  // land on one deque when called from a worker thread — stealing spreads
  // them.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers = std::min(threads_.size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) post(body);
  body();

  std::unique_lock lock(st->done_mu);
  st->done_cv.wait(
      lock, [&] { return st->done.load(std::memory_order_acquire) >= n; });

  if (st->first_error) std::rethrow_exception(st->first_error);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock,
                [this] { return pending_.load() == 0 && active_.load() == 0; });
}

}  // namespace hpcla
