#include "common/thread_pool.hpp"

#include <atomic>

namespace hpcla {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard lock(mu_);
    HPCLA_CHECK_MSG(!stop_, "ThreadPool::enqueue after shutdown");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (n <= grain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared by value-captured shared_ptr: pooled helpers may briefly outlive
  // this call's stack frame after the last index completes.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t n;
    std::size_t grain;
    const std::function<void(std::size_t)>* fn;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::mutex error_mu;
    std::exception_ptr first_error;
  };
  auto st = std::make_shared<State>();
  st->n = n;
  st->grain = grain;
  st->fn = &fn;  // `fn` outlives all uses: wait below covers every call

  auto body = [st] {
    while (true) {
      const std::size_t begin =
          st->next.fetch_add(st->grain, std::memory_order_relaxed);
      if (begin >= st->n) break;
      const std::size_t end = std::min(begin + st->grain, st->n);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*st->fn)(i);
        } catch (...) {
          std::lock_guard lock(st->error_mu);
          if (!st->first_error) st->first_error = std::current_exception();
        }
      }
      const std::size_t batch = end - begin;
      if (st->done.fetch_add(batch, std::memory_order_acq_rel) + batch ==
          st->n) {
        std::lock_guard lock(st->done_mu);
        st->done_cv.notify_all();
      }
    }
  };

  // One pooled helper per worker; the caller runs the same loop so progress
  // is guaranteed even when every pool thread is busy elsewhere.
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t helpers = std::min(threads_.size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) post(body);
  body();

  std::unique_lock lock(st->done_mu);
  st->done_cv.wait(
      lock, [&] { return st->done.load(std::memory_order_acquire) >= n; });

  if (st->first_error) std::rethrow_exception(st->first_error);
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

}  // namespace hpcla
