// Shared scratch-file conventions for every component that writes
// temporary data to disk (sparklite spill runs, cassalite extent files).
//
// One env knob — HPCLA_SPILL_DIR — names the scratch root for the whole
// process; components create their own uniquely-named subdirectories under
// it so concurrent engines never collide. The RAII guards make partial
// files safe: a writer that dies mid-stream (exception unwinding through a
// serializer, a failed disk write) removes what it wrote instead of
// leaving orphans for the next run to trip over.
#pragma once

#include <cstdint>
#include <string>

namespace hpcla::scratch {

/// The scratch root: $HPCLA_SPILL_DIR when set (created if missing), else
/// the system temp directory. Never empty.
[[nodiscard]] std::string base_dir();

/// Creates and returns a uniquely-named subdirectory `<base>/<prefix>-<n>`
/// under `parent` (or under base_dir() when `parent` is empty). The name
/// embeds the pid and a process-wide counter, so two engines in one test
/// binary — or two test binaries on one machine — get distinct dirs.
[[nodiscard]] std::string make_subdir(const std::string& prefix,
                                      const std::string& parent = {});

/// Best-effort recursive removal (directories created by make_subdir).
void remove_all(const std::string& path) noexcept;

/// Best-effort removal of one file.
void remove_file(const std::string& path) noexcept;

/// Removes `path` on destruction unless release()d — the standard guard
/// around multi-write file creation: construct before the first write,
/// release after the last one succeeded.
class FileGuard {
 public:
  explicit FileGuard(std::string path) : path_(std::move(path)) {}
  FileGuard(const FileGuard&) = delete;
  FileGuard& operator=(const FileGuard&) = delete;
  ~FileGuard() {
    if (!path_.empty()) remove_file(path_);
  }

  /// The file is complete; keep it.
  void release() noexcept { path_.clear(); }

 private:
  std::string path_;
};

}  // namespace hpcla::scratch
