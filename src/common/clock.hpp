// Time vocabulary for the log-analytics data model.
//
// All log timestamps are UnixSeconds (UTC). The data model partitions events
// by *hour bucket* (paper §II-B: "all events of a certain type generated at
// a certain hour are stored in the same partition"), so hour bucketing and
// formatted-timestamp round trips live here.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace hpcla {

/// Seconds since the Unix epoch, UTC. Signed so differences are natural.
using UnixSeconds = std::int64_t;

/// Milliseconds since the Unix epoch, for sub-second streaming timestamps.
using UnixMillis = std::int64_t;

constexpr std::int64_t kSecondsPerHour = 3600;
constexpr std::int64_t kSecondsPerDay = 86400;

/// Hour bucket containing `ts` (floor division, correct for negatives).
constexpr std::int64_t hour_bucket(UnixSeconds ts) noexcept {
  std::int64_t q = ts / kSecondsPerHour;
  if (ts % kSecondsPerHour < 0) --q;
  return q;
}

/// First second of hour bucket `bucket`.
constexpr UnixSeconds hour_bucket_start(std::int64_t bucket) noexcept {
  return bucket * kSecondsPerHour;
}

/// Calendar components of a UTC timestamp (proleptic Gregorian).
struct CivilTime {
  int year = 1970;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59
};

/// Converts a Unix timestamp to calendar fields (UTC, no leap seconds).
CivilTime to_civil(UnixSeconds ts) noexcept;

/// Converts calendar fields to a Unix timestamp. Fields are not validated;
/// out-of-range values are normalized the way timegm would.
UnixSeconds from_civil(const CivilTime& ct) noexcept;

/// Formats as "YYYY-MM-DD HH:MM:SS" — the syslog-like format used by the
/// synthetic Titan log lines.
std::string format_timestamp(UnixSeconds ts);

/// Formats as "YYYY-MM-DDTHH:MM:SSZ" for JSON payloads.
std::string format_iso8601(UnixSeconds ts);

/// Parses "YYYY-MM-DD HH:MM:SS" or "YYYY-MM-DDTHH:MM:SS[Z]".
Result<UnixSeconds> parse_timestamp(std::string_view text);

/// Half-open time interval [begin, end) in seconds. The frontend's
/// "temporal map" selections translate into these.
struct TimeRange {
  UnixSeconds begin = 0;
  UnixSeconds end = 0;

  [[nodiscard]] constexpr bool contains(UnixSeconds ts) const noexcept {
    return ts >= begin && ts < end;
  }
  [[nodiscard]] constexpr std::int64_t duration() const noexcept {
    return end - begin;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return end <= begin; }

  /// First hour bucket overlapping the range.
  [[nodiscard]] std::int64_t first_hour() const noexcept {
    return hour_bucket(begin);
  }
  /// Last hour bucket overlapping the range (inclusive).
  [[nodiscard]] std::int64_t last_hour() const noexcept {
    return empty() ? hour_bucket(begin) : hour_bucket(end - 1);
  }

  friend constexpr bool operator==(const TimeRange&, const TimeRange&) = default;
};

/// Monotonic wall-clock used for measuring latencies inside the simulated
/// cluster (never used as data timestamps).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  /// Seconds elapsed since construction or last reset.
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_).count();
  }
  [[nodiscard]] std::int64_t elapsed_micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_).count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hpcla
