// Deterministic fault injection for the simulated cluster.
//
// The paper's analytics stack runs on infrastructure that is itself part of
// the system being monitored: the pipeline must keep answering queries while
// replicas crash, respond slowly, or drop gossip traffic. This module makes
// those faults *injectable and reproducible*: every per-operation decision
// (transient error, injected latency, gossip drop, poisoned payload) is a
// pure function of (seed, channel, op counter), and crash/slow windows are
// expressed in the virtual time of a SimClock — so a chaos schedule replays
// bit-identically run to run and no test ever sleeps to "wait out" a fault.
//
// Consumers:
//   * cassalite::Cluster      — down/slow windows, transient read errors,
//                               per-replica virtual latency
//   * cassalite::StorageEngine — transient write (commit) failures
//   * cassalite::Gossiper     — gossip message drops
//   * model::EventPublisher   — poisoned (corrupted) ingest records
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.hpp"

namespace hpcla {

/// Deterministic virtual clock in milliseconds. Fault windows and hint TTLs
/// are measured against it; tests advance it explicitly instead of sleeping.
class SimClock {
 public:
  [[nodiscard]] std::int64_t now_ms() const noexcept {
    return now_.load(std::memory_order_acquire);
  }
  void advance_ms(std::int64_t delta) noexcept {
    now_.fetch_add(delta, std::memory_order_acq_rel);
  }
  void reset(std::int64_t t = 0) noexcept {
    now_.store(t, std::memory_order_release);
  }

 private:
  std::atomic<std::int64_t> now_{0};
};

/// Fault rates and latencies. Rates are per-operation probabilities decided
/// deterministically from the seed; latencies are virtual milliseconds.
struct FaultOptions {
  std::uint64_t seed = 0xFA017CA5ull;
  /// Probability a replica write (commit) fails transiently.
  double write_error_rate = 0.0;
  /// Probability a replica read errors transiently.
  double read_error_rate = 0.0;
  /// Probability one gossip exchange is lost in flight.
  double gossip_drop_rate = 0.0;
  /// Probability a published ingest record is corrupted.
  double poison_rate = 0.0;
  /// Virtual response time of a healthy replica.
  std::int64_t base_latency_ms = 0;
  /// Virtual response time of a replica inside a slow window.
  std::int64_t slow_latency_ms = 0;
};

/// Cumulative injected-fault counters (what the chaos harness reconciles
/// against coordinator metrics).
struct FaultCounts {
  std::uint64_t write_errors = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t gossip_drops = 0;
  std::uint64_t poisoned_records = 0;
  std::uint64_t slow_ops = 0;
  std::uint64_t partition_drops = 0;
};

/// A scheduled topology mutation a chaos run drains at virtual-time
/// boundaries. The injector only stores and orders these; the cluster (or a
/// test harness) pops due events and applies them, so the *schedule* is part
/// of the seeded, replayable fault plan even though ring changes happen in
/// cluster code.
enum class TopologyAction { kAddNode, kRemoveNode, kRebalance };

struct TopologyEvent {
  std::int64_t at_ms = 0;
  TopologyAction action = TopologyAction::kAddNode;
  /// Node the action targets (kRemoveNode); ignored for add/rebalance.
  std::size_t node = 0;
  /// Token seed for the new/reshuffled ring position.
  std::uint64_t seed = 0;
};

/// Seeded, thread-safe fault decider. All per-op decisions are hash-based
/// (seed, channel, per-channel atomic counter), so a single-threaded
/// schedule is fully deterministic and concurrent use is TSan-clean.
class FaultInjector {
 public:
  FaultInjector(std::size_t node_count, FaultOptions options,
                SimClock* clock = nullptr);

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] SimClock* clock() const noexcept { return clock_; }
  [[nodiscard]] const FaultOptions& options() const noexcept {
    return options_;
  }

  // ------------------------------------------- virtual-time fault windows

  /// Node is down (crashed, unreachable) during [from_ms, until_ms).
  /// Setting a new window replaces the previous one.
  void crash_window(std::size_t node, std::int64_t from_ms,
                    std::int64_t until_ms);

  /// Node responds with slow_latency_ms during [from_ms, until_ms).
  void slow_window(std::size_t node, std::int64_t from_ms,
                   std::int64_t until_ms);

  /// Heals one node: clears its crash and slow windows.
  void heal_node(std::size_t node);

  /// Heals every node (crash/slow windows and partition links).
  void heal_all();

  [[nodiscard]] bool is_down(std::size_t node) const;
  [[nodiscard]] bool is_slow(std::size_t node) const;

  // ------------------------------------------- network-partition schedules

  /// One-way drop: messages from `from_node` to `to_node` are lost during
  /// [from_ms, until_ms). Asymmetric by design — schedule only one direction
  /// to model a half-open link. Replaces any previous window on that link.
  void partition_link(std::size_t from_node, std::size_t to_node,
                      std::int64_t from_ms, std::int64_t until_ms);

  /// Symmetric partition between two node groups: every cross-group link is
  /// dropped in both directions during [from_ms, until_ms).
  void partition_groups(const std::vector<std::size_t>& group_a,
                        const std::vector<std::size_t>& group_b,
                        std::int64_t from_ms, std::int64_t until_ms);

  /// Clears every link window (crash/slow windows are untouched).
  void heal_partitions();

  /// Is the from->to direction of the link currently dropping messages?
  /// Out-of-range indices and self-links are never partitioned. Counts one
  /// partition_drop per true answer (each query models one lost message).
  bool link_down(std::size_t from_node, std::size_t to_node);

  // ------------------------------------------- topology-change schedules

  /// Enqueues a deterministic topology mutation for the chaos schedule.
  void schedule_topology_event(TopologyEvent event);

  /// Pops the earliest scheduled event with at_ms <= now, if any. Events due
  /// at the same virtual time pop in insertion order.
  std::optional<TopologyEvent> pop_due_topology_event();

  /// Number of scheduled events not yet popped.
  [[nodiscard]] std::size_t pending_topology_events() const;

  // ----------------------------------------------------- per-op decisions

  /// Does this replica write fail transiently? (consumed by StorageEngine)
  bool fail_write(std::size_t node);
  /// Does this replica read error transiently? (consumed by the coordinator)
  bool fail_read(std::size_t node);
  /// Virtual response time of one replica operation right now.
  std::int64_t replica_latency_ms(std::size_t node);
  /// Is this gossip exchange lost? (consumed by Gossiper::step)
  bool drop_gossip();
  /// Is this published ingest record corrupted? (consumed by EventPublisher)
  bool poison_record();

  [[nodiscard]] FaultCounts counts() const;

 private:
  /// One crash/slow window pair; INT64_MAX/MIN sentinels mean "no window".
  struct NodeFaults {
    std::atomic<std::int64_t> down_from{INT64_MAX};
    std::atomic<std::int64_t> down_until{INT64_MIN};
    std::atomic<std::int64_t> slow_from{INT64_MAX};
    std::atomic<std::int64_t> slow_until{INT64_MIN};
    std::atomic<std::uint64_t> write_ops{0};
    std::atomic<std::uint64_t> read_ops{0};
  };

  [[nodiscard]] std::int64_t now_ms() const noexcept {
    return clock_ != nullptr ? clock_->now_ms() : 0;
  }
  /// Deterministic Bernoulli trial: hash(seed, channel, n) < rate.
  [[nodiscard]] bool decide(double rate, std::uint64_t channel,
                            std::uint64_t n) const noexcept;

  /// One directed link's drop window; same sentinel scheme as NodeFaults.
  struct LinkFault {
    std::atomic<std::int64_t> from{INT64_MAX};
    std::atomic<std::int64_t> until{INT64_MIN};
  };

  [[nodiscard]] LinkFault& link(std::size_t from_node,
                                std::size_t to_node) const {
    return links_[from_node * node_count_ + to_node];
  }

  std::size_t node_count_;
  FaultOptions options_;
  SimClock* clock_;
  std::unique_ptr<NodeFaults[]> nodes_;
  std::unique_ptr<LinkFault[]> links_;  // node_count_^2 directed links
  std::atomic<std::uint64_t> gossip_ops_{0};
  std::atomic<std::uint64_t> poison_ops_{0};

  mutable std::mutex topology_mu_;
  std::vector<TopologyEvent> topology_events_;

  mutable std::atomic<std::uint64_t> write_errors_{0};
  mutable std::atomic<std::uint64_t> read_errors_{0};
  mutable std::atomic<std::uint64_t> gossip_drops_{0};
  mutable std::atomic<std::uint64_t> poisoned_records_{0};
  mutable std::atomic<std::uint64_t> slow_ops_{0};
  mutable std::atomic<std::uint64_t> partition_drops_{0};
};

}  // namespace hpcla
