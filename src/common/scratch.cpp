#include "common/scratch.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace hpcla::scratch {
namespace {

std::int64_t process_id() {
#ifdef _WIN32
  return static_cast<std::int64_t>(_getpid());
#else
  return static_cast<std::int64_t>(::getpid());
#endif
}

}  // namespace

std::string base_dir() {
  if (const char* env = std::getenv("HPCLA_SPILL_DIR");
      env != nullptr && env[0] != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(env, ec);
    return env;
  }
  std::error_code ec;
  auto tmp = std::filesystem::temp_directory_path(ec);
  if (ec) return ".";
  return tmp.string();
}

std::string make_subdir(const std::string& prefix, const std::string& parent) {
  static std::atomic<std::uint64_t> seq{0};
  const std::filesystem::path root = parent.empty() ? base_dir() : parent;
  const auto n = seq.fetch_add(1, std::memory_order_relaxed);
  const auto dir = root / (prefix + "-" + std::to_string(process_id()) + "-" +
                           std::to_string(n));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

void remove_all(const std::string& path) noexcept {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
}

void remove_file(const std::string& path) noexcept {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace hpcla::scratch
