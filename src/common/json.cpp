#include "common/json.hpp"

#include <array>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hpcla {

// ---------------------------------------------------------------- JsonObject

Json& JsonObject::set(std::string key, Json value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
  return entries_.back().second;
}

const Json* JsonObject::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json* JsonObject::find(std::string_view key) noexcept {
  for (auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool operator==(const JsonObject& a, const JsonObject& b) {
  return a.entries_ == b.entries_;
}

// ---------------------------------------------------------------------- Json

bool Json::as_bool() const {
  HPCLA_CHECK_MSG(is_bool(), "Json::as_bool on non-bool");
  return std::get<bool>(rep_);
}

std::int64_t Json::as_int() const {
  if (is_double()) {
    // Tolerate integral doubles (parsers of hand-written queries produce them).
    double d = std::get<double>(rep_);
    HPCLA_CHECK_MSG(d == std::floor(d), "Json::as_int on fractional double");
    return static_cast<std::int64_t>(d);
  }
  HPCLA_CHECK_MSG(is_int(), "Json::as_int on non-number");
  return std::get<std::int64_t>(rep_);
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(rep_));
  HPCLA_CHECK_MSG(is_double(), "Json::as_double on non-number");
  return std::get<double>(rep_);
}

const std::string& Json::as_string() const {
  HPCLA_CHECK_MSG(is_string(), "Json::as_string on non-string");
  return std::get<std::string>(rep_);
}

const Json::Array& Json::as_array() const {
  HPCLA_CHECK_MSG(is_array(), "Json::as_array on non-array");
  return std::get<Array>(rep_);
}

Json::Array& Json::as_array() {
  HPCLA_CHECK_MSG(is_array(), "Json::as_array on non-array");
  return std::get<Array>(rep_);
}

const JsonObject& Json::as_object() const {
  HPCLA_CHECK_MSG(is_object(), "Json::as_object on non-object");
  return std::get<JsonObject>(rep_);
}

JsonObject& Json::as_object() {
  HPCLA_CHECK_MSG(is_object(), "Json::as_object on non-object");
  return std::get<JsonObject>(rep_);
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) rep_ = JsonObject{};
  JsonObject& obj = as_object();
  if (Json* found = obj.find(key)) return *found;
  return obj.set(std::string(key), Json());
}

const Json& Json::operator[](std::string_view key) const {
  static const Json kNull;
  if (!is_object()) return kNull;
  const Json* found = as_object().find(key);
  return found ? *found : kNull;
}

void Json::push_back(Json v) {
  if (is_null()) rep_ = Array{};
  as_array().push_back(std::move(v));
}

Result<std::int64_t> Json::get_int(std::string_view key) const {
  if (!is_object()) return invalid_argument("expected JSON object");
  const Json* v = as_object().find(key);
  if (!v) return invalid_argument("missing field '" + std::string(key) + "'");
  if (v->is_int()) return v->as_int();
  if (v->is_double() && v->as_double() == std::floor(v->as_double())) {
    return static_cast<std::int64_t>(v->as_double());
  }
  return invalid_argument("field '" + std::string(key) + "' is not an integer");
}

Result<double> Json::get_double(std::string_view key) const {
  if (!is_object()) return invalid_argument("expected JSON object");
  const Json* v = as_object().find(key);
  if (!v) return invalid_argument("missing field '" + std::string(key) + "'");
  if (!v->is_number()) {
    return invalid_argument("field '" + std::string(key) + "' is not numeric");
  }
  return v->as_double();
}

Result<std::string> Json::get_string(std::string_view key) const {
  if (!is_object()) return invalid_argument("expected JSON object");
  const Json* v = as_object().find(key);
  if (!v) return invalid_argument("missing field '" + std::string(key) + "'");
  if (!v->is_string()) {
    return invalid_argument("field '" + std::string(key) + "' is not a string");
  }
  return v->as_string();
}

Result<bool> Json::get_bool(std::string_view key) const {
  if (!is_object()) return invalid_argument("expected JSON object");
  const Json* v = as_object().find(key);
  if (!v) return invalid_argument("missing field '" + std::string(key) + "'");
  if (!v->is_bool()) {
    return invalid_argument("field '" + std::string(key) + "' is not a bool");
  }
  return v->as_bool();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf.data();
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(rep_) ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<std::int64_t>(rep_));
  } else if (is_double()) {
    const double d = std::get<double>(rep_);
    if (std::isfinite(d)) {
      std::array<char, 32> buf{};
      std::snprintf(buf.data(), buf.size(), "%.12g", d);
      out += buf.data();
      // Keep doubles recognizable as doubles on re-parse.
      if (std::strpbrk(buf.data(), ".eE") == nullptr) out += ".0";
    } else {
      out += "null";  // JSON has no NaN/Inf
    }
  } else if (is_string()) {
    out += json_escape(std::get<std::string>(rep_));
  } else if (is_array()) {
    const Array& arr = std::get<Array>(rep_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out.push_back(',');
      newline(depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back(']');
  } else {
    const JsonObject& obj = std::get<JsonObject>(rep_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out.push_back(',');
      first = false;
      newline(depth + 1);
      out += json_escape(k);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      v.dump_to(out, indent, depth + 1);
    }
    newline(depth);
    out.push_back('}');
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0, 0);
  return out;
}

std::string Json::pretty() const {
  std::string out;
  dump_to(out, 2, 0);
  return out;
}

// -------------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse_document() {
    skip_ws();
    auto v = parse_value(0);
    if (!v.is_ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status fail(const std::string& what) const {
    return invalid_argument("JSON parse error at offset " +
                            std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Result<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto s = parse_string();
        if (!s.is_ok()) return s.status();
        return Json(std::move(s.value()));
      }
      case 't':
        if (consume_word("true")) return Json(true);
        return fail("invalid literal");
      case 'f':
        if (consume_word("false")) return Json(false);
        return fail("invalid literal");
      case 'n':
        if (consume_word("null")) return Json(nullptr);
        return fail("invalid literal");
      default: return parse_number();
    }
  }

  Result<Json> parse_object(int depth) {
    consume('{');
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      auto key = parse_string();
      if (!key.is_ok()) return key.status();
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      skip_ws();
      auto val = parse_value(depth + 1);
      if (!val.is_ok()) return val;
      obj.set(std::move(key.value()), std::move(val.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Result<Json> parse_array(int depth) {
    consume('[');
    Json::Array arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      skip_ws();
      auto val = parse_value(depth + 1);
      if (!val.is_ok()) return val;
      arr.push_back(std::move(val.value()));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  Result<std::string> parse_string() {
    consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("short \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad hex digit in \\u escape");
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("unknown escape character");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // BMP only; surrogate pairs in log text are not expected, and lone
    // surrogates are replaced with U+FFFD.
    if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    bool has_digits = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      has_digits = true;
    }
    if (!has_digits) return fail("invalid number");
    bool is_double = false;
    if (consume('.')) {
      is_double = true;
      bool frac = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        frac = true;
      }
      if (!frac) return fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      bool exp = false;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        exp = true;
      }
      if (!exp) return fail("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(v));
      }
      // Fall through to double on int64 overflow.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace hpcla
