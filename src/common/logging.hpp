// Diagnostic logging for the framework itself (not the HPC logs being
// analyzed — those are data). Thread-safe, leveled, off by default above
// WARN so benches are not polluted.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace hpcla {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
/// Writes one formatted line to stderr under a global mutex.
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

/// Stream-style one-shot logger: LogMessage(LogLevel::kInfo) << "x=" << x;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() {
    if (level_ >= log_level()) detail::log_line(level_, stream_.str());
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace hpcla

#define HPCLA_LOG(level) ::hpcla::LogMessage(::hpcla::LogLevel::level)
