#include "common/stats.hpp"

#include <cstdio>

#include "common/status.hpp"

namespace hpcla {

double PercentileTracker::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
    ++sort_passes_;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  HPCLA_CHECK_MSG(bins >= 1, "Histogram requires at least one bin");
  HPCLA_CHECK_MSG(hi > lo, "Histogram range must be non-empty");
}

std::size_t Histogram::bin_index(double x) const noexcept {
  if (x < lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  return std::min(idx, counts_.size() - 1);
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  counts_[bin_index(x)] += weight;
  total_ += weight;
}

std::pair<double, double> Histogram::bin_range(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + width * static_cast<double>(i),
          lo_ + width * static_cast<double>(i + 1)};
}

std::string Histogram::render_ascii(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto [b, e] = bin_range(i);
    char head[64];
    std::snprintf(head, sizeof(head), "[%10.1f, %10.1f) %8llu |", b, e,
                  static_cast<unsigned long long>(counts_[i]));
    out += head;
    const std::size_t bar =
        peak ? static_cast<std::size_t>(
                   static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                   static_cast<double>(width))
             : 0;
    out.append(bar, '#');
    out.push_back('\n');
  }
  return out;
}

double pearson_correlation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  HPCLA_CHECK_MSG(a.size() == b.size(), "series length mismatch");
  const std::size_t n = a.size();
  if (n == 0) return 0.0;
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace hpcla
