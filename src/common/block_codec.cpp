#include "common/block_codec.hpp"

#include <cstring>
#include <vector>

namespace hpcla::codec {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 0xffff;
constexpr std::size_t kHashBits = 13;  // 8K-entry table
constexpr std::size_t kHashSize = std::size_t{1} << kHashBits;

inline std::uint32_t read32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::size_t hash32(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Writes a token-nibble length: lengths >= 15 continue in 255-bytes plus a
/// final byte < 255 (matching the LZ4 sequence layout).
inline void put_length(std::string& out, std::size_t len) {
  len -= 15;
  while (len >= 255) {
    out.push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out.push_back(static_cast<char>(len));
}

inline bool get_length(const char*& p, const char* end, std::size_t& len) {
  while (true) {
    if (p >= end) return false;
    const auto byte = static_cast<std::uint8_t>(*p++);
    len += byte;
    if (byte != 255) return true;
  }
}

void emit_sequence(std::string& out, const char* lit, std::size_t lit_len,
                   std::size_t offset, std::size_t match_len) {
  const std::size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  // match_len == 0 marks the trailing literal-only sequence.
  const std::size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const std::size_t match_nibble = match_code < 15 ? match_code : 15;
  out.push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_len >= 15) put_length(out, lit_len);
  out.append(lit, lit_len);
  if (match_len == 0) return;
  out.push_back(static_cast<char>(offset & 0xff));
  out.push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_code >= 15) put_length(out, match_code);
}

}  // namespace

std::string block_compress(std::string_view in) {
  std::string out;
  out.reserve(in.size() / 2 + 16);
  const char* base = in.data();
  const std::size_t n = in.size();
  // Matches must not start within the last 12 bytes (keeps the decoder's
  // unconditional copies in-bounds, same rule LZ4 uses).
  if (n < kMinMatch + 12) {
    emit_sequence(out, base, n, 0, 0);
    return out;
  }
  const std::size_t match_limit = n - 12;
  std::vector<std::uint32_t> table(kHashSize, 0xffffffffu);
  std::size_t anchor = 0;  // start of pending literals
  std::size_t pos = 0;
  while (pos < match_limit) {
    const std::uint32_t seq = read32(base + pos);
    const std::size_t h = hash32(seq);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (cand == 0xffffffffu || pos - cand > kMaxOffset ||
        read32(base + cand) != seq) {
      ++pos;
      continue;
    }
    std::size_t match_len = kMinMatch;
    // Extend, stopping early enough to leave a >= 5-byte literal tail.
    const std::size_t extend_limit = n - 5;
    while (pos + match_len < extend_limit &&
           base[cand + match_len] == base[pos + match_len]) {
      ++match_len;
    }
    emit_sequence(out, base + anchor, pos - anchor, pos - cand, match_len);
    pos += match_len;
    anchor = pos;
  }
  emit_sequence(out, base + anchor, n - anchor, 0, 0);
  return out;
}

bool block_decompress(std::string_view in, std::size_t raw_size,
                      std::string& out) {
  out.clear();
  out.reserve(raw_size);
  const char* p = in.data();
  const char* end = p + in.size();
  while (p < end) {
    const auto token = static_cast<std::uint8_t>(*p++);
    std::size_t lit_len = token >> 4;
    if (lit_len == 15 && !get_length(p, end, lit_len)) return false;
    if (static_cast<std::size_t>(end - p) < lit_len) return false;
    out.append(p, lit_len);
    p += lit_len;
    if (p >= end) break;  // final literal-only sequence
    if (end - p < 2) return false;
    const std::size_t offset = static_cast<std::uint8_t>(p[0]) |
                               (static_cast<std::size_t>(
                                    static_cast<std::uint8_t>(p[1]))
                                << 8);
    p += 2;
    if (offset == 0 || offset > out.size()) return false;
    std::size_t match_len = token & 0x0f;
    if (match_len == 15 && !get_length(p, end, match_len)) return false;
    match_len += kMinMatch;
    if (out.size() + match_len > raw_size) return false;
    // Offsets < match_len intentionally replicate the just-written bytes
    // (run-length encoding via self-overlap): copying in chunks of at most
    // `offset` keeps every chunk's source fully written before it is read.
    const std::size_t dst = out.size();
    const std::size_t src = dst - offset;
    out.resize(dst + match_len);
    char* o = out.data();
    if (offset >= 8) {
      std::size_t copied = 0;
      while (copied < match_len) {
        const std::size_t chunk = std::min(offset, match_len - copied);
        std::memcpy(o + dst + copied, o + src + copied, chunk);
        copied += chunk;
      }
    } else {
      for (std::size_t i = 0; i < match_len; ++i) o[dst + i] = o[src + i];
    }
  }
  return out.size() == raw_size;
}

}  // namespace hpcla::codec
