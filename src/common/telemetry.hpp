// Unified telemetry: one process-wide metric registry and a span-based
// tracer joining every layer of the stack (DESIGN.md §11).
//
// The paper's analytics server is the chokepoint translating frontend JSON
// queries into either CQL range reads or Spark jobs — so a slow query must
// be attributable to coordinator retries vs. shuffle skew vs. micro-batch
// backlog. Two primitives make that possible:
//
//   * MetricRegistry — named lock-free counters, gauges, and striped
//     log-bucketed latency histograms (p50/p95/p99). Modules that already
//     keep their own atomic counter structs (ClusterMetrics, BrokerMetrics,
//     EngineMetrics, StorageMetrics) register a *collector* instead of
//     migrating their atomics: at snapshot time each live instance
//     contributes its current values under stable metric names, and
//     same-named contributions sum. The structs stay the per-instance
//     views; the registry is the process-wide one.
//
//   * Tracer — Dapper-style spans. A root span is opened per server
//     request; the (trace_id, span_id) context lives in a thread-local and
//     is carried across pool boundaries with ScopedContext. Spans time
//     themselves on the tracer clock, which follows a SimClock when one is
//     installed — chaos-seeded runs produce deterministic traces. Finished
//     spans land in a bounded in-memory sink keyed by trace id, and spans
//     over the slow threshold additionally enter a top-K slow-op log.
//
// Hot-path cost when no trace is active: one relaxed atomic load plus one
// thread-local read per Span constructor — cheap enough for the lock-free
// paths PRs 1–3 built (the overhead budget is ≤5% on bench_fig3_endtoend).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcla {
class SimClock;
}

namespace hpcla::telemetry {

// --------------------------------------------------------------- instruments

/// Monotonic lock-free counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Point-in-time view of one latency histogram. Percentiles are bucket
/// midpoints, so the relative error is bounded by the bucket width
/// (≤ ~12.5% with 2 sub-bucket bits).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  /// Non-empty buckets as (inclusive upper bound, cumulative count ≤ bound)
  /// pairs ordered by bound — the exposition renders these as native
  /// Prometheus `_bucket` series.
  std::vector<std::pair<double, std::uint64_t>> cumulative_buckets;
  [[nodiscard]] double mean_us() const noexcept {
    return count == 0 ? 0.0 : static_cast<double>(sum_us) /
                                  static_cast<double>(count);
  }
};

/// Lock-free latency histogram with HdrHistogram-style log-linear buckets:
/// values < 4 are exact; above that each power-of-two range splits into 4
/// linear sub-buckets. Recording is one relaxed fetch_add into one of
/// kStripes per-thread stripes, so concurrent recorders on different
/// threads rarely share a cache line.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 256;

  void record(std::uint64_t value_us) noexcept;

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Bucket containing `v` (exposed for the accuracy tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept;
  /// Midpoint estimate of bucket `idx`.
  [[nodiscard]] static double bucket_midpoint(std::size_t idx) noexcept;
  /// Largest value that still lands in bucket `idx` (the Prometheus `le`
  /// bound for that bucket).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx) noexcept;

 private:
  static constexpr std::size_t kStripes = 8;

  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kBuckets> counts{};
    std::atomic<std::uint64_t> sum{0};
  };

  std::array<Stripe, kStripes> stripes_{};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

// ----------------------------------------------------------------- registry

/// Receives one module's metric values during a registry snapshot.
/// Contributions under the same name sum (several clusters -> one total).
class MetricSink {
 public:
  virtual void counter(std::string_view name, std::uint64_t value) = 0;
  virtual void gauge(std::string_view name, double value) = 0;

 protected:
  ~MetricSink() = default;
};

using CollectorFn = std::function<void(MetricSink&)>;

class MetricRegistry;

/// RAII registration of a collector; deregisters on destruction. Objects
/// holding one must declare it as their *last* member so the collector is
/// torn down before anything it reads.
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(CollectorHandle&& other) noexcept;
  CollectorHandle& operator=(CollectorHandle&& other) noexcept;
  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;
  ~CollectorHandle();

  void reset() noexcept;

 private:
  friend class MetricRegistry;
  CollectorHandle(MetricRegistry* registry, std::uint64_t id) noexcept
      : registry_(registry), id_(id) {}

  MetricRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

/// Everything the registry knows at one instant: owned instruments merged
/// with live collector contributions. Maps are name-ordered, so rendering
/// is deterministic.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Process-wide named-instrument registry. Instrument lookup takes a mutex
/// once; the returned reference stays valid for the process lifetime, so
/// hot paths cache it and record lock-free afterwards.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  [[nodiscard]] CollectorHandle register_collector(CollectorFn fn);

  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  friend class CollectorHandle;
  void deregister_collector(std::uint64_t id) noexcept;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::map<std::uint64_t, CollectorFn> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

/// The process-wide registry (leaked singleton: collectors deregistering
/// during static destruction must always find it alive).
MetricRegistry& registry();

/// Prometheus text exposition: every series carries `# HELP`/`# TYPE`
/// lines ('.' and '-' in names become '_'), and latency histograms render
/// as native cumulative `_bucket{le="..."}`/`_sum`/`_count` series built
/// from HistogramSnapshot::cumulative_buckets.
std::string prometheus_text(const RegistrySnapshot& snap);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline become \\, \", and \n.
std::string prometheus_escape_label(std::string_view value);

// ------------------------------------------------------------------- tracing

/// Identity a request carries through the stack. trace_id == 0 means "not
/// inside a trace" — spans constructed then are inert.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// One finished span as stored in the trace sink.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  std::vector<std::pair<std::string, std::string>> tags;
};

/// Tracer sink tuning. Defaults reproduce the PR-5 sizing; `from_env()`
/// overlays `HPCLA_SLOW_OP_US` (slow-span threshold, 0 disables the slow
/// log) and `HPCLA_SLOWLOG_CAP` (slow-op log capacity).
struct TracerOptions {
  std::int64_t slow_threshold_us = 50'000;
  std::size_t slowlog_capacity = 32;
  std::size_t max_traces = 128;  ///< kept completed traces (FIFO eviction)
  std::size_t max_spans_per_trace = 512;
  /// Tail-sampling reservoir: ceiling on *normal* (neither slow nor
  /// errored) traces resident in the sink. Slow and errored traces are
  /// always kept (up to max_traces). Defaults to max_traces so the
  /// out-of-the-box sink behaves like the old keep-everything FIFO.
  std::size_t normal_reservoir = 128;
  /// Completed traces buffered for Exporter::drain (0 disables the queue).
  std::size_t completed_queue_capacity = 256;
  std::uint64_t sample_seed = 0x9e3779b97f4a7c15ull;

  [[nodiscard]] static TracerOptions from_env();
};

/// One completed trace as handed to the self-telemetry exporter.
struct CompletedTrace {
  std::uint64_t trace_id = 0;
  std::string root_name;
  bool slow = false;
  bool errored = false;
  std::vector<SpanRecord> spans;  ///< completion order, root last
};

/// Tail-sampling span sink + slow-op log. Spans buffer per trace until the
/// root closes; the completed trace is kept when any span was slow or
/// errored, and normal traces fill a bounded reservoir (deterministic
/// Algorithm-R replacement past capacity), so the sink holds interesting
/// traces instead of the most recent 128.
class Tracer {
 public:
  static constexpr std::size_t kMaxTraces = 128;
  static constexpr std::size_t kMaxSpansPerTrace = 512;
  static constexpr std::size_t kSlowLogCapacity = 32;

  Tracer();  ///< applies TracerOptions::from_env()

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_release);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Installs (or clears, with nullptr) a virtual clock: span timestamps
  /// then read SimClock milliseconds, so chaos schedules trace identically
  /// run to run.
  void set_sim_clock(SimClock* clock) noexcept {
    sim_clock_.store(clock, std::memory_order_release);
  }
  [[nodiscard]] SimClock* sim_clock() const noexcept {
    return sim_clock_.load(std::memory_order_acquire);
  }

  /// Replaces the sink tuning. Existing slow-log rows are re-trimmed to
  /// the new capacity; buffered traces stay as they are.
  void configure(TracerOptions opts);
  [[nodiscard]] TracerOptions options() const;

  void set_slow_threshold_us(std::int64_t us) noexcept;
  [[nodiscard]] std::int64_t slow_threshold_us() const noexcept {
    return slow_threshold_us_.load(std::memory_order_acquire);
  }

  /// Current time on the tracer clock (virtual when a SimClock is set,
  /// steady wall time otherwise).
  [[nodiscard]] std::int64_t now_us() const noexcept;

  [[nodiscard]] std::uint64_t next_trace_id() noexcept {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Child spans buffer under their still-open trace; a root span closing
  /// completes its trace and runs the tail-sampling keep decision. Slow
  /// spans of a completing trace enter the slow-op log stamped with an
  /// "op" tag naming the root span.
  void record(SpanRecord rec);

  /// All spans of one kept trace, in completion order (children before
  /// parents). Empty for traces still pending or dropped by sampling.
  [[nodiscard]] std::vector<SpanRecord> trace(std::uint64_t trace_id) const;

  /// Top-K spans over the slow threshold, slowest first.
  [[nodiscard]] std::vector<SpanRecord> slow_ops() const;

  /// Moves out up to `max` kept completed traces (0 = all) in completion
  /// order — the exporter's feed. The queue is bounded
  /// (TracerOptions::completed_queue_capacity, oldest dropped).
  [[nodiscard]] std::vector<CompletedTrace> drain_completed(
      std::size_t max = 0);

  /// Drops all stored traces, buffers, and the slow log (test isolation).
  void clear();

 private:
  void enter_slowlog(const SpanRecord& span, const std::string& root_name);

  std::atomic<bool> enabled_{true};
  std::atomic<SimClock*> sim_clock_{nullptr};
  std::atomic<std::int64_t> slow_threshold_us_{50'000};
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};

  struct KeptTrace {
    std::vector<SpanRecord> spans;
    bool normal = false;  ///< counted against the reservoir
  };

  mutable std::mutex mu_;
  TracerOptions opts_;
  std::map<std::uint64_t, std::vector<SpanRecord>> pending_;
  std::vector<std::uint64_t> pending_order_;  ///< FIFO for leak bounding
  std::map<std::uint64_t, KeptTrace> traces_;
  std::vector<std::uint64_t> trace_order_;  ///< FIFO for eviction
  std::vector<SpanRecord> slow_;            ///< kept sorted, slowest first
  std::deque<CompletedTrace> completed_;    ///< exporter feed
  std::uint64_t normal_seen_ = 0;    ///< completed normal traces (sampling)
  std::size_t normal_resident_ = 0;  ///< normal traces currently kept
};

/// The process-wide tracer (leaked singleton, like registry()).
Tracer& tracer();

/// This thread's current trace context (zero when not inside a span).
[[nodiscard]] TraceContext current() noexcept;

/// True while a SuppressScope is alive on this thread.
[[nodiscard]] bool suppressed() noexcept;

/// While alive on this thread, Span construction and emit_span are inert.
/// The self-telemetry pipeline wraps its own publish/drain work in one so
/// `_telemetry.*` traffic never generates further telemetry events — the
/// loop-suppression invariant (DESIGN.md §16). Nests.
class SuppressScope {
 public:
  SuppressScope() noexcept;
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;
};

/// Installs `ctx` as the thread's current context for the scope — how a
/// driver's context crosses into ThreadPool tasks: capture current() by
/// value before submitting, open a ScopedContext inside the task.
class ScopedContext {
 public:
  explicit ScopedContext(TraceContext ctx) noexcept;
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext saved_;
};

/// RAII span. A child Span is inert unless the thread is inside an active
/// trace; Span::root starts a new trace (inert only when the tracer is
/// disabled). While alive, the span is the thread's current context; on
/// destruction it restores its parent and records itself.
class Span {
 public:
  /// Child of the thread's current context.
  explicit Span(std::string_view name) : Span(name, /*root=*/false) {}

  /// Starts a new trace with this span as the root.
  [[nodiscard]] static Span root(std::string_view name) {
    return Span(name, /*root=*/true);
  }

  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void tag(std::string_view key, std::string_view value);
  /// Without this overload a string literal would convert pointer->bool (a
  /// standard conversion, preferred over the user-defined string_view one)
  /// and silently record "true"/"false".
  void tag(std::string_view key, const char* value) {
    tag(key, std::string_view(value));
  }
  void tag(std::string_view key, std::uint64_t value);
  void tag(std::string_view key, std::int64_t value);
  void tag(std::string_view key, bool value);

  /// Overrides the measured duration — virtual-time coordinators resolve
  /// their latency analytically and stamp it here.
  void set_duration_us(std::int64_t us) noexcept { explicit_duration_ = us; }

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept {
    return rec_.trace_id;
  }
  [[nodiscard]] std::int64_t start_us() const noexcept {
    return rec_.start_us;
  }
  [[nodiscard]] TraceContext context() const noexcept {
    return TraceContext{rec_.trace_id, rec_.span_id};
  }

 private:
  Span(std::string_view name, bool root);

  SpanRecord rec_;
  TraceContext saved_;
  std::int64_t explicit_duration_ = -1;
  bool active_ = false;
};

/// Records an already-finished child span of `parent` with explicit timing
/// — for per-replica tries resolved analytically in virtual time, where no
/// RAII scope matches the span's lifetime. No-op when `parent` is inactive
/// or the tracer is disabled.
void emit_span(const TraceContext& parent, std::string_view name,
               std::int64_t start_us, std::int64_t duration_us,
               std::vector<std::pair<std::string, std::string>> tags = {});

}  // namespace hpcla::telemetry
